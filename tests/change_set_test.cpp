// Tests for ChangeSet validation and application.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "forest/change_set.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"

namespace parct::forest {
namespace {

Forest small_tree() {
  // 0 <- 1 <- 2, 0 <- 3; vertex 4 isolated; capacity 8 (5..7 absent).
  Forest f(8, 4, 5);
  f.link(1, 0);
  f.link(2, 1);
  f.link(3, 0);
  return f;
}

TEST(ChangeSet, EmptyIsValid) {
  Forest f = small_tree();
  EXPECT_FALSE(check_change_set(f, ChangeSet{}).has_value());
}

TEST(ChangeSet, ValidEdgeOps) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(2, 1).ins_edge(2, 3).ins_edge(4, 2);
  EXPECT_FALSE(check_change_set(f, m).has_value());
  Forest g = apply_change_set(f, m);
  EXPECT_EQ(g.parent(2), 3u);
  EXPECT_EQ(g.parent(4), 2u);
  EXPECT_FALSE(check_forest(g).has_value());
}

TEST(ChangeSet, ValidVertexOps) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(4);                       // isolated: ok without edges
  m.ins_vertex(6).ins_edge(6, 3);        // new leaf under 3
  EXPECT_FALSE(check_change_set(f, m).has_value());
  Forest g = apply_change_set(f, m);
  EXPECT_FALSE(g.present(4));
  EXPECT_TRUE(g.present(6));
  EXPECT_EQ(g.parent(6), 3u);
}

TEST(ChangeSet, RejectsCycle) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(0, 2);  // 0 <- 1 <- 2 <- 0
  auto err = check_change_set(f, m);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(ChangeSet, RejectsSecondParent) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(2, 0);  // 2 already has parent 1
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsMissingDeleteEdge) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(3, 1);  // 3's parent is 0, not 1
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsVertexRemovalKeepingEdges) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(1);  // 1 has parent edge and child edge
  EXPECT_TRUE(check_change_set(f, m).has_value());
  ChangeSet m2;
  m2.del_vertex(1).del_edge(1, 0).del_edge(2, 1);
  EXPECT_FALSE(check_change_set(f, m2).has_value());
}

TEST(ChangeSet, RejectsDuplicateEntries) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(2, 1).del_edge(2, 1);
  EXPECT_TRUE(check_change_set(f, m).has_value());
  ChangeSet m2;
  m2.ins_vertex(6).ins_vertex(6);
  EXPECT_TRUE(check_change_set(f, m2).has_value());
}

TEST(ChangeSet, RejectsAddingPresentVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_vertex(3);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsRemovingAbsentVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(7);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsExistingInsertEdge) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(1, 0);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsEdgeToRemovedVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(4).ins_edge(3, 4);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsDegreeOverflow) {
  Forest f(8, 2, 8);
  f.link(1, 0);
  f.link(2, 0);
  ChangeSet m;
  m.ins_edge(3, 0);  // 0 already has 2 children, bound is 2
  auto err = check_change_set(f, m);
  EXPECT_TRUE(err.has_value());
}

TEST(ChangeSet, ApplyGrowsUniverseForLargeIds) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_vertex(20).ins_edge(20, 0);
  Forest g = apply_change_set(f, m);
  EXPECT_GE(g.capacity(), 21u);
  EXPECT_TRUE(g.present(20));
}

TEST(ChangeSet, SizeAccounting) {
  ChangeSet m;
  m.ins_vertex(1).del_vertex(2).ins_edge(3, 4).del_edge(5, 6);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(ChangeSet{}.empty());
}

TEST(ChangeSet, BinaryRoundTrip) {
  // The WAL record body (docs/DURABILITY.md): encode/decode must be an
  // exact inverse, including empty sections and an all-empty batch.
  ChangeSet m;
  m.del_vertex(4).del_edge(2, 1).del_edge(3, 0).ins_vertex(9).ins_edge(9, 2);
  std::stringstream buf;
  save_change_set(m, buf);
  const ChangeSet r = load_change_set(buf);
  EXPECT_EQ(r.remove_vertices, m.remove_vertices);
  EXPECT_EQ(r.add_vertices, m.add_vertices);
  ASSERT_EQ(r.remove_edges.size(), m.remove_edges.size());
  for (std::size_t i = 0; i < m.remove_edges.size(); ++i) {
    EXPECT_EQ(r.remove_edges[i].child, m.remove_edges[i].child);
    EXPECT_EQ(r.remove_edges[i].parent, m.remove_edges[i].parent);
  }
  ASSERT_EQ(r.add_edges.size(), m.add_edges.size());
  for (std::size_t i = 0; i < m.add_edges.size(); ++i) {
    EXPECT_EQ(r.add_edges[i].child, m.add_edges[i].child);
    EXPECT_EQ(r.add_edges[i].parent, m.add_edges[i].parent);
  }

  std::stringstream empty_buf;
  save_change_set(ChangeSet{}, empty_buf);
  EXPECT_TRUE(load_change_set(empty_buf).empty());
}

TEST(ChangeSet, BinaryDecodeRejectsGarbage) {
  // Truncation mid-payload.
  ChangeSet m;
  m.del_vertex(1).ins_edge(5, 6).ins_edge(7, 8);
  std::stringstream buf;
  save_change_set(m, buf);
  const std::string bytes = buf.str();
  for (const std::size_t keep : {0ul, 7ul, 33ul, bytes.size() - 1}) {
    std::stringstream cut(bytes.substr(0, keep));
    EXPECT_THROW(load_change_set(cut), std::runtime_error) << keep;
  }

  // Corrupt counts must be rejected before any allocation is committed —
  // a header declaring 2^56 edges is corruption, not data.
  std::string lying = bytes;
  for (int i = 0; i < 8; ++i) lying[8 + i] = static_cast<char>(0xFF);
  std::stringstream huge(lying);
  EXPECT_THROW(load_change_set(huge), std::runtime_error);
}

}  // namespace
}  // namespace parct::forest
