// Tests for ChangeSet validation and application.
#include <gtest/gtest.h>

#include "forest/change_set.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"

namespace parct::forest {
namespace {

Forest small_tree() {
  // 0 <- 1 <- 2, 0 <- 3; vertex 4 isolated; capacity 8 (5..7 absent).
  Forest f(8, 4, 5);
  f.link(1, 0);
  f.link(2, 1);
  f.link(3, 0);
  return f;
}

TEST(ChangeSet, EmptyIsValid) {
  Forest f = small_tree();
  EXPECT_FALSE(check_change_set(f, ChangeSet{}).has_value());
}

TEST(ChangeSet, ValidEdgeOps) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(2, 1).ins_edge(2, 3).ins_edge(4, 2);
  EXPECT_FALSE(check_change_set(f, m).has_value());
  Forest g = apply_change_set(f, m);
  EXPECT_EQ(g.parent(2), 3u);
  EXPECT_EQ(g.parent(4), 2u);
  EXPECT_FALSE(check_forest(g).has_value());
}

TEST(ChangeSet, ValidVertexOps) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(4);                       // isolated: ok without edges
  m.ins_vertex(6).ins_edge(6, 3);        // new leaf under 3
  EXPECT_FALSE(check_change_set(f, m).has_value());
  Forest g = apply_change_set(f, m);
  EXPECT_FALSE(g.present(4));
  EXPECT_TRUE(g.present(6));
  EXPECT_EQ(g.parent(6), 3u);
}

TEST(ChangeSet, RejectsCycle) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(0, 2);  // 0 <- 1 <- 2 <- 0
  auto err = check_change_set(f, m);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(ChangeSet, RejectsSecondParent) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(2, 0);  // 2 already has parent 1
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsMissingDeleteEdge) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(3, 1);  // 3's parent is 0, not 1
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsVertexRemovalKeepingEdges) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(1);  // 1 has parent edge and child edge
  EXPECT_TRUE(check_change_set(f, m).has_value());
  ChangeSet m2;
  m2.del_vertex(1).del_edge(1, 0).del_edge(2, 1);
  EXPECT_FALSE(check_change_set(f, m2).has_value());
}

TEST(ChangeSet, RejectsDuplicateEntries) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_edge(2, 1).del_edge(2, 1);
  EXPECT_TRUE(check_change_set(f, m).has_value());
  ChangeSet m2;
  m2.ins_vertex(6).ins_vertex(6);
  EXPECT_TRUE(check_change_set(f, m2).has_value());
}

TEST(ChangeSet, RejectsAddingPresentVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_vertex(3);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsRemovingAbsentVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(7);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsExistingInsertEdge) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_edge(1, 0);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsEdgeToRemovedVertex) {
  Forest f = small_tree();
  ChangeSet m;
  m.del_vertex(4).ins_edge(3, 4);
  EXPECT_TRUE(check_change_set(f, m).has_value());
}

TEST(ChangeSet, RejectsDegreeOverflow) {
  Forest f(8, 2, 8);
  f.link(1, 0);
  f.link(2, 0);
  ChangeSet m;
  m.ins_edge(3, 0);  // 0 already has 2 children, bound is 2
  auto err = check_change_set(f, m);
  EXPECT_TRUE(err.has_value());
}

TEST(ChangeSet, ApplyGrowsUniverseForLargeIds) {
  Forest f = small_tree();
  ChangeSet m;
  m.ins_vertex(20).ins_edge(20, 0);
  Forest g = apply_change_set(f, m);
  EXPECT_GE(g.capacity(), 21u);
  EXPECT_TRUE(g.present(20));
}

TEST(ChangeSet, SizeAccounting) {
  ChangeSet m;
  m.ins_vertex(1).del_vertex(2).ins_edge(3, 4).del_edge(5, 6);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(ChangeSet{}.empty());
}

}  // namespace
}  // namespace parct::forest
