// Shared helpers for the test suite: named forest shapes for parameterized
// sweeps, sanitizer-aware scaling, and a contraction-structure differ for
// equivalence-failure messages.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include "contraction/contraction_forest.hpp"
#include "forest/forest.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"

namespace parct::test {

// True under TSAN/ASAN builds: long randomized tests scale their default
// step counts down (explicit env overrides like PARCT_SOAK_STEPS still
// win) so sanitizer CI stays within budget.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
inline constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
inline constexpr bool kSanitizedBuild = true;
#else
inline constexpr bool kSanitizedBuild = false;
#endif
#else
inline constexpr bool kSanitizedBuild = false;
#endif

struct Shape {
  const char* name;
  // Builds a forest of ~n vertices with `extra` spare ids.
  forest::Forest (*build)(std::size_t n, std::uint64_t seed,
                          std::size_t extra);
};

inline forest::Forest shape_balanced(std::size_t n, std::uint64_t,
                                     std::size_t extra) {
  return forest::build_balanced(n, 4, extra);
}
inline forest::Forest shape_binary(std::size_t n, std::uint64_t,
                                   std::size_t extra) {
  // Round n down to 2^k - 1.
  std::size_t m = 1;
  while (2 * m + 1 <= n) m = 2 * m + 1;
  return forest::build_perfect_binary(m, extra + (n - m));
}
inline forest::Forest shape_chain(std::size_t n, std::uint64_t,
                                  std::size_t extra) {
  return forest::build_chain(n, extra);
}
inline forest::Forest shape_cf03(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 0.3, seed, extra);
}
inline forest::Forest shape_cf06(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 0.6, seed, extra);
}
inline forest::Forest shape_cf10(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 1.0, seed, extra);
}
inline forest::Forest shape_forest5(std::size_t n, std::uint64_t seed,
                                    std::size_t extra) {
  const std::size_t trees = std::max<std::size_t>(1, std::min<std::size_t>(5, n / 2));
  forest::Forest f = forest::random_forest(n, trees, 4, 0.5, seed);
  (void)extra;
  return f;
}

inline constexpr Shape kShapes[] = {
    {"balanced", shape_balanced}, {"binary", shape_binary},
    {"chain", shape_chain},       {"cf03", shape_cf03},
    {"cf06", shape_cf06},         {"cf10", shape_cf10},
    {"forest5", shape_forest5},
};

/// Human-readable diff of two contraction structures (durations and
/// per-round records, first `max_lines` mismatches) — for the failure
/// message of from-scratch-equivalence assertions.
inline std::string contraction_diff(const contract::ContractionForest& a,
                                    const contract::ContractionForest& b,
                                    int max_lines = 20) {
  std::ostringstream out;
  const std::size_t cap = std::max(a.capacity(), b.capacity());
  int shown = 0;
  for (VertexId v = 0; v < cap && shown < max_lines; ++v) {
    const std::uint32_t da = v < a.capacity() ? a.duration(v) : 0;
    const std::uint32_t db = v < b.capacity() ? b.duration(v) : 0;
    if (da != db) {
      out << "v" << v << ": duration " << da << " vs " << db << "\n";
      ++shown;
      continue;
    }
    for (std::uint32_t i = 0; i < da; ++i) {
      const auto& ra = a.record(i, v);
      const auto& rb = b.record(i, v);
      auto ca = ra.children, cb = rb.children;
      std::sort(ca.begin(), ca.end());
      std::sort(cb.begin(), cb.end());
      if (ra.parent != rb.parent || ca != cb) {
        out << "v" << v << " round " << i << ": p=" << ra.parent << " vs "
            << rb.parent << "; children:";
        for (VertexId u : ra.children) {
          if (u != kNoVertex) out << " " << u;
        }
        out << " VS";
        for (VertexId u : rb.children) {
          if (u != kNoVertex) out << " " << u;
        }
        out << "\n";
        ++shown;
      }
    }
  }
  return out.str();
}

}  // namespace parct::test
