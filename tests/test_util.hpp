// Shared helpers for the test suite: named forest shapes for parameterized
// sweeps and small conveniences.
#pragma once

#include <cstdint>
#include <string>

#include "forest/forest.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"

namespace parct::test {

struct Shape {
  const char* name;
  // Builds a forest of ~n vertices with `extra` spare ids.
  forest::Forest (*build)(std::size_t n, std::uint64_t seed,
                          std::size_t extra);
};

inline forest::Forest shape_balanced(std::size_t n, std::uint64_t,
                                     std::size_t extra) {
  return forest::build_balanced(n, 4, extra);
}
inline forest::Forest shape_binary(std::size_t n, std::uint64_t,
                                   std::size_t extra) {
  // Round n down to 2^k - 1.
  std::size_t m = 1;
  while (2 * m + 1 <= n) m = 2 * m + 1;
  return forest::build_perfect_binary(m, extra + (n - m));
}
inline forest::Forest shape_chain(std::size_t n, std::uint64_t,
                                  std::size_t extra) {
  return forest::build_chain(n, extra);
}
inline forest::Forest shape_cf03(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 0.3, seed, extra);
}
inline forest::Forest shape_cf06(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 0.6, seed, extra);
}
inline forest::Forest shape_cf10(std::size_t n, std::uint64_t seed,
                                 std::size_t extra) {
  return forest::build_tree(n, 4, 1.0, seed, extra);
}
inline forest::Forest shape_forest5(std::size_t n, std::uint64_t seed,
                                    std::size_t extra) {
  const std::size_t trees = std::max<std::size_t>(1, std::min<std::size_t>(5, n / 2));
  forest::Forest f = forest::random_forest(n, trees, 4, 0.5, seed);
  (void)extra;
  return f;
}

inline constexpr Shape kShapes[] = {
    {"balanced", shape_balanced}, {"binary", shape_binary},
    {"chain", shape_chain},       {"cf03", shape_cf03},
    {"cf06", shape_cf06},         {"cf10", shape_cf10},
    {"forest5", shape_forest5},
};

}  // namespace parct::test
