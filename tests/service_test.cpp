// Serving-layer unit tests: snapshot isolation, epoch semantics, version
// monotonicity, sentinel handling for untrusted ids, update validation,
// buffer recycling, and the engine-thread round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/batch_queries.hpp"
#include "service/batch_server.hpp"

namespace parct::service {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1500;

  void SetUp() override {
    par::scheduler::initialize(4);
    f_ = forest::random_forest(kN, 6, 4, 0.4, 31);
    c_ = std::make_unique<contract::ContractionForest>(kN, 4, 3);
    contract::construct(*c_, f_);
  }
  void TearDown() override { par::scheduler::initialize(1); }

  QueryBatch sample_queries(std::uint64_t seed, std::size_t k) const {
    hashing::SplitMix64 rng(seed);
    QueryBatch q;
    for (std::size_t i = 0; i < k; ++i) {
      q.roots.push_back(static_cast<VertexId>(rng.next_below(kN)));
      q.connected.push_back({static_cast<VertexId>(rng.next_below(kN)),
                             static_cast<VertexId>(rng.next_below(kN))});
      q.tree_weights.push_back(static_cast<VertexId>(rng.next_below(kN)));
    }
    return q;
  }

  void expect_matches(const QueryBatch& q, const QueryResult& r,
                      const forest::Forest& oracle,
                      const std::vector<Weight>& w) const {
    std::vector<Weight> component(oracle.capacity(), 0);
    for (VertexId v = 0; v < oracle.capacity(); ++v) {
      if (oracle.present(v)) component[forest::root_of(oracle, v)] += w[v];
    }
    for (std::size_t i = 0; i < q.roots.size(); ++i) {
      ASSERT_EQ(r.roots[i], forest::root_of(oracle, q.roots[i])) << i;
    }
    for (std::size_t i = 0; i < q.connected.size(); ++i) {
      ASSERT_EQ(r.connected[i] != 0,
                forest::root_of(oracle, q.connected[i].first) ==
                    forest::root_of(oracle, q.connected[i].second))
          << i;
    }
    for (std::size_t i = 0; i < q.tree_weights.size(); ++i) {
      ASSERT_EQ(r.tree_weights[i],
                component[forest::root_of(oracle, q.tree_weights[i])])
          << i;
    }
  }

  forest::Forest f_{0};
  std::unique_ptr<contract::ContractionForest> c_;
};

TEST_F(ServiceTest, StepAnswersAgainstVersion0) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  QueryBatch q = sample_queries(1, 300);
  auto fut = server.submit_queries(q);
  ASSERT_TRUE(server.step());
  QueryResult r = fut.get();
  EXPECT_EQ(r.version, 0u);
  expect_matches(q, r, f_, std::vector<Weight>(kN, 1));
  EXPECT_FALSE(server.step()) << "empty step must report no work";
}

TEST_F(ServiceTest, UpdateEpochPinsQueriesToPriorVersion) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  const SnapshotHandle pinned0 = server.snapshot();

  QueryBatch q = sample_queries(2, 200);
  auto qfut = server.submit_queries(q);
  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 10, 55);
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());

  // Queries coalesced into the same epoch as the update are answered at
  // the pinned pre-update version.
  QueryResult r = qfut.get();
  EXPECT_EQ(r.version, 0u);
  expect_matches(q, r, f_, std::vector<Weight>(kN, 1));

  UpdateResult ur = ufut.get();
  EXPECT_EQ(ur.version, 1u);
  EXPECT_EQ(server.version(), 1u);

  // Post-update queries see the edited forest...
  forest::Forest f1 =
      forest::apply_change_set(f_, forest::make_delete_batch(f_, 10, 55));
  QueryBatch q1 = sample_queries(3, 200);
  auto qfut1 = server.submit_queries(q1);
  ASSERT_TRUE(server.step());
  QueryResult r1 = qfut1.get();
  EXPECT_EQ(r1.version, 1u);
  expect_matches(q1, r1, f1, std::vector<Weight>(kN, 1));

  // ...while the handle pinned before the update still answers version 0.
  EXPECT_EQ(pinned0.version(), 0u);
  for (std::size_t i = 0; i < q.roots.size(); ++i) {
    ASSERT_EQ(pinned0->root(q.roots[i]), forest::root_of(f_, q.roots[i]));
  }
}

TEST_F(ServiceTest, UntrustedIdsGetSentinels) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  QueryBatch q;
  q.roots = {static_cast<VertexId>(kN + 1000), 0};
  q.connected = {{static_cast<VertexId>(kN + 7), 0}};
  q.tree_weights = {static_cast<VertexId>(kN + 99)};
  auto fut = server.submit_queries(std::move(q));
  ASSERT_TRUE(server.step());
  QueryResult r = fut.get();
  EXPECT_EQ(r.roots[0], kNoVertex);
  EXPECT_EQ(r.roots[1], forest::root_of(f_, 0));
  EXPECT_EQ(r.connected[0], 0);
  EXPECT_EQ(r.tree_weights[0], 0);
}

TEST_F(ServiceTest, InvalidUpdateBatchIsRejected) {
  BatchServer server(*c_);  // validate_updates defaults on
  UpdateRequest bad;
  bad.batch.del_vertex(static_cast<VertexId>(kN + 5));  // absent vertex
  auto fut = server.submit_update(std::move(bad));
  ASSERT_TRUE(server.step());
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(server.version(), 0u) << "rejected batch must not publish";
  EXPECT_EQ(server.stats().updates_rejected, 1u);

  // The server keeps serving after a rejection.
  UpdateRequest ok;
  ok.batch = forest::make_delete_batch(f_, 4, 77);
  auto fut2 = server.submit_update(std::move(ok));
  ASSERT_TRUE(server.step());
  EXPECT_EQ(fut2.get().version, 1u);
}

TEST_F(ServiceTest, VertexWeightsApplyWithTheirEpoch) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  hashing::SplitMix64 rng(9);
  const VertexId v = static_cast<VertexId>(rng.next_below(kN));

  UpdateRequest u;  // weight-only update: empty structural batch
  u.vertex_weights.push_back({v, 100});
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());
  EXPECT_EQ(ufut.get().version, 1u);

  QueryBatch q;
  q.tree_weights = {v};
  auto qfut = server.submit_queries(std::move(q));
  ASSERT_TRUE(server.step());
  std::vector<Weight> w(kN, 1);
  w[v] = 100;
  Weight want = 0;
  for (VertexId x = 0; x < kN; ++x) {
    if (forest::root_of(f_, x) == forest::root_of(f_, v)) want += w[x];
  }
  EXPECT_EQ(qfut.get().tree_weights[0], want);
}

TEST_F(ServiceTest, SnapshotSatisfiesBatchQueryViewConcept) {
  // The same templated batch entry points that serve the live RCForest
  // accept a pinned Snapshot.
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  const SnapshotHandle snap = server.snapshot();
  std::vector<VertexId> qs;
  for (VertexId v = 0; v < kN; v += 11) qs.push_back(v);
  std::vector<VertexId> roots = rc::batch_roots(*snap, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(roots[i], forest::root_of(f_, qs[i]));
  }
}

TEST_F(ServiceTest, SteadyStateRecyclesSnapshotBuffers) {
  ServiceConfig cfg;
  cfg.validate_updates = false;
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  forest::Forest cur = f_;
  for (int step = 0; step < 6; ++step) {
    UpdateRequest u;
    u.batch = forest::make_delete_batch(cur, 2, 200 + step);
    cur = forest::apply_change_set(cur, u.batch);
    auto fut = server.submit_update(std::move(u));
    ASSERT_TRUE(server.step());
    fut.get();
  }
  const ServiceStats s = server.stats();
  EXPECT_EQ(s.snapshots_published, 7u);  // initial + 6 updates
  EXPECT_LE(s.snapshot_buffers_allocated, 2u)
      << "steady state must recycle the double buffer, not allocate";
  EXPECT_GE(s.snapshot_buffers_reused, 5u);
}

TEST_F(ServiceTest, EngineThreadServesSubmittersEndToEnd) {
  for (const bool overlap : {false, true}) {
    // Fresh structure per run: the previous server's updates mutated it.
    contract::ContractionForest c(kN, 4, 3);
    contract::construct(c, f_);
    ServiceConfig cfg;
    cfg.overlap_updates = overlap;
    BatchServer server(c, cfg, std::vector<Weight>(kN, 1));
    server.start();

    // Interleave query and update submissions; track the forest at every
    // version so each result can be checked at the version it reports.
    std::vector<forest::Forest> at_version = {f_};
    std::vector<std::pair<QueryBatch, std::future<QueryResult>>> qfuts;
    std::vector<std::future<UpdateResult>> ufuts;
    for (int i = 0; i < 12; ++i) {
      QueryBatch q = sample_queries(400 + i, 120);
      qfuts.emplace_back(q, server.submit_queries(q));
      if (i % 3 == 1) {
        UpdateRequest u;
        u.batch = forest::make_delete_batch(at_version.back(), 5, 600 + i);
        at_version.push_back(
            forest::apply_change_set(at_version.back(), u.batch));
        ufuts.push_back(server.submit_update(std::move(u)));
      }
    }
    server.stop();  // drains everything admitted above

    std::uint64_t expect_version = 1;
    for (auto& uf : ufuts) {
      EXPECT_EQ(uf.get().version, expect_version++) << "overlap=" << overlap;
    }
    const std::vector<Weight> w(kN, 1);
    for (auto& [q, fut] : qfuts) {
      QueryResult r = fut.get();
      ASSERT_LT(r.version, at_version.size());
      expect_matches(q, r, at_version[r.version], w);
    }
    EXPECT_THROW(server.submit_queries(QueryBatch{}), std::runtime_error)
        << "submit after stop() must fail fast";

    const ServiceStats s = server.stats();
    EXPECT_EQ(s.updates_applied, ufuts.size());
    EXPECT_EQ(s.queries_served, 12u * 3u * 120u);
  }
}

TEST_F(ServiceTest, ConcurrentStopIsSafe) {
  // Regression (found by the thread-safety annotation pass): stop() used
  // to read and join engine_ without holding mu_, racing the handle
  // against start()'s write and letting two concurrent stop() calls both
  // observe a joinable thread and double-join (std::terminate). stop()
  // now moves the handle out under the lock, so exactly one caller joins
  // and every other call is an idempotent no-op.
  for (int round = 0; round < 8; ++round) {
    contract::ContractionForest c(kN, 4, 3);
    contract::construct(c, f_);
    BatchServer server(c, ServiceConfig{}, std::vector<Weight>(kN, 1));
    server.start();
    auto fut = server.submit_queries(sample_queries(900 + round, 64));

    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&server] { server.stop(); });
    }
    for (std::thread& th : stoppers) th.join();

    // The admitted batch resolved either way — served by the drain, or
    // rejected with ServerStopped — never left dangling.
    try {
      (void)fut.get();
    } catch (const ServerStopped&) {
    }
    EXPECT_THROW(server.submit_queries(QueryBatch{}), ServerStopped);
  }
}

TEST_F(ServiceTest, StepModeStopRejectsQueuedFutures) {
  // Guard on the ConcurrentStopIsSafe contract across the durability
  // refactors: in step() mode there is no engine thread to drain the
  // queues, so stop() itself must reject everything still admitted with
  // ServerStopped — no future survives stop() unresolved.
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  auto q1 = server.submit_queries(sample_queries(50, 32));
  auto q2 = server.submit_queries(sample_queries(51, 32));
  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 3, 52);
  auto uf = server.submit_update(std::move(u));
  server.stop();  // no step() ran: all three are still queued
  EXPECT_THROW(q1.get(), ServerStopped);
  EXPECT_THROW(q2.get(), ServerStopped);
  EXPECT_THROW(uf.get(), ServerStopped);
  EXPECT_THROW(server.submit_queries(QueryBatch{}), ServerStopped);
}

}  // namespace
}  // namespace parct::service
