// Tests for the Chase-Lev work-stealing deque.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "parallel/chase_lev_deque.hpp"

namespace parct::par {
namespace {

TEST(ChaseLevDeque, EmptyPopsNull) {
  ChaseLevDeque<int> d;
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.steal_top(), nullptr);
  EXPECT_TRUE(d.empty_estimate());
}

TEST(ChaseLevDeque, LifoForOwner) {
  ChaseLevDeque<int> d;
  int a = 1, b = 2, c = 3;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, FifoForThief) {
  ChaseLevDeque<int> d;
  int a = 1, b = 2, c = 3;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.steal_top(), &a);
  EXPECT_EQ(d.steal_top(), &b);
  EXPECT_EQ(d.steal_top(), &c);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLevDeque, MixedOwnerAndThief) {
  ChaseLevDeque<int> d;
  int items[6];
  for (int& x : items) d.push_bottom(&x);
  EXPECT_EQ(d.steal_top(), &items[0]);
  EXPECT_EQ(d.pop_bottom(), &items[5]);
  EXPECT_EQ(d.steal_top(), &items[1]);
  EXPECT_EQ(d.pop_bottom(), &items[4]);
  EXPECT_EQ(d.size_estimate(), 2);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(4);
  std::vector<int> items(1000);
  for (int& x : items) d.push_bottom(&x);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &items[i]);
}

TEST(ChaseLevDeque, InterleavedPushPopNeverLoses) {
  ChaseLevDeque<int> d;
  std::vector<int> items(100);
  // Saw-tooth usage: push 3, pop 2, repeatedly.
  std::size_t pushed = 0;
  std::vector<int*> got;
  while (pushed < items.size()) {
    for (int k = 0; k < 3 && pushed < items.size(); ++k) {
      d.push_bottom(&items[pushed++]);
    }
    for (int k = 0; k < 2; ++k) {
      if (int* p = d.pop_bottom()) got.push_back(p);
    }
  }
  while (int* p = d.pop_bottom()) got.push_back(p);
  EXPECT_EQ(got.size(), items.size());
  EXPECT_EQ(std::set<int*>(got.begin(), got.end()).size(), items.size());
}

// Concurrency: one owner pushing/popping, several thieves stealing. Every
// item must be claimed exactly once.
TEST(ChaseLevDeque, StressExactlyOnceDelivery) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> d;
  std::vector<int> items(kItems);
  std::atomic<int> claimed{0};
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  auto idx = [&](int* p) { return static_cast<int>(p - items.data()); };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* p = d.steal_top()) {
          seen[idx(p)].fetch_add(1);
          claimed.fetch_add(1);
        }
      }
    });
  }
  // Owner: pushes everything, pops intermittently.
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(&items[i]);
    if ((i & 7) == 0) {
      if (int* p = d.pop_bottom()) {
        seen[idx(p)].fetch_add(1);
        claimed.fetch_add(1);
      }
    }
  }
  while (int* p = d.pop_bottom()) {
    seen[idx(p)].fetch_add(1);
    claimed.fetch_add(1);
  }
  while (claimed.load() < kItems) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace parct::par
