// Regression tests for parct::par::default_grain: it must be well-defined
// (and side-effect free) before the pool is initialized, and must track
// the pool's actual worker count once one is running. Also covers the
// steal-seed plumbing of scheduler::initialize.
#include <gtest/gtest.h>

#include <atomic>

#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

namespace parct::par {
namespace {

class DefaultGrain : public ::testing::Test {
 protected:
  void TearDown() override { scheduler::initialize(1); }
};

TEST_F(DefaultGrain, WellDefinedBeforePoolStarts) {
  scheduler::shutdown();
  ASSERT_FALSE(scheduler::initialized());

  // configured_workers() reports the count the pool *would* start with,
  // without starting it.
  const unsigned w = scheduler::configured_workers();
  ASSERT_GE(w, 1u);
  EXPECT_FALSE(scheduler::initialized());

  const std::size_t n = 100000;
  const std::size_t g = default_grain(n);
  // Computing a grain must not start the pool as a side effect.
  EXPECT_FALSE(scheduler::initialized());
  EXPECT_EQ(g, std::max<std::size_t>(1, n / (8 * static_cast<std::size_t>(w))));
}

TEST_F(DefaultGrain, MatchesRunningPoolCount) {
  scheduler::initialize(3);
  ASSERT_TRUE(scheduler::initialized());
  EXPECT_EQ(scheduler::configured_workers(), 3u);
  EXPECT_EQ(default_grain(240), 10u);  // 240 / (8 * 3)
  EXPECT_EQ(default_grain(0), 1u);
  EXPECT_EQ(default_grain(5), 1u);  // never below 1
}

TEST_F(DefaultGrain, ConsistentAcrossPoolLifecycle) {
  // The pre-init grain must agree with the grain after the default pool
  // actually starts (same n, no env change in between).
  scheduler::shutdown();
  const std::size_t before = default_grain(1 << 20);
  ASSERT_FALSE(scheduler::initialized());
  scheduler::initialize();  // start with the default count
  const std::size_t after = default_grain(1 << 20);
  EXPECT_EQ(before, after);
}

TEST_F(DefaultGrain, StealSeedReinitializesAndStillComputes) {
  scheduler::initialize(2, /*steal_seed=*/0xABCDEFull);
  EXPECT_EQ(scheduler::num_workers(), 2u);
  EXPECT_EQ(scheduler::steal_seed(), 0xABCDEFull);
  // Same count, different seed: a distinct pool configuration.
  scheduler::initialize(2, /*steal_seed=*/7);
  EXPECT_EQ(scheduler::steal_seed(), 7ull);
  EXPECT_EQ(scheduler::num_workers(), 2u);

  // The pool still executes parallel work correctly under a custom seed.
  std::atomic<long> sum{0};
  parallel_for(0, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 499500);

  // Idempotent when (count, seed) is unchanged.
  scheduler::initialize(2, /*steal_seed=*/7);
  EXPECT_EQ(scheduler::steal_seed(), 7ull);
}

}  // namespace
}  // namespace parct::par
