// Determinism of the full pipeline across worker counts: construction and
// dynamic updates must produce bit-for-bit (slot-insensitively) identical
// structures no matter how many workers execute them, including with tiny
// grain sizes that force deep task trees and real stealing.
#include <gtest/gtest.h>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using forest::ChangeSet;
using forest::Forest;

class WorkerSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void TearDown() override { par::scheduler::initialize(1); }
};

// Reference structures computed once at one worker.
struct Reference {
  Forest initial;
  ChangeSet batch;
  ContractionForest after_update;

  static const Reference& get() {
    static Reference* ref = [] {
      par::scheduler::initialize(1);
      Forest full = forest::build_tree(4000, 4, 0.6, 31, 16);
      auto [initial, batch] = forest::make_insert_batch(full, 60, 5);
      // Also add one fresh vertex under some parent with a spare slot in
      // the edited forest.
      Forest edited = forest::apply_change_set(initial, batch);
      for (VertexId p = 0; p < 4000; ++p) {
        if (edited.degree(p) < edited.degree_bound()) {
          batch.add_vertices.push_back(4005);
          batch.add_edges.push_back({4005, p});
          break;
        }
      }
      auto* r = new Reference{std::move(initial), std::move(batch),
                              ContractionForest(full.capacity(), 4, 97)};
      contract::construct(r->after_update, r->initial);
      contract::modify_contraction(r->after_update, r->batch);
      return r;
    }();
    return *ref;
  }
};

TEST_P(WorkerSweep, ConstructPlusUpdateIdentical) {
  const Reference& ref = Reference::get();
  par::scheduler::initialize(GetParam());
  ContractionForest c(ref.initial.capacity(), 4, 97);
  contract::construct(c, ref.initial);
  contract::DynamicUpdater updater(c);
  updater.apply(ref.batch);
  EXPECT_TRUE(contract::structurally_equal(c, ref.after_update));
}

TEST_P(WorkerSweep, RepeatedUpdatesStayIdentical) {
  const Reference& ref = Reference::get();
  par::scheduler::initialize(GetParam());

  ContractionForest c(ref.initial.capacity(), 4, 97);
  contract::construct(c, ref.initial);
  contract::DynamicUpdater updater(c);
  Forest cur = ref.initial;
  hashing::SplitMix64 rng(8);
  for (int step = 0; step < 5; ++step) {
    ChangeSet m = forest::make_delete_batch(cur, 20, 1000 + step);
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);
  }
  // Compare against a single-worker replay of the same sequence.
  par::scheduler::initialize(1);
  ContractionForest c1(ref.initial.capacity(), 4, 97);
  contract::construct(c1, ref.initial);
  contract::DynamicUpdater updater1(c1);
  Forest cur1 = ref.initial;
  for (int step = 0; step < 5; ++step) {
    ChangeSet m = forest::make_delete_batch(cur1, 20, 1000 + step);
    updater1.apply(m);
    cur1 = forest::apply_change_set(cur1, m);
  }
  EXPECT_TRUE(contract::structurally_equal(c, c1));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct
