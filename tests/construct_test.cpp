// Tests for the construction algorithm (paper §2.4): validity against an
// independent sequential simulator, Lemma-level properties of the recorded
// rounds, and determinism across worker counts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "contraction/construct.hpp"
#include "contraction/validate.hpp"
#include "forest/validation.hpp"
#include "parallel/scheduler.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ConstructStats;
using contract::ContractionForest;
using contract::Kind;

ContractionForest make_and_construct(const forest::Forest& f,
                                     std::uint64_t seed,
                                     ConstructStats* stats = nullptr) {
  ContractionForest c(f.capacity(), f.degree_bound(), seed);
  ConstructStats s = contract::construct(c, f);
  if (stats) *stats = s;
  return c;
}

TEST(Construct, SingleVertexFinalizesImmediately) {
  forest::Forest f(1, 4, 1);
  ContractionForest c = make_and_construct(f, 1);
  EXPECT_EQ(c.duration(0), 1u);
  EXPECT_EQ(c.num_rounds(), 1u);
  EXPECT_FALSE(contract::check_valid(c, f).has_value());
}

TEST(Construct, TwoVertexEdgeRakesThenFinalizes) {
  forest::Forest f(2, 4, 2);
  f.link(1, 0);
  ContractionForest c = make_and_construct(f, 1);
  // Vertex 1 is a non-root leaf: rakes in round 0. Vertex 0 then finalizes
  // in round 1.
  EXPECT_EQ(c.duration(1), 1u);
  EXPECT_EQ(c.duration(0), 2u);
  EXPECT_FALSE(contract::check_valid(c, f).has_value());
}

TEST(Construct, EmptyForestNoRounds) {
  forest::Forest f(8, 4, 0);
  ContractionForest c(8, 4, 1);
  ConstructStats s = contract::construct(c, f);
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(c.num_rounds(), 0u);
}

TEST(Construct, IsolatedVerticesAllFinalizeRoundZero) {
  forest::Forest f(64, 4, 64);  // 64 isolated roots
  ContractionForest c = make_and_construct(f, 7);
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(c.duration(v), 1u);
}

// --- validity against the independent reference simulator -------------

struct ShapeSeed {
  test::Shape shape;
  std::size_t n;
  std::uint64_t seed;
};

class ConstructValidity : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(ConstructValidity, MatchesReferenceSimulation) {
  const ShapeSeed& p = GetParam();
  forest::Forest f = p.shape.build(p.n, p.seed, 0);
  ASSERT_FALSE(forest::check_forest(f).has_value());
  ContractionForest c = make_and_construct(f, p.seed * 31 + 1);
  auto err = contract::check_valid(c, f);
  EXPECT_FALSE(err.has_value()) << *err;
}

std::vector<ShapeSeed> validity_cases() {
  std::vector<ShapeSeed> out;
  for (const auto& shape : test::kShapes) {
    for (std::size_t n : {2, 17, 128, 1000}) {
      for (std::uint64_t seed : {1ull, 42ull}) {
        out.push_back({shape, n, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConstructValidity, ::testing::ValuesIn(validity_cases()),
    [](const ::testing::TestParamInfo<ShapeSeed>& info) {
      return std::string(info.param.shape.name) + "_n" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

// --- structural / lemma-level properties ------------------------------

class ConstructProperties : public ::testing::TestWithParam<test::Shape> {};

TEST_P(ConstructProperties, RoundsLogarithmicAndWorkLinear) {
  const std::size_t n = 20000;
  forest::Forest f = GetParam().build(n, 99, 0);
  ConstructStats stats;
  make_and_construct(f, 12345, &stats);
  const double logn = std::log2(static_cast<double>(f.num_present()));
  // O(log n) rounds w.h.p. (Lemma 6); pure chains contract only by
  // independent-set compression (expected factor 3/4 per round), which
  // the generous constant still covers.
  EXPECT_LE(stats.rounds, 12 * logn + 16);
  // Theorem 1: total work O(n). Geometric decay gives sum <= n / (1 - β),
  // β = 3/4 -> factor 4; allow slack for shape variance.
  EXPECT_LE(stats.total_live, 8 * f.num_present() + 64);
}

TEST_P(ConstructProperties, LivePerRoundDecays) {
  forest::Forest f = GetParam().build(4000, 5, 0);
  ConstructStats stats;
  make_and_construct(f, 5, &stats);
  // |V^{i+6}| < |V^i| must hold eventually: check coarse monotone decay
  // over windows (Lemma 5 gives expected geometric decay).
  for (std::size_t i = 0; i + 6 < stats.live_per_round.size(); ++i) {
    EXPECT_LT(stats.live_per_round[i + 6], stats.live_per_round[i])
        << "no decay across rounds " << i << ".." << i + 6;
  }
}

TEST_P(ConstructProperties, CompressedVerticesFormIndependentSet) {
  forest::Forest f = GetParam().build(3000, 17, 0);
  ContractionForest c = make_and_construct(f, 17);
  const std::uint32_t rounds = c.num_rounds();
  for (std::uint32_t i = 0; i < rounds; ++i) {
    // Collect vertices compressing in round i and check no two adjacent.
    std::set<VertexId> comp;
    for (VertexId v = 0; v < c.capacity(); ++v) {
      if (c.duration(v) > i && c.classify(i, v) == Kind::kCompress) {
        comp.insert(v);
      }
    }
    for (VertexId v : comp) {
      const auto& r = c.record(i, v);
      EXPECT_EQ(comp.count(r.parent), 0u)
          << "adjacent compresses " << v << " and parent " << r.parent
          << " in round " << i;
      for (VertexId u : r.children) {
        if (u != kNoVertex) {
          EXPECT_EQ(comp.count(u), 0u);
        }
      }
    }
  }
}

TEST_P(ConstructProperties, RootsNeverCompressAndStayRoots) {
  forest::Forest f = GetParam().build(2000, 23, 0);
  ContractionForest c = make_and_construct(f, 23);
  for (VertexId v = 0; v < c.capacity(); ++v) {
    if (c.duration(v) == 0) continue;
    const bool root0 = c.record(0, v).parent == v;
    for (std::uint32_t i = 0; i < c.duration(v); ++i) {
      EXPECT_EQ(c.record(i, v).parent == v, root0)
          << "root status changed for " << v << " at round " << i;
    }
    if (root0) {
      // Roots die by finalizing.
      const auto& last = c.record(c.duration(v) - 1, v);
      EXPECT_TRUE(children_empty(last.children));
    }
  }
}

TEST_P(ConstructProperties, ExactlyOneFinalizePerTree) {
  forest::Forest f = GetParam().build(1500, 31, 0);
  ContractionForest c = make_and_construct(f, 31);
  std::size_t finalizers = 0;
  for (VertexId v = 0; v < c.capacity(); ++v) {
    if (c.duration(v) == 0) continue;
    const auto& last = c.record(c.duration(v) - 1, v);
    if (last.parent == v && children_empty(last.children)) ++finalizers;
  }
  EXPECT_EQ(finalizers, f.roots().size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConstructProperties, ::testing::ValuesIn(test::kShapes),
    [](const ::testing::TestParamInfo<test::Shape>& info) {
      return info.param.name;
    });

// --- determinism -------------------------------------------------------

TEST(Construct, DeterministicAcrossWorkerCounts) {
  forest::Forest f = forest::build_tree(5000, 4, 0.6, 77);
  par::scheduler::initialize(1);
  ContractionForest c1 = make_and_construct(f, 2024);
  par::scheduler::initialize(4);
  ContractionForest c4 = make_and_construct(f, 2024);
  par::scheduler::initialize(1);
  EXPECT_TRUE(contract::structurally_equal(c1, c4));
}

TEST(Construct, DifferentSeedsDifferentSchedules) {
  forest::Forest f = forest::build_tree(2000, 4, 0.6, 7);
  ContractionForest a = make_and_construct(f, 1);
  ContractionForest b = make_and_construct(f, 2);
  // Both valid, but (almost surely) not identical round-by-round.
  EXPECT_FALSE(contract::check_valid(a, f).has_value());
  EXPECT_FALSE(contract::check_valid(b, f).has_value());
  EXPECT_FALSE(contract::structurally_equal(a, b));
}

TEST(Construct, ReconstructionIsIdempotent) {
  forest::Forest f = forest::build_tree(1000, 4, 0.3, 3);
  ContractionForest a = make_and_construct(f, 5);
  ContractionForest b = make_and_construct(f, 5);
  EXPECT_TRUE(contract::structurally_equal(a, b));
}

TEST(Construct, ExtractForestRoundTrips) {
  forest::Forest f = forest::build_tree(800, 4, 0.5, 11);
  ContractionForest c = make_and_construct(f, 13);
  forest::Forest g = c.extract_forest();
  EXPECT_TRUE(f == g);  // same vertices and parent relation
}

TEST(Construct, SpaceIsLinear) {
  forest::Forest f = forest::build_tree(30000, 4, 0.6, 1);
  ContractionForest c = make_and_construct(f, 1);
  // Expected sum of durations ~ n/(1-β) = 4n; allow generous slack.
  EXPECT_LE(c.total_records(), 10 * f.num_present());
}

}  // namespace
}  // namespace parct
