// Tests for the prefix-sum and compaction primitives.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"
#include "primitives/sequence_ops.hpp"

namespace parct::prim {
namespace {

class ScanPackTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  hashing::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1000);
  return v;
}

TEST_P(ScanPackTest, ExclusiveScanMatchesSerial) {
  for (std::size_t n : {0, 1, 2, 5, 100, 4096, 4097, 100000}) {
    auto in = random_values(n, n + 1);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += in[i];
    }
    std::vector<std::uint64_t> out;
    const std::uint64_t total = exclusive_scan(in, out);
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(out, expected) << "n=" << n;
  }
}

TEST_P(ScanPackTest, ExclusiveScanInPlace) {
  auto v = random_values(50000, 9);
  auto expected = v;
  std::uint64_t acc = 0;
  for (auto& x : expected) {
    std::uint64_t old = x;
    x = acc;
    acc += old;
  }
  const std::uint64_t total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(v, expected);
}

TEST_P(ScanPackTest, InclusiveScanMatchesSerial) {
  for (std::size_t n : {0, 1, 17, 8192, 65537}) {
    auto in = random_values(n, n + 3);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      expected[i] = acc;
    }
    std::vector<std::uint64_t> out(n);
    const std::uint64_t total = inclusive_scan(in.data(), out.data(), n);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(out, expected);
  }
}

TEST_P(ScanPackTest, PackIndexKeepsOrder) {
  const std::size_t n = 100000;
  auto keep = [](std::size_t i) { return (i % 7 == 0) || (i % 11 == 3); };
  auto got = pack_index(n, keep);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (keep(i)) expected.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(got, expected);
}

TEST_P(ScanPackTest, PackAllAndNone) {
  auto v = random_values(3000, 4);
  EXPECT_EQ(pack(v, [](std::size_t) { return true; }), v);
  EXPECT_TRUE(pack(v, [](std::size_t) { return false; }).empty());
  EXPECT_TRUE(pack_index(0, [](std::size_t) { return true; }).empty());
}

TEST_P(ScanPackTest, FilterByValue) {
  auto v = random_values(50000, 5);
  auto got = filter(v, [](std::uint64_t x) { return x < 100; });
  std::vector<std::uint64_t> expected;
  for (auto x : v) {
    if (x < 100) expected.push_back(x);
  }
  EXPECT_EQ(got, expected);
}

TEST_P(ScanPackTest, SequenceOps) {
  auto t = tabulate(1000, [](std::size_t i) { return 2 * i; });
  EXPECT_EQ(t[999], 1998u);
  EXPECT_EQ(sum(t), 999u * 1000u);
  EXPECT_EQ(iota(5), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(count_if_index(1000, [](std::size_t i) { return i % 3 == 0; }),
            334u);
  EXPECT_TRUE(all_of_index(100, [](std::size_t i) { return i < 100; }));
  EXPECT_FALSE(all_of_index(100, [](std::size_t i) { return i < 99; }));
  std::vector<int> mv{3, -1, 7, 2};
  EXPECT_EQ(max_value(mv), 7);
}

INSTANTIATE_TEST_SUITE_P(Workers, ScanPackTest, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct::prim
