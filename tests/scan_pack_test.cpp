// Tests for the prefix-sum and compaction primitives.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"
#include "primitives/sequence_ops.hpp"
#include "primitives/workspace.hpp"

namespace parct::prim {
namespace {

class ScanPackTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  hashing::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1000);
  return v;
}

TEST_P(ScanPackTest, ExclusiveScanMatchesSerial) {
  for (std::size_t n : {0, 1, 2, 5, 100, 4096, 4097, 100000}) {
    auto in = random_values(n, n + 1);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += in[i];
    }
    std::vector<std::uint64_t> out;
    const std::uint64_t total = exclusive_scan(in, out);
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(out, expected) << "n=" << n;
  }
}

TEST_P(ScanPackTest, ExclusiveScanInPlace) {
  auto v = random_values(50000, 9);
  auto expected = v;
  std::uint64_t acc = 0;
  for (auto& x : expected) {
    std::uint64_t old = x;
    x = acc;
    acc += old;
  }
  const std::uint64_t total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(v, expected);
}

TEST_P(ScanPackTest, InclusiveScanMatchesSerial) {
  for (std::size_t n : {0, 1, 17, 8192, 65537}) {
    auto in = random_values(n, n + 3);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      expected[i] = acc;
    }
    std::vector<std::uint64_t> out(n);
    const std::uint64_t total = inclusive_scan(in.data(), out.data(), n);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(out, expected);
  }
}

TEST_P(ScanPackTest, PackIndexKeepsOrder) {
  const std::size_t n = 100000;
  auto keep = [](std::size_t i) { return (i % 7 == 0) || (i % 11 == 3); };
  auto got = pack_index(n, keep);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (keep(i)) expected.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(got, expected);
}

TEST_P(ScanPackTest, PackAllAndNone) {
  auto v = random_values(3000, 4);
  EXPECT_EQ(pack(v, [](std::size_t) { return true; }), v);
  EXPECT_TRUE(pack(v, [](std::size_t) { return false; }).empty());
  EXPECT_TRUE(pack_index(0, [](std::size_t) { return true; }).empty());
}

TEST_P(ScanPackTest, FilterByValue) {
  auto v = random_values(50000, 5);
  auto got = filter(v, [](std::uint64_t x) { return x < 100; });
  std::vector<std::uint64_t> expected;
  for (auto x : v) {
    if (x < 100) expected.push_back(x);
  }
  EXPECT_EQ(got, expected);
}

TEST_P(ScanPackTest, SequenceOps) {
  auto t = tabulate(1000, [](std::size_t i) { return 2 * i; });
  EXPECT_EQ(t[999], 1998u);
  EXPECT_EQ(sum(t), 999u * 1000u);
  EXPECT_EQ(iota(5), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(count_if_index(1000, [](std::size_t i) { return i % 3 == 0; }),
            334u);
  EXPECT_TRUE(all_of_index(100, [](std::size_t i) { return i < 100; }));
  EXPECT_FALSE(all_of_index(100, [](std::size_t i) { return i < 99; }));
  std::vector<int> mv{3, -1, 7, 2};
  EXPECT_EQ(max_value(mv), 7);
}

TEST_P(ScanPackTest, IntoVariantsMatchAllocating) {
  // The destination-passing forms are drop-in equivalents of the classic
  // signatures; reusing destinations + workspace across calls must not
  // change any result.
  Workspace ws;
  std::vector<std::uint64_t> scan_out;
  std::vector<std::uint64_t> pack_out;
  std::vector<std::uint32_t> idx_out;
  for (std::size_t n : {0, 1, 2, 100, 4096, 4097, 100000}) {
    auto in = random_values(n, n + 13);
    auto keep = [&](std::size_t i) { return in[i] % 3 == 0; };

    std::vector<std::uint64_t> scan_ref;
    const std::uint64_t total_ref = exclusive_scan(in, scan_ref);
    const std::uint64_t total_got = exclusive_scan_into(in, scan_out, ws);
    EXPECT_EQ(total_got, total_ref) << "n=" << n;
    EXPECT_EQ(scan_out, scan_ref) << "n=" << n;

    const auto pack_ref = pack(in, keep);
    const std::size_t kept = pack_into(in, keep, pack_out, ws);
    EXPECT_EQ(kept, pack_ref.size()) << "n=" << n;
    EXPECT_EQ(pack_out, pack_ref) << "n=" << n;

    const auto idx_ref = pack_index(n, keep);
    pack_index_into(n, keep, idx_out, ws);
    EXPECT_EQ(idx_out, idx_ref) << "n=" << n;

    EXPECT_EQ(filter_count(n, keep), pack_ref.size()) << "n=" << n;
  }
}

TEST_P(ScanPackTest, IntoVariantsAreAllocationFreeWhenWarm) {
  Workspace ws;
  std::vector<std::uint64_t> out;
  std::vector<std::uint64_t> in = random_values(50000, 21);
  auto keep = [&](std::size_t i) { return (in[i] & 1) == 0; };
  pack_into(in, keep, out, ws);  // warm-up sizes the pool + destination
  const WorkspaceStats warm = ws.stats();
  for (int r = 0; r < 8; ++r) {
    ws.epoch_reset();
    pack_into(in, keep, out, ws);
  }
  const WorkspaceStats d = workspace_stats_delta(warm, ws.stats());
  EXPECT_EQ(d.misses, 0u);
  EXPECT_EQ(d.container_growths, 0u);
  EXPECT_EQ(d.bytes_allocated, 0u);
  EXPECT_EQ(d.acquires, d.hits);
}

TEST(ScanOverflowGuard, BoundaryAtTwoToTheThirtyTwo) {
  // Satellite of the uint32 precondition (offsets_fit_uint32): drive the
  // wide-total accumulation with synthetic per-block counts summing to
  // exactly 2^32 — no 4 GiB input required. 2^20 blocks of 4096 hits each
  // is one element past the last representable offset total.
  const std::size_t num_blocks = std::size_t{1} << 20;
  std::vector<std::uint32_t> counts(num_blocks, 4096u);
  const std::uint64_t total = detail::wide_block_total(counts.data(),
                                                       num_blocks);
  EXPECT_EQ(total, std::uint64_t{1} << 32);
  EXPECT_FALSE(offsets_fit_uint32(total));

  counts[0] -= 1;  // 2^32 - 1: the largest total that still fits
  const std::uint64_t at_max = detail::wide_block_total(counts.data(),
                                                        num_blocks);
  EXPECT_EQ(at_max, (std::uint64_t{1} << 32) - 1);
  EXPECT_TRUE(offsets_fit_uint32(at_max));

  // The guard must compare in 64 bits: a narrowed accumulator would wrap
  // 2^32 to 0 and "fit". Totals beyond the boundary keep failing.
  EXPECT_FALSE(offsets_fit_uint32((std::uint64_t{1} << 32) + 12345));
  EXPECT_TRUE(offsets_fit_uint32(0));
}

INSTANTIATE_TEST_SUITE_P(Workers, ScanPackTest, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct::prim
