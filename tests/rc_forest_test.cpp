// Tests for the RC-forest application layer: root/connectivity queries,
// O(log n) chains, and per-tree aggregates — including after dynamic
// updates.
#include <gtest/gtest.h>

#include <cmath>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using rc::EventKind;
using rc::RCForest;

ContractionForest build(const forest::Forest& f, std::uint64_t seed) {
  ContractionForest c(f.capacity(), f.degree_bound(), seed);
  contract::construct(c, f);
  return c;
}

class RCForestShapes : public ::testing::TestWithParam<test::Shape> {};

TEST_P(RCForestShapes, RootMatchesForestRoot) {
  forest::Forest f = GetParam().build(2000, 3, 0);
  ContractionForest c = build(f, 71);
  RCForest rcf(c);
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) {
      EXPECT_FALSE(rcf.present(v));
      continue;
    }
    EXPECT_EQ(rcf.root(v), forest::root_of(f, v)) << "vertex " << v;
  }
}

TEST_P(RCForestShapes, ConnectivityMatchesBruteForce) {
  forest::Forest f = GetParam().build(500, 9, 0);
  ContractionForest c = build(f, 72);
  RCForest rcf(c);
  hashing::SplitMix64 rng(4);
  for (int q = 0; q < 500; ++q) {
    const VertexId u = static_cast<VertexId>(rng.next_below(f.capacity()));
    const VertexId v = static_cast<VertexId>(rng.next_below(f.capacity()));
    if (!f.present(u) || !f.present(v)) continue;
    EXPECT_EQ(rcf.connected(u, v),
              forest::root_of(f, u) == forest::root_of(f, v));
  }
}

TEST_P(RCForestShapes, ChainsAreLogarithmic) {
  const std::size_t n = 30000;
  forest::Forest f = GetParam().build(n, 5, 0);
  ContractionForest c = build(f, 73);
  RCForest rcf(c);
  const double logn = std::log2(static_cast<double>(n));
  std::size_t worst = 0;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v)) worst = std::max(worst, rcf.chain_length(v));
  }
  // Chain length <= number of rounds, which is O(log n) w.h.p.
  EXPECT_LE(worst, static_cast<std::size_t>(12 * logn + 16));
}

TEST_P(RCForestShapes, RepresentativeDeathRoundsIncrease) {
  forest::Forest f = GetParam().build(1500, 7, 0);
  ContractionForest c = build(f, 74);
  RCForest rcf(c);
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    const VertexId r = rcf.representative(v);
    if (r != kNoVertex) {
      EXPECT_GT(rcf.event(r).round, rcf.event(v).round);
    } else {
      EXPECT_EQ(rcf.event(v).kind, EventKind::kFinalize);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RCForestShapes, ::testing::ValuesIn(test::kShapes),
    [](const ::testing::TestParamInfo<test::Shape>& info) {
      return info.param.name;
    });

TEST(RCForest, StaysCorrectAcrossDynamicUpdates) {
  forest::Forest full = forest::build_tree(800, 4, 0.5, 6, 8);
  ContractionForest c(full.capacity(), 4, 75);
  contract::construct(c, full);
  contract::DynamicUpdater updater(c);
  RCForest rcf(c);

  forest::Forest cur = full;
  for (int step = 0; step < 6; ++step) {
    forest::ChangeSet m = forest::make_delete_batch(cur, 10, 100 + step);
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);
    rcf.rebuild();
    hashing::SplitMix64 rng(step);
    for (int q = 0; q < 200; ++q) {
      const VertexId u = static_cast<VertexId>(rng.next_below(800));
      EXPECT_EQ(rcf.root(u), forest::root_of(cur, u));
    }
  }
}

TEST(RCForest, TreeAggregateCountsVertices) {
  forest::Forest f = forest::random_forest(600, 6, 4, 0.4, 8);
  ContractionForest c = build(f, 76);
  RCForest rcf(c);
  std::vector<long> ones(f.capacity(), 1);
  rc::TreeAggregate<long> agg(rcf, ones);

  // Count tree sizes by brute force.
  std::vector<long> size_by_root(f.capacity(), 0);
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v)) ++size_by_root[forest::root_of(f, v)];
  }
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    EXPECT_EQ(agg.tree_weight(v), size_by_root[forest::root_of(f, v)]);
  }
}

TEST(RCForest, TreeAggregateWeightUpdates) {
  forest::Forest f = forest::build_tree(300, 4, 0.6, 3);
  ContractionForest c = build(f, 77);
  RCForest rcf(c);
  std::vector<long> w(f.capacity(), 2);
  rc::TreeAggregate<long> agg(rcf, w);
  EXPECT_EQ(agg.tree_weight(17), 600);

  agg.set_weight(42, 100);  // +98
  EXPECT_EQ(agg.tree_weight(17), 698);
  EXPECT_EQ(agg.weight(42), 100);

  agg.set_weight(42, 0);  // back down
  EXPECT_EQ(agg.tree_weight(0), 598);
}

TEST(RCForest, TreeAggregateAfterStructuralUpdate) {
  forest::Forest f = forest::build_chain(100);
  ContractionForest c = build(f, 78);
  contract::DynamicUpdater updater(c);

  forest::ChangeSet m;
  m.del_edge(50, 49);  // split into [0..49] and [50..99]
  updater.apply(m);

  RCForest rcf(c);
  std::vector<long> ones(100, 1);
  rc::TreeAggregate<long> agg(rcf, ones);
  EXPECT_EQ(agg.tree_weight(10), 50);
  EXPECT_EQ(agg.tree_weight(75), 50);
  EXPECT_FALSE(rcf.connected(49, 50));
  EXPECT_TRUE(rcf.connected(0, 49));
}

}  // namespace
}  // namespace parct
