// Tests for MultiHooks fan-out and for incremental RCForest::refresh
// driven by an event recorder attached to a dynamic update.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::EventHooks;
using contract::MultiHooks;

struct CountingHooks : EventHooks {
  std::atomic<std::uint64_t> begun{0}, fin{0}, rake{0}, comp{0}, persist{0};
  void on_begin(std::size_t) override { begun.fetch_add(1); }
  void on_finalize(std::uint32_t, VertexId) override { fin.fetch_add(1); }
  void on_rake(std::uint32_t, VertexId, VertexId) override {
    rake.fetch_add(1);
  }
  void on_compress(std::uint32_t, VertexId, VertexId, VertexId) override {
    comp.fetch_add(1);
  }
  void on_edge_persist(std::uint32_t, VertexId, VertexId) override {
    persist.fetch_add(1);
  }
};

TEST(MultiHooks, FansOutToAllSinksEqually) {
  forest::Forest f = forest::build_tree(400, 4, 0.5, 2);
  CountingHooks a, b;
  MultiHooks multi{&a, &b};

  ContractionForest c(400, 4, 3);
  contract::construct(c, f, &multi);

  EXPECT_EQ(a.begun.load(), 1u);
  EXPECT_EQ(a.fin.load() + a.rake.load() + a.comp.load(), 400u);
  EXPECT_GT(a.persist.load(), 0u);
  EXPECT_EQ(a.fin.load(), b.fin.load());
  EXPECT_EQ(a.rake.load(), b.rake.load());
  EXPECT_EQ(a.comp.load(), b.comp.load());
  EXPECT_EQ(a.persist.load(), b.persist.load());
  EXPECT_EQ(a.begun.load(), b.begun.load());
}

TEST(MultiHooks, AddAfterConstruction) {
  MultiHooks multi;
  CountingHooks a;
  multi.add(&a);
  forest::Forest f = forest::build_chain(10);
  ContractionForest c(10, 4, 1);
  contract::construct(c, f, &multi);
  EXPECT_EQ(a.fin.load() + a.rake.load() + a.comp.load(), 10u);
}

TEST(EdgePersistContract, ExactlyOneEdgeEventPerSurvivingNonRoot) {
  // For every round and every vertex v surviving that round as a
  // non-root, exactly one of on_edge_persist(v) / on_compress(child=v)
  // must fire. Verify by counting against the recorded structure.
  forest::Forest f = forest::build_tree(800, 4, 0.6, 5);

  struct EdgeEventCount : EventHooks {
    std::mutex mu;
    std::map<std::pair<std::uint32_t, VertexId>, int> count;
    void on_edge_persist(std::uint32_t r, VertexId v, VertexId) override {
      std::lock_guard<std::mutex> lk(mu);
      ++count[{r, v}];
    }
    void on_compress(std::uint32_t r, VertexId, VertexId child,
                     VertexId) override {
      std::lock_guard<std::mutex> lk(mu);
      ++count[{r, child}];
    }
  } rec;

  ContractionForest c(800, 4, 7);
  contract::construct(c, f, &rec);

  for (VertexId v = 0; v < 800; ++v) {
    for (std::uint32_t i = 0; i + 1 < c.duration(v); ++i) {
      // v survives round i.
      const bool non_root_next = c.record(i + 1, v).parent != v;
      const auto it = rec.count.find({i, v});
      if (non_root_next) {
        ASSERT_TRUE(it != rec.count.end() && it->second == 1)
            << "vertex " << v << " round " << i;
      } else {
        ASSERT_TRUE(it == rec.count.end()) << "root " << v << " round " << i;
      }
    }
  }
}

TEST(RCForestRefresh, IncrementalRefreshViaRecorder) {
  // Collect the vertices whose events were (re)computed during an update
  // and refresh only those; queries must match a full rebuild.
  struct Touched : EventHooks {
    std::mutex mu;
    std::vector<VertexId> vs;
    void note(VertexId v) {
      std::lock_guard<std::mutex> lk(mu);
      vs.push_back(v);
    }
    void on_finalize(std::uint32_t, VertexId v) override { note(v); }
    void on_rake(std::uint32_t, VertexId v, VertexId) override { note(v); }
    void on_compress(std::uint32_t, VertexId v, VertexId,
                     VertexId) override {
      note(v);
    }
  };

  forest::Forest f = forest::build_tree(600, 4, 0.5, 9, 4);
  ContractionForest c(f.capacity(), 4, 11);
  contract::construct(c, f);
  rc::RCForest rcf(c);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  for (int step = 0; step < 5; ++step) {
    forest::ChangeSet m = forest::make_delete_batch(cur, 8, 100 + step);
    Touched touched;
    updater.apply(m, &touched);
    cur = forest::apply_change_set(cur, m);

    rcf.refresh(touched.vs);
    rc::RCForest full(c);  // fresh rebuild as the oracle
    for (VertexId v = 0; v < 600; ++v) {
      ASSERT_EQ(rcf.root(v), full.root(v)) << "step " << step << " v " << v;
    }
  }
}

}  // namespace
}  // namespace parct
