// Mixed-batch regression test (formerly an unregistered ad-hoc harness):
// drives one structure through interleaved delete / move / vertex-churn
// batches and checks from-scratch equivalence after every step. On a
// divergence the failure message carries the detailed structure diff
// (test_util.hpp), which is what makes this harness worth keeping around
// for debugging propagation bugs.
#include <gtest/gtest.h>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/change_set.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ContractionForest;

TEST(DebugUpdate, MixedBatchesStayEquivalentToOracle) {
  forest::Forest f = forest::build_tree(300, 4, 0.6, 4, 16);
  ContractionForest c(f.capacity(), 4, 99);
  contract::construct(c, f);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  std::uint64_t seed = 1000;
  for (int step = 0; step < 12; ++step) {
    forest::ChangeSet m;
    if (step % 3 == 0) {
      m = forest::make_delete_batch(cur, 5, seed++);
    } else if (step % 3 == 1) {
      auto [reduced, batch] = forest::make_insert_batch(cur, 5, seed++);
      forest::ChangeSet del;
      del.remove_edges = batch.add_edges;
      updater.apply(del);
      cur = reduced;
      m = batch;
    } else {
      m = forest::make_vertex_batch(cur, 3, 3, seed++);
    }
    auto err = forest::check_change_set(cur, m);
    ASSERT_FALSE(err.has_value()) << "step " << step << ": " << *err;
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);

    ContractionForest oracle(cur.capacity(), 4, 99);
    contract::construct(oracle, cur);
    ASSERT_TRUE(contract::structurally_equal(c, oracle))
        << "diverged at step " << step << " (kind " << step % 3 << "), "
        << "batch: V-=" << m.remove_vertices.size()
        << " E-=" << m.remove_edges.size()
        << " V+=" << m.add_vertices.size()
        << " E+=" << m.add_edges.size() << "\n"
        << test::contraction_diff(c, oracle);
  }
}

}  // namespace
}  // namespace parct
