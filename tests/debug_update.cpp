// Ad-hoc debugging harness (not registered as a test).
#include <algorithm>
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/change_set.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"

using namespace parct;
using contract::ContractionForest;

static void diff(const ContractionForest& a, const ContractionForest& b) {
  const std::size_t cap = std::max(a.capacity(), b.capacity());
  int shown = 0;
  for (VertexId v = 0; v < cap && shown < 20; ++v) {
    const std::uint32_t da = v < a.capacity() ? a.duration(v) : 0;
    const std::uint32_t db = v < b.capacity() ? b.duration(v) : 0;
    if (da != db) {
      std::printf("v%u: duration %u vs %u\n", v, da, db);
      ++shown;
      continue;
    }
    for (std::uint32_t i = 0; i < da; ++i) {
      const auto& ra = a.record(i, v);
      const auto& rb = b.record(i, v);
      auto ca = ra.children, cb = rb.children;
      std::sort(ca.begin(), ca.end());
      std::sort(cb.begin(), cb.end());
      if (ra.parent != rb.parent || ca != cb) {
        std::printf("v%u round %u: p=%u vs %u; children:", v, i, ra.parent,
                    rb.parent);
        for (VertexId u : ra.children) if (u != kNoVertex) std::printf(" %u", u);
        std::printf(" VS");
        for (VertexId u : rb.children) if (u != kNoVertex) std::printf(" %u", u);
        std::printf("\n");
        ++shown;
      }
    }
  }
}

int main() {
  forest::Forest f = forest::build_tree(300, 4, 0.6, 4, 16);
  ContractionForest c(f.capacity(), 4, 99);
  contract::construct(c, f);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  std::uint64_t seed = 1000;
  for (int step = 0; step < 12; ++step) {
    forest::ChangeSet m;
    if (step % 3 == 0) {
      m = forest::make_delete_batch(cur, 5, seed++);
    } else if (step % 3 == 1) {
      auto [reduced, batch] = forest::make_insert_batch(cur, 5, seed++);
      forest::ChangeSet del;
      del.remove_edges = batch.add_edges;
      updater.apply(del);
      cur = reduced;
      m = batch;
    } else {
      m = forest::make_vertex_batch(cur, 3, 3, seed++);
    }
    auto err = forest::check_change_set(cur, m);
    if (err) { std::printf("step %d: bad changeset: %s\n", step, err->c_str()); return 1; }
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);

    ContractionForest oracle(cur.capacity(), 4, 99);
    contract::construct(oracle, cur);
    if (!contract::structurally_equal(c, oracle)) {
      std::printf("DIVERGED at step %d (kind %d)\n", step, step % 3);
      std::printf("batch: V-=%zu E-=%zu V+=%zu E+=%zu\n",
                  m.remove_vertices.size(), m.remove_edges.size(),
                  m.add_vertices.size(), m.add_edges.size());
      for (auto v : m.remove_vertices) std::printf("  V- %u\n", v);
      for (auto e : m.remove_edges) std::printf("  E- (%u,%u)\n", e.child, e.parent);
      for (auto v : m.add_vertices) std::printf("  V+ %u\n", v);
      for (auto e : m.add_edges) std::printf("  E+ (%u,%u)\n", e.child, e.parent);
      diff(c, oracle);
      return 1;
    }
  }
  std::printf("all steps OK\n");
  return 0;
}
