// Tests for the batched parallel query APIs.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/batch_queries.hpp"

namespace parct::rc {
namespace {

class BatchQueries : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(BatchQueries, RootsAndConnectivityMatchScalar) {
  const std::size_t n = 5000;
  forest::Forest f = forest::random_forest(n, 6, 4, 0.4, 12);
  contract::ContractionForest c(n, 4, 3);
  contract::construct(c, f);
  RCForest rcf(c);

  hashing::SplitMix64 rng(4);
  std::vector<VertexId> qs(2000);
  std::vector<std::pair<VertexId, VertexId>> pairs(2000);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i] = static_cast<VertexId>(rng.next_below(n));
    pairs[i] = {static_cast<VertexId>(rng.next_below(n)),
                static_cast<VertexId>(rng.next_below(n))};
  }
  auto roots = batch_roots(rcf, qs);
  auto conn = batch_connected(rcf, pairs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(roots[i], forest::root_of(f, qs[i]));
    ASSERT_EQ(conn[i] != 0, forest::root_of(f, pairs[i].first) ==
                                forest::root_of(f, pairs[i].second));
  }
}

TEST_P(BatchQueries, WeightsAndPaths) {
  const std::size_t n = 2000;
  forest::Forest f = forest::build_tree(n, 4, 0.5, 8);
  contract::ContractionForest c(n, 4, 9);
  PathAggregate<long, PathPlus> path(c, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!f.is_root(v)) path.stage_edge_weight(v, 1);
  }
  contract::construct(c, f, &path);
  RCForest rcf(c);
  TreeAggregate<long> tree(rcf, std::vector<long>(n, 1));

  std::vector<VertexId> qs;
  for (VertexId v = 0; v < n; v += 7) qs.push_back(v);
  auto weights = batch_tree_weights(rcf, tree, qs);
  auto depths = batch_paths_to_root(path, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(weights[i], static_cast<long>(n));  // single tree
    ASSERT_EQ(depths[i],
              static_cast<long>(forest::depth(f, qs[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, BatchQueries, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

// Regression coverage for the bounds contract (the entry points used to
// walk garbage pointer chains on out-of-range ids): every batch query
// debug-asserts invalid ids and returns the documented sentinel in
// release builds.
class BatchQueryBounds : public ::testing::Test {
 protected:
  static constexpr std::size_t kPresent = 64;

  void SetUp() override {
    par::scheduler::initialize(1);  // death tests must stay single-threaded
    f_ = forest::build_tree(kPresent, 4, 0.5, 3, /*extra_capacity=*/4);
    c_ = std::make_unique<contract::ContractionForest>(f_.capacity(), 4, 5);
    path_ = std::make_unique<PathAggregate<long, PathPlus>>(*c_, 0);
    for (VertexId v = 0; v < kPresent; ++v) {
      if (!f_.is_root(v)) path_->stage_edge_weight(v, 1);
    }
    contract::construct(*c_, f_, path_.get());
    rcf_ = std::make_unique<RCForest>(*c_);
    agg_ = std::make_unique<TreeAggregate<long>>(
        *rcf_, std::vector<long>(f_.capacity(), 1));
  }

  forest::Forest f_{0};
  std::unique_ptr<contract::ContractionForest> c_;
  std::unique_ptr<PathAggregate<long, PathPlus>> path_;
  std::unique_ptr<RCForest> rcf_;
  std::unique_ptr<TreeAggregate<long>> agg_;
};

TEST_F(BatchQueryBounds, InvalidIdsAssertInDebugAndGetSentinelsInRelease) {
  const VertexId absent = static_cast<VertexId>(kPresent);  // in range
  const VertexId oob = static_cast<VertexId>(f_.capacity() + 100);
  for (const VertexId bad : {absent, oob}) {
    const std::vector<VertexId> qs = {bad};
    const std::vector<std::pair<VertexId, VertexId>> ps = {{0, bad}};
#ifdef NDEBUG
    EXPECT_EQ(batch_roots(*rcf_, qs)[0], kNoVertex);
    EXPECT_EQ(batch_connected(*rcf_, ps)[0], 0);
    EXPECT_EQ(batch_tree_weights(*rcf_, *agg_, qs)[0], 0);
    EXPECT_EQ(batch_paths_to_root(*path_, qs)[0], 0);
#else
    EXPECT_DEATH(batch_roots(*rcf_, qs), "out-of-range or absent");
    EXPECT_DEATH(batch_connected(*rcf_, ps), "out-of-range or absent");
    EXPECT_DEATH(batch_tree_weights(*rcf_, *agg_, qs),
                 "out-of-range or absent");
    EXPECT_DEATH(batch_paths_to_root(*path_, qs), "out-of-range or absent");
#endif
  }
  // Valid ids keep working alongside the checks.
  const std::vector<VertexId> ok = {0};
  EXPECT_EQ(batch_roots(*rcf_, ok)[0], forest::root_of(f_, 0));
}

TEST_F(BatchQueryBounds, MismatchedForestAggregatePairIsDebugAsserted) {
  // batch_tree_weights used to take (and silently ignore) the forest
  // argument; it now checks the aggregate is bound to that forest.
  contract::ContractionForest other(f_.capacity(), 4, 5);
  contract::construct(other, f_);
  RCForest other_rcf(other);
  const std::vector<VertexId> qs = {1};
#ifdef NDEBUG
  // Release: no check, but both structures describe the same forest, so
  // the answer is still defined here.
  EXPECT_EQ(batch_tree_weights(other_rcf, *agg_, qs)[0],
            static_cast<long>(kPresent));
#else
  EXPECT_DEATH(batch_tree_weights(other_rcf, *agg_, qs),
               "bound to a different RCForest");
#endif
}

}  // namespace
}  // namespace parct::rc
