// Tests for the batched parallel query APIs.
#include <gtest/gtest.h>

#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/batch_queries.hpp"

namespace parct::rc {
namespace {

class BatchQueries : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(BatchQueries, RootsAndConnectivityMatchScalar) {
  const std::size_t n = 5000;
  forest::Forest f = forest::random_forest(n, 6, 4, 0.4, 12);
  contract::ContractionForest c(n, 4, 3);
  contract::construct(c, f);
  RCForest rcf(c);

  hashing::SplitMix64 rng(4);
  std::vector<VertexId> qs(2000);
  std::vector<std::pair<VertexId, VertexId>> pairs(2000);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i] = static_cast<VertexId>(rng.next_below(n));
    pairs[i] = {static_cast<VertexId>(rng.next_below(n)),
                static_cast<VertexId>(rng.next_below(n))};
  }
  auto roots = batch_roots(rcf, qs);
  auto conn = batch_connected(rcf, pairs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(roots[i], forest::root_of(f, qs[i]));
    ASSERT_EQ(conn[i] != 0, forest::root_of(f, pairs[i].first) ==
                                forest::root_of(f, pairs[i].second));
  }
}

TEST_P(BatchQueries, WeightsAndPaths) {
  const std::size_t n = 2000;
  forest::Forest f = forest::build_tree(n, 4, 0.5, 8);
  contract::ContractionForest c(n, 4, 9);
  PathAggregate<long, PathPlus> path(c, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!f.is_root(v)) path.stage_edge_weight(v, 1);
  }
  contract::construct(c, f, &path);
  RCForest rcf(c);
  TreeAggregate<long> tree(rcf, std::vector<long>(n, 1));

  std::vector<VertexId> qs;
  for (VertexId v = 0; v < n; v += 7) qs.push_back(v);
  auto weights = batch_tree_weights(rcf, tree, qs);
  auto depths = batch_paths_to_root(path, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(weights[i], static_cast<long>(n));  // single tree
    ASSERT_EQ(depths[i],
              static_cast<long>(forest::depth(f, qs[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, BatchQueries, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct::rc
