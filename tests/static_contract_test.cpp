// Tests for the static Miller-Reif baseline.
#include <gtest/gtest.h>

#include <atomic>

#include "contraction/construct.hpp"
#include "parallel/scheduler.hpp"
#include "static_contraction/static_contract.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using static_contraction::static_contract;
using static_contraction::static_contract_sequential;
using static_contraction::StaticStats;

class StaticContractTest : public ::testing::TestWithParam<test::Shape> {};

TEST_P(StaticContractTest, ParallelMatchesSequential) {
  forest::Forest f = GetParam().build(3000, 11, 0);
  hashing::CoinSchedule c1(7), c2(7);
  const StaticStats a = static_contract(f, c1);
  const StaticStats b = static_contract_sequential(f, c2);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_live, b.total_live);
}

TEST_P(StaticContractTest, MatchesRecordingConstructionRoundCounts) {
  // Under the same coin schedule, static contraction and the recording
  // construction algorithm must walk through exactly the same forests.
  forest::Forest f = GetParam().build(2000, 13, 0);
  hashing::CoinSchedule coins(555);
  const StaticStats s = static_contract(f, coins);

  contract::ContractionForest c(f.capacity(), f.degree_bound(), 555);
  const contract::ConstructStats r = contract::construct(c, f);
  EXPECT_EQ(s.rounds, r.rounds);
  EXPECT_EQ(s.total_live, r.total_live);
}

TEST_P(StaticContractTest, HooksSeeEveryVertexExactlyOnce) {
  forest::Forest f = GetParam().build(1000, 3, 0);

  struct Counter : contract::EventHooks {
    std::atomic<std::uint64_t> fin{0}, rake{0}, comp{0};
    void on_finalize(std::uint32_t, VertexId) override { fin.fetch_add(1); }
    void on_rake(std::uint32_t, VertexId, VertexId) override {
      rake.fetch_add(1);
    }
    void on_compress(std::uint32_t, VertexId, VertexId, VertexId) override {
      comp.fetch_add(1);
    }
  } hooks;

  hashing::CoinSchedule coins(3);
  static_contract(f, coins, &hooks);
  EXPECT_EQ(hooks.fin.load() + hooks.rake.load() + hooks.comp.load(),
            f.num_present());
  EXPECT_EQ(hooks.fin.load(), f.roots().size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StaticContractTest, ::testing::ValuesIn(test::kShapes),
    [](const ::testing::TestParamInfo<test::Shape>& info) {
      return info.param.name;
    });

TEST(StaticContract, EmptyForest) {
  forest::Forest f(4, 4, 0);
  hashing::CoinSchedule coins(1);
  const StaticStats s = static_contract(f, coins);
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.total_live, 0u);
}

TEST(StaticContract, DeterministicAcrossWorkerCounts) {
  forest::Forest f = forest::build_tree(4000, 4, 0.6, 21);
  par::scheduler::initialize(4);
  hashing::CoinSchedule c1(9);
  const StaticStats a = static_contract(f, c1);
  par::scheduler::initialize(1);
  hashing::CoinSchedule c2(9);
  const StaticStats b = static_contract(f, c2);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_live, b.total_live);
}

}  // namespace
}  // namespace parct
