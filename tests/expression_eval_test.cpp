// Tests for expression evaluation via contraction replay, checked against
// a direct recursive evaluator.
#include <gtest/gtest.h>

#include <functional>
#include <cmath>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/expression_eval.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using rc::ExprNode;
using rc::ExpressionEvaluator;
using rc::Op;

double reference_eval(const forest::Forest& f,
                      const std::vector<ExprNode>& nodes, VertexId v) {
  if (nodes[v].op == Op::kLeaf) return nodes[v].value;
  double acc = nodes[v].op == Op::kMul ? 1.0 : 0.0;
  for (VertexId u : f.children(v)) {
    if (u == kNoVertex) continue;
    const double x = reference_eval(f, nodes, u);
    acc = nodes[v].op == Op::kMul ? acc * x : acc + x;
  }
  return acc;
}

// Random expression forest: internal nodes alternate ADD/MUL; leaves get
// small constants (to keep products tame).
std::vector<ExprNode> random_nodes(const forest::Forest& f,
                                   std::uint64_t seed) {
  hashing::SplitMix64 rng(seed);
  std::vector<ExprNode> nodes(f.capacity());
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    if (f.is_leaf(v)) {
      // Leaves near 1.0 keep products numerically tame on deep trees.
      nodes[v] = {Op::kLeaf, 0.5 + rng.next_double()};
    } else {
      nodes[v] = {rng.next_bool() ? Op::kAdd : Op::kMul, 0.0};
    }
  }
  return nodes;
}

TEST(ExpressionEval, SingleLeaf) {
  forest::Forest f(1, 4, 1);
  ContractionForest c(1, 4, 5);
  contract::construct(c, f);
  ExpressionEvaluator eval(c, {{Op::kLeaf, 7.5}});
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 7.5);
}

TEST(ExpressionEval, SimpleSum) {
  // 0 = 1 + 2 + 3 with leaves 2, 3, 4.
  forest::Forest f(4, 4, 4);
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 0);
  ContractionForest c(4, 4, 5);
  contract::construct(c, f);
  std::vector<ExprNode> nodes = {{Op::kAdd, 0},
                                 {Op::kLeaf, 2},
                                 {Op::kLeaf, 3},
                                 {Op::kLeaf, 4}};
  ExpressionEvaluator eval(c, nodes);
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 9.0);
}

TEST(ExpressionEval, NestedMulAdd) {
  // 0 = mul(1, 4); 1 = add(2, 3). Leaves: 2=5, 3=6, 4=2 -> (5+6)*2 = 22.
  forest::Forest f(5, 4, 5);
  f.link(1, 0);
  f.link(4, 0);
  f.link(2, 1);
  f.link(3, 1);
  ContractionForest c(5, 4, 9);
  contract::construct(c, f);
  std::vector<ExprNode> nodes = {{Op::kMul, 0},
                                 {Op::kAdd, 0},
                                 {Op::kLeaf, 5},
                                 {Op::kLeaf, 6},
                                 {Op::kLeaf, 2}};
  ExpressionEvaluator eval(c, nodes);
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 22.0);
}

TEST(ExpressionEval, DeepChainOfUnaryAdds) {
  // Chain exercises compress-path linear composition: value = leaf value.
  const std::size_t n = 200;
  forest::Forest f = forest::build_chain(n);
  ContractionForest c(n, 4, 13);
  contract::construct(c, f);
  std::vector<ExprNode> nodes(n, ExprNode{Op::kAdd, 0});
  nodes[n - 1] = {Op::kLeaf, 3.25};
  ExpressionEvaluator eval(c, nodes);
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 3.25);
}

TEST(ExpressionEval, DeepChainOfScaling) {
  // Unary MUL nodes with a pre-raked... not possible without second child,
  // so use a caterpillar: each internal node multiplies a constant leaf
  // with the rest of the chain.
  const std::size_t n = 31;  // 15 internal, 16 leaves
  forest::Forest f(2 * n, 4, 2 * n);
  // Internal spine 0..n-1; leaf n+i under spine i.
  for (VertexId i = 1; i < n; ++i) f.link(i, i - 1);
  for (VertexId i = 0; i + 1 < n; ++i) f.link(n + i, i);
  ContractionForest c(2 * n, 4, 17);
  contract::construct(c, f);
  std::vector<ExprNode> nodes(2 * n);
  for (VertexId i = 0; i + 1 < n; ++i) nodes[i] = {Op::kMul, 0};
  nodes[n - 1] = {Op::kLeaf, 1.0};
  for (VertexId i = 0; i + 1 < n; ++i) nodes[n + i] = {Op::kLeaf, 2.0};
  ExpressionEvaluator eval(c, nodes);
  EXPECT_DOUBLE_EQ(eval.value_at_root(0),
                   std::pow(2.0, static_cast<double>(n - 1)));
}

TEST(ExpressionEval, RandomTreesMatchRecursiveReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    forest::Forest f = forest::build_tree(500, 4, 0.4, seed);
    ContractionForest c(f.capacity(), 4, seed * 3);
    contract::construct(c, f);
    auto nodes = random_nodes(f, seed);
    ExpressionEvaluator eval(c, nodes);
    const double expected = reference_eval(f, nodes, 0);
    const double got = eval.value_at_root(0);
    EXPECT_NEAR(got, expected, std::abs(expected) * 1e-9 + 1e-9)
        << "seed " << seed;
  }
}

TEST(ExpressionEval, ReEvaluateAfterLeafUpdate) {
  forest::Forest f(4, 4, 4);
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 0);
  ContractionForest c(4, 4, 5);
  contract::construct(c, f);
  ExpressionEvaluator eval(c, {{Op::kAdd, 0},
                               {Op::kLeaf, 1},
                               {Op::kLeaf, 2},
                               {Op::kLeaf, 3}});
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 6.0);
  eval.set_leaf(2, 10);
  eval.evaluate();
  EXPECT_DOUBLE_EQ(eval.value_at_root(0), 14.0);
}

TEST(ExpressionEval, ReEvaluateAfterStructuralUpdate) {
  // Sum tree; cut a subtree off and re-evaluate.
  forest::Forest f = forest::build_balanced(13, 3);
  ContractionForest c(13, 3, 21);
  contract::construct(c, f);
  std::vector<ExprNode> nodes(13);
  for (VertexId v = 0; v < 13; ++v) {
    nodes[v] = f.is_leaf(v) ? ExprNode{Op::kLeaf, 1.0}
                            : ExprNode{Op::kAdd, 0};
  }
  ExpressionEvaluator eval(c, nodes);
  const double before = eval.value_at_root(0);

  forest::ChangeSet m;
  m.del_edge(1, 0);  // detach subtree rooted at 1
  contract::modify_contraction(c, m);
  eval.evaluate();
  const double detached = eval.value_at_root(1);
  EXPECT_DOUBLE_EQ(eval.value_at_root(0) + detached, before);
}

}  // namespace
}  // namespace parct
