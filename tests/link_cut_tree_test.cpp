// Tests for the sequential Link-Cut Tree baseline, including randomized
// cross-checking against the plain Forest representation.
#include <gtest/gtest.h>

#include "baseline/link_cut_tree.hpp"
#include "forest/forest.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"

namespace parct::baseline {
namespace {

TEST(LinkCutTree, SingletonsAreTheirOwnRoots) {
  LinkCutTree lct(5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(lct.find_root(v), v);
    EXPECT_EQ(lct.depth(v), 0u);
    EXPECT_TRUE(lct.is_root(v));
  }
  EXPECT_FALSE(lct.connected(0, 1));
}

TEST(LinkCutTree, LinkThenQuery) {
  LinkCutTree lct(6);
  lct.link(1, 0);
  lct.link(2, 1);
  lct.link(3, 1);
  lct.link(5, 4);
  EXPECT_EQ(lct.find_root(3), 0u);
  EXPECT_EQ(lct.find_root(2), 0u);
  EXPECT_EQ(lct.find_root(5), 4u);
  EXPECT_TRUE(lct.connected(2, 3));
  EXPECT_FALSE(lct.connected(2, 5));
  EXPECT_EQ(lct.depth(2), 2u);
  EXPECT_EQ(lct.depth(0), 0u);
}

TEST(LinkCutTree, CutSplits) {
  LinkCutTree lct(6);
  for (VertexId v = 1; v < 6; ++v) lct.link(v, v - 1);  // chain
  EXPECT_EQ(lct.depth(5), 5u);
  lct.cut(3);
  EXPECT_EQ(lct.find_root(5), 3u);
  EXPECT_EQ(lct.find_root(2), 0u);
  EXPECT_FALSE(lct.connected(2, 3));
  EXPECT_EQ(lct.depth(5), 2u);
  lct.link(3, 2);  // relink
  EXPECT_TRUE(lct.connected(0, 5));
  EXPECT_EQ(lct.depth(5), 5u);
}

TEST(LinkCutTree, DeepChainOperations) {
  const std::size_t n = 20000;
  LinkCutTree lct(n);
  for (VertexId v = 1; v < n; ++v) lct.link(v, v - 1);
  EXPECT_EQ(lct.find_root(n - 1), 0u);
  EXPECT_EQ(lct.depth(n - 1), n - 1);
  lct.cut(n / 2);
  EXPECT_EQ(lct.find_root(n - 1), n / 2);
}

TEST(LinkCutTree, MirrorsForestUnderRandomOps) {
  const std::size_t n = 2000;
  forest::Forest f(n, 8, n);
  LinkCutTree lct(n);
  hashing::SplitMix64 rng(12345);

  std::vector<VertexId> non_roots;
  for (int op = 0; op < 20000; ++op) {
    const bool do_cut = !non_roots.empty() && rng.next_below(100) < 40;
    if (do_cut) {
      const std::size_t k = rng.next_below(non_roots.size());
      const VertexId c = non_roots[k];
      non_roots[k] = non_roots.back();
      non_roots.pop_back();
      f.cut(c);
      lct.cut(c);
    } else {
      const VertexId c = static_cast<VertexId>(rng.next_below(n));
      const VertexId p = static_cast<VertexId>(rng.next_below(n));
      if (!f.is_root(c) || c == p) continue;
      if (forest::root_of(f, p) == c) continue;  // would create a cycle
      if (f.degree(p) >= f.degree_bound()) continue;
      f.link(c, p);
      lct.link(c, p);
      non_roots.push_back(c);
    }
    if (op % 500 == 0) {
      for (int q = 0; q < 50; ++q) {
        const VertexId v = static_cast<VertexId>(rng.next_below(n));
        ASSERT_EQ(lct.find_root(v), forest::root_of(f, v))
            << "op " << op << " vertex " << v;
        ASSERT_EQ(lct.depth(v), forest::depth(f, v));
      }
    }
  }
}

}  // namespace
}  // namespace parct::baseline
