// Tests for contraction-structure serialization: round-trip identity and,
// crucially, that a loaded structure keeps updating correctly (same coin
// schedule) — dynamic updates on the loaded copy must equal updates on the
// original. The aggregate section round-trips randomized forests with a
// bound TreeAggregate (save_aggregate/load_aggregate) and checks that the
// reloaded (structure, aggregate) pair repairs incrementally like the
// original.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/hooks.hpp"
#include "contraction/serialize.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::contract {
namespace {

TEST(Serialize, RoundTripIdentity) {
  forest::Forest f = forest::build_tree(700, 4, 0.5, 3);
  ContractionForest c(f.capacity(), 4, 2024);
  construct(c, f);

  std::stringstream buf;
  save(c, buf);
  ContractionForest loaded = load(buf);

  EXPECT_EQ(loaded.capacity(), c.capacity());
  EXPECT_EQ(loaded.degree_bound(), c.degree_bound());
  EXPECT_EQ(loaded.seed(), c.seed());
  EXPECT_TRUE(structurally_equal(c, loaded));
  EXPECT_FALSE(check_valid(loaded, f).has_value());
}

TEST(Serialize, EmptyStructure) {
  ContractionForest c(16, 4, 5);
  std::stringstream buf;
  save(c, buf);
  ContractionForest loaded = load(buf);
  EXPECT_EQ(loaded.capacity(), 16u);
  EXPECT_TRUE(structurally_equal(c, loaded));
}

TEST(Serialize, LoadedStructureUpdatesIdentically) {
  forest::Forest full = forest::build_tree(900, 4, 0.6, 7, 8);
  auto [initial, batch] = forest::make_insert_batch(full, 25, 11);

  ContractionForest original(initial.capacity(), 4, 777);
  construct(original, initial);

  std::stringstream buf;
  save(original, buf);
  ContractionForest loaded = load(buf);

  modify_contraction(original, batch);
  modify_contraction(loaded, batch);
  EXPECT_TRUE(structurally_equal(original, loaded));
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buf("definitely not a contraction structure");
  EXPECT_THROW(load(buf), std::runtime_error);
}

TEST(SerializeAggregate, RandomForestRoundTrip) {
  // Randomized forest shapes x random weights: the reloaded (structure,
  // aggregate) pair must answer every tree-weight query like the original.
  for (const std::uint64_t seed : {3u, 19u, 58u}) {
    const std::size_t n = 400 + 150 * seed;
    forest::Forest f = forest::random_forest(n, 5, 4, 0.4, seed);
    ContractionForest c(n, 4, 900 + seed);
    construct(c, f);
    rc::RCForest rcf(c);
    hashing::SplitMix64 rng(seed * 13 + 1);
    std::vector<long> w(n);
    for (long& x : w) x = static_cast<long>(rng.next_below(1000));
    rc::TreeAggregate<long> agg(rcf, w);

    std::stringstream sbuf, abuf;
    save(c, sbuf);
    rc::save_aggregate(agg, abuf);

    ContractionForest lc = load(sbuf);
    rc::RCForest lrcf(lc);
    rc::TreeAggregate<long> lagg = rc::load_aggregate<long>(lrcf, abuf);

    ASSERT_EQ(lagg.weights(), agg.weights()) << "seed " << seed;
    ASSERT_EQ(lagg.accumulators(), agg.accumulators()) << "seed " << seed;
    for (VertexId v = 0; v < n; ++v) {
      if (!f.present(v)) continue;
      ASSERT_EQ(lagg.tree_weight(v), agg.tree_weight(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(SerializeAggregate, LoadedPairRepairsIncrementally) {
  // The loaded copy is live, not a snapshot: dynamic updates with the
  // incremental prepare_update/refresh/apply_update repair must track the
  // original exactly (same coin schedule, same weights).
  const std::size_t n = 800;
  forest::Forest f = forest::random_forest(n, 6, 4, 0.45, 42);
  ContractionForest c(n, 4, 4242);
  construct(c, f);
  rc::RCForest rcf(c);
  hashing::SplitMix64 rng(99);
  std::vector<long> w(n);
  for (long& x : w) x = static_cast<long>(rng.next_below(50));
  rc::TreeAggregate<long> agg(rcf, w);

  std::stringstream sbuf, abuf;
  save(c, sbuf);
  rc::save_aggregate(agg, abuf);
  ContractionForest lc = load(sbuf);
  rc::RCForest lrcf(lc);
  rc::TreeAggregate<long> lagg = rc::load_aggregate<long>(lrcf, abuf);

  DynamicUpdater upd(c), lupd(lc);
  forest::Forest cur = f;
  for (int step = 0; step < 5; ++step) {
    forest::ChangeSet m = forest::make_delete_batch(cur, 5, 500 + step);
    cur = forest::apply_change_set(cur, m);
    auto apply_and_repair = [&m](DynamicUpdater& u, rc::RCForest& r,
                                 rc::TreeAggregate<long>& a) {
      contract::TouchedRecorder touched;
      u.apply(m, &touched);
      std::vector<VertexId>& tv = touched.vertices();
      tv.insert(tv.end(), m.remove_vertices.begin(),
                m.remove_vertices.end());
      a.prepare_update(tv);
      r.refresh(tv);
      a.apply_update();
    };
    apply_and_repair(upd, rcf, agg);
    apply_and_repair(lupd, lrcf, lagg);
    ASSERT_TRUE(structurally_equal(c, lc)) << "step " << step;
    ASSERT_EQ(lagg.accumulators(), agg.accumulators()) << "step " << step;
  }
}

TEST(SerializeAggregate, RejectsMismatchAndGarbage) {
  forest::Forest f = forest::build_tree(120, 4, 0.5, 6);
  ContractionForest c(f.capacity(), 4, 8);
  construct(c, f);
  rc::RCForest rcf(c);
  rc::TreeAggregate<long> agg(rcf, std::vector<long>(f.capacity(), 1));

  std::stringstream garbage("not an aggregate");
  EXPECT_THROW(rc::load_aggregate<long>(rcf, garbage), std::runtime_error);

  // Element-type mismatch: saved as long, loaded as int.
  std::stringstream typed;
  rc::save_aggregate(agg, typed);
  EXPECT_THROW(rc::load_aggregate<int>(rcf, typed), std::runtime_error);

  // Capacity mismatch: bound forest differs from the saved table.
  forest::Forest g = forest::build_tree(60, 4, 0.5, 6);
  ContractionForest c2(g.capacity(), 4, 8);
  construct(c2, g);
  rc::RCForest rcf2(c2);
  std::stringstream sized;
  rc::save_aggregate(agg, sized);
  EXPECT_THROW(rc::load_aggregate<long>(rcf2, sized), std::runtime_error);

  // Truncation mid-table.
  std::stringstream full;
  rc::save_aggregate(agg, full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(rc::load_aggregate<long>(rcf, cut), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  forest::Forest f = forest::build_tree(100, 4, 0.5, 1);
  ContractionForest c(f.capacity(), 4, 2);
  construct(c, f);
  std::stringstream buf;
  save(c, buf);
  const std::string full_bytes = buf.str();
  std::stringstream cut(full_bytes.substr(0, full_bytes.size() / 2));
  EXPECT_THROW(load(cut), std::runtime_error);
}

// Regression helpers for the corrupt-header hardening: a saved structure
// with one header field overwritten in place.
namespace {

std::string saved_bytes(const ContractionForest& c) {
  std::stringstream buf;
  save(c, buf);
  return buf.str();
}

void poke(std::string& bytes, std::size_t offset, std::uint64_t value,
          std::size_t size) {
  ASSERT_LE(offset + size, bytes.size());
  for (std::size_t i = 0; i < size; ++i) {
    bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

// Header layout: magic u64 @0, version u32 @8, capacity u64 @12,
// degree_bound u32 @20, seed u64 @24; first vertex duration u32 @32.
constexpr std::size_t kCapacityOffset = 12;
constexpr std::size_t kFirstDurationOffset = 32;

}  // namespace

TEST(Serialize, RejectsHugeDeclaredCapacity) {
  // Regression: load() used to allocate the declared capacity up front, so
  // a corrupt header drove a multi-GB allocation before truncation was
  // noticed. An insane capacity must be rejected outright...
  forest::Forest f = forest::build_tree(64, 4, 0.5, 9);
  ContractionForest c(f.capacity(), 4, 11);
  construct(c, f);
  std::string bytes = saved_bytes(c);
  poke(bytes, kCapacityOffset, std::uint64_t(1) << 60, 8);
  std::stringstream huge(bytes);
  EXPECT_THROW(load(huge), std::runtime_error);

  // ...and a merely-lying capacity (within bounds but unbacked by bytes)
  // must hit the truncation path without committing the memory first.
  poke(bytes, kCapacityOffset, std::uint64_t(1) << 30, 8);
  std::stringstream lying(bytes);
  EXPECT_THROW(load(lying), std::runtime_error);
}

TEST(Serialize, RejectsInsaneVertexDuration) {
  // Regression: duration = UINT32_MAX wrapped max_rounds + 1 to 0 in
  // coins().ensure_rounds and pre-allocated UINT32_MAX round records.
  forest::Forest f = forest::build_tree(64, 4, 0.5, 9);
  ContractionForest c(f.capacity(), 4, 11);
  construct(c, f);
  std::string bytes = saved_bytes(c);
  poke(bytes, kFirstDurationOffset, 0xFFFFFFFFull, 4);
  std::stringstream wrapped(bytes);
  EXPECT_THROW(load(wrapped), std::runtime_error);

  // Large-but-not-wrapping is still beyond any real contraction depth.
  poke(bytes, kFirstDurationOffset, (1ull << 20) + 1, 4);
  std::stringstream deep(bytes);
  EXPECT_THROW(load(deep), std::runtime_error);
}

namespace {

// A streambuf that accepts nothing — every write fails, like a full disk
// surfacing through the stream state.
class FailingBuf : public std::streambuf {
 protected:
  int_type overflow(int_type) override { return traits_type::eof(); }
  std::streamsize xsputn(const char*, std::streamsize) override { return 0; }
};

}  // namespace

TEST(Serialize, SaveReportsStreamWriteFailure) {
  // Regression: save() never checked the stream, so a failed write
  // produced a silently truncated checkpoint.
  forest::Forest f = forest::build_tree(32, 4, 0.5, 9);
  ContractionForest c(f.capacity(), 4, 11);
  construct(c, f);
  FailingBuf sink;
  std::ostream out(&sink);
  EXPECT_THROW(save(c, out), std::runtime_error);
}

TEST(SerializeAggregate, SaveReportsStreamWriteFailure) {
  forest::Forest f = forest::build_tree(32, 4, 0.5, 9);
  ContractionForest c(f.capacity(), 4, 11);
  construct(c, f);
  rc::RCForest rcf(c);
  rc::TreeAggregate<long> agg(rcf, std::vector<long>(f.capacity(), 1));
  FailingBuf sink;
  std::ostream out(&sink);
  EXPECT_THROW(rc::save_aggregate(agg, out), std::runtime_error);
}

}  // namespace
}  // namespace parct::contract
