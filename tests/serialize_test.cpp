// Tests for contraction-structure serialization: round-trip identity and,
// crucially, that a loaded structure keeps updating correctly (same coin
// schedule) — dynamic updates on the loaded copy must equal updates on the
// original.
#include <gtest/gtest.h>

#include <sstream>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/serialize.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"

namespace parct::contract {
namespace {

TEST(Serialize, RoundTripIdentity) {
  forest::Forest f = forest::build_tree(700, 4, 0.5, 3);
  ContractionForest c(f.capacity(), 4, 2024);
  construct(c, f);

  std::stringstream buf;
  save(c, buf);
  ContractionForest loaded = load(buf);

  EXPECT_EQ(loaded.capacity(), c.capacity());
  EXPECT_EQ(loaded.degree_bound(), c.degree_bound());
  EXPECT_EQ(loaded.seed(), c.seed());
  EXPECT_TRUE(structurally_equal(c, loaded));
  EXPECT_FALSE(check_valid(loaded, f).has_value());
}

TEST(Serialize, EmptyStructure) {
  ContractionForest c(16, 4, 5);
  std::stringstream buf;
  save(c, buf);
  ContractionForest loaded = load(buf);
  EXPECT_EQ(loaded.capacity(), 16u);
  EXPECT_TRUE(structurally_equal(c, loaded));
}

TEST(Serialize, LoadedStructureUpdatesIdentically) {
  forest::Forest full = forest::build_tree(900, 4, 0.6, 7, 8);
  auto [initial, batch] = forest::make_insert_batch(full, 25, 11);

  ContractionForest original(initial.capacity(), 4, 777);
  construct(original, initial);

  std::stringstream buf;
  save(original, buf);
  ContractionForest loaded = load(buf);

  modify_contraction(original, batch);
  modify_contraction(loaded, batch);
  EXPECT_TRUE(structurally_equal(original, loaded));
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buf("definitely not a contraction structure");
  EXPECT_THROW(load(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  forest::Forest f = forest::build_tree(100, 4, 0.5, 1);
  ContractionForest c(f.capacity(), 4, 2);
  construct(c, f);
  std::stringstream buf;
  save(c, buf);
  const std::string full_bytes = buf.str();
  std::stringstream cut(full_bytes.substr(0, full_bytes.size() / 2));
  EXPECT_THROW(load(cut), std::runtime_error);
}

}  // namespace
}  // namespace parct::contract
