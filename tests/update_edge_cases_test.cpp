// Additional dynamic-update edge cases: vertex-id recycling across
// batches, repeated churn on the same region, classic one-edge-at-a-time
// usage mirrored against a Link-Cut Tree, and degenerate change sets.
#include <gtest/gtest.h>

#include "baseline/link_cut_tree.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "rc/rc_forest.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;

void expect_matches_scratch(const ContractionForest& c, const Forest& cur,
                            std::uint64_t seed) {
  ContractionForest oracle(cur.capacity(), cur.degree_bound(), seed);
  contract::construct(oracle, cur);
  ASSERT_TRUE(contract::structurally_equal(c, oracle));
}

TEST(UpdateEdgeCases, VertexIdRecycledAcrossBatches) {
  // Delete a vertex in one batch, re-add the SAME id later (possibly in a
  // different place). Stale per-round records from its first life must not
  // leak into the second.
  Forest f = forest::build_chain(30);
  ContractionForest c(30, 4, 500);
  contract::construct(c, f);
  DynamicUpdater updater(c);

  ChangeSet kill;
  kill.del_vertex(29).del_edge(29, 28);
  updater.apply(kill);
  Forest cur = forest::apply_change_set(f, kill);
  expect_matches_scratch(c, cur, 500);

  ChangeSet revive;
  revive.ins_vertex(29).ins_edge(29, 5);  // same id, new location
  updater.apply(revive);
  cur = forest::apply_change_set(cur, revive);
  expect_matches_scratch(c, cur, 500);

  // And once more, moved again.
  ChangeSet again;
  again.del_vertex(29).del_edge(29, 5);
  updater.apply(again);
  cur = forest::apply_change_set(cur, again);
  ChangeSet again2;
  again2.ins_vertex(29).ins_edge(29, 0);
  updater.apply(again2);
  cur = forest::apply_change_set(cur, again2);
  expect_matches_scratch(c, cur, 500);
}

TEST(UpdateEdgeCases, RepeatedChurnOnSameRegion) {
  // Hammer the same few edges over many batches; durations and records
  // must stay exactly in sync with from-scratch reconstruction.
  Forest f = forest::build_tree(200, 4, 0.6, 12);
  ContractionForest c(200, 4, 321);
  contract::construct(c, f);
  DynamicUpdater updater(c);
  Forest cur = f;

  const VertexId hot = 100;
  for (int round = 0; round < 10; ++round) {
    ChangeSet m;
    const VertexId old_parent = cur.parent(hot);
    const VertexId new_parent = (round % 2 == 0) ? 3 : old_parent;
    if (new_parent == old_parent) {
      // Detach to root and back later.
      m.del_edge(hot, old_parent);
    } else {
      if (cur.is_root(hot)) {
        m.ins_edge(hot, new_parent);
      } else {
        m.del_edge(hot, old_parent).ins_edge(hot, new_parent);
      }
    }
    if (forest::check_change_set(cur, m).has_value()) continue;
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);
    expect_matches_scratch(c, cur, 321);
  }
}

TEST(UpdateEdgeCases, ClassicSingleEdgeUsageMirrorsLct) {
  // Use the structure the way sequential dynamic-trees structures are
  // used: one link or cut at a time, with interleaved connectivity
  // queries, checked against a Link-Cut Tree.
  const std::size_t n = 300;
  Forest cur(n, 8, n);
  ContractionForest c(n, 8, 777);
  contract::construct(c, cur);
  DynamicUpdater updater(c);
  baseline::LinkCutTree lct(n);

  hashing::SplitMix64 rng(2);
  std::vector<VertexId> non_roots;
  for (int op = 0; op < 400; ++op) {
    if (!non_roots.empty() && rng.next_below(100) < 40) {
      const std::size_t k = rng.next_below(non_roots.size());
      const VertexId v = non_roots[k];
      non_roots[k] = non_roots.back();
      non_roots.pop_back();
      ChangeSet m;
      m.del_edge(v, cur.parent(v));
      updater.apply(m);
      cur = forest::apply_change_set(cur, m);
      lct.cut(v);
    } else {
      const VertexId child = static_cast<VertexId>(rng.next_below(n));
      const VertexId parent = static_cast<VertexId>(rng.next_below(n));
      if (child == parent || !cur.is_root(child)) continue;
      if (forest::root_of(cur, parent) == child) continue;
      if (cur.degree(parent) >= cur.degree_bound()) continue;
      ChangeSet m;
      m.ins_edge(child, parent);
      updater.apply(m);
      cur = forest::apply_change_set(cur, m);
      lct.link(child, parent);
      non_roots.push_back(child);
    }
    if (op % 20 == 0) {
      rc::RCForest rcf(c);
      for (int q = 0; q < 25; ++q) {
        const VertexId a = static_cast<VertexId>(rng.next_below(n));
        const VertexId b = static_cast<VertexId>(rng.next_below(n));
        ASSERT_EQ(rcf.connected(a, b), lct.connected(a, b))
            << "op " << op;
      }
    }
  }
  expect_matches_scratch(c, cur, 777);
}

TEST(UpdateEdgeCases, BatchTouchingEveryVertexOnce) {
  // Star -> matching: every vertex's configuration changes at round 0.
  const std::size_t n = 9;  // 8 leaves, at the compile-time degree cap
  Forest f(n, 8, n);
  for (VertexId v = 1; v < n; ++v) f.link(v, 0);
  ChangeSet m;
  for (VertexId v = 1; v < n; ++v) m.del_edge(v, 0);
  for (VertexId v = 2; v < n; v += 2) m.ins_edge(v, v - 1);
  ASSERT_FALSE(forest::check_change_set(f, m).has_value());
  ContractionForest c(n, 8, 9);
  contract::construct(c, f);
  contract::modify_contraction(c, m);
  Forest cur = forest::apply_change_set(f, m);
  expect_matches_scratch(c, cur, 9);
}

TEST(UpdateEdgeCases, DegreeBoundSaturatedParent) {
  // Fill a parent's slots, then churn children in and out: slot reuse in
  // round-0 records must stay consistent.
  Forest f(10, 3, 10);
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 0);  // 0 saturated at degree bound 3
  ContractionForest c(10, 3, 4);
  contract::construct(c, f);
  DynamicUpdater updater(c);
  Forest cur = f;

  ChangeSet m1;
  m1.del_edge(2, 0).ins_edge(4, 0);  // swap a child within the batch
  updater.apply(m1);
  cur = forest::apply_change_set(cur, m1);
  expect_matches_scratch(c, cur, 4);

  ChangeSet m2;
  m2.del_edge(4, 0).del_edge(1, 0).ins_edge(5, 0).ins_edge(6, 0);
  updater.apply(m2);
  cur = forest::apply_change_set(cur, m2);
  expect_matches_scratch(c, cur, 4);
}

TEST(UpdateEdgeCases, OverflowingInsertThrows) {
  Forest f(5, 2, 5);
  f.link(1, 0);
  f.link(2, 0);
  ContractionForest c(5, 2, 4);
  contract::construct(c, f);
  ChangeSet m;
  m.ins_edge(3, 0);  // no free slot at the degree bound
  EXPECT_THROW(contract::modify_contraction(c, m), std::runtime_error);
}

TEST(UpdateEdgeCases, DuplicateOperationsInOneBatchAreRejected) {
  Forest f = forest::build_chain(10);

  ChangeSet dup_eminus;
  dup_eminus.del_edge(5, 4).del_edge(5, 4);
  auto err = forest::check_change_set(f, dup_eminus);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "duplicate edge in E-");

  ChangeSet dup_eplus;
  dup_eplus.del_edge(5, 4).ins_edge(5, 2).ins_edge(5, 2);
  err = forest::check_change_set(f, dup_eplus);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "duplicate edge in E+");

  ChangeSet two_parents;
  two_parents.del_edge(5, 4).ins_edge(5, 1).ins_edge(5, 2);
  err = forest::check_change_set(f, two_parents);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "E+ gives a vertex two parents");

  ChangeSet dup_vminus;
  dup_vminus.del_vertex(9).del_vertex(9).del_edge(9, 8);
  err = forest::check_change_set(f, dup_vminus);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "duplicate vertex in V-");
}

TEST(UpdateEdgeCases, DeleteThenReinsertSameEdgeInOneBatch) {
  // E- ∩ E+ on the very same edge: deletions apply first, so the edge
  // bounces out and back within one batch. Valid, and a no-op on the
  // forest — but the update must still agree with from-scratch
  // construction afterwards.
  Forest f = forest::build_tree(60, 4, 0.5, 7);
  ContractionForest c(60, 4, 88);
  contract::construct(c, f);
  DynamicUpdater updater(c);

  VertexId child = kNoVertex;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v) && !f.is_root(v)) {
      child = v;
      break;
    }
  }
  ASSERT_NE(child, kNoVertex);

  ChangeSet bounce;
  bounce.del_edge(child, f.parent(child)).ins_edge(child, f.parent(child));
  ASSERT_FALSE(forest::check_change_set(f, bounce).has_value());
  updater.apply(bounce);
  Forest cur = forest::apply_change_set(f, bounce);
  EXPECT_EQ(cur.parent(child), f.parent(child));
  expect_matches_scratch(c, cur, 88);

  // Mixed batch: one edge bounces, another vertex genuinely moves under
  // the bouncing child (which must have a free child slot, and must not be
  // in the mover's subtree).
  const auto is_ancestor = [&](VertexId anc, VertexId v) {
    while (!cur.is_root(v)) {
      v = cur.parent(v);
      if (v == anc) return true;
    }
    return false;
  };
  VertexId mover = kNoVertex;
  if (cur.degree(child) >= cur.degree_bound()) {
    // Pick a different bouncing child with a free slot.
    for (VertexId v = 0; v < cur.capacity(); ++v) {
      if (cur.present(v) && !cur.is_root(v) &&
          cur.degree(v) < cur.degree_bound()) {
        child = v;
        break;
      }
    }
  }
  ASSERT_LT(cur.degree(child), cur.degree_bound());
  for (VertexId v = 0; v < cur.capacity(); ++v) {
    if (cur.present(v) && !cur.is_root(v) && v != child &&
        cur.parent(v) != child && !is_ancestor(v, child)) {
      mover = v;
      break;
    }
  }
  ASSERT_NE(mover, kNoVertex);
  ChangeSet mixed;
  mixed.del_edge(child, cur.parent(child))
      .ins_edge(child, cur.parent(child))
      .del_edge(mover, cur.parent(mover))
      .ins_edge(mover, child);
  ASSERT_FALSE(forest::check_change_set(cur, mixed).has_value());
  updater.apply(mixed);
  cur = forest::apply_change_set(cur, mixed);
  EXPECT_EQ(cur.parent(mover), child);
  expect_matches_scratch(c, cur, 88);
}

TEST(UpdateEdgeCases, BatchesTouchingTheForestRoot) {
  // Root-centric churn: shed all the root's children (they become roots),
  // delete the old root outright, then crown one orphan the parent of the
  // others — three batches, each hitting the top of the tree.
  Forest f = forest::build_tree(40, 4, 0.4, 3);
  ContractionForest c(40, 4, 55);
  contract::construct(c, f);
  DynamicUpdater updater(c);
  Forest cur = f;

  const std::vector<VertexId> roots = cur.roots();
  ASSERT_EQ(roots.size(), 1u);
  const VertexId root = roots[0];
  std::vector<VertexId> orphans;
  ChangeSet shed;
  for (VertexId u : cur.children(root)) {
    if (u != kNoVertex) {
      shed.del_edge(u, root);
      orphans.push_back(u);
    }
  }
  ASSERT_GE(orphans.size(), 2u);
  ASSERT_FALSE(forest::check_change_set(cur, shed).has_value());
  updater.apply(shed);
  cur = forest::apply_change_set(cur, shed);
  EXPECT_TRUE(cur.is_root(orphans[0]));
  expect_matches_scratch(c, cur, 55);

  ChangeSet behead;
  behead.del_vertex(root);  // now isolated: no incident edges left
  ASSERT_FALSE(forest::check_change_set(cur, behead).has_value());
  updater.apply(behead);
  cur = forest::apply_change_set(cur, behead);
  expect_matches_scratch(c, cur, 55);

  ChangeSet crown;
  // Crown the orphan with the most free child slots.
  VertexId king = orphans[0];
  for (const VertexId v : orphans) {
    if (cur.degree(v) < cur.degree(king)) king = v;
  }
  int slots = cur.degree_bound() - cur.degree(king);
  ASSERT_GT(slots, 0);
  VertexId crowned = kNoVertex;
  for (const VertexId v : orphans) {
    if (v == king || slots == 0) continue;
    crown.ins_edge(v, king);
    if (crowned == kNoVertex) crowned = v;
    --slots;
  }
  ASSERT_NE(crowned, kNoVertex);
  ASSERT_FALSE(forest::check_change_set(cur, crown).has_value());
  updater.apply(crown);
  cur = forest::apply_change_set(cur, crown);
  EXPECT_EQ(forest::root_of(cur, crowned), king);
  expect_matches_scratch(c, cur, 55);
}

TEST(UpdateEdgeCases, LargeIdVertexGrowsUniverse) {
  Forest f = forest::build_chain(20);
  ContractionForest c(20, 4, 4);
  contract::construct(c, f);
  ChangeSet m;
  m.ins_vertex(1000).ins_edge(1000, 19);
  contract::modify_contraction(c, m);
  EXPECT_GE(c.capacity(), 1001u);
  EXPECT_GT(c.duration(1000), 0u);

  Forest cur = forest::apply_change_set(f, m);
  ContractionForest oracle(cur.capacity(), 4, 4);
  contract::construct(oracle, cur);
  EXPECT_TRUE(contract::structurally_equal(c, oracle));
}

}  // namespace
}  // namespace parct
