// Larger-scale from-scratch equivalence and invariants: the oracle sweep
// at n = 30000 with batch sizes spanning the m << n and m ~ n regimes,
// plus space/round sanity at scale. (The exhaustive small-scale sweeps
// live in dynamic_update_test.cpp; these catch size-dependent bugs —
// epoch handling, capacity growth, allocator interactions.)
#include <gtest/gtest.h>

#include <cmath>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;

struct LargeCase {
  const char* shape;
  std::size_t batch;
};

class LargeScale : public ::testing::TestWithParam<LargeCase> {};

TEST_P(LargeScale, InsertAndDeleteEquivalence) {
  const std::size_t n = 30000;
  const LargeCase& p = GetParam();
  Forest full = std::string(p.shape) == "binary"
                    ? forest::build_perfect_binary((1 << 15) - 1)
                    : forest::build_tree(
                          n, 4,
                          std::string(p.shape) == "cf10" ? 1.0 : 0.6, 71);

  // Insert direction.
  {
    auto [initial, m] = forest::make_insert_batch(full, p.batch, 5);
    ContractionForest c(full.capacity(), full.degree_bound(), 901);
    contract::construct(c, initial);
    DynamicUpdater updater(c);
    const contract::UpdateStats stats = updater.apply(m);
    ContractionForest oracle(full.capacity(), full.degree_bound(), 901);
    contract::construct(oracle, full);
    ASSERT_TRUE(contract::structurally_equal(c, oracle));
    // Work sanity: affected region bounded well below full reconstruction
    // for small batches (Theorem 2 with slack 32).
    const double bound =
        static_cast<double>(p.batch) *
        std::max(1.0, std::log2(static_cast<double>(n + p.batch) /
                                p.batch));
    EXPECT_LT(static_cast<double>(stats.total_affected), 32 * bound + 256);
  }
  // Delete direction.
  {
    ChangeSet m = forest::make_delete_batch(full, p.batch, 6);
    ContractionForest c(full.capacity(), full.degree_bound(), 902);
    contract::construct(c, full);
    DynamicUpdater updater(c);
    updater.apply(m);
    Forest after = forest::apply_change_set(full, m);
    ContractionForest oracle(after.capacity(), full.degree_bound(), 902);
    contract::construct(oracle, after);
    ASSERT_TRUE(contract::structurally_equal(c, oracle));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LargeScale,
    ::testing::Values(LargeCase{"cf06", 1}, LargeCase{"cf06", 100},
                      LargeCase{"cf06", 5000}, LargeCase{"binary", 100},
                      LargeCase{"binary", 5000}, LargeCase{"cf10", 100},
                      LargeCase{"cf10", 2000}),
    [](const ::testing::TestParamInfo<LargeCase>& info) {
      return std::string(info.param.shape) + "_b" +
             std::to_string(info.param.batch);
    });

TEST(LargeScale, SpaceStaysLinearUnderChurn) {
  const std::size_t n = 20000;
  Forest full = forest::build_tree(n, 4, 0.6, 3, 8);
  ContractionForest c(full.capacity(), 4, 55);
  contract::construct(c, full);
  DynamicUpdater updater(c);
  Forest cur = full;
  hashing::SplitMix64 rng(1);
  for (int step = 0; step < 30; ++step) {
    ChangeSet del = forest::make_delete_batch(cur, 200, rng.next());
    updater.apply(del);
    cur = forest::apply_change_set(cur, del);
    ChangeSet ins;
    ins.add_edges = del.remove_edges;
    updater.apply(ins);
    cur = forest::apply_change_set(cur, ins);
  }
  // After 30 churn cycles the stored records must still be O(n), not
  // accumulating garbage rounds.
  EXPECT_LT(c.total_records(), 12 * n);
  EXPECT_LT(c.num_rounds(), 80u);
}

TEST(LargeScale, ParallelUpdateMatchesAtScale) {
  const std::size_t n = 30000;
  Forest full = forest::build_tree(n, 4, 0.6, 9, 8);
  auto [initial, m] = forest::make_insert_batch(full, 2000, 2);

  par::scheduler::initialize(4);
  ContractionForest c4(full.capacity(), 4, 303);
  contract::construct(c4, initial);
  contract::modify_contraction(c4, m);
  par::scheduler::initialize(1);

  ContractionForest c1(full.capacity(), 4, 303);
  contract::construct(c1, initial);
  contract::modify_contraction(c1, m);
  EXPECT_TRUE(contract::structurally_equal(c1, c4));
}

}  // namespace
}  // namespace parct
