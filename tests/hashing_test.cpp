// Tests for the hash family and coin schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "hashing/coin_flips.hpp"
#include "hashing/splitmix64.hpp"
#include "hashing/two_independent.hpp"

namespace parct::hashing {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
  }
  // Different seeds diverge immediately (overwhelmingly likely).
  SplitMix64 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Mersenne61, MulModSmallCases) {
  EXPECT_EQ(mul_mod_m61(0, 12345), 0u);
  EXPECT_EQ(mul_mod_m61(1, 12345), 12345u);
  EXPECT_EQ(mul_mod_m61(kMersenne61 - 1, 1), kMersenne61 - 1);
  // (p-1)^2 mod p = 1.
  EXPECT_EQ(mul_mod_m61(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

TEST(Mersenne61, AddModWraps) {
  EXPECT_EQ(add_mod_m61(kMersenne61 - 1, 1), 0u);
  EXPECT_EQ(add_mod_m61(kMersenne61 - 1, 5), 4u);
}

TEST(TwoIndependentHash, DeterministicPerParams) {
  TwoIndependentHash h(123456789, 987654321);
  EXPECT_EQ(h(42), h(42));
  EXPECT_EQ(h.a(), 123456789u);
}

TEST(TwoIndependentHash, CoinRoughlyBalanced) {
  SplitMix64 rng(99);
  // Over random members, each key's coin should be heads about half the
  // time (2-wise independence implies 1-wise uniformity up to O(1/p)).
  const int kMembers = 200;
  const int kKeys = 200;
  int heads = 0;
  for (int m = 0; m < kMembers; ++m) {
    TwoIndependentHash h = TwoIndependentHash::random(rng);
    for (int k = 0; k < kKeys; ++k) heads += h.coin(k) ? 1 : 0;
  }
  const double frac = static_cast<double>(heads) / (kMembers * kKeys);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(TwoIndependentHash, PairwiseCoinIndependenceEmpirically) {
  SplitMix64 rng(123);
  // For fixed key pair (x, y), over random members the four coin-outcome
  // combinations should each occur ~1/4 of the time.
  const int kMembers = 4000;
  std::map<std::pair<bool, bool>, int> counts;
  for (int m = 0; m < kMembers; ++m) {
    TwoIndependentHash h = TwoIndependentHash::random(rng);
    counts[{h.coin(1001), h.coin(77)}]++;
  }
  for (const auto& [combo, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kMembers, 0.25, 0.05);
  }
}

TEST(CoinSchedule, DeterministicInSeed) {
  CoinSchedule a(555), b(555), c(556);
  a.ensure_rounds(100);
  b.ensure_rounds(100);
  c.ensure_rounds(100);
  int diffs = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::uint64_t v = 0; v < 50; ++v) {
      EXPECT_EQ(a.heads(i, v), b.heads(i, v));
      diffs += a.heads(i, v) != c.heads(i, v) ? 1 : 0;
    }
  }
  EXPECT_GT(diffs, 1000);  // different seeds give different schedules
}

TEST(CoinSchedule, LazyGrowthPreservesPrefix) {
  CoinSchedule a(77);
  a.ensure_rounds(10);
  std::vector<bool> before;
  for (std::size_t i = 0; i < 10; ++i) before.push_back(a.heads(i, 3));
  a.ensure_rounds(500);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a.heads(i, 3), before[i]);
  EXPECT_GE(a.available_rounds(), 500u);
}

TEST(CoinSchedule, RoundsDifferFromEachOther) {
  CoinSchedule a(1);
  a.ensure_rounds(64);
  // Same vertex across rounds should not be constant (w.h.p.).
  int heads = 0;
  for (std::size_t i = 0; i < 64; ++i) heads += a.heads(i, 12345) ? 1 : 0;
  EXPECT_GT(heads, 10);
  EXPECT_LT(heads, 54);
}

}  // namespace
}  // namespace parct::hashing
