// Tests for parallel_for / parallel_reduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <climits>
#include <numeric>
#include <type_traits>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

namespace parct::par {
namespace {

class ParallelForTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { scheduler::initialize(GetParam()); }
  void TearDown() override { scheduler::initialize(1); }
};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::uint8_t> hit(n, 0);
  parallel_for(0, n, [&](std::size_t i) { ++hit[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST_P(ParallelForTest, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST_P(ParallelForTest, NonZeroBaseOffset) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST_P(ParallelForTest, TinyGrainStillCorrect) {
  const std::size_t n = 5000;
  std::vector<std::uint8_t> hit(n, 0);
  parallel_for(0, n, [&](std::size_t i) { ++hit[i]; }, /*grain=*/1);
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(),
                          [](std::uint8_t h) { return h == 1; }));
}

TEST_P(ParallelForTest, ReduceSum) {
  const std::size_t n = 123457;
  const long total = parallel_reduce(
      0, n, 0L, [](std::size_t i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}

TEST_P(ParallelForTest, ReduceMax) {
  std::vector<int> v(9999);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>((i * 2654435761u) % 100000);
  }
  const int expected = *std::max_element(v.begin(), v.end());
  const int got = parallel_reduce(
      0, v.size(), INT_MIN, [&](std::size_t i) { return v[i]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelForTest, ReduceNonDefaultConstructibleValueType) {
  // parallel_reduce must seed intermediate accumulators from `identity`,
  // not from T{} (T need not be default-constructible).
  struct MinMax {
    int lo, hi;
    MinMax(int l, int h) : lo(l), hi(h) {}
    MinMax() = delete;
  };
  static_assert(!std::is_default_constructible_v<MinMax>);
  const std::size_t n = 20001;
  const MinMax got = parallel_reduce(
      0, n, MinMax(INT_MAX, INT_MIN),
      [](std::size_t i) {
        const int v = static_cast<int>((i * 2654435761u) % 1000003);
        return MinMax(v, v);
      },
      [](const MinMax& a, const MinMax& b) {
        return MinMax(a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi);
      },
      /*grain=*/64);
  int lo = INT_MAX, hi = INT_MIN;
  for (std::size_t i = 0; i < n; ++i) {
    const int v = static_cast<int>((i * 2654435761u) % 1000003);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(got.lo, lo);
  EXPECT_EQ(got.hi, hi);
}

TEST_P(ParallelForTest, ReduceEmptyIsIdentity) {
  const int r = parallel_reduce(
      3, 3, -42, [](std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, -42);
}

TEST_P(ParallelForTest, NestedParallelFor) {
  const std::size_t n = 64;
  std::vector<std::atomic<int>> grid(n * n);
  for (auto& g : grid) g.store(0);
  parallel_for(0, n, [&](std::size_t i) {
    parallel_for(0, n, [&](std::size_t j) {
      grid[i * n + j].fetch_add(1);
    });
  });
  for (auto& g : grid) EXPECT_EQ(g.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelForTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct::par
