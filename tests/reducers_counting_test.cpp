// Tests for worker-local reducers, blocked parallel loops and the
// histogram / counting-sort primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reducers.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/counting.hpp"

namespace parct {
namespace {

class ReducersCounting : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(ReducersCounting, SumReducerMatchesSerial) {
  const std::size_t n = 200000;
  par::SumReducer<long> sum(0);
  par::parallel_for(0, n, [&](std::size_t i) {
    sum.local() += static_cast<long>(i);
  });
  EXPECT_EQ(sum.reduce(), static_cast<long>(n) * (n - 1) / 2);
  sum.reset();
  EXPECT_EQ(sum.reduce(), 0);
}

TEST_P(ReducersCounting, MaxReducer) {
  const std::size_t n = 50000;
  hashing::SplitMix64 rng(3);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.next_below(1000000));
  par::MaxReducer<int> mx(INT_MIN);
  par::parallel_for(0, n, [&](std::size_t i) {
    mx.local() = std::max(mx.local(), v[i]);
  });
  EXPECT_EQ(mx.reduce(), *std::max_element(v.begin(), v.end()));
}

TEST_P(ReducersCounting, BlockedForCoversRangeDisjointly) {
  const std::size_t n = 100000;
  std::vector<std::uint8_t> hits(n, 0);
  par::parallel_for_blocked(0, n, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](std::uint8_t h) { return h == 1; }));
}

TEST_P(ReducersCounting, BlockedForEmpty) {
  bool called = false;
  par::parallel_for_blocked(4, 4, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST_P(ReducersCounting, HistogramMatchesSerial) {
  const std::size_t n = 123456;
  const std::size_t K = 37;
  hashing::SplitMix64 rng(5);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(K));
  auto got = prim::histogram(n, [&](std::size_t i) { return keys[i]; }, K);
  std::vector<std::uint32_t> expected(K, 0);
  for (auto k : keys) ++expected[k];
  EXPECT_EQ(got, expected);
}

TEST_P(ReducersCounting, CountingSortStableAndOrdered) {
  const std::size_t n = 98765;
  const std::size_t K = 19;
  hashing::SplitMix64 rng(6);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(K));
  auto order = prim::counting_sort_indices(
      n, [&](std::size_t i) { return keys[i]; }, K);
  ASSERT_EQ(order.size(), n);
  // Keys non-decreasing, ties in increasing index order (stability).
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(keys[order[i - 1]], keys[order[i]]);
    if (keys[order[i - 1]] == keys[order[i]]) {
      ASSERT_LT(order[i - 1], order[i]);
    }
  }
  // Permutation check.
  std::vector<std::uint8_t> seen(n, 0);
  for (auto i : order) seen[i] = 1;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](std::uint8_t s) { return s == 1; }));
}

TEST_P(ReducersCounting, CountingSortEdgeCases) {
  EXPECT_TRUE(prim::counting_sort_indices(
                  0, [](std::size_t) { return 0u; }, 1)
                  .empty());
  auto one = prim::counting_sort_indices(
      1, [](std::size_t) { return 0u; }, 3);
  EXPECT_EQ(one, std::vector<std::uint32_t>{0});
  // All keys identical.
  auto same = prim::counting_sort_indices(
      10000, [](std::size_t) { return 4u; }, 5);
  for (std::size_t i = 0; i < same.size(); ++i) {
    ASSERT_EQ(same[i], static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ReducersCounting,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct
