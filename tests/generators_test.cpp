// Tests for the dynamic-update workload generators.
#include <gtest/gtest.h>

#include <set>

#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"

namespace parct::forest {
namespace {

TEST(Generators, RandomForestHasRequestedTrees) {
  Forest f = random_forest(1000, 7, 4, 0.4, 5);
  EXPECT_FALSE(check_forest(f).has_value());
  EXPECT_EQ(f.roots().size(), 7u);
  EXPECT_EQ(f.num_present(), 1000u);
  EXPECT_EQ(f.num_edges(), 1000u - 7u);
}

TEST(Generators, SelectRandomEdgesDistinctAndPresent) {
  Forest f = build_tree(500, 4, 0.5, 3);
  auto edges = select_random_edges(f, 100, 17);
  EXPECT_EQ(edges.size(), 100u);
  std::set<VertexId> children;
  for (const Edge& e : edges) {
    EXPECT_TRUE(f.has_edge(e.child, e.parent));
    children.insert(e.child);
  }
  EXPECT_EQ(children.size(), 100u);  // distinct edges
  EXPECT_THROW(select_random_edges(f, 500, 1), std::invalid_argument);
}

TEST(Generators, DeleteBatchIsValidChangeSet) {
  Forest f = build_tree(400, 4, 0.6, 9);
  ChangeSet m = make_delete_batch(f, 50, 21);
  EXPECT_EQ(m.remove_edges.size(), 50u);
  EXPECT_FALSE(check_change_set(f, m).has_value());
}

TEST(Generators, InsertBatchRoundTripsToFullForest) {
  Forest full = build_tree(400, 4, 0.6, 9);
  auto [initial, m] = make_insert_batch(full, 50, 22);
  EXPECT_EQ(initial.num_edges(), full.num_edges() - 50);
  EXPECT_FALSE(check_change_set(initial, m).has_value());
  Forest g = apply_change_set(initial, m);
  EXPECT_TRUE(g == full);
}

TEST(Generators, MixedBatchValid) {
  Forest full = build_tree(600, 4, 0.3, 2);
  auto [initial, m] = make_mixed_batch(full, 20, 30, 5);
  EXPECT_EQ(m.add_edges.size(), 20u);
  EXPECT_EQ(m.remove_edges.size(), 30u);
  EXPECT_FALSE(check_change_set(initial, m).has_value());
}

TEST(Generators, MixedBatchNoOverlapBetweenInsertAndDelete) {
  Forest full = build_tree(300, 4, 0.5, 8);
  auto [initial, m] = make_mixed_batch(full, 40, 40, 6);
  std::set<VertexId> ins_children, del_children;
  for (const Edge& e : m.add_edges) ins_children.insert(e.child);
  for (const Edge& e : m.remove_edges) del_children.insert(e.child);
  for (VertexId c : ins_children) EXPECT_EQ(del_children.count(c), 0u);
}

TEST(Generators, VertexBatchValid) {
  Forest f = build_tree(300, 4, 0.3, 4, /*extra_capacity=*/32);
  ChangeSet m = make_vertex_batch(f, 10, 10, 13);
  EXPECT_EQ(m.add_vertices.size(), 10u);
  EXPECT_EQ(m.remove_vertices.size(), 10u);
  EXPECT_FALSE(check_change_set(f, m).has_value());
}

TEST(Generators, VertexBatchRespectsCapacity) {
  Forest f = build_tree(100, 4, 0.3, 4);  // no spare capacity
  EXPECT_THROW(make_vertex_batch(f, 5, 0, 1), std::invalid_argument);
}

TEST(Generators, DeterministicInSeed) {
  Forest f = build_tree(300, 4, 0.5, 7);
  auto a = select_random_edges(f, 20, 42);
  auto b = select_random_edges(f, 20, 42);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace parct::forest
