// End-to-end tests of the differential harness itself: clean seeded runs
// across the adversarial shape table, byte-identical replay-file
// round-trips, and the full failure pipeline — inject a fault, detect it,
// auto-shrink the trace, dump a replay file, and prove that
// `parct_cli replay <file>` re-executes it to the same failure
// deterministically (twice, byte-identical output).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/differential.hpp"
#include "harness/shrink.hpp"
#include "harness/trace.hpp"
#include "harness/workload.hpp"
#include "parallel/scheduler.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

harness::WorkloadConfig small_config(std::uint64_t seed) {
  harness::WorkloadConfig config;
  config.seed = seed;
  config.n = 120;
  config.extra_capacity = 40;
  config.target_ops = 160;
  config.max_batch = 24;
  return config;
}

std::string save_to_string(const harness::Trace& t) {
  std::ostringstream out;
  harness::save_trace(t, out);
  return out.str();
}

/// Runs `cmd`, capturing stdout+stderr; stores the exit status.
std::string run_command(const std::string& cmd, int* exit_code) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, got);
  }
  const int status = pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

class HarnessEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_F(HarnessEquivalenceTest, CleanShortRunsAcrossShapes) {
  for (std::size_t shape = 0; shape < std::size(test::kShapes); ++shape) {
    harness::WorkloadConfig config = small_config(0xA11CE + shape);
    config.shape = static_cast<int>(shape);
    const harness::Trace t = harness::generate_trace(config);
    ASSERT_FALSE(t.steps.empty()) << test::kShapes[shape].name;
    const harness::RunResult r = harness::run_trace(t);
    EXPECT_TRUE(r.ok) << "shape " << test::kShapes[shape].name << ", step "
                      << r.failed_step << ": " << r.failure;
    EXPECT_GT(r.steps_applied, 0u) << test::kShapes[shape].name;
  }
}

// Behavioral equality of both adaptive execution paths: the same traces,
// forced always-parallel (cutover 0) and always-inline-serial (SIZE_MAX),
// must pass every oracle — each run cross-checks against a from-scratch
// construction, the LCT/ETT baselines, and the sequential re-simulation,
// so a divergence anywhere in the fast path fails here.
TEST_F(HarnessEquivalenceTest, EquivalenceSuitesAtSerialCutoverExtremes) {
  const std::size_t cutovers[] = {0, ~std::size_t{0}};
  for (const std::size_t cutover : cutovers) {
    harness::RunOptions opts;
    opts.serial_cutover = cutover;
    for (const std::size_t shape : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}}) {
      harness::WorkloadConfig config = small_config(0xC07 + shape);
      config.shape = static_cast<int>(shape % std::size(test::kShapes));
      const harness::Trace t = harness::generate_trace(config);
      const harness::RunResult r = harness::run_trace(t, opts);
      EXPECT_TRUE(r.ok) << "cutover " << cutover << ", shape "
                        << config.shape << ", step " << r.failed_step
                        << ": " << r.failure;
    }
  }
}

// The CLI exposes the same override globally; a clean trace replays OK
// under both extremes.
TEST_F(HarnessEquivalenceTest, CliSerialCutoverFlagReplaysCleanly) {
  const harness::Trace t = harness::generate_trace(small_config(37));
  const std::string path = ::testing::TempDir() + "/parct-cutover-trace.txt";
  harness::save_trace_file(t, path);

  for (const char* cutover : {"0", "18446744073709551615"}) {
    const std::string cmd = std::string(PARCT_CLI_PATH) +
                            " --serial-cutover " + cutover + " replay " +
                            path;
    int code = -1;
    const std::string out = run_command(cmd, &code);
    EXPECT_EQ(code, 0) << "cutover " << cutover << ": " << out;
    EXPECT_NE(out.find("OK"), std::string::npos) << out;
  }

  // A malformed value must be a usage error, not a silent zero.
  int code = -1;
  const std::string out = run_command(
      std::string(PARCT_CLI_PATH) + " --serial-cutover banana replay " +
          path,
      &code);
  EXPECT_NE(code, 0);
  std::remove(path.c_str());
}

TEST_F(HarnessEquivalenceTest, GenerationIsDeterministicInTheSeed) {
  const harness::Trace a = harness::generate_trace(small_config(42));
  const harness::Trace b = harness::generate_trace(small_config(42));
  const harness::Trace c = harness::generate_trace(small_config(43));
  EXPECT_EQ(save_to_string(a), save_to_string(b));
  EXPECT_NE(save_to_string(a), save_to_string(c));
}

TEST_F(HarnessEquivalenceTest, SaveLoadSaveIsByteIdentical) {
  for (const std::uint64_t seed : {1ull, 7ull, 0xDEADull}) {
    harness::Trace t = harness::generate_trace(small_config(seed));
    // Exercise the fault-injection fields through the format too.
    t.corrupt_step = 3;
    t.corrupt_seed = 99;
    const std::string first = save_to_string(t);
    std::istringstream in(first);
    const harness::Trace back = harness::load_trace(in);
    EXPECT_EQ(first, save_to_string(back)) << "seed " << seed;
  }
}

TEST_F(HarnessEquivalenceTest, SameTraceSameFailureAfterRoundTrip) {
  harness::Trace t = harness::generate_trace(small_config(5));
  ASSERT_GE(t.steps.size(), 4u);
  t.corrupt_step = static_cast<int>(t.steps.size()) / 2;
  t.corrupt_seed = 0xBAD5EED;

  const harness::RunResult direct = harness::run_trace(t);
  ASSERT_TRUE(direct.failed()) << "injected corruption went undetected";
  EXPECT_EQ(direct.failed_step, t.corrupt_step);
  EXPECT_NE(direct.failure.find("from-scratch oracle"), std::string::npos)
      << direct.failure;

  std::istringstream in(save_to_string(t));
  const harness::RunResult replayed =
      harness::run_trace(harness::load_trace(in));
  EXPECT_EQ(direct.failed_step, replayed.failed_step);
  EXPECT_EQ(direct.failure, replayed.failure);
}

TEST_F(HarnessEquivalenceTest, ShrinkKeepsFailureAndShrinksHistory) {
  harness::Trace t = harness::generate_trace(small_config(11));
  ASSERT_GE(t.steps.size(), 6u);
  t.corrupt_step = static_cast<int>(t.steps.size()) - 2;
  t.corrupt_seed = 0xC0FFEE;
  const harness::RunOptions opts;
  ASSERT_TRUE(harness::run_trace(t, opts).failed());

  harness::ShrinkReport report;
  const harness::Trace small = harness::shrink_trace(t, opts, &report);
  EXPECT_GT(report.runs, 1);
  EXPECT_TRUE(report.result.failed());
  EXPECT_LE(small.steps.size(), t.steps.size());
  EXPECT_LE(small.total_ops(), t.total_ops());
  // The shrunk trace must fail on its own, not just inside the shrinker.
  EXPECT_TRUE(harness::run_trace(small, opts).failed());
}

// The ISSUE acceptance flow: corrupted run -> replay file -> the CLI
// re-executes it to the same failure, twice, with byte-identical output.
TEST_F(HarnessEquivalenceTest, ReplayFileReExecutesByteIdenticallyViaCli) {
  harness::Trace t = harness::generate_trace(small_config(23));
  ASSERT_GE(t.steps.size(), 4u);
  t.corrupt_step = static_cast<int>(t.steps.size()) / 2;
  t.corrupt_seed = 0xFEED;
  ASSERT_TRUE(harness::run_trace(t).failed());

  harness::ShrinkReport report;
  const harness::Trace small = harness::shrink_trace(t, harness::RunOptions{},
                                                     &report);
  ASSERT_TRUE(report.result.failed());

  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("PARCT_REPLAY_DIR", dir.c_str(), 1), 0);
  const std::string path = harness::dump_replay(small);
  unsetenv("PARCT_REPLAY_DIR");
  ASSERT_EQ(path.rfind(dir, 0), 0u) << path;

  // The file alone reproduces the failure in-process...
  const harness::RunResult from_file =
      harness::run_trace(harness::load_trace_file(path));
  EXPECT_EQ(from_file.failed_step, report.result.failed_step);
  EXPECT_EQ(from_file.failure, report.result.failure);

  // ...and through the CLI, twice, byte-for-byte.
  const std::string cmd = std::string(PARCT_CLI_PATH) + " replay " + path;
  int code1 = 0;
  int code2 = 0;
  const std::string out1 = run_command(cmd, &code1);
  const std::string out2 = run_command(cmd, &code2);
  EXPECT_EQ(code1, 1) << out1;
  EXPECT_EQ(code2, 1) << out2;
  EXPECT_EQ(out1, out2);
  EXPECT_NE(out1.find("FAIL at step"), std::string::npos) << out1;
  EXPECT_NE(out1.find(report.result.failure), std::string::npos) << out1;

  std::remove(path.c_str());
}

TEST_F(HarnessEquivalenceTest, CliReplaysCleanTraceWithExitZero) {
  const harness::Trace t = harness::generate_trace(small_config(31));
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/parct-clean-trace.txt";
  harness::save_trace_file(t, path);

  const std::string cmd = std::string(PARCT_CLI_PATH) + " replay " + path;
  int code = -1;
  const std::string out = run_command(cmd, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("OK"), std::string::npos) << out;
  std::remove(path.c_str());
}

TEST_F(HarnessEquivalenceTest, MalformedReplayFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/parct-bogus-trace.txt";
  {
    std::ofstream out(path);
    out << "parct-replay v1\nmaster_seed banana\n";
  }
  EXPECT_THROW(harness::load_trace_file(path), std::runtime_error);
  const std::string cmd = std::string(PARCT_CLI_PATH) + " replay " + path;
  int code = -1;
  const std::string out = run_command(cmd, &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parct
