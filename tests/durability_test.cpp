// Durability-layer tests that run in every build: WAL segment round
// trips, torn/corrupt tail handling, checkpoint container integrity,
// multi-segment recovery (including the later-segment fence), and the
// end-to-end BatchServer checkpoint -> crash -> recover -> serve cycle.
// The fault-injected kill matrix lives in durability_chaos_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "contraction/contraction_forest.hpp"
#include "durability/checkpoint.hpp"
#include "durability/manager.hpp"
#include "durability/wal.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct::durability {
namespace {

namespace fs = std::filesystem;

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    par::scheduler::initialize(4);
    dir_ = fs::path(::testing::TempDir()) /
           ("parct_durability_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    par::scheduler::initialize(1);
  }

  std::string dir() const { return dir_.string(); }

  static WalRecord sample_record(std::uint64_t version) {
    WalRecord rec;
    rec.version = version;
    rec.batch.del_edge(2 + static_cast<VertexId>(version), 1)
        .ins_vertex(100 + static_cast<VertexId>(version));
    rec.vertex_weights.push_back(
        {static_cast<VertexId>(version), static_cast<Weight>(7 * version)});
    return rec;
  }

  static void expect_records_equal(const WalRecord& a, const WalRecord& b) {
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.batch.remove_vertices, b.batch.remove_vertices);
    EXPECT_EQ(a.batch.add_vertices, b.batch.add_vertices);
    ASSERT_EQ(a.batch.remove_edges.size(), b.batch.remove_edges.size());
    for (std::size_t i = 0; i < a.batch.remove_edges.size(); ++i) {
      EXPECT_EQ(a.batch.remove_edges[i].child, b.batch.remove_edges[i].child);
      EXPECT_EQ(a.batch.remove_edges[i].parent,
                b.batch.remove_edges[i].parent);
    }
    ASSERT_EQ(a.batch.add_edges.size(), b.batch.add_edges.size());
    for (std::size_t i = 0; i < a.batch.add_edges.size(); ++i) {
      EXPECT_EQ(a.batch.add_edges[i].child, b.batch.add_edges[i].child);
      EXPECT_EQ(a.batch.add_edges[i].parent, b.batch.add_edges[i].parent);
    }
    EXPECT_EQ(a.vertex_weights, b.vertex_weights);
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }

  static void write_file(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(DurabilityTest, WalSegmentRoundTrip) {
  std::vector<WalRecord> want;
  {
    WalWriter w(dir(), 10);
    EXPECT_EQ(w.base_version(), 10u);
    for (std::uint64_t v = 11; v <= 15; ++v) {
      want.push_back(sample_record(v));
      w.append(want.back());
    }
    EXPECT_EQ(w.records(), 5u);
    EXPECT_GT(w.bytes(), 0u);
  }
  const SegmentContents seg = read_wal_segment(dir() + "/" + wal_filename(10));
  EXPECT_TRUE(seg.clean);
  EXPECT_EQ(seg.base_version, 10u);
  ASSERT_EQ(seg.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_records_equal(seg.records[i], want[i]);
  }
}

TEST_F(DurabilityTest, TornTailRecordIsDroppedNotFatal) {
  const std::string path = dir() + "/" + wal_filename(0);
  {
    WalWriter w(dir(), 0);
    for (std::uint64_t v = 1; v <= 3; ++v) w.append(sample_record(v));
  }
  const std::string full = read_file(path);

  // Every proper prefix that cuts into the final record yields exactly
  // the first two records, never a throw, never garbage.
  const std::string two = [&] {
    fs::remove(path);
    WalWriter w(dir(), 0);
    w.append(sample_record(1));
    w.append(sample_record(2));
    return read_file(path);
  }();
  for (const std::size_t keep :
       {two.size() + 1, two.size() + 5, full.size() - 1}) {
    write_file(path, full.substr(0, keep));
    const SegmentContents seg = read_wal_segment(path);
    EXPECT_FALSE(seg.clean) << keep;
    ASSERT_EQ(seg.records.size(), 2u) << keep;
    EXPECT_EQ(seg.records.back().version, 2u) << keep;
  }

  // A torn header yields zero records but still does not throw.
  write_file(path, full.substr(0, 5));
  const SegmentContents torn_header = read_wal_segment(path);
  EXPECT_FALSE(torn_header.clean);
  EXPECT_TRUE(torn_header.records.empty());
}

TEST_F(DurabilityTest, CorruptRecordStopsTheScan) {
  const std::string path = dir() + "/" + wal_filename(0);
  {
    WalWriter w(dir(), 0);
    for (std::uint64_t v = 1; v <= 3; ++v) w.append(sample_record(v));
  }
  std::string bytes = read_file(path);
  // Flip one byte near the middle of the file: whichever record it lands
  // in fails its CRC and the scan keeps only the prefix before it.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_file(path, bytes);
  const SegmentContents seg = read_wal_segment(path);
  EXPECT_FALSE(seg.clean);
  EXPECT_LT(seg.records.size(), 3u);
  for (std::size_t i = 0; i < seg.records.size(); ++i) {
    expect_records_equal(seg.records[i], sample_record(i + 1));
  }
}

TEST_F(DurabilityTest, CheckpointRoundTrip) {
  forest::Forest f = forest::random_forest(400, 5, 4, 0.4, 17);
  contract::ContractionForest c(400, 4, 99);
  contract::construct(c, f);
  std::vector<Weight> weights(400);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<Weight>(i * 3 + 1);
  }

  const std::string path = write_checkpoint(dir(), 42, c, weights);
  EXPECT_EQ(path, dir() + "/" + checkpoint_filename(42));
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp must be renamed away";

  Checkpoint ckpt = read_checkpoint(path);
  EXPECT_EQ(ckpt.version, 42u);
  EXPECT_EQ(ckpt.weights, weights);
  EXPECT_FALSE(contract::structural_diff(ckpt.forest, c).has_value());
}

TEST_F(DurabilityTest, CorruptCheckpointIsRejected) {
  forest::Forest f = forest::random_forest(120, 5, 4, 0.4, 18);
  contract::ContractionForest c(120, 4, 7);
  contract::construct(c, f);
  const std::string path =
      write_checkpoint(dir(), 1, c, std::vector<Weight>(120, 1));
  const std::string good = read_file(path);

  // One flipped byte anywhere in a section payload fails that section's
  // CRC; try several offsets across the file.
  for (const std::size_t off :
       {std::size_t(40), good.size() / 2, good.size() - 2}) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x01);
    write_file(path, bad);
    EXPECT_THROW(read_checkpoint(path), std::runtime_error) << off;
  }
  // Truncation at any depth is rejected, not UB.
  for (const std::size_t keep :
       {std::size_t(0), std::size_t(11), good.size() / 3, good.size() - 1}) {
    write_file(path, good.substr(0, keep));
    EXPECT_THROW(read_checkpoint(path), std::runtime_error) << keep;
  }
  write_file(path, good + "trailing");
  EXPECT_THROW(read_checkpoint(path), std::runtime_error);
}

TEST_F(DurabilityTest, RecoverSkipsCorruptNewestCheckpoint) {
  forest::Forest f = forest::random_forest(150, 5, 4, 0.4, 19);
  contract::ContractionForest c(150, 4, 5);
  contract::construct(c, f);
  write_checkpoint(dir(), 3, c, std::vector<Weight>(150, 2));

  // A corrupt newer checkpoint and a stray .tmp both lose to the valid 3.
  write_file(dir() + "/" + checkpoint_filename(9), "not a checkpoint");
  write_file(dir() + "/" + checkpoint_filename(12) + ".tmp", "half-written");

  const RecoveredState st = Manager::recover(dir());
  EXPECT_EQ(st.version, 3u);
  EXPECT_EQ(st.replayed, 0u);
  EXPECT_FALSE(contract::structural_diff(*st.forest, c).has_value());
  EXPECT_EQ(st.weights, std::vector<Weight>(150, 2));
}

TEST_F(DurabilityTest, RecoverWithNoValidCheckpointThrows) {
  EXPECT_THROW(Manager::recover(dir()), std::runtime_error);
  write_file(dir() + "/" + checkpoint_filename(1), "garbage");
  EXPECT_THROW(Manager::recover(dir()), std::runtime_error);
}

// Drives a checkpointing server through `updates` random delete batches in
// step() mode, recording the oracle forest at every version. Returns the
// chain (index = version) so a recovered state can be checked at exactly
// the version it reports.
struct DrivenHistory {
  std::vector<forest::Forest> oracle_at;  // plain forest per version
  std::vector<std::uint64_t> acked;       // versions with resolved futures
};

DrivenHistory drive_workload(const std::string& dir, std::size_t n,
                             std::uint64_t seed, int updates,
                             std::uint64_t checkpoint_every) {
  forest::Forest f = forest::random_forest(n, 6, 4, 0.4, seed);
  contract::ContractionForest c(n, 4, seed ^ 0xABCD);
  contract::construct(c, f);

  Manager mgr(dir);
  mgr.checkpoint(c, std::vector<service::Weight>(n, 1), 0);

  service::ServiceConfig cfg;
  cfg.durability = &mgr;
  cfg.checkpoint_every = checkpoint_every;
  service::BatchServer server(c, cfg, std::vector<service::Weight>(n, 1));

  DrivenHistory h;
  h.oracle_at.push_back(f);
  for (int i = 0; i < updates; ++i) {
    service::UpdateRequest u;
    u.batch = forest::make_delete_batch(h.oracle_at.back(), 3,
                                        seed * 100 + static_cast<std::uint64_t>(i));
    u.vertex_weights.push_back(
        {static_cast<VertexId>(i % n), static_cast<service::Weight>(i + 2)});
    h.oracle_at.push_back(
        forest::apply_change_set(h.oracle_at.back(), u.batch));
    auto fut = server.submit_update(std::move(u));
    EXPECT_TRUE(server.step());
    h.acked.push_back(fut.get().version);
  }
  server.stop();
  return h;  // server and manager destroyed: the "crash"
}

TEST_F(DurabilityTest, RecoverReplaysWalTailOntoCheckpoint) {
  const std::size_t n = 500;
  // checkpoint_every = 4 over 10 updates: last checkpoint at version 8,
  // records 9 and 10 only in the WAL tail.
  const DrivenHistory h = drive_workload(dir(), n, 23, 10, 4);
  ASSERT_EQ(h.acked.back(), 10u);

  const RecoveredState st = Manager::recover(dir());
  EXPECT_EQ(st.version, 10u);
  EXPECT_EQ(st.replayed, 2u);

  // The recovered structure must equal a from-scratch construction of the
  // version-10 oracle forest up to the recorded history it serves; compare
  // via the exported base forest (the contraction itself was built by a
  // different update path, so only the forest layer is comparable).
  const forest::Forest got = st.forest->extract_forest();
  const forest::Forest& want = h.oracle_at[10];
  ASSERT_GE(got.capacity(), want.capacity());
  for (VertexId v = 0; v < want.capacity(); ++v) {
    ASSERT_EQ(got.present(v), want.present(v)) << v;
    if (!want.present(v)) continue;
    ASSERT_EQ(forest::root_of(got, v), forest::root_of(want, v)) << v;
  }
}

TEST_F(DurabilityTest, RecoveredServerServesAndAppendsDurably) {
  const std::size_t n = 400;
  const DrivenHistory h = drive_workload(dir(), n, 31, 6, 3);

  service::RecoveredServer rec = service::BatchServer::recover(dir());
  EXPECT_EQ(rec.version, 6u);
  EXPECT_EQ(rec.server->version(), 6u);
  EXPECT_EQ(rec.server->stats().recovery_replayed, rec.replayed);

  // Queries answer against the recovered version-6 state.
  const forest::Forest& want = h.oracle_at[6];
  service::QueryBatch q;
  for (VertexId v = 0; v < n; v += 7) q.roots.push_back(v);
  auto qfut = rec.server->submit_queries(q);
  ASSERT_TRUE(rec.server->step());
  const service::QueryResult r = qfut.get();
  EXPECT_EQ(r.version, 6u);
  for (std::size_t i = 0; i < q.roots.size(); ++i) {
    if (!want.present(q.roots[i])) continue;
    ASSERT_EQ(r.roots[i], forest::root_of(want, q.roots[i])) << i;
  }

  // New updates keep appending to a fresh segment based at the recovered
  // version — and survive a second crash/recover cycle.
  service::UpdateRequest u;
  u.batch = forest::make_delete_batch(want, 2, 777);
  const forest::Forest after = forest::apply_change_set(want, u.batch);
  auto ufut = rec.server->submit_update(std::move(u));
  ASSERT_TRUE(rec.server->step());
  EXPECT_EQ(ufut.get().version, 7u);
  EXPECT_GE(rec.server->stats().wal_records, 1u);
  rec.server->stop();
  rec.server.reset();

  const RecoveredState st2 = Manager::recover(dir());
  EXPECT_EQ(st2.version, 7u);
  const forest::Forest got = st2.forest->extract_forest();
  for (VertexId v = 0; v < after.capacity(); ++v) {
    ASSERT_EQ(got.present(v), after.present(v)) << v;
    if (after.present(v)) {
      ASSERT_EQ(forest::root_of(got, v), forest::root_of(after, v)) << v;
    }
  }
}

TEST_F(DurabilityTest, CheckpointingPrunesSupersededFiles) {
  const std::size_t n = 300;
  // 12 updates at checkpoint_every=2 -> checkpoints 2,4,...,12; only the
  // newest kKeepCheckpoints (and the segments they need) survive.
  drive_workload(dir(), n, 41, 12, 2);
  std::vector<std::uint64_t> ckpts;
  std::vector<std::uint64_t> segs;
  for (const auto& e : fs::directory_iterator(dir())) {
    const std::string name = e.path().filename().string();
    if (const auto v = checkpoint_version_of(name)) ckpts.push_back(*v);
    if (const auto b = wal_base_of(name)) segs.push_back(*b);
  }
  EXPECT_EQ(ckpts.size(), Manager::kKeepCheckpoints);
  EXPECT_NE(std::find(ckpts.begin(), ckpts.end(), 12u), ckpts.end());
  EXPECT_NE(std::find(ckpts.begin(), ckpts.end(), 10u), ckpts.end());
  for (const std::uint64_t b : segs) {
    EXPECT_GE(b, 10u) << "segments before the oldest kept checkpoint";
  }
  // And the pruned directory still recovers to the full history.
  EXPECT_EQ(Manager::recover(dir()).version, 12u);
}

TEST_F(DurabilityTest, ServiceStatsExposeDurabilityCounters) {
  const std::size_t n = 300;
  forest::Forest f = forest::random_forest(n, 6, 4, 0.4, 51);
  contract::ContractionForest c(n, 4, 9);
  contract::construct(c, f);
  Manager mgr(dir());
  mgr.checkpoint(c, std::vector<service::Weight>(n, 1), 0);

  service::ServiceConfig cfg;
  cfg.durability = &mgr;
  cfg.checkpoint_every = 2;
  service::BatchServer server(c, cfg, std::vector<service::Weight>(n, 1));
  forest::Forest cur = f;
  for (int i = 0; i < 4; ++i) {
    service::UpdateRequest u;
    u.batch = forest::make_delete_batch(cur, 2, 600 + i);
    cur = forest::apply_change_set(cur, u.batch);
    auto fut = server.submit_update(std::move(u));
    ASSERT_TRUE(server.step());
    fut.get();
  }
  const service::ServiceStats s = server.stats();
  EXPECT_EQ(s.wal_records, 4u);
  EXPECT_GT(s.wal_bytes, 0u);
  EXPECT_EQ(s.checkpoints_written, 3u);  // seed checkpoint + versions 2, 4
  EXPECT_EQ(s.checkpoint_failures, 0u);
  EXPECT_EQ(s.recovery_replayed, 0u);
}

}  // namespace
}  // namespace parct::durability
