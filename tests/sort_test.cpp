// Tests for the parallel merge sort primitive.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/sort.hpp"

namespace parct::prim {
namespace {

class SortTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(SortTest, RandomValuesMatchStdSort) {
  for (std::size_t n : {0, 1, 2, 100, 4096, 4097, 100000}) {
    hashing::SplitMix64 rng(n + 1);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.next_below(1 << 20);
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    parallel_sort(v);
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST_P(SortTest, AlreadySortedAndReversed) {
  std::vector<int> up(50000), down(50000);
  for (int i = 0; i < 50000; ++i) {
    up[i] = i;
    down[i] = 50000 - i;
  }
  auto up2 = up;
  parallel_sort(up2);
  EXPECT_EQ(up2, up);
  parallel_sort(down);
  EXPECT_TRUE(std::is_sorted(down.begin(), down.end()));
}

TEST_P(SortTest, StabilityOnKeyedPairs) {
  // Sort pairs by first only; seconds must stay in input order per key.
  const std::size_t n = 60000;
  hashing::SplitMix64 rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(100)),
            static_cast<std::uint32_t>(i)};
  }
  parallel_sort(v, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(v[i - 1].first, v[i].first);
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second);
    }
  }
}

TEST_P(SortTest, CustomComparatorDescending) {
  hashing::SplitMix64 rng(9);
  std::vector<int> v(30000);
  for (auto& x : v) x = static_cast<int>(rng.next_below(1000));
  parallel_sort(v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST_P(SortTest, SortedIndices) {
  hashing::SplitMix64 rng(11);
  std::vector<std::uint64_t> keys(20000);
  for (auto& k : keys) k = rng.next_below(1 << 16);
  auto idx = sorted_indices(keys.size(), [&](std::uint32_t a,
                                             std::uint32_t b) {
    return keys[a] < keys[b];
  });
  for (std::size_t i = 1; i < idx.size(); ++i) {
    ASSERT_LE(keys[idx[i - 1]], keys[idx[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, SortTest, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct::prim
