// Tests for dynamic subtree aggregates (the RC-tree query): brute-force
// cross-checks on random forests, monoid variety, and correctness across
// batched structural updates and vertex churn.
#include <gtest/gtest.h>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/path_aggregate.hpp"  // PathPlus / PathMax combiners
#include "rc/subtree_aggregate.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;
using SubtreeSum = rc::SubtreeAggregate<long, rc::PathPlus>;
using SubtreeMax = rc::SubtreeAggregate<long, rc::PathMax>;

long brute_subtree(const Forest& f, const std::vector<long>& w, VertexId v,
                   bool take_max) {
  long acc = w[v];
  for (VertexId u : f.children(v)) {
    if (u == kNoVertex) continue;
    const long sub = brute_subtree(f, w, u, take_max);
    acc = take_max ? std::max(acc, sub) : acc + sub;
  }
  return acc;
}

TEST(SubtreeAggregate, ChainSuffixSums) {
  const std::size_t n = 100;
  Forest f = forest::build_chain(n);
  ContractionForest c(n, 4, 5);
  SubtreeSum agg(c, 0);
  for (VertexId v = 0; v < n; ++v) agg.stage_vertex_weight(v, 1);
  contract::construct(c, f, &agg);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(agg.subtree_sum(v), static_cast<long>(n - v)) << v;
  }
  EXPECT_EQ(agg.tree_sum(50), static_cast<long>(n));
}

TEST(SubtreeAggregate, StarAndBalanced) {
  Forest star(9, 8, 9);
  for (VertexId v = 1; v < 9; ++v) star.link(v, 0);
  ContractionForest c(9, 8, 7);
  SubtreeSum agg(c, 0);
  for (VertexId v = 0; v < 9; ++v) {
    agg.stage_vertex_weight(v, static_cast<long>(v));
  }
  contract::construct(c, star, &agg);
  EXPECT_EQ(agg.subtree_sum(0), 36);
  for (VertexId v = 1; v < 9; ++v) {
    EXPECT_EQ(agg.subtree_sum(v), static_cast<long>(v));
  }

  Forest bal = forest::build_balanced(85, 4);
  ContractionForest cb(85, 4, 9);
  SubtreeSum aggb(cb, 0);
  std::vector<long> w(85);
  for (VertexId v = 0; v < 85; ++v) {
    w[v] = static_cast<long>(v % 7);
    aggb.stage_vertex_weight(v, w[v]);
  }
  contract::construct(cb, bal, &aggb);
  for (VertexId v = 0; v < 85; ++v) {
    ASSERT_EQ(aggb.subtree_sum(v), brute_subtree(bal, w, v, false)) << v;
  }
}

class SubtreeShapes : public ::testing::TestWithParam<double> {};

TEST_P(SubtreeShapes, RandomTreesMatchBruteForce) {
  const std::size_t n = 2000;
  Forest f = forest::build_tree(n, 4, GetParam(), 17);
  ContractionForest c(n, 4, 23);
  SubtreeSum agg(c, 0);
  std::vector<long> w(n);
  hashing::SplitMix64 rng(3);
  for (VertexId v = 0; v < n; ++v) {
    w[v] = static_cast<long>(rng.next_below(100));
    agg.stage_vertex_weight(v, w[v]);
  }
  contract::construct(c, f, &agg);
  for (int q = 0; q < 400; ++q) {
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    ASSERT_EQ(agg.subtree_sum(v), brute_subtree(f, w, v, false)) << v;
  }
  EXPECT_EQ(agg.tree_sum(5), brute_subtree(f, w, 0, false));
}

INSTANTIATE_TEST_SUITE_P(ChainFactors, SubtreeShapes,
                         ::testing::Values(0.0, 0.3, 0.6, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "cf" + std::to_string(static_cast<int>(
                                             info.param * 10));
                         });

TEST(SubtreeAggregate, MaxMonoid) {
  const std::size_t n = 800;
  Forest f = forest::build_tree(n, 4, 0.5, 29);
  ContractionForest c(n, 4, 31);
  SubtreeMax agg(c, LONG_MIN);
  std::vector<long> w(n);
  hashing::SplitMix64 rng(8);
  for (VertexId v = 0; v < n; ++v) {
    w[v] = static_cast<long>(rng.next_below(1 << 20));
    agg.stage_vertex_weight(v, w[v]);
  }
  contract::construct(c, f, &agg);
  for (int q = 0; q < 300; ++q) {
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    ASSERT_EQ(agg.subtree_sum(v), brute_subtree(f, w, v, true)) << v;
  }
}

TEST(SubtreeAggregate, StaysCorrectAcrossBatchedUpdates) {
  const std::size_t n = 700;
  Forest full = forest::build_tree(n, 4, 0.5, 41, 16);
  auto [cur, first] = forest::make_insert_batch(full, 25, 3);

  ContractionForest c(full.capacity(), 4, 43);
  SubtreeSum agg(c, 0);
  std::vector<long> w(full.capacity(), 0);
  hashing::SplitMix64 rng(11);
  for (VertexId v = 0; v < n; ++v) {
    w[v] = static_cast<long>(rng.next_below(50));
    agg.stage_vertex_weight(v, w[v]);
  }
  contract::construct(c, cur, &agg);
  DynamicUpdater updater(c);

  updater.apply(first, &agg);
  cur = forest::apply_change_set(cur, first);

  std::vector<Edge> held;
  for (int step = 0; step < 8; ++step) {
    ChangeSet m;
    if (step % 2 == 0) {
      m = forest::make_delete_batch(cur, 12, rng.next());
      held = m.remove_edges;
    } else {
      m.add_edges = held;
    }
    updater.apply(m, &agg);
    cur = forest::apply_change_set(cur, m);
    for (int q = 0; q < 120; ++q) {
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      ASSERT_EQ(agg.subtree_sum(v), brute_subtree(cur, w, v, false))
          << "step " << step << " vertex " << v;
    }
  }
}

TEST(SubtreeAggregate, VertexChurn) {
  Forest f = forest::build_chain(30, 8);
  ContractionForest c(f.capacity(), 4, 47);
  SubtreeSum agg(c, 0);
  for (VertexId v = 0; v < 30; ++v) agg.stage_vertex_weight(v, 1);
  contract::construct(c, f, &agg);
  DynamicUpdater updater(c);

  // Graft 3 new weighted vertices under vertex 10.
  ChangeSet graft;
  graft.ins_vertex(30).ins_vertex(31).ins_vertex(32);
  graft.ins_edge(30, 10).ins_edge(31, 30).ins_edge(32, 31);
  agg.stage_vertex_weight(30, 100);
  agg.stage_vertex_weight(31, 10);
  agg.stage_vertex_weight(32, 1);
  updater.apply(graft, &agg);

  EXPECT_EQ(agg.subtree_sum(30), 111);
  EXPECT_EQ(agg.subtree_sum(10), 20 + 111);   // vertices 10..29 + graft
  EXPECT_EQ(agg.subtree_sum(0), 30 + 111);
  EXPECT_EQ(agg.subtree_sum(25), 5);

  // Prune the graft again (remove leaves bottom-up in one batch).
  ChangeSet prune;
  prune.del_vertex(32).del_edge(32, 31);
  prune.del_vertex(31).del_edge(31, 30);
  prune.del_vertex(30).del_edge(30, 10);
  updater.apply(prune, &agg);
  EXPECT_EQ(agg.subtree_sum(0), 30);
  EXPECT_EQ(agg.subtree_sum(10), 20);
}

TEST(SubtreeAggregate, RebuildMatchesIncremental) {
  const std::size_t n = 600;
  Forest f = forest::build_tree(n, 4, 0.6, 51);
  ContractionForest c(n, 4, 53);
  SubtreeSum inc(c, 0);
  std::vector<long> w(n);
  hashing::SplitMix64 rng(13);
  for (VertexId v = 0; v < n; ++v) {
    w[v] = static_cast<long>(rng.next_below(30));
    inc.stage_vertex_weight(v, w[v]);
  }
  contract::construct(c, f, &inc);

  SubtreeSum rebuilt(c, 0);
  for (VertexId v = 0; v < n; ++v) rebuilt.stage_vertex_weight(v, w[v]);
  rebuilt.rebuild();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(rebuilt.subtree_sum(v), inc.subtree_sum(v)) << v;
  }
}

}  // namespace
}  // namespace parct
