// Tests for the dynamic update algorithm (paper §2.5). The keystone is
// from-scratch equivalence: after ModifyContraction, the structure must be
// structurally identical to what the construction algorithm produces on the
// edited forest under the same coin schedule — the paper's behavioural
// equivalence, checked exhaustively over shapes, batch kinds and sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/scheduler.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using contract::UpdateStats;
using forest::ChangeSet;
using forest::Forest;

// Applies `m` dynamically to a structure built for `f0`, and checks the
// result equals a from-scratch construction on apply_change_set(f0, m).
// Returns the update stats for further assertions.
UpdateStats expect_equivalent(const Forest& f0, const ChangeSet& m,
                              std::uint64_t seed) {
  auto err = forest::check_change_set(f0, m);
  EXPECT_FALSE(err.has_value()) << *err;

  ContractionForest c(f0.capacity(), f0.degree_bound(), seed);
  contract::construct(c, f0);
  UpdateStats stats = contract::modify_contraction(c, m);

  const Forest f1 = forest::apply_change_set(f0, m);
  ContractionForest oracle(f1.capacity(), f0.degree_bound(), seed);
  contract::construct(oracle, f1);

  EXPECT_TRUE(contract::structurally_equal(c, oracle))
      << "dynamic update diverged from from-scratch construction";
  // Belt and braces: the updated structure must also be valid for f1
  // according to the independent simulator.
  auto verr = contract::check_valid(c, f1);
  EXPECT_FALSE(verr.has_value()) << *verr;
  return stats;
}

// --- tiny hand-written cases ------------------------------------------

TEST(DynamicUpdate, EmptyChangeSetIsNoop) {
  Forest f = forest::build_chain(10);
  ContractionForest c(f.capacity(), 4, 3);
  contract::construct(c, f);
  ContractionForest before(f.capacity(), 4, 3);
  contract::construct(before, f);
  UpdateStats stats = contract::modify_contraction(c, ChangeSet{});
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_TRUE(contract::structurally_equal(c, before));
}

TEST(DynamicUpdate, SingleEdgeInsertLinksTwoChains) {
  Forest f(10, 4, 10);
  for (VertexId v = 1; v < 5; ++v) f.link(v, v - 1);   // chain A rooted at 0
  for (VertexId v = 6; v < 10; ++v) f.link(v, v - 1);  // chain B rooted at 5
  ChangeSet m;
  m.ins_edge(5, 4);  // hang chain B under chain A's deepest vertex
  expect_equivalent(f, m, 42);
}

TEST(DynamicUpdate, SingleEdgeDeleteSplitsChain) {
  Forest f = forest::build_chain(12);
  ChangeSet m;
  m.del_edge(6, 5);
  expect_equivalent(f, m, 42);
}

TEST(DynamicUpdate, DeleteAtRootAndLeaf) {
  Forest f = forest::build_chain(9);
  ChangeSet m;
  m.del_edge(1, 0);  // detach everything below the root
  m.del_edge(8, 7);  // detach the deepest leaf
  expect_equivalent(f, m, 17);
}

TEST(DynamicUpdate, InsertVertexAsNewLeaf) {
  Forest f = forest::build_chain(6, /*extra_capacity=*/2);
  ChangeSet m;
  m.ins_vertex(6).ins_edge(6, 3);
  expect_equivalent(f, m, 5);
}

TEST(DynamicUpdate, InsertIsolatedVertex) {
  Forest f = forest::build_chain(4, 1);
  ChangeSet m;
  m.ins_vertex(4);
  expect_equivalent(f, m, 5);
}

TEST(DynamicUpdate, RemoveLeafVertex) {
  Forest f = forest::build_balanced(15, 2);
  ChangeSet m;
  m.del_vertex(14).del_edge(14, 6);
  expect_equivalent(f, m, 5);
}

TEST(DynamicUpdate, RemoveIsolatedVertex) {
  Forest f(5, 4, 5);  // 5 isolated roots
  ChangeSet m;
  m.del_vertex(3);
  expect_equivalent(f, m, 5);
}

TEST(DynamicUpdate, RemoveInternalVertexSplicing) {
  // Remove an internal vertex v, reconnecting its child to its parent:
  // expressed as deleting v with all incident edges and inserting the
  // bypass edge.
  Forest f = forest::build_chain(8);
  ChangeSet m;
  m.del_vertex(4).del_edge(4, 3).del_edge(5, 4).ins_edge(5, 3);
  expect_equivalent(f, m, 91);
}

TEST(DynamicUpdate, MoveSubtreeToOtherTree) {
  Forest f(20, 4, 20);
  for (VertexId v = 1; v < 10; ++v) f.link(v, (v - 1) / 2);
  for (VertexId v = 11; v < 20; ++v) f.link(v, 10 + (v - 11) / 3);
  ChangeSet m;
  m.del_edge(3, 1).ins_edge(3, 15);
  expect_equivalent(f, m, 7);
}

TEST(DynamicUpdate, ReplaceWholeStar) {
  // Delete every edge of a star and rebuild the vertices as a chain rooted
  // at the far end (E+ must be disjoint from E, so the chain points the
  // other way: 0 -> 1 -> ... -> 5).
  Forest f(6, 8, 6);
  for (VertexId v = 1; v < 6; ++v) f.link(v, 0);
  ChangeSet m;
  for (VertexId v = 1; v < 6; ++v) m.del_edge(v, 0);
  for (VertexId v = 0; v < 5; ++v) m.ins_edge(v, v + 1);
  expect_equivalent(f, m, 33);
}

TEST(DynamicUpdate, SequentialUpdatesCompose) {
  Forest f = forest::build_tree(300, 4, 0.6, 4, /*extra_capacity=*/16);
  ContractionForest c(f.capacity(), 4, 99);
  contract::construct(c, f);
  DynamicUpdater updater(c);

  Forest cur = f;
  std::uint64_t seed = 1000;
  for (int step = 0; step < 12; ++step) {
    ChangeSet m;
    if (step % 3 == 0) {
      m = forest::make_delete_batch(cur, 5, seed++);
    } else if (step % 3 == 1) {
      auto [reduced, batch] = forest::make_insert_batch(cur, 5, seed++);
      // make_insert_batch cuts edges from `cur`; to keep this a pure
      // insertion step, first delete them dynamically, then re-insert.
      ChangeSet del;
      del.remove_edges = batch.add_edges;
      updater.apply(del);
      cur = reduced;
      m = batch;
    } else {
      m = forest::make_vertex_batch(cur, 3, 3, seed++);
    }
    ASSERT_FALSE(forest::check_change_set(cur, m).has_value());
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);

    ContractionForest oracle(cur.capacity(), 4, 99);
    contract::construct(oracle, cur);
    ASSERT_TRUE(contract::structurally_equal(c, oracle))
        << "diverged at step " << step;
  }
}

// --- parameterized sweeps ----------------------------------------------

enum class BatchKind { kInsert, kDelete, kMixed, kVertices };

struct SweepCase {
  test::Shape shape;
  std::size_t n;
  std::size_t batch;
  BatchKind kind;
  std::uint64_t seed;
};

class UpdateEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UpdateEquivalence, MatchesFromScratch) {
  const SweepCase& p = GetParam();
  Forest full = p.shape.build(p.n, p.seed, /*extra=*/p.batch + 4);
  switch (p.kind) {
    case BatchKind::kInsert: {
      auto [initial, m] = forest::make_insert_batch(full, p.batch, p.seed);
      expect_equivalent(initial, m, p.seed * 7 + 1);
      break;
    }
    case BatchKind::kDelete: {
      ChangeSet m = forest::make_delete_batch(full, p.batch, p.seed);
      expect_equivalent(full, m, p.seed * 7 + 1);
      break;
    }
    case BatchKind::kMixed: {
      auto [initial, m] =
          forest::make_mixed_batch(full, p.batch / 2 + 1, p.batch / 2 + 1,
                                   p.seed);
      expect_equivalent(initial, m, p.seed * 7 + 1);
      break;
    }
    case BatchKind::kVertices: {
      // Chain-like shapes have a single non-root leaf; clamp deletions.
      std::size_t leaves = 0;
      for (VertexId v = 0; v < full.capacity(); ++v) {
        if (full.present(v) && full.is_leaf(v) && !full.is_root(v)) ++leaves;
      }
      ChangeSet m = forest::make_vertex_batch(
          full, p.batch / 2 + 1, std::min(p.batch / 2 + 1, leaves), p.seed);
      expect_equivalent(full, m, p.seed * 7 + 1);
      break;
    }
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> out;
  const BatchKind kinds[] = {BatchKind::kInsert, BatchKind::kDelete,
                             BatchKind::kMixed, BatchKind::kVertices};
  for (const auto& shape : test::kShapes) {
    if (std::string(shape.name) == "forest5") continue;  // no spare capacity
    for (std::size_t n : {64, 500}) {
      for (std::size_t batch : {1, 4, 16}) {
        for (BatchKind kind : kinds) {
          out.push_back({shape, n, batch, kind, 7919 + n + batch});
          out.push_back({shape, n, batch, kind, 104729 + 3 * n + 7 * batch});
        }
      }
    }
  }
  return out;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* kind = "";
  switch (info.param.kind) {
    case BatchKind::kInsert: kind = "ins"; break;
    case BatchKind::kDelete: kind = "del"; break;
    case BatchKind::kMixed: kind = "mix"; break;
    case BatchKind::kVertices: kind = "vtx"; break;
  }
  return std::string(info.param.shape.name) + "_n" +
         std::to_string(info.param.n) + "_b" +
         std::to_string(info.param.batch) + "_" + kind + "_s" +
         std::to_string(info.param.seed % 1000);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpdateEquivalence,
                         ::testing::ValuesIn(sweep_cases()), sweep_name);

// --- randomized soak: many random batches on one structure -------------

TEST(DynamicUpdate, RandomSoak) {
  Forest full = forest::build_tree(400, 4, 0.5, 1, 64);
  hashing::SplitMix64 rng(2718);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 1 + rng.next_below(20);
    const std::uint64_t s = rng.next();
    if (trial % 2 == 0) {
      auto [initial, m] = forest::make_insert_batch(full, k, s);
      expect_equivalent(initial, m, s ^ 0xABCD);
    } else {
      ChangeSet m = forest::make_delete_batch(full, k, s);
      expect_equivalent(full, m, s ^ 0xABCD);
    }
  }
}

// --- whole-forest batches (m ~ n) ---------------------------------------

TEST(DynamicUpdate, DeleteEveryEdge) {
  Forest f = forest::build_tree(200, 4, 0.6, 9);
  ChangeSet m;
  m.remove_edges = f.edges();
  expect_equivalent(f, m, 11);
}

TEST(DynamicUpdate, InsertEveryEdge) {
  Forest full = forest::build_tree(200, 4, 0.6, 9);
  ChangeSet m;
  m.add_edges = full.edges();
  Forest empty_edges(full.capacity(), 4, full.capacity());
  expect_equivalent(empty_edges, m, 11);
}

TEST(DynamicUpdate, BuildForestFromNothing) {
  // Start from an empty universe and create the whole forest via V+ / E+.
  Forest full = forest::build_tree(150, 4, 0.3, 21);
  ChangeSet m;
  for (VertexId v = 0; v < 150; ++v) m.ins_vertex(v);
  m.add_edges = full.edges();
  Forest empty(150, 4, 0);
  expect_equivalent(empty, m, 13);
}

TEST(DynamicUpdate, DeleteWholeForest) {
  Forest f = forest::build_tree(150, 4, 0.3, 21);
  ChangeSet m;
  m.remove_edges = f.edges();
  for (VertexId v = 0; v < 150; ++v) m.del_vertex(v);
  expect_equivalent(f, m, 13);
}

// --- stats / theorem-shaped checks --------------------------------------

TEST(DynamicUpdate, SmallBatchTouchesSmallRegion) {
  Forest full = forest::build_tree(20000, 4, 0.6, 3, 8);
  ChangeSet m = forest::make_delete_batch(full, 2, 5);
  ContractionForest c(full.capacity(), 4, 321);
  contract::construct(c, full);
  UpdateStats stats = contract::modify_contraction(c, m);
  // Lemma 7: |A^0| <= 3m. Lemma 10: E|A^i| = O(m); total affected across
  // O(log n) rounds stays far below n for constant m.
  EXPECT_LE(stats.initial_affected, 3 * m.size());
  EXPECT_LT(stats.total_affected, 2000u) << "update degenerated to O(n)";
  EXPECT_GT(stats.rounds, 0u);
}

TEST(DynamicUpdate, UpdatedDurationsShrinkStorage) {
  // Deleting all edges makes every vertex die in round 0 or 1; storage
  // must be truncated accordingly.
  Forest f = forest::build_chain(300);
  ContractionForest c(f.capacity(), 4, 1);
  contract::construct(c, f);
  ChangeSet m;
  m.remove_edges = f.edges();
  contract::modify_contraction(c, m);
  EXPECT_LE(c.total_records(), 300u);
  EXPECT_EQ(c.num_rounds(), 1u);  // all isolated: finalize in round 0
}

TEST(DynamicUpdate, DeterministicAcrossWorkerCounts) {
  Forest full = forest::build_tree(3000, 4, 0.6, 7, 8);
  auto [initial, m] = forest::make_insert_batch(full, 40, 9);

  par::scheduler::initialize(1);
  ContractionForest c1(initial.capacity(), 4, 55);
  contract::construct(c1, initial);
  contract::modify_contraction(c1, m);

  par::scheduler::initialize(4);
  ContractionForest c4(initial.capacity(), 4, 55);
  contract::construct(c4, initial);
  contract::modify_contraction(c4, m);
  par::scheduler::initialize(1);

  EXPECT_TRUE(contract::structurally_equal(c1, c4));
}

// Round-count telemetry must agree with the actual rounds executed on
// BOTH execution paths: previously nothing asserted that rounds ==
// |affected_per_round| == |neighborhood_per_round|, and a serial-path
// round that skipped the per-round recording would silently desynchronize
// them. Checked at cutover 0 (every round parallel), the ambient default,
// and SIZE_MAX (every round inline serial).
TEST(DynamicUpdate, RoundTelemetryMatchesRoundsAtEveryCutover) {
  Forest full = forest::build_tree(2000, 4, 0.6, 21, 0);
  auto [initial, m] = forest::make_insert_batch(full, 30, 5);

  const std::optional<std::size_t> cutovers[] = {
      std::size_t{0}, std::nullopt, ~std::size_t{0}};
  for (const auto& cutover : cutovers) {
    if (cutover.has_value()) {
      par::set_serial_cutover(*cutover);
    } else {
      par::clear_serial_cutover();
    }
    ContractionForest c(initial.capacity(), 4, 55);
    contract::construct(c, initial);
    const UpdateStats stats = contract::modify_contraction(c, m);
    ASSERT_GT(stats.rounds, 0u);

    std::uint64_t serial_rounds = 0;
    if constexpr (contract::kStatsEnabled) {
      EXPECT_EQ(stats.affected_per_round.size(), stats.rounds);
      EXPECT_EQ(stats.neighborhood_per_round.size(), stats.rounds);
      EXPECT_EQ(stats.serial_per_round.size(), stats.rounds);
      for (const std::uint8_t s : stats.serial_per_round) {
        serial_rounds += s;
      }
    }
    if (cutover == std::size_t{0}) {
      // No frontier is <= 0, so every decision chose the parallel path.
      EXPECT_EQ(stats.chose_serial, 0u);
      EXPECT_EQ(serial_rounds, 0u);
    } else if (cutover == ~std::size_t{0}) {
      // Every decision (initial phase + each round) chose serial.
      EXPECT_EQ(stats.chose_serial, stats.rounds + 1u);
      if constexpr (contract::kStatsEnabled) {
        EXPECT_EQ(serial_rounds, stats.rounds);
      }
    } else if constexpr (contract::kStatsEnabled) {
      // Ambient default: whatever split happened, the counter and the
      // per-round flags must tell the same story (the initial phase adds
      // at most one extra decision).
      EXPECT_GE(stats.chose_serial, serial_rounds);
      EXPECT_LE(stats.chose_serial, serial_rounds + 1u);
    }
  }
  par::clear_serial_cutover();
}

// The same accounting for construct(): the late contraction tail takes the
// serial fast path, and chose_serial counts one decision per round.
TEST(DynamicUpdate, ConstructCountsSerialTailRounds) {
  Forest f = forest::build_tree(3000, 4, 0.6, 17, 0);

  par::set_serial_cutover(~std::size_t{0});
  ContractionForest all_serial(f.capacity(), 4, 9);
  const contract::ConstructStats s1 = contract::construct(all_serial, f);
  EXPECT_EQ(s1.chose_serial, s1.rounds);

  par::set_serial_cutover(0);
  ContractionForest all_parallel(f.capacity(), 4, 9);
  const contract::ConstructStats s2 = contract::construct(all_parallel, f);
  EXPECT_EQ(s2.chose_serial, 0u);
  par::clear_serial_cutover();

  // Same coins, same structure — the execution path must not matter.
  EXPECT_TRUE(contract::structurally_equal(all_serial, all_parallel));
}

}  // namespace
}  // namespace parct
