// Tests of the SP-bags determinacy-race detector (analysis/sp_bags.hpp):
// planted races in parallel loops and fork trees MUST be flagged with a
// two-site report, disjoint or serially-separated accesses must stay
// clean, and — the acceptance property — Construct and batched Propagate
// must report zero races across the differential harness's seeded
// workloads. Everything is compiled out (and skipped) when the build does
// not define PARCT_RACE_DETECT=ON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/annotations.hpp"
#include "analysis/sp_bags.hpp"
#include "contraction/construct.hpp"
#include "contraction/contraction_forest.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "harness/differential.hpp"
#include "harness/workload.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/fork_join.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"
#include "primitives/workspace.hpp"
#include "service/batch_server.hpp"
#include "service/snapshot.hpp"

namespace parct {
namespace {

#if PARCT_RACE_DETECT

using analysis::spbags::DeterminacyRace;
using analysis::spbags::OnRace;
using analysis::spbags::Session;

class RaceDetectTest : public ::testing::Test {
 protected:
  void SetUp() override { par::scheduler::initialize(1); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_F(RaceDetectTest, PlantedWriteWriteRaceIsFlagged) {
  Session session(OnRace::kThrow);
  std::vector<int> data(64, 0);
  EXPECT_THROW(
      {
        PARCT_SHADOW_BUFFER(buf);
        par::parallel_for(0, data.size(), [&](std::size_t i) {
          // Every iteration writes logical cell 0: a textbook race.
          PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
          data[0] += static_cast<int>(i);
        });
      },
      DeterminacyRace);
  EXPECT_GE(session.races_detected(), 1u);
}

// The adaptive fast path must never hide accesses from the detector: a
// sub-cutover extent would run inline outside a session, but under an
// active session adaptive_for defers to parallel_for's grain-1 fork-tree
// modeling — so a race planted in a region small enough for the serial
// path is still flagged. Pinned at SIZE_MAX, the strongest serial forcing.
TEST_F(RaceDetectTest, PlantedRaceBelowCutoverIsStillFlagged) {
  par::set_serial_cutover(~std::size_t{0});
  Session session(OnRace::kThrow);
  std::vector<int> data(8, 0);
  EXPECT_THROW(
      {
        PARCT_SHADOW_BUFFER(buf);
        par::adaptive_for(0, data.size(), [&](std::size_t i) {
          PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
          data[0] += static_cast<int>(i);
        });
      },
      DeterminacyRace);
  EXPECT_GE(session.races_detected(), 1u);
  par::clear_serial_cutover();
}

TEST_F(RaceDetectTest, PlantedReadWriteRaceIsFlagged) {
  Session session(OnRace::kThrow);
  std::vector<int> data(64, 0);
  EXPECT_THROW(
      {
        PARCT_SHADOW_BUFFER(buf);
        par::parallel_for(0, data.size(), [&](std::size_t i) {
          if (i == 0) {
            PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 7));
            data[7] = 1;
          } else {
            PARCT_SHADOW_READ(analysis::buffer_cell(buf, 7));
            data[i] = data[7];
          }
        });
      },
      DeterminacyRace);
}

TEST_F(RaceDetectTest, DisjointWritesAreClean) {
  Session session(OnRace::kThrow);
  std::vector<int> data(512, 0);
  PARCT_SHADOW_BUFFER(buf);
  par::parallel_for(0, data.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, i));
    data[i] = static_cast<int>(i);
  });
  EXPECT_EQ(session.races_detected(), 0u);
  EXPECT_GE(session.procs_created(), data.size());
}

TEST_F(RaceDetectTest, JoinedPhasesAreSerial) {
  // A loop that writes every cell, then (after the implicit join) a loop
  // that reads them all: serial by the fork-join structure, not a race.
  Session session(OnRace::kThrow);
  std::vector<int> data(256, 0);
  PARCT_SHADOW_BUFFER(buf);
  par::parallel_for(0, data.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, i));
    data[i] = static_cast<int>(i);
  });
  long sum = 0;
  par::parallel_for(0, data.size(), [&](std::size_t i) {
    PARCT_SHADOW_READ(analysis::buffer_cell(buf, 0));  // everyone reads 0
    sum += data[0];  // benign: loop is serial under the detector
  });
  EXPECT_EQ(session.races_detected(), 0u);
}

TEST_F(RaceDetectTest, SiblingBranchesOfOneForkRace) {
  Session session(OnRace::kThrow);
  int x = 0;
  PARCT_SHADOW_BUFFER(buf);
  EXPECT_THROW(par::fork2join(
                   [&] {
                     PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
                     x = 1;
                   },
                   [&] {
                     PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
                     x = 2;
                   }),
               DeterminacyRace);
}

TEST_F(RaceDetectTest, SequentialForksDoNotRace) {
  Session session(OnRace::kThrow);
  int x = 0;
  PARCT_SHADOW_BUFFER(buf);
  par::fork2join(
      [&] {
        PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
        x = 1;
      },
      [&] {
        PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 1));
        x += 1;  // distinct logical cell
      });
  // The first fork fully joined, so this access is serial with both.
  par::fork2join(
      [&] {
        PARCT_SHADOW_READ(analysis::buffer_cell(buf, 0));
        (void)x;
      },
      [&] {
        PARCT_SHADOW_READ(analysis::buffer_cell(buf, 1));
        (void)x;
      });
  EXPECT_EQ(session.races_detected(), 0u);
}

TEST_F(RaceDetectTest, NestedForkRaceAgainstOuterSibling) {
  Session session(OnRace::kThrow);
  int x = 0;
  PARCT_SHADOW_BUFFER(buf);
  EXPECT_THROW(
      par::fork2join(
          [&] {
            par::fork2join([&] { (void)x; },
                           [&] {
                             PARCT_SHADOW_WRITE(
                                 analysis::buffer_cell(buf, 3));
                             x = 1;
                           });
          },
          [&] {
            // Logically parallel with the nested write above even though
            // the serial execution has already completed it.
            PARCT_SHADOW_READ(analysis::buffer_cell(buf, 3));
            (void)x;
          }),
      DeterminacyRace);
}

TEST_F(RaceDetectTest, ReportNamesBothSitesAndForkPaths) {
  Session session(OnRace::kThrow);
  std::vector<int> data(8, 0);
  std::string report;
  try {
    PARCT_SHADOW_BUFFER(buf);
    par::parallel_for(0, data.size(), [&](std::size_t i) {
      PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
      data[0] = static_cast<int>(i);
    });
  } catch (const DeterminacyRace& e) {
    report = e.what();
  }
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("race_detect_test.cpp"), std::string::npos) << report;
  EXPECT_NE(report.find("write-write"), std::string::npos) << report;
  EXPECT_NE(report.find("main -> "), std::string::npos) << report;
  EXPECT_NE(report.find("buffer #"), std::string::npos) << report;
}

TEST_F(RaceDetectTest, NoSessionMeansNoChecking) {
  // Without a live Session the annotations are inert and the planted race
  // runs (nondeterministically but harmlessly here) to completion.
  std::vector<int> data(64, 0);
  PARCT_SHADOW_BUFFER(buf);
  par::parallel_for(0, data.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
    data[i] = static_cast<int>(i);
  });
  SUCCEED();
}

TEST_F(RaceDetectTest, SessionsDoNotNest) {
  Session session(OnRace::kThrow);
  EXPECT_THROW(Session nested(OnRace::kThrow), std::logic_error);
}

TEST_F(RaceDetectTest, ConstructIsRaceFree) {
  Session session(OnRace::kThrow);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    forest::Forest f = forest::build_tree(300, 4, 0.5, seed, 20);
    contract::ContractionForest c(f.capacity(), 4, seed ^ 0xC0DE);
    contract::construct(c, f);
  }
  EXPECT_EQ(session.races_detected(), 0u);
  EXPECT_GT(session.cells_tracked(), 0u);
}

TEST_F(RaceDetectTest, SingleUpdateIsRaceFree) {
  Session session(OnRace::kThrow);
  forest::Forest f = forest::build_tree(400, 4, 0.6, 11, 0);
  contract::ContractionForest c(f.capacity(), 4, 99);
  contract::construct(c, f);
  const forest::ChangeSet m = forest::make_delete_batch(f, 24, 7);
  contract::modify_contraction(c, m);
  EXPECT_EQ(session.races_detected(), 0u);
}

TEST_F(RaceDetectTest, LeaseNoncesAreFreshPerAcquire) {
  // A recycled pool block must get a new logical buffer identity on every
  // acquire; otherwise writes of epoch k+1 would look write-write racy
  // against epoch k's (already joined) writes to the same cells.
  Session session(OnRace::kThrow);
  Workspace ws;
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  {
    auto lease = ws.acquire<std::uint32_t>(64);
    first = lease.shadow_nonce();
  }
  {
    auto lease = ws.acquire<std::uint32_t>(64);  // same block, pooled
    second = lease.shadow_nonce();
  }
  EXPECT_EQ(ws.stats().hits, 1u);  // really was recycled
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);
  EXPECT_NE(first, second);
}

TEST_F(RaceDetectTest, WorkspaceReuseAcrossEpochsIsRaceFree) {
  // Steady-state pipelines re-lease the same physical blocks every epoch.
  // With fresh nonces per acquire the detector must stay silent across
  // many reuse epochs of the fused scan+pack kernels.
  Session session(OnRace::kThrow);
  Workspace ws;
  std::vector<std::uint64_t> in(20000);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = i * 2654435761u;
  std::vector<std::uint64_t> packed;
  std::vector<std::uint64_t> scanned(in.size());
  for (int epoch = 0; epoch < 4; ++epoch) {
    ws.epoch_reset();
    prim::pack_into(in, [&](std::size_t i) { return (in[i] & 1) == 0; },
                    packed, ws);
    prim::exclusive_scan_into(in.data(), scanned.data(), in.size(), ws);
  }
  EXPECT_EQ(session.races_detected(), 0u);
  EXPECT_GT(ws.stats().hits, 0u);  // the blocks really were reused
}

// The acceptance check: whole harness workloads — construct, every batched
// Propagate, every from-scratch oracle, and the primitive pipelines they
// exercise — run under one detector session per trace with zero races.
TEST_F(RaceDetectTest, HarnessWorkloadsAreRaceFree) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    harness::WorkloadConfig config;
    config.seed = seed;
    config.n = 200;
    config.extra_capacity = 60;
    config.target_ops = 300;
    config.max_batch = 32;
    const harness::Trace t = harness::generate_trace(config);
    harness::RunOptions opts;
    opts.race_detect = true;
    const harness::RunResult r = harness::run_trace(t, opts);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

// The serving layer under the detector: step() runs deterministic
// single-threaded epochs designed for exactly this ("including SP-bags
// race-detector sessions", per its contract), so a session wrapped
// around a stepped run audits BatchServer::answer's annotated fan-outs
// over the pinned snapshot plus a full update epoch. Must stay silent.
TEST_F(RaceDetectTest, SteppedServiceEpochsAreRaceFree) {
  forest::Forest f = forest::build_tree(300, 4, 0.5, 17, 0);
  contract::ContractionForest c(f.capacity(), 4, 55);
  contract::construct(c, f);
  service::ServiceConfig cfg;
  cfg.overlap_updates = false;  // step() never overlaps; keep it explicit
  service::BatchServer server(c, cfg,
                              std::vector<service::Weight>(f.capacity(), 1));

  service::QueryBatch q;
  for (VertexId v = 0; v < 300; v += 3) {
    q.roots.push_back(v);
    q.connected.push_back({v, (v + 7) % 300});
    q.tree_weights.push_back(v);
  }
  auto qfut = server.submit_queries(q);
  service::UpdateRequest u;
  u.batch = forest::make_delete_batch(f, 16, 9);
  auto ufut = server.submit_update(std::move(u));

  Session session(OnRace::kThrow);
  while (server.step()) {
  }
  const service::QueryResult r1 = qfut.get();       // answered pre-update
  const service::UpdateResult ur = ufut.get();      // produced r1.version+1
  auto qfut2 = server.submit_queries(q);            // served at new version
  while (server.step()) {
  }
  const service::QueryResult r2 = qfut2.get();
  EXPECT_EQ(session.races_detected(), 0u);
  EXPECT_GT(session.cells_tracked(), 0u);
  EXPECT_EQ(r1.roots.size(), q.roots.size());
  EXPECT_EQ(ur.version, r1.version + 1);
  EXPECT_EQ(r2.version, ur.version);
}

TEST_F(RaceDetectTest, PlantedSnapshotFanoutRaceIsFlagged) {
  // The mistake answer()'s buffer_cell annotations exist to catch: a
  // fan-out over a pinned snapshot that funnels every iteration's result
  // into one shared cell instead of the iteration-owned slot.
  forest::Forest f = forest::build_tree(200, 4, 0.5, 23, 0);
  contract::ContractionForest c(f.capacity(), 4, 77);
  contract::construct(c, f);
  service::BatchServer server(c, {},
                              std::vector<service::Weight>(f.capacity(), 1));
  const service::SnapshotHandle snap = server.snapshot();

  Session session(OnRace::kThrow);
  std::vector<VertexId> out(64, kNoVertex);
  EXPECT_THROW(
      {
        PARCT_SHADOW_BUFFER(buf);
        par::parallel_for(0, out.size(), [&](std::size_t i) {
          PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, 0));
          out[0] = snap->root(static_cast<VertexId>(i));
        });
      },
      DeterminacyRace);
  EXPECT_GE(session.races_detected(), 1u);
}

#else  // !PARCT_RACE_DETECT

TEST(RaceDetectTest, SkippedWithoutRaceDetectBuild) {
  GTEST_SKIP() << "build with -DPARCT_RACE_DETECT=ON to run the SP-bags "
                  "detector tests";
}

TEST(RaceDetectTest, HarnessRefusesRaceDetectWhenCompiledOut) {
  harness::WorkloadConfig config;
  config.seed = 1;
  config.n = 40;
  config.target_ops = 20;
  const harness::Trace t = harness::generate_trace(config);
  harness::RunOptions opts;
  opts.race_detect = true;
  const harness::RunResult r = harness::run_trace(t, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("PARCT_RACE_DETECT"), std::string::npos)
      << r.failure;
  par::scheduler::initialize(1);
}

#endif  // PARCT_RACE_DETECT

}  // namespace
}  // namespace parct
