// Tests for dynamic path-to-root aggregates: correctness vs brute force
// on random forests, across batched structural updates (the value layer
// repropagates through the re-executed affected region), and for both sum
// and max monoids.
#include <gtest/gtest.h>

#include <map>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/path_aggregate.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;
using PathSum = rc::PathAggregate<long, rc::PathPlus>;
using PathMaxAgg = rc::PathAggregate<long, rc::PathMax>;

long brute_path_sum(const Forest& f, const std::map<VertexId, long>& w,
                    VertexId v) {
  long acc = 0;
  while (!f.is_root(v)) {
    acc += w.at(v);
    v = f.parent(v);
  }
  return acc;
}

long brute_path_max(const Forest& f, const std::map<VertexId, long>& w,
                    VertexId v) {
  long acc = LONG_MIN;
  while (!f.is_root(v)) {
    acc = std::max(acc, w.at(v));
    v = f.parent(v);
  }
  return acc;
}

TEST(PathAggregate, ChainSumsAndRoots) {
  const std::size_t n = 64;
  Forest f = forest::build_chain(n);
  ContractionForest c(n, 4, 7);
  PathSum agg(c, 0);
  for (VertexId v = 1; v < n; ++v) agg.stage_edge_weight(v, v);  // w(v)=v
  contract::construct(c, f, &agg);
  for (VertexId v = 0; v < n; ++v) {
    // sum of 1..v
    EXPECT_EQ(agg.path_to_root(v), static_cast<long>(v) * (v + 1) / 2)
        << "vertex " << v;
  }
}

TEST(PathAggregate, RandomTreeMatchesBruteForce) {
  const std::size_t n = 3000;
  Forest f = forest::build_tree(n, 4, 0.5, 11);
  ContractionForest c(n, 4, 13);
  PathSum agg(c, 0);
  std::map<VertexId, long> w;
  hashing::SplitMix64 rng(5);
  for (VertexId v = 0; v < n; ++v) {
    if (f.is_root(v)) continue;
    w[v] = static_cast<long>(rng.next_below(1000));
    agg.stage_edge_weight(v, w[v]);
  }
  contract::construct(c, f, &agg);
  for (int q = 0; q < 500; ++q) {
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    ASSERT_EQ(agg.path_to_root(v), brute_path_sum(f, w, v)) << v;
  }
}

TEST(PathAggregate, MaxMonoidBottleneck) {
  const std::size_t n = 1000;
  Forest f = forest::build_tree(n, 4, 0.7, 3);
  ContractionForest c(n, 4, 17);
  PathMaxAgg agg(c, LONG_MIN);
  std::map<VertexId, long> w;
  hashing::SplitMix64 rng(6);
  for (VertexId v = 0; v < n; ++v) {
    if (f.is_root(v)) continue;
    w[v] = static_cast<long>(rng.next_below(1 << 20));
    agg.stage_edge_weight(v, w[v]);
  }
  contract::construct(c, f, &agg);
  for (int q = 0; q < 300; ++q) {
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (f.is_root(v)) continue;
    ASSERT_EQ(agg.path_to_root(v), brute_path_max(f, w, v)) << v;
  }
}

TEST(PathAggregate, StaysCorrectAcrossBatchedUpdates) {
  const std::size_t n = 800;
  Forest full = forest::build_tree(n, 4, 0.6, 21);
  auto [cur, first_batch] = forest::make_insert_batch(full, 30, 2);

  ContractionForest c(full.capacity(), 4, 23);
  PathSum agg(c, 0);
  std::map<VertexId, long> w;
  hashing::SplitMix64 rng(9);
  for (VertexId v = 0; v < n; ++v) {
    if (cur.is_root(v)) continue;
    w[v] = static_cast<long>(rng.next_below(100));
    agg.stage_edge_weight(v, w[v]);
  }
  contract::construct(c, cur, &agg);
  DynamicUpdater updater(c);

  // Insert the held-out edges (with weights), then alternate random
  // deletions and re-insertions, checking the aggregate every step.
  for (const Edge& e : first_batch.add_edges) {
    w[e.child] = static_cast<long>(rng.next_below(100));
    agg.stage_edge_weight(e.child, w[e.child]);
  }
  updater.apply(first_batch, &agg);
  cur = forest::apply_change_set(cur, first_batch);

  std::vector<Edge> held_out;
  for (int step = 0; step < 8; ++step) {
    if (step % 2 == 0) {
      ChangeSet del = forest::make_delete_batch(cur, 15, rng.next());
      held_out = del.remove_edges;
      for (const Edge& e : del.remove_edges) w.erase(e.child);
      updater.apply(del, &agg);
      cur = forest::apply_change_set(cur, del);
    } else {
      ChangeSet ins;
      ins.add_edges = held_out;
      for (const Edge& e : ins.add_edges) {
        w[e.child] = static_cast<long>(rng.next_below(100));
        agg.stage_edge_weight(e.child, w[e.child]);
      }
      updater.apply(ins, &agg);
      cur = forest::apply_change_set(cur, ins);
    }
    for (int q = 0; q < 200; ++q) {
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      ASSERT_EQ(agg.path_to_root(v), brute_path_sum(cur, w, v))
          << "step " << step << " vertex " << v;
    }
  }
}

TEST(PathAggregate, WeightChangeViaReinsertion) {
  Forest f = forest::build_chain(40);
  ContractionForest c(40, 4, 31);
  PathSum agg(c, 0);
  for (VertexId v = 1; v < 40; ++v) agg.stage_edge_weight(v, 1);
  contract::construct(c, f, &agg);
  EXPECT_EQ(agg.path_to_root(39), 39);

  // Change edge (20 -> 19) weight to 100 by delete+reinsert in two steps.
  DynamicUpdater updater(c);
  ChangeSet del;
  del.del_edge(20, 19);
  updater.apply(del, &agg);
  ChangeSet ins;
  ins.ins_edge(20, 19);
  agg.stage_edge_weight(20, 100);
  updater.apply(ins, &agg);

  EXPECT_EQ(agg.path_to_root(39), 39 - 1 + 100);
  EXPECT_EQ(agg.path_to_root(19), 19);
}

TEST(PathAggregate, RebuildMatchesIncremental) {
  const std::size_t n = 500;
  Forest f = forest::build_tree(n, 4, 0.4, 4);
  ContractionForest c(n, 4, 5);
  PathSum incremental(c, 0);
  hashing::SplitMix64 rng(8);
  std::vector<long> base(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (f.is_root(v)) continue;
    base[v] = static_cast<long>(rng.next_below(50));
    incremental.stage_edge_weight(v, base[v]);
  }
  contract::construct(c, f, &incremental);

  // A second aggregate bound to the already-built structure, filled only
  // via rebuild().
  PathSum rebuilt(c, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!f.is_root(v)) rebuilt.stage_edge_weight(v, base[v]);
  }
  rebuilt.rebuild();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(rebuilt.path_to_root(v), incremental.path_to_root(v)) << v;
  }
}

TEST(PathAggregate, NewVertexChainGrafted) {
  Forest f = forest::build_chain(20, 4);
  ContractionForest c(f.capacity(), 4, 41);
  PathSum agg(c, 0);
  for (VertexId v = 1; v < 20; ++v) agg.stage_edge_weight(v, 2);
  contract::construct(c, f, &agg);
  DynamicUpdater updater(c);

  ChangeSet graft;
  graft.ins_vertex(20).ins_vertex(21);
  graft.ins_edge(20, 19).ins_edge(21, 20);
  agg.stage_edge_weight(20, 5);
  agg.stage_edge_weight(21, 7);
  updater.apply(graft, &agg);

  EXPECT_EQ(agg.path_to_root(21), 19 * 2 + 5 + 7);
  EXPECT_EQ(agg.path_to_root(20), 19 * 2 + 5);
}

}  // namespace
}  // namespace parct
