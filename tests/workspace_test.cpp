// Tests for the Workspace scratch arena (primitives/workspace.hpp) and the
// memory discipline it enforces: size-class pooling (hit/miss accounting),
// epoch semantics, tracked destination growth — and the steady-state
// acceptance property of this codebase: after a warm-up batch, repeated
// Propagate cycles perform ZERO heap allocations (no pool misses, no
// container growths, no fresh bytes), so batch updates do not grow peak
// memory round over round.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "contraction/construct.hpp"
#include "contraction/contraction_forest.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/workspace.hpp"

namespace parct {
namespace {

TEST(WorkspaceTest, FirstAcquireMissesThenHits) {
  Workspace ws;
  {
    auto lease = ws.acquire<std::uint32_t>(100);
    EXPECT_EQ(lease.size(), 100u);
    lease[0] = 7;
    lease[99] = 9;
    EXPECT_EQ(lease[0], 7u);
  }
  EXPECT_EQ(ws.stats().acquires, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);
  EXPECT_EQ(ws.stats().hits, 0u);
  {
    // Same size class: served from the pool.
    auto lease = ws.acquire<std::uint32_t>(100);
    (void)lease;
  }
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);
  {
    // A different (larger) class must allocate.
    auto lease = ws.acquire<std::uint32_t>(100000);
    (void)lease;
  }
  EXPECT_EQ(ws.stats().misses, 2u);
}

TEST(WorkspaceTest, SizeClassesAreSharedAcrossTypes) {
  // Pooling is by byte size class, not element type: 16 uint32s and 8
  // uint64s both round up to the 64-byte class.
  Workspace ws;
  { auto a = ws.acquire<std::uint64_t>(8); (void)a; }
  { auto b = ws.acquire<std::uint32_t>(16); (void)b; }
  EXPECT_EQ(ws.stats().misses, 1u);
  EXPECT_EQ(ws.stats().hits, 1u);
}

TEST(WorkspaceTest, OutstandingAndConcurrentLeases) {
  Workspace ws;
  EXPECT_EQ(ws.outstanding(), 0u);
  {
    auto a = ws.acquire<std::uint32_t>(10);
    auto b = ws.acquire<std::uint32_t>(10);  // a still live: fresh block
    EXPECT_EQ(ws.outstanding(), 2u);
    (void)a;
    (void)b;
  }
  EXPECT_EQ(ws.outstanding(), 0u);
  EXPECT_EQ(ws.stats().misses, 2u);
  {
    // Both blocks are back in the class's free list.
    auto a = ws.acquire<std::uint32_t>(10);
    auto b = ws.acquire<std::uint32_t>(10);
    (void)a;
    (void)b;
  }
  EXPECT_EQ(ws.stats().misses, 2u);
  EXPECT_EQ(ws.stats().hits, 2u);
}

TEST(WorkspaceTest, EpochResetKeepsCapacityAndCounts) {
  Workspace ws;
  { auto a = ws.acquire<std::uint32_t>(4096); (void)a; }
  const std::uint64_t held = ws.stats().bytes_held;
  EXPECT_GT(held, 0u);
  ws.epoch_reset();
  ws.epoch_reset();
  EXPECT_EQ(ws.stats().epochs, 2u);
  EXPECT_EQ(ws.stats().bytes_held, held);  // capacity retained
  { auto a = ws.acquire<std::uint32_t>(4096); (void)a; }
  EXPECT_EQ(ws.stats().misses, 1u);  // still a pool hit after the reset
}

TEST(WorkspaceTest, TrimReleasesCachedBlocks) {
  Workspace ws;
  { auto a = ws.acquire<std::uint32_t>(1000); (void)a; }
  EXPECT_GT(ws.stats().bytes_held, 0u);
  ws.trim();
  EXPECT_EQ(ws.stats().bytes_held, 0u);
  { auto a = ws.acquire<std::uint32_t>(1000); (void)a; }
  EXPECT_EQ(ws.stats().misses, 2u);  // trimmed block is gone
}

TEST(WorkspaceTest, ResizeTrackedRecordsGrowthOnly) {
  Workspace ws;
  std::vector<std::uint32_t> v;
  ws.resize_tracked(v, 100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(ws.stats().container_growths, 1u);
  const std::uint64_t bytes = ws.stats().container_bytes;
  EXPECT_GE(bytes, 100 * sizeof(std::uint32_t));
  // Shrinking and re-growing within capacity is free.
  ws.resize_tracked(v, 10);
  ws.resize_tracked(v, 100);
  EXPECT_EQ(ws.stats().container_growths, 1u);
  EXPECT_EQ(ws.stats().container_bytes, bytes);
}

TEST(WorkspaceTest, StatsDeltaSubtractsCounters) {
  Workspace ws;
  { auto a = ws.acquire<std::uint32_t>(10); (void)a; }
  const WorkspaceStats begin = ws.stats();
  { auto a = ws.acquire<std::uint32_t>(10); (void)a; }
  { auto a = ws.acquire<std::uint32_t>(1u << 20); (void)a; }
  const WorkspaceStats d = workspace_stats_delta(begin, ws.stats());
  EXPECT_EQ(d.acquires, 2u);
  EXPECT_EQ(d.hits, 1u);
  EXPECT_EQ(d.misses, 1u);
  EXPECT_GT(d.bytes_allocated, 0u);
}

TEST(WorkspaceTest, WorkerWorkspaceIsStablePerThread) {
  par::scheduler::initialize(2);
  Workspace& a = par::scheduler::worker_workspace();
  Workspace& b = par::scheduler::worker_workspace();
  EXPECT_EQ(&a, &b);
}

// The steady-state acceptance property (and the peak-memory regression
// guard): a warmed DynamicUpdater applies batch after batch with zero heap
// allocations — every scratch acquire is a pool hit and no reused buffer
// ever grows. Verified for an insert/inverse-delete cycle, which restores
// the structure exactly between iterations (differential-tested identity),
// so every cycle re-executes the same allocation profile.
TEST(WorkspaceSteadyState, PropagateIsAllocationFreeAfterWarmup) {
  par::scheduler::initialize(4);
  const std::size_t n = 50000;
  forest::Forest full = forest::build_tree(n, 4, 0.6, 0x5EEDull);
  auto [initial, batch] = forest::make_insert_batch(full, 800, 31);
  forest::ChangeSet inverse;
  inverse.remove_edges = batch.add_edges;

  contract::ContractionForest c(full.capacity(), 4, 99);
  contract::construct(c, initial);
  contract::DynamicUpdater updater(c);

  // Warm-up: the first cycle grows every pool block and buffer capacity.
  const contract::UpdateStats cold = updater.apply(batch);
  updater.apply(inverse);
  EXPECT_GT(cold.ws_acquires, 0u);

  for (int cycle = 0; cycle < 4; ++cycle) {
    const contract::UpdateStats fwd = updater.apply(batch);
    EXPECT_EQ(fwd.ws_misses, 0u) << "insert, cycle " << cycle;
    EXPECT_EQ(fwd.ws_container_growths, 0u) << "insert, cycle " << cycle;
    EXPECT_EQ(fwd.ws_bytes_allocated, 0u) << "insert, cycle " << cycle;
    EXPECT_EQ(fwd.ws_acquires, fwd.ws_hits) << "insert, cycle " << cycle;

    const contract::UpdateStats inv = updater.apply(inverse);
    EXPECT_EQ(inv.ws_misses, 0u) << "delete, cycle " << cycle;
    EXPECT_EQ(inv.ws_container_growths, 0u) << "delete, cycle " << cycle;
    EXPECT_EQ(inv.ws_bytes_allocated, 0u) << "delete, cycle " << cycle;
  }
  par::scheduler::initialize(1);
}

// The adaptive serial fast path (par::AdaptivePhase; sub-cutover rounds
// run inline) must preserve the allocation discipline: a warmed m=1 update
// — whose every round takes the serial path under the default cutover —
// still leases all scratch from the pool and never grows a buffer.
TEST(WorkspaceSteadyState, SerialFastPathStaysAllocationFreeWarm) {
  par::scheduler::initialize(1);
  forest::Forest full = forest::build_tree(50000, 4, 0.6, 0xFA57ull);
  auto [initial, batch] = forest::make_insert_batch(full, 1, 3);
  forest::ChangeSet inverse;
  inverse.remove_edges = batch.add_edges;

  contract::ContractionForest c(full.capacity(), 4, 99);
  contract::construct(c, initial);
  contract::DynamicUpdater updater(c);
  updater.apply(batch);  // warm-up cycle
  updater.apply(inverse);

  for (int cycle = 0; cycle < 4; ++cycle) {
    const contract::UpdateStats fwd = updater.apply(batch);
    // The fast path must actually engage (m=1 frontiers are far below the
    // default cutover) AND stay allocation-free.
    EXPECT_GT(fwd.chose_serial, 0u) << "cycle " << cycle;
    EXPECT_EQ(fwd.ws_misses, 0u) << "cycle " << cycle;
    EXPECT_EQ(fwd.ws_container_growths, 0u) << "cycle " << cycle;
    EXPECT_EQ(fwd.ws_bytes_allocated, 0u) << "cycle " << cycle;
    const contract::UpdateStats inv = updater.apply(inverse);
    EXPECT_GT(inv.chose_serial, 0u) << "cycle " << cycle;
    EXPECT_EQ(inv.ws_misses, 0u) << "cycle " << cycle;
    EXPECT_EQ(inv.ws_container_growths, 0u) << "cycle " << cycle;
  }
}

// Same property for mixed delete batches: after the first application of a
// given batch shape, re-applying comparable batches stays within the warmed
// capacities.
TEST(WorkspaceSteadyState, RepeatedDeleteBatchesDoNotGrowMemory) {
  par::scheduler::initialize(4);
  const std::size_t n = 30000;
  forest::Forest f = forest::build_tree(n, 4, 0.5, 0xD00Dull);
  contract::ContractionForest c(f.capacity(), 4, 7);
  contract::construct(c, f);
  contract::DynamicUpdater updater(c);

  const forest::ChangeSet m = forest::make_delete_batch(f, 500, 13);
  forest::ChangeSet inverse;
  inverse.add_edges = m.remove_edges;

  updater.apply(m);
  updater.apply(inverse);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const contract::UpdateStats del = updater.apply(m);
    EXPECT_EQ(del.ws_misses, 0u) << "cycle " << cycle;
    EXPECT_EQ(del.ws_container_growths, 0u) << "cycle " << cycle;
    const contract::UpdateStats ins = updater.apply(inverse);
    EXPECT_EQ(ins.ws_misses, 0u) << "cycle " << cycle;
    EXPECT_EQ(ins.ws_container_growths, 0u) << "cycle " << cycle;
  }
  par::scheduler::initialize(1);
}

// construct() over a warm external Workspace re-leases every block from
// the pool (deterministic coins => identical round sizes => identical size
// classes).
TEST(WorkspaceSteadyState, ConstructReusesWarmWorkspace) {
  par::scheduler::initialize(4);
  const std::size_t n = 30000;
  forest::Forest f = forest::build_tree(n, 4, 0.6, 0xABCDull);
  Workspace ws;

  contract::ContractionForest c1(f.capacity(), 4, 42);
  const contract::ConstructStats first =
      contract::construct(c1, f, nullptr, &ws);
  EXPECT_GT(first.ws_acquires, 0u);
  EXPECT_GT(first.ws_misses, 0u);  // cold pool

  contract::ContractionForest c2(f.capacity(), 4, 42);
  const contract::ConstructStats second =
      contract::construct(c2, f, nullptr, &ws);
  EXPECT_EQ(second.ws_misses, 0u);
  EXPECT_EQ(second.ws_acquires, second.ws_hits);
  par::scheduler::initialize(1);
}

}  // namespace
}  // namespace parct
