// Tests for the 4-wise independent hash family.
#include <gtest/gtest.h>

#include <map>

#include "hashing/four_independent.hpp"

namespace parct::hashing {
namespace {

TEST(FourIndependentHash, DeterministicAndInField) {
  FourIndependentHash h(1, 2, 3, 4);
  const std::uint64_t keys[] = {0, 1, 12345, kMersenne61 - 1};
  for (std::uint64_t x : keys) {
    EXPECT_EQ(h(x), h(x));
    EXPECT_LT(h(x), kMersenne61);
  }
}

TEST(FourIndependentHash, KnownPolynomial) {
  // h(x) = 2x^3 + 3x^2 + 5x + 7 at small x (no wrap-around).
  FourIndependentHash h(7, 5, 3, 2);
  EXPECT_EQ(h(0), 7u);
  EXPECT_EQ(h(1), 17u);
  EXPECT_EQ(h(2), 16u + 12u + 10u + 7u);
  EXPECT_EQ(h(10), 2000u + 300u + 50u + 7u);
}

TEST(FourIndependentHash, CoinBalanced) {
  SplitMix64 rng(3);
  int heads = 0;
  const int kMembers = 300, kKeys = 100;
  for (int m = 0; m < kMembers; ++m) {
    FourIndependentHash h = FourIndependentHash::random(rng);
    for (int k = 0; k < kKeys; ++k) heads += h.coin(k) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / (kMembers * kKeys), 0.5, 0.02);
}

TEST(FourIndependentHash, FourTupleIndependenceEmpirically) {
  // Over random members, the 16 outcome combinations of 4 fixed keys
  // should be ~uniform (1/16 each) — the property 2-wise families lack.
  SplitMix64 rng(9);
  const int kMembers = 16000;
  std::map<int, int> counts;
  for (int m = 0; m < kMembers; ++m) {
    FourIndependentHash h = FourIndependentHash::random(rng);
    const int combo = (h.coin(11) << 3) | (h.coin(222) << 2) |
                      (h.coin(3333) << 1) | h.coin(44444);
    ++counts[combo];
  }
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [combo, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kMembers, 1.0 / 16, 0.01)
        << "combo " << combo;
  }
}

TEST(FourIndependentHash, AdjacentPairEventsNearQuarter) {
  // P[!coin(x) && coin(x+1)] should be ~1/4 for consecutive keys — the
  // "compress" pair event on chains.
  SplitMix64 rng(17);
  const int kMembers = 4000, kKeys = 50;
  int hits = 0;
  for (int m = 0; m < kMembers; ++m) {
    FourIndependentHash h = FourIndependentHash::random(rng);
    for (int x = 0; x < kKeys; ++x) {
      hits += (!h.coin(x) && h.coin(x + 1)) ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / (kMembers * kKeys), 0.25, 0.01);
}

}  // namespace
}  // namespace parct::hashing
