// Failure semantics of the serving layer: deadline-carrying submits,
// overload shedding, bounded retry of aborted update epochs, the degraded
// serial-fallback mode, and the stop() contract (no future survives
// unresolved). Deterministic step()-driven epochs except where a parked
// submitter thread is the thing under test; under PARCT_RACE_DETECT the
// stepped scenarios run beneath the SP-bags detector.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "fault/fault_injection.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct::service {
namespace {

using namespace std::chrono_literals;

class ServiceDeadlineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 900;

  void SetUp() override {
    par::scheduler::initialize(4);
    f_ = forest::random_forest(kN, 6, 4, 0.4, 23);
    c_ = std::make_unique<contract::ContractionForest>(kN, 4, 3);
    contract::construct(*c_, f_);
  }
  void TearDown() override {
    fault::disarm();
    par::scheduler::initialize(1);
  }

  QueryBatch sample_queries(std::uint64_t seed, std::size_t k) const {
    hashing::SplitMix64 rng(seed);
    QueryBatch q;
    for (std::size_t i = 0; i < k; ++i) {
      q.roots.push_back(static_cast<VertexId>(rng.next_below(kN)));
      q.connected.push_back({static_cast<VertexId>(rng.next_below(kN)),
                             static_cast<VertexId>(rng.next_below(kN))});
      q.tree_weights.push_back(static_cast<VertexId>(rng.next_below(kN)));
    }
    return q;
  }

  void expect_matches(const QueryBatch& q, const QueryResult& r,
                      const forest::Forest& oracle) const {
    for (std::size_t i = 0; i < q.roots.size(); ++i) {
      ASSERT_EQ(r.roots[i], forest::root_of(oracle, q.roots[i])) << i;
    }
    for (std::size_t i = 0; i < q.connected.size(); ++i) {
      ASSERT_EQ(r.connected[i] != 0,
                forest::root_of(oracle, q.connected[i].first) ==
                    forest::root_of(oracle, q.connected[i].second))
          << i;
    }
  }

  forest::Forest f_{0};
  std::unique_ptr<contract::ContractionForest> c_;
};

TEST_F(ServiceDeadlineTest, ExpiredQueryDeadlineRejectsInsteadOfServingStale) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  // Admission is instant (queue empty) but the deadline has passed by the
  // time the epoch starts.
  auto late = server.submit_queries_for(sample_queries(1, 40), 0ns);
  auto fresh = server.submit_queries_for(sample_queries(2, 40), 10min);
  std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(server.step());
  EXPECT_THROW(late.get(), DeadlineExceeded);
  QueryResult r = fresh.get();
  EXPECT_EQ(r.version, 0u);
  EXPECT_EQ(server.stats().deadline_rejections, 1u);
}

TEST_F(ServiceDeadlineTest, ExpiredUpdateDeadlineLeavesStructureUntouched) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 5, 11);
  auto fut = server.submit_update_for(std::move(u), 0ns);
  std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(server.step());
  EXPECT_THROW(fut.get(), DeadlineExceeded);
  EXPECT_EQ(server.version(), 0u) << "expired update must not publish";

  // The same batch with a fresh deadline applies normally.
  UpdateRequest again;
  again.batch = forest::make_delete_batch(f_, 5, 11);
  auto ok = server.submit_update_for(std::move(again), 10min);
  ASSERT_TRUE(server.step());
  EXPECT_EQ(ok.get().version, 1u);
}

TEST_F(ServiceDeadlineTest, AdmissionTimeoutOnFullQueue) {
  ServiceConfig cfg;
  cfg.max_pending_query_batches = 1;
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  auto first = server.submit_queries(sample_queries(3, 20));
  // The queue is full and nothing drains it: the deadline-carrying submit
  // must give up at its deadline instead of blocking forever.
  const auto t0 = std::chrono::steady_clock::now();
  auto timed = server.submit_queries_for(sample_queries(4, 20), 30ms);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  EXPECT_THROW(timed.get(), DeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_rejections, 1u);
  ASSERT_TRUE(server.step());
  EXPECT_EQ(first.get().version, 0u);
}

TEST_F(ServiceDeadlineTest, ShedsOldestQueriesBeyondHighWater) {
  ServiceConfig cfg;
  cfg.query_shed_high_water = 2;
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  std::vector<QueryBatch> batches;
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 5; ++i) {
    batches.push_back(sample_queries(10 + i, 30));
    futs.push_back(server.submit_queries(batches.back()));
  }
  ASSERT_TRUE(server.step());
  // The three oldest batches shed; the two newest are served correctly.
  std::uint64_t shed_items = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(futs[i].get(), QueryShed) << i;
    shed_items += batches[i].size();
  }
  for (int i = 3; i < 5; ++i) {
    QueryResult r = futs[i].get();
    EXPECT_EQ(r.version, 0u);
    expect_matches(batches[i], r, f_);
  }
  EXPECT_EQ(server.stats().queries_shed, shed_items);
  EXPECT_EQ(server.stats().queries_served, batches[3].size() +
                                               batches[4].size());
}

TEST_F(ServiceDeadlineTest, DegradedModeServesCorrectlyOffThePool) {
  BatchServer server(*c_, {}, std::vector<Weight>(kN, 1));
  ASSERT_TRUE(server.pool_healthy());
  server.set_pool_healthy(false);

  QueryBatch q = sample_queries(30, 60);
  auto qfut = server.submit_queries(q);
  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 6, 31);
  forest::Forest f1 = forest::apply_change_set(f_, u.batch);
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());
  expect_matches(q, qfut.get(), f_);
  EXPECT_EQ(ufut.get().version, 1u);
  EXPECT_EQ(server.stats().degraded_epochs, 1u);

  // Recovery: marking the pool healthy again ends the fallback.
  server.set_pool_healthy(true);
  QueryBatch q1 = sample_queries(32, 60);
  auto qfut1 = server.submit_queries(q1);
  ASSERT_TRUE(server.step());
  expect_matches(q1, qfut1.get(), f1);
  EXPECT_EQ(server.stats().degraded_epochs, 1u);
}

#if PARCT_FAULT_INJECT

TEST_F(ServiceDeadlineTest, ReadYourWritesHoldsAcrossEpochRetry) {
  ServiceConfig cfg;
  cfg.max_epoch_retries = 2;
  cfg.retry_backoff = std::chrono::microseconds(50);
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));

  // The first apply attempt aborts at the boundary; the retry succeeds.
  fault::Plan plan;
  plan.seed = 7;
  plan[fault::Site::kEpochApply] = {fault::Mode::kOnce, 0, 1, 1};
  fault::arm(plan);

  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 8, 41);
  forest::Forest f1 = forest::apply_change_set(f_, u.batch);
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());
  UpdateResult ur = ufut.get();  // resolves — the retry applied the batch
  EXPECT_EQ(ur.version, 1u);
  EXPECT_EQ(fault::fired(fault::Site::kEpochApply), 1u);
  EXPECT_EQ(server.stats().epoch_retries, 1u);

  // Read-your-writes: the waiter's next snapshot observes the write even
  // though the epoch aborted once along the way.
  const SnapshotHandle snap = server.snapshot();
  ASSERT_EQ(snap.version(), 1u);
  for (VertexId v = 0; v < kN; v += 17) {
    ASSERT_EQ(snap->root(v), forest::root_of(f1, v));
  }
}

TEST_F(ServiceDeadlineTest, ExhaustedRetriesRejectCleanly) {
  ServiceConfig cfg;
  cfg.max_epoch_retries = 1;
  cfg.retry_backoff = std::chrono::microseconds(50);
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));

  fault::Plan plan;  // abort every attempt
  plan.seed = 8;
  plan[fault::Site::kEpochApply] = {fault::Mode::kBurst, 0, 1, 1000};
  fault::arm(plan);

  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 8, 43);
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());
  EXPECT_THROW(ufut.get(), EpochAborted);
  EXPECT_EQ(server.version(), 0u) << "aborted epoch must not publish";
  EXPECT_EQ(server.stats().epoch_retries, 1u);

  // The abort fired pre-mutation: the server is NOT poisoned. Disarm and
  // the same batch applies.
  fault::disarm();
  UpdateRequest again;
  again.batch = forest::make_delete_batch(f_, 8, 43);
  auto ok = server.submit_update(std::move(again));
  ASSERT_TRUE(server.step());
  EXPECT_EQ(ok.get().version, 1u);
}

#endif  // PARCT_FAULT_INJECT

#if !PARCT_RACE_DETECT

TEST_F(ServiceDeadlineTest, StopUnblocksParkedSubmitters) {
  // Regression: a submitter parked on a full admission queue must be woken
  // by stop() and have its future rejected with ServerStopped — before
  // this contract, stop() left it blocked forever.
  ServiceConfig cfg;
  cfg.max_pending_query_batches = 1;
  cfg.max_pending_updates = 1;
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  auto queued_q = server.submit_queries(sample_queries(50, 10));
  UpdateRequest u0;
  u0.batch = forest::make_delete_batch(f_, 2, 51);
  auto queued_u = server.submit_update(std::move(u0));

  std::promise<std::future<QueryResult>> parked_q_slot;
  auto parked_q = parked_q_slot.get_future();
  std::thread qsub([&] {
    parked_q_slot.set_value(server.submit_queries(sample_queries(52, 10)));
  });
  std::promise<std::future<UpdateResult>> parked_u_slot;
  auto parked_u = parked_u_slot.get_future();
  std::thread usub([&] {
    UpdateRequest u1;
    u1.batch = forest::make_delete_batch(f_, 2, 53);
    parked_u_slot.set_value(server.submit_update(std::move(u1)));
  });
  std::this_thread::sleep_for(30ms);  // let both park on cv_space_

  server.stop();
  qsub.join();
  usub.join();
  EXPECT_THROW(parked_q.get().get(), ServerStopped);
  EXPECT_THROW(parked_u.get().get(), ServerStopped);
  // No engine ever ran: the admitted-but-unserved requests reject too —
  // no future survives stop() unresolved.
  EXPECT_THROW(queued_q.get(), ServerStopped);
  EXPECT_THROW(queued_u.get(), ServerStopped);
  // And fail-fast afterwards.
  EXPECT_THROW(server.submit_queries(QueryBatch{}), ServerStopped);
  EXPECT_THROW(server.submit_update(UpdateRequest{}), ServerStopped);
}

TEST_F(ServiceDeadlineTest, EngineServesDeadlineTrafficEndToEnd) {
  ServiceConfig cfg;
  cfg.query_shed_high_water = 64;  // high enough not to trigger
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  server.start();
  std::vector<std::pair<QueryBatch, std::future<QueryResult>>> futs;
  for (int i = 0; i < 16; ++i) {
    QueryBatch q = sample_queries(60 + i, 40);
    futs.emplace_back(q, server.submit_queries_for(q, 10min));
  }
  server.stop();
  for (auto& [q, fut] : futs) {
    QueryResult r = fut.get();  // generous deadlines: all served
    EXPECT_EQ(r.version, 0u);
    expect_matches(q, r, f_);
  }
  EXPECT_EQ(server.stats().deadline_rejections, 0u);
  EXPECT_EQ(server.stats().queries_shed, 0u);
}

#else  // PARCT_RACE_DETECT

TEST_F(ServiceDeadlineTest, SteppedDegradationUnderRaceDetector) {
  // The stepped composite: shed + deadline + degraded epochs beneath the
  // SP-bags detector — the failure paths must not introduce determinacy
  // races into the epoch pipeline.
  ServiceConfig cfg;
  cfg.query_shed_high_water = 2;  // sheds only the oldest of the three
  BatchServer server(*c_, cfg, std::vector<Weight>(kN, 1));
  server.set_pool_healthy(false);
  auto shed = server.submit_queries(sample_queries(70, 30));
  QueryBatch q = sample_queries(71, 30);
  auto expired = server.submit_queries_for(sample_queries(72, 30), 0ns);
  std::this_thread::sleep_for(1ms);
  auto served = server.submit_queries(q);
  UpdateRequest u;
  u.batch = forest::make_delete_batch(f_, 4, 73);
  auto ufut = server.submit_update(std::move(u));
  ASSERT_TRUE(server.step());
  EXPECT_THROW(shed.get(), QueryShed);
  EXPECT_THROW(expired.get(), DeadlineExceeded);
  expect_matches(q, served.get(), f_);
  EXPECT_EQ(ufut.get().version, 1u);
  EXPECT_EQ(server.stats().degraded_epochs, 1u);
}

#endif  // PARCT_RACE_DETECT

}  // namespace
}  // namespace parct::service
