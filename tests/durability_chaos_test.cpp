// Chaos-kill recovery soak (docs/DURABILITY.md): for every durability
// fault site and schedule shape, drive a checkpointing BatchServer through
// a seeded update workload while faults fire at fsync, at the checkpoint
// rename, and mid-WAL-append (a genuinely torn tail record), then kill the
// server without any clean shutdown and recover the directory.
//
// The acceptance invariant is durable-before-ack: recovery must land at a
// version V with  max(acked versions) <= V <= (updates applied in memory),
// and the recovered state must answer root / connectivity / tree-weight
// queries exactly like the oracle chain at version V. A torn or unsynced
// tail record may legitimately be dropped (it was never acknowledged) or
// kept (it reached the page cache) — anything else is a bug.
//
// Like tests/chaos_test.cpp, this is substantive only under
// -DPARCT_FAULT_INJECT=ON and skips otherwise; a failing schedule prints a
// PARCT_CHAOS_SPEC replay line via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "durability/manager.hpp"
#include "fault/fault_injection.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct::service {
namespace {

#if !PARCT_FAULT_INJECT

TEST(DurabilityChaos, RequiresFaultInjectBuild) {
  GTEST_SKIP() << "built without PARCT_FAULT_INJECT; the durability "
                  "chaos-kill schedules run in the fault-injection CI job";
}

#else  // PARCT_FAULT_INJECT

namespace fs = std::filesystem;

constexpr std::size_t kN = 500;
constexpr int kUpdates = 18;

constexpr fault::Site kDurabilitySites[] = {
    fault::Site::kDurabilityFsync,
    fault::Site::kDurabilityRename,
    fault::Site::kWalAppend,
};

class DurabilityChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    par::scheduler::initialize(4);
    dir_ = fs::path(::testing::TempDir()) /
           ("parct_durability_chaos_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
  }
  void TearDown() override {
    fault::disarm();
    fs::remove_all(dir_);
    par::scheduler::initialize(1);
  }

  std::string fresh_dir() {
    const fs::path d = dir_ / std::to_string(run_++);
    fs::remove_all(d);
    fs::create_directories(d);
    return d.string();
  }

  fs::path dir_;
  int run_ = 0;
};

// Oracle chain indexed by version: the plain forest and the weight table
// after each update that actually applied in memory (acked or not).
struct Oracle {
  std::vector<forest::Forest> at;
  std::vector<std::vector<Weight>> w_at;

  void apply(const forest::ChangeSet& batch,
             const std::pair<VertexId, Weight>& assign) {
    at.push_back(forest::apply_change_set(at.back(), batch));
    std::vector<Weight> w = w_at.back();
    if (assign.first < at.back().capacity() &&
        at.back().present(assign.first)) {
      w[assign.first] = assign.second;
    }
    w_at.push_back(std::move(w));
  }
};

void run_kill_recover(const fault::Plan& plan, const std::string& dir) {
  SCOPED_TRACE("replay: PARCT_CHAOS_SPEC='" + fault::format_plan(plan) +
               "'");
  forest::Forest f =
      forest::random_forest(kN, 6, 4, 0.4, plan.seed % 997 + 5);
  auto c = std::make_unique<contract::ContractionForest>(
      kN, 4, plan.seed ^ 0x5EED);
  contract::construct(*c, f);

  auto mgr = std::make_unique<durability::Manager>(dir);
  mgr->checkpoint(*c, std::vector<Weight>(kN, 1), 0);
  ServiceConfig cfg;
  cfg.durability = mgr.get();
  cfg.checkpoint_every = 4;
  auto server =
      std::make_unique<BatchServer>(*c, cfg, std::vector<Weight>(kN, 1));

  fault::arm(plan);

  // Batches are generated against the chain as if every update landed;
  // delete batches stay valid when an earlier one was rejected, and the
  // oracle below applies only the batches that actually reached the
  // structure.
  forest::Forest hypothetical = f;
  struct Submitted {
    forest::ChangeSet batch;
    std::pair<VertexId, Weight> assign;
    std::future<UpdateResult> fut;
  };
  std::vector<Submitted> subs;
  for (int i = 0; i < kUpdates; ++i) {
    forest::ChangeSet batch =
        forest::make_delete_batch(hypothetical, 3, plan.seed * 100 + i);
    hypothetical = forest::apply_change_set(hypothetical, batch);
    UpdateRequest u;
    u.batch = batch;
    const std::pair<VertexId, Weight> assign = {
        static_cast<VertexId>((i * 37) % kN), static_cast<Weight>(i + 2)};
    u.vertex_weights.push_back(assign);
    auto fut = server->submit_update(std::move(u));
    subs.push_back({std::move(batch), assign, std::move(fut)});
    server->step();
  }
  while (server->step()) {
  }
  // The workload must actually have reached the armed sites — guards
  // against a wiring change that silently stops evaluating them.
  EXPECT_GT(fault::hits(fault::Site::kWalAppend) +
                fault::hits(fault::Site::kDurabilityFsync),
            0u);
  fault::disarm();

  // Classify every future and reconstruct the applied chain. A successful
  // future acks its version; DurabilityLost means the update applied in
  // memory but was never acknowledged (its WAL record may be torn); any
  // other rejection (updates halted after fail-stop, admission drop) means
  // the batch never touched the structure.
  Oracle oracle;
  oracle.at = {f};
  oracle.w_at = {std::vector<Weight>(kN, 1)};
  std::uint64_t max_acked = 0;
  for (Submitted& s : subs) {
    bool applied = false;
    try {
      const UpdateResult ur = s.fut.get();
      ASSERT_EQ(ur.version, oracle.at.size())
          << "versions must advance by one per applied update";
      max_acked = ur.version;
      applied = true;
    } catch (const DurabilityLost&) {
      applied = true;  // applied in memory, not durable, not acked
    } catch (const std::runtime_error&) {
      // updates halted after fail-stop / admission drop: never applied
    }
    if (applied) oracle.apply(s.batch, s.assign);
  }

  // Kill: no stop-side checkpoint, no log close — the directory is
  // whatever the faults left behind.
  server.reset();
  mgr.reset();
  c.reset();

  RecoveredServer rec = BatchServer::recover(dir);
  const std::uint64_t applied = oracle.at.size() - 1;
  ASSERT_GE(rec.version, max_acked)
      << "recovery lost an acknowledged update";
  ASSERT_LE(rec.version, applied)
      << "recovery invented a version beyond the applied history";
  EXPECT_EQ(rec.server->version(), rec.version);
  EXPECT_EQ(rec.server->stats().recovery_replayed, rec.replayed);

  // Differential check at exactly the recovered version: roots,
  // connectivity, and tree weights against the oracle chain.
  const forest::Forest& want = oracle.at[rec.version];
  const std::vector<Weight>& ww = oracle.w_at[rec.version];
  std::vector<Weight> component(kN, 0);
  for (VertexId v = 0; v < kN; ++v) {
    if (want.present(v)) component[forest::root_of(want, v)] += ww[v];
  }
  QueryBatch q;
  for (VertexId v = 0; v < kN; ++v) {
    q.roots.push_back(v);
    q.connected.push_back({v, static_cast<VertexId>((v * 7 + 1) % kN)});
    q.tree_weights.push_back(v);
  }
  auto qfut = rec.server->submit_queries(q);
  ASSERT_TRUE(rec.server->step());
  const QueryResult r = qfut.get();
  EXPECT_EQ(r.version, rec.version);
  for (std::size_t i = 0; i < q.roots.size(); ++i) {
    ASSERT_EQ(r.roots[i], forest::root_of(want, q.roots[i]))
        << "root mismatch at recovered version " << rec.version;
    ASSERT_EQ(r.connected[i] != 0,
              forest::root_of(want, q.connected[i].first) ==
                  forest::root_of(want, q.connected[i].second))
        << "connectivity mismatch at recovered version " << rec.version;
    ASSERT_EQ(r.tree_weights[i],
              component[forest::root_of(want, q.tree_weights[i])])
        << "tree weight mismatch at recovered version " << rec.version;
  }

  // The recovered incarnation must itself be durable: apply one more
  // update, kill again, and recover past it.
  UpdateRequest u;
  u.batch = forest::make_delete_batch(want, 2, plan.seed + 31337);
  auto ufut = rec.server->submit_update(std::move(u));
  ASSERT_TRUE(rec.server->step());
  EXPECT_EQ(ufut.get().version, rec.version + 1);
  const std::uint64_t next = rec.version + 1;
  rec.server->stop();
  rec.server.reset();
  rec.manager.reset();
  EXPECT_EQ(durability::Manager::recover(dir).version, next);
}

fault::SiteSchedule make_schedule(fault::Mode mode, hashing::SplitMix64& g) {
  fault::SiteSchedule s;
  s.mode = mode;
  // Durability sites see few hits per run (one fsync per record, one
  // rename per checkpoint), so keep the first firing index small enough
  // that the schedule actually fires mid-history.
  s.at = g.next_below(6);
  s.every = 1 + g.next_below(4);
  s.len = 1 + g.next_below(3);
  return s;
}

TEST_F(DurabilityChaos, KillAtEverySiteUnderEveryMode) {
  const std::uint64_t base_seed = static_cast<std::uint64_t>(
      ::testing::UnitTest::GetInstance()->random_seed());
  for (const fault::Site site : kDurabilitySites) {
    for (const fault::Mode mode :
         {fault::Mode::kOnce, fault::Mode::kPeriodic, fault::Mode::kBurst}) {
      fault::Plan plan;
      plan.seed = base_seed * 31 + static_cast<unsigned>(site) * 5 +
                  static_cast<unsigned>(mode);
      hashing::SplitMix64 g(plan.seed);
      plan[site] = make_schedule(mode, g);
      run_kill_recover(plan, fresh_dir());
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(DurabilityChaos, AllDurabilitySitesCombined) {
  fault::Plan plan;
  plan.seed = 90210;
  hashing::SplitMix64 g(plan.seed);
  plan[fault::Site::kDurabilityFsync] =
      make_schedule(fault::Mode::kPeriodic, g);
  plan[fault::Site::kDurabilityRename] =
      make_schedule(fault::Mode::kOnce, g);
  plan[fault::Site::kWalAppend] = make_schedule(fault::Mode::kBurst, g);
  run_kill_recover(plan, fresh_dir());
}

TEST_F(DurabilityChaos, TornAppendNeverLosesAckedUpdates) {
  // The sharpest case pinned deterministically: the torn-tail site firing
  // exactly once at each early append. Every acked version must survive
  // recovery no matter which record tears.
  for (std::uint64_t at = 0; at < 5; ++at) {
    fault::Plan plan;
    plan.seed = 7000 + at;
    plan[fault::Site::kWalAppend] = {fault::Mode::kOnce, at, 1, 1};
    run_kill_recover(plan, fresh_dir());
    if (HasFatalFailure()) return;
  }
}

#endif  // PARCT_FAULT_INJECT

}  // namespace
}  // namespace parct::service
