// Edge cases for the parallel primitives (scan, pack, counting): empty
// input, single element, all-flags-set / all-clear, and sizes straddling
// the internal block boundaries (kBlock = 4096 for scan, 8192 for
// counting) so both the sequential fallback and the blocked parallel
// paths — including the one-element spill block — are exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/counting.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"

namespace parct {
namespace {

// Straddles the kBlock thresholds of scan.hpp (4096) and counting.hpp
// (8192): below, exactly on, one past, and multiple blocks.
const std::size_t kSizes[] = {0,    1,    2,    4095, 4096, 4097,
                              8191, 8192, 8193, 16384};

std::vector<std::uint64_t> ramp(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761u) % 97;
  return v;
}

class PrimitivesEdgeCases : public ::testing::Test {
 protected:
  // Multiple workers so the blocked parallel paths actually run.
  void SetUp() override { par::scheduler::initialize(4); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_F(PrimitivesEdgeCases, ExclusiveScanMatchesSequential) {
  for (const std::size_t n : kSizes) {
    const std::vector<std::uint64_t> in = ramp(n);
    std::vector<std::uint64_t> out;
    const std::uint64_t total = prim::exclusive_scan(in, out);

    std::vector<std::uint64_t> want(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = acc;
      acc += in[i];
    }
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(out, want) << "n=" << n;
  }
}

TEST_F(PrimitivesEdgeCases, ExclusiveScanInPlaceAndAliased) {
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> v = ramp(n);
    const std::vector<std::uint64_t> in = v;
    const std::uint64_t total = prim::exclusive_scan_inplace(v);
    EXPECT_EQ(total, std::accumulate(in.begin(), in.end(),
                                     std::uint64_t{0}))
        << "n=" << n;
    if (n > 0) {
      EXPECT_EQ(v[0], 0u) << "n=" << n;
      EXPECT_EQ(v[n - 1], total - in[n - 1]) << "n=" << n;
    }
  }
}

TEST_F(PrimitivesEdgeCases, InclusiveScanMatchesSequential) {
  for (const std::size_t n : kSizes) {
    const std::vector<std::uint64_t> in = ramp(n);
    std::vector<std::uint64_t> out(n);
    const std::uint64_t total =
        prim::inclusive_scan(in.data(), out.data(), n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      EXPECT_EQ(out[i], acc) << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(total, acc) << "n=" << n;
  }
}

TEST_F(PrimitivesEdgeCases, ScanEmptyAndSingle) {
  std::vector<int> out;
  EXPECT_EQ(prim::exclusive_scan(std::vector<int>{}, out), 0);
  EXPECT_TRUE(out.empty());

  EXPECT_EQ(prim::exclusive_scan(std::vector<int>{7}, out), 7);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);

  int one = 5;
  int inc = 0;
  EXPECT_EQ(prim::inclusive_scan(&one, &inc, 1), 5);
  EXPECT_EQ(inc, 5);
}

TEST_F(PrimitivesEdgeCases, PackAllFlagsSetAndClear) {
  for (const std::size_t n : kSizes) {
    const auto all = prim::pack_index(n, [](std::size_t) { return true; });
    ASSERT_EQ(all.size(), n) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(all[i], i) << "n=" << n;
    }
    const auto none =
        prim::pack_index(n, [](std::size_t) { return false; });
    EXPECT_TRUE(none.empty()) << "n=" << n;
  }
}

TEST_F(PrimitivesEdgeCases, PackKeepsOrderAcrossBlockBoundaries) {
  for (const std::size_t n : kSizes) {
    const auto pred = [](std::size_t i) { return i % 3 == 1; };
    const auto idx = prim::pack_index(n, pred);
    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) want.push_back(static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(idx, want) << "n=" << n;

    std::vector<std::uint32_t> values(n);
    std::iota(values.begin(), values.end(), 100u);
    const auto packed = prim::pack(values, pred);
    ASSERT_EQ(packed.size(), want.size()) << "n=" << n;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(packed[i], want[i] + 100u) << "n=" << n;
    }
  }
}

TEST_F(PrimitivesEdgeCases, PackSingleElement) {
  EXPECT_EQ(prim::pack_index(1, [](std::size_t) { return true; }),
            std::vector<std::uint32_t>{0});
  EXPECT_TRUE(
      prim::pack_index(1, [](std::size_t) { return false; }).empty());
  const std::vector<int> one{42};
  EXPECT_EQ(prim::filter(one, [](int v) { return v == 42; }), one);
  EXPECT_TRUE(prim::filter(one, [](int v) { return v != 42; }).empty());
}

TEST_F(PrimitivesEdgeCases, HistogramMatchesSequentialCount) {
  const std::size_t num_keys = 7;
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> keys(n);
    hashing::SplitMix64 rng(n + 1);
    for (auto& k : keys) {
      k = static_cast<std::uint32_t>(rng.next_below(num_keys));
    }
    const auto counts = prim::histogram(
        n, [&](std::size_t i) { return keys[i]; }, num_keys);
    std::vector<std::uint32_t> want(num_keys, 0);
    for (const auto k : keys) ++want[k];
    EXPECT_EQ(counts, want) << "n=" << n;
  }
}

TEST_F(PrimitivesEdgeCases, HistogramSingleKeyBucket) {
  // All elements in one bucket (the "all flags set" shape for counting).
  const std::size_t n = 8193;
  const auto counts =
      prim::histogram(n, [](std::size_t) { return std::size_t{0}; }, 1);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], n);
}

TEST_F(PrimitivesEdgeCases, CountingSortIsStable) {
  const std::size_t num_keys = 5;
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> keys(n);
    hashing::SplitMix64 rng(n + 17);
    for (auto& k : keys) {
      k = static_cast<std::uint32_t>(rng.next_below(num_keys));
    }
    const auto order = prim::counting_sort_indices(
        n, [&](std::size_t i) { return keys[i]; }, num_keys);

    std::vector<std::uint32_t> want(n);
    std::iota(want.begin(), want.end(), 0u);
    std::stable_sort(want.begin(), want.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return keys[a] < keys[b];
                     });
    EXPECT_EQ(order, want) << "n=" << n;
  }
}

TEST_F(PrimitivesEdgeCases, CountingSortDegenerateKeys) {
  // Single key value: the sort must be the identity permutation.
  const std::size_t n = 16384;
  const auto order = prim::counting_sort_indices(
      n, [](std::size_t) { return std::size_t{0}; }, 1);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(order[i], i);
  }
  // Empty and single-element inputs.
  EXPECT_TRUE(prim::counting_sort_indices(
                  0, [](std::size_t) { return std::size_t{0}; }, 3)
                  .empty());
  EXPECT_EQ(prim::counting_sort_indices(
                1, [](std::size_t) { return std::size_t{2}; }, 3),
            std::vector<std::uint32_t>{0});
}

}  // namespace
}  // namespace parct
