// Tests for the fork-join work-stealing scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/fork_join.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/stats.hpp"

namespace parct::par {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override { scheduler::initialize(1); }
};

TEST_F(SchedulerTest, SingleWorkerRunsInline) {
  scheduler::initialize(1);
  int a = 0, b = 0;
  fork2join([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_F(SchedulerTest, ForkJoinBothBranchesRun) {
  scheduler::initialize(4);
  std::atomic<int> count{0};
  fork2join([&] { count.fetch_add(1); }, [&] { count.fetch_add(2); });
  EXPECT_EQ(count.load(), 3);
}

TEST_F(SchedulerTest, NestedForksComputeFibonacci) {
  scheduler::initialize(4);
  // Recursive fork tree exercises deep nesting and stealing.
  struct Fib {
    static long run(int n) {
      if (n < 2) return n;
      long x = 0, y = 0;
      fork2join([&] { x = run(n - 1); }, [&] { y = run(n - 2); });
      return x + y;
    }
  };
  EXPECT_EQ(Fib::run(20), 6765);
}

TEST_F(SchedulerTest, ParallelInvokeVariadic) {
  scheduler::initialize(3);
  std::atomic<int> mask{0};
  parallel_invoke([&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); },
                  [&] { mask.fetch_or(4); }, [&] { mask.fetch_or(8); },
                  [&] { mask.fetch_or(16); });
  EXPECT_EQ(mask.load(), 31);
}

TEST_F(SchedulerTest, ExceptionFromSecondBranchPropagates) {
  scheduler::initialize(2);
  EXPECT_THROW(
      fork2join([] {}, [] { throw std::runtime_error("branch 2"); }),
      std::runtime_error);
}

TEST_F(SchedulerTest, ExceptionFromFirstBranchStillJoins) {
  scheduler::initialize(2);
  std::atomic<bool> second_ran{false};
  EXPECT_THROW(fork2join([] { throw std::logic_error("branch 1"); },
                         [&] { second_ran.store(true); }),
               std::logic_error);
  EXPECT_TRUE(second_ran.load());
}

TEST_F(SchedulerTest, ReinitializeChangesWorkerCount) {
  scheduler::initialize(2);
  EXPECT_EQ(scheduler::num_workers(), 2u);
  scheduler::initialize(5);
  EXPECT_EQ(scheduler::num_workers(), 5u);
  scheduler::initialize(1);
  EXPECT_EQ(scheduler::num_workers(), 1u);
}

TEST_F(SchedulerTest, ManySmallRegionsNoDeadlock) {
  scheduler::initialize(4);
  long total = 0;
  for (int round = 0; round < 200; ++round) {
    long x = 0, y = 0;
    fork2join([&] { x = round; }, [&] { y = 2 * round; });
    total += x + y;
  }
  EXPECT_EQ(total, 3L * 199 * 200 / 2);
}

TEST_F(SchedulerTest, HeavyImbalanceIsStolen) {
  scheduler::initialize(4);
  // One branch is long, the other forks many short tasks. Just verifies
  // completion and the final sum.
  std::atomic<long> sum{0};
  fork2join(
      [&] {
        for (int i = 0; i < 1000; ++i) sum.fetch_add(1);
      },
      [&] {
        for (int i = 0; i < 100; ++i) {
          fork2join([&] { sum.fetch_add(3); }, [&] { sum.fetch_add(7); });
        }
      });
  EXPECT_EQ(sum.load(), 1000 + 100 * 10);
}

TEST_F(SchedulerTest, WorkerIdStableOnMainThread) {
  scheduler::initialize(3);
  EXPECT_EQ(scheduler::worker_id(), 0u);
  fork2join([] {}, [] {});
  EXPECT_EQ(scheduler::worker_id(), 0u);
}

TEST_F(SchedulerTest, PushPopWorkWithoutExplicitInitialization) {
  // push_task/pop_task used to dereference a null pool when issued before
  // any call that initialized it; they must now start the pool themselves.
  scheduler::shutdown();
  std::atomic<bool> ran{false};
  auto f = [&] { ran.store(true); };
  ClosureTask<decltype(f)> t(f);
  scheduler::detail::push_task(&t);
  if (Task* popped = scheduler::detail::pop_task()) {
    EXPECT_EQ(popped, &t);
    popped->run();
  } else {
    // A freshly started helper stole it; wait for completion.
    scheduler::detail::wait_for(&t);
  }
  EXPECT_TRUE(ran.load());
  EXPECT_GE(scheduler::num_workers(), 1u);
}

TEST_F(SchedulerTest, ReinitializeInsideParallelRegionThrows) {
  scheduler::initialize(4);
  bool threw = false;
  fork2join(
      [&] {
        try {
          scheduler::initialize(2);  // would destroy in-flight deques
        } catch (const std::logic_error&) {
          threw = true;
        }
      },
      [] {});
  EXPECT_TRUE(threw);
  // Same count stays idempotent (and allowed) inside a region.
  fork2join([] { scheduler::initialize(4); }, [] {});
  EXPECT_EQ(scheduler::num_workers(), 4u);
}

TEST_F(SchedulerTest, ReinitializeInvalidatesStaleWorkerIds) {
  // A thread that carried a worker id from a previous (larger) pool must
  // not index past the new pool's worker array.
  scheduler::initialize(8);
  fork2join([] {}, [] {});
  scheduler::initialize(2);
  std::atomic<int> count{0};
  fork2join([&] { count.fetch_add(1); }, [&] { count.fetch_add(2); });
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(scheduler::worker_id(), 0u);
}

TEST_F(SchedulerTest, StatsReportStealsOnImbalancedWork) {
  scheduler::initialize(4);
  stats::reset();
  // Keep forking until some helper has stolen; with 4 workers and
  // fine-grained tasks the first round suffices in practice.
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::atomic<std::uint64_t> sink{0};
    parallel_for(
        0, 2000,
        [&](std::size_t i) {
          std::uint64_t h = i * 0x9E3779B97F4A7C15ull;
          h ^= h >> 31;
          sink.fetch_add(h, std::memory_order_relaxed);
        },
        /*grain=*/1);
    if (stats::snapshot().steals > 0) break;
  }
  const stats::PoolCounters counters = stats::snapshot();
  EXPECT_EQ(counters.num_workers, 4u);
  EXPECT_EQ(counters.workers.size(), 4u);
  EXPECT_GT(counters.steals, 0u);
  EXPECT_GT(counters.tasks_executed, 0u);
  // Pool totals are the sums of the per-worker counters.
  std::uint64_t steals = 0, tasks = 0;
  for (const stats::WorkerCounters& w : counters.workers) {
    steals += w.steals;
    tasks += w.tasks_executed;
  }
  EXPECT_EQ(counters.steals, steals);
  EXPECT_EQ(counters.tasks_executed, tasks);
}

TEST_F(SchedulerTest, EnvWorkerCountParsesStrictly) {
  // PARCT_NUM_THREADS must be a whole in-range positive integer; anything
  // else (garbage suffix, zero, negative, overflow) falls back to the
  // hardware default instead of being silently truncated.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 1 : hw;
  struct Case {
    const char* env;
    unsigned expect;
  };
  const Case cases[] = {
      {"3", 3u},          {"1", 1u},
      {"3x", fallback},   {"abc", fallback},
      {"0", fallback},    {"-2", fallback},
      {"", fallback},     {"99999999999999999999", fallback},
      {"4096", fallback},  // above the sanity cap
  };
  for (const Case& c : cases) {
    ASSERT_EQ(setenv("PARCT_NUM_THREADS", c.env, 1), 0);
    scheduler::initialize(0);  // 0 = use the environment/hardware default
    EXPECT_EQ(scheduler::num_workers(), c.expect) << "env=\"" << c.env
                                                  << "\"";
  }
  unsetenv("PARCT_NUM_THREADS");
}

TEST_F(SchedulerTest, StatsResetZeroesCounters) {
  scheduler::initialize(4);
  for (int round = 0; round < 20; ++round) fork2join([] {}, [] {});
  stats::reset();
  // parks may tick up asynchronously (idle helpers going to sleep), but
  // steals/tasks/wakeups only move when new work is pushed.
  const stats::PoolCounters counters = stats::snapshot();
  EXPECT_EQ(counters.steals, 0u);
  EXPECT_EQ(counters.tasks_executed, 0u);
  EXPECT_EQ(counters.wakeups, 0u);
}

}  // namespace
}  // namespace parct::par
