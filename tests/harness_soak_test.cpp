// Long-soak differential test: one seeded trace per worker count, each a
// long randomized batch history checked step-by-step against the
// from-scratch oracle and the LCT/ETT baselines (see tests/harness/).
//
// Scale knobs (nightly CI turns these up, see .github/workflows/ci.yml):
//   PARCT_HARNESS_OPS      operations per history   (default 6000;
//                          1500 under sanitizers)
//   PARCT_HARNESS_WORKERS  comma-separated worker counts (default 1,2,4)
//   PARCT_HARNESS_SEED     master seed (default 20170724)
//
// On failure the trace is auto-shrunk and dumped as a replay file
// (honoring $PARCT_REPLAY_DIR) so the exact run can be re-executed with
// `parct_cli replay <file>`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/differential.hpp"
#include "harness/shrink.hpp"
#include "harness/workload.hpp"
#include "parallel/scheduler.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10)
                                    : fallback;
}

std::vector<unsigned> worker_counts() {
  const char* s = std::getenv("PARCT_HARNESS_WORKERS");
  const std::string csv = s != nullptr && *s != '\0' ? s : "1,2,4";
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      out.push_back(static_cast<unsigned>(std::strtoul(tok.c_str(),
                                                       nullptr, 10)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

class HarnessSoakTest : public ::testing::Test {
 protected:
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_F(HarnessSoakTest, LongHistoryAcrossWorkerCounts) {
  const std::uint64_t ops =
      env_u64("PARCT_HARNESS_OPS", test::kSanitizedBuild ? 1500 : 6000);
  const std::uint64_t seed = env_u64("PARCT_HARNESS_SEED", 20170724);

  harness::RunOptions opts;
  opts.check_scratch_every = 4;
  opts.queries_per_step = 8;

  for (const unsigned workers : worker_counts()) {
    harness::WorkloadConfig config;
    config.seed = seed + workers;  // fresh history per worker count
    config.target_ops = ops;
    config.num_workers = workers;
    const harness::Trace t = harness::generate_trace(config);
    ASSERT_GE(t.total_ops(), ops) << "workers=" << workers;

    const harness::RunResult r = harness::run_trace(t, opts);
    if (r.failed()) {
      harness::ShrinkReport report;
      const harness::Trace small = harness::shrink_trace(t, opts, &report);
      const std::string path = harness::dump_replay(small);
      FAIL() << "workers=" << workers << " failed at step " << r.failed_step
             << ": " << r.failure << "\nshrunk to " << small.steps.size()
             << " steps (" << report.runs << " shrink runs), replay: "
             << path << "\nre-run with: parct_cli replay " << path;
    }
    EXPECT_GT(r.steps_applied, 0u);
  }
}

// The same history must produce the same structure regardless of how the
// scheduler is perturbed: identical trace, different worker count and
// steal-order seed, still clean (the coin schedule pins every contraction).
TEST_F(HarnessSoakTest, ScheduleDoesNotAffectOutcome) {
  harness::WorkloadConfig config;
  config.seed = env_u64("PARCT_HARNESS_SEED", 20170724) ^ 0x5C4ED;
  config.target_ops =
      std::min<std::uint64_t>(2000, env_u64("PARCT_HARNESS_OPS",
                                            test::kSanitizedBuild ? 1000
                                                                  : 2000));
  config.num_workers = 1;
  harness::Trace t = harness::generate_trace(config);

  for (const unsigned workers : worker_counts()) {
    t.num_workers = workers;
    t.steal_seed = 0x9E3779B97F4A7C15ull * (workers + 1);
    const harness::RunResult r = harness::run_trace(t);
    EXPECT_TRUE(r.ok) << "workers=" << workers << ", step " << r.failed_step
                      << ": " << r.failure;
  }
}

}  // namespace
}  // namespace parct
