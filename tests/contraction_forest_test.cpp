// Tests for the ContractionForest container itself, the analysis module,
// the independent validator's ability to catch corruption, and event hooks
// during construction and dynamic updates.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "contraction/analysis.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"

namespace parct::contract {
namespace {

TEST(ContractionForest, CapacityAndGrowth) {
  ContractionForest c(10, 4, 1);
  EXPECT_EQ(c.capacity(), 10u);
  c.ensure_capacity(5);  // no shrink
  EXPECT_EQ(c.capacity(), 10u);
  c.ensure_capacity(20);
  EXPECT_EQ(c.capacity(), 20u);
  EXPECT_EQ(c.duration(19), 0u);
  EXPECT_THROW(ContractionForest(4, 0, 1), std::invalid_argument);
}

TEST(ContractionForest, StructurallyEqualToleratesCapacityPadding) {
  forest::Forest f = forest::build_chain(50);
  ContractionForest a(50, 4, 9);
  construct(a, f);
  forest::Forest f2 = forest::build_chain(50, /*extra_capacity=*/30);
  ContractionForest b(80, 4, 9);
  construct(b, f2);
  EXPECT_TRUE(structurally_equal(a, b));
  EXPECT_TRUE(structurally_equal(b, a));
}

TEST(ContractionForest, StructurallyEqualCatchesDifferences) {
  forest::Forest f = forest::build_chain(50);
  ContractionForest a(50, 4, 9);
  construct(a, f);
  // Different duration.
  {
    ContractionForest b(50, 4, 9);
    construct(b, f);
    b.set_duration(10, b.duration(10) + 1);
    EXPECT_FALSE(structurally_equal(a, b));
  }
  // Different parent in some round.
  {
    ContractionForest b(50, 4, 9);
    construct(b, f);
    b.record_mut(0, 20).parent = 3;
    EXPECT_FALSE(structurally_equal(a, b));
  }
}

TEST(Validator, CatchesCorruptedParent) {
  forest::Forest f = forest::build_tree(200, 4, 0.4, 2);
  ContractionForest c(200, 4, 3);
  construct(c, f);
  ASSERT_FALSE(check_valid(c, f).has_value());
  c.record_mut(1, 150).parent = 150;  // corrupt a mid-contraction record
  EXPECT_TRUE(check_valid(c, f).has_value());
}

TEST(Validator, CatchesCorruptedDuration) {
  forest::Forest f = forest::build_tree(200, 4, 0.4, 2);
  ContractionForest c(200, 4, 3);
  construct(c, f);
  const VertexId victim = 120;
  c.set_duration(victim, c.duration(victim) > 1 ? 1 : 2);
  EXPECT_TRUE(check_valid(c, f).has_value());
}

TEST(Validator, CatchesWrongForest) {
  forest::Forest f = forest::build_tree(200, 4, 0.4, 2);
  ContractionForest c(200, 4, 3);
  construct(c, f);
  forest::Forest g = forest::build_tree(200, 4, 0.4, 99);  // different tree
  EXPECT_TRUE(check_valid(c, g).has_value());
}

// --- analysis / profile -------------------------------------------------

TEST(Analysis, ProfileAccountsEveryVertexOnce) {
  forest::Forest f = forest::random_forest(3000, 4, 4, 0.5, 8);
  ContractionForest c(3000, 4, 17);
  ConstructStats stats = construct(c, f);
  ContractionProfile p = profile(c);

  ASSERT_EQ(p.num_rounds(), stats.rounds);
  EXPECT_EQ(p.total_work(), stats.total_live);
  std::uint64_t deaths = 0, finals = 0;
  for (std::size_t i = 0; i < p.rounds.size(); ++i) {
    EXPECT_EQ(p.rounds[i].live, stats.live_per_round[i]);
    deaths += p.rounds[i].contracted();
    finals += p.rounds[i].finalizes;
  }
  EXPECT_EQ(deaths, f.num_present());
  EXPECT_EQ(finals, f.roots().size());
}

TEST(Analysis, GeometricDecayEmpirically) {
  // Lemma 5: E|V^{i+1}| <= (3/4)|V^i|. Empirically the worst observed
  // per-round shrink over big rounds should stay clearly below 1.
  forest::Forest f = forest::build_tree(50000, 4, 0.6, 4);
  ContractionForest c(f.capacity(), 4, 5);
  construct(c, f);
  ContractionProfile p = profile(c);
  EXPECT_LT(p.worst_decay(/*min_live=*/1000), 0.95);
}

TEST(Analysis, ChainDecayNearThreeQuartersOnAverage) {
  // On a pure chain every interior vertex compresses with probability 1/4
  // in expectation, so live counts shrink by ~3/4 per round *on average*.
  // Individual rounds fluctuate (2-wise independent coins only pin the
  // expectation, not adjacent-pair correlations), so we check the
  // geometric-mean decay over the large rounds.
  forest::Forest f = forest::build_chain(100000);
  ContractionForest c(f.capacity(), 4, 6);
  construct(c, f);
  ContractionProfile p = profile(c);
  std::size_t last_big = 0;
  while (last_big + 1 < p.rounds.size() &&
         p.rounds[last_big + 1].live >= 10000) {
    ++last_big;
  }
  ASSERT_GE(last_big, 3u);
  const double mean_ratio =
      std::exp(std::log(static_cast<double>(p.rounds[last_big].live) /
                        p.rounds[0].live) /
               static_cast<double>(last_big));
  EXPECT_GT(mean_ratio, 0.68);
  EXPECT_LT(mean_ratio, 0.88);
}

// --- event hooks ---------------------------------------------------------

struct Recorder : EventHooks {
  struct Entry {
    std::uint32_t round;
    VertexId v;
    int kind;  // 0 fin, 1 rake, 2 compress
  };
  std::mutex mu;
  std::vector<Entry> entries;
  void on_finalize(std::uint32_t round, VertexId v) override {
    std::lock_guard<std::mutex> lk(mu);
    entries.push_back({round, v, 0});
  }
  void on_rake(std::uint32_t round, VertexId v, VertexId) override {
    std::lock_guard<std::mutex> lk(mu);
    entries.push_back({round, v, 1});
  }
  void on_compress(std::uint32_t round, VertexId v, VertexId,
                   VertexId) override {
    std::lock_guard<std::mutex> lk(mu);
    entries.push_back({round, v, 2});
  }
};

TEST(Hooks, ConstructionFiresOnePerVertex) {
  forest::Forest f = forest::build_tree(500, 4, 0.5, 3);
  ContractionForest c(500, 4, 7);
  Recorder rec;
  construct(c, f, &rec);
  EXPECT_EQ(rec.entries.size(), 500u);
  for (const auto& e : rec.entries) {
    EXPECT_EQ(e.round, c.duration(e.v) - 1);
  }
}

TEST(Hooks, UpdateReFiresForReexecutedVertices) {
  forest::Forest full = forest::build_tree(500, 4, 0.5, 3, 4);
  auto [initial, batch] = forest::make_insert_batch(full, 10, 9);
  ContractionForest c(full.capacity(), 4, 7);
  construct(c, initial);

  Recorder rec;
  modify_contraction(c, batch, &rec);
  EXPECT_FALSE(rec.entries.empty());
  // Every event reported during the update must match the vertex's final
  // death record (events are overwrite-semantics; the last one wins, but
  // since propagate re-executes each round once, every reported event for
  // a still-alive-in-G vertex reflects the new forest).
  for (const auto& e : rec.entries) {
    if (e.round == c.duration(e.v) - 1) {
      const RoundRecord& last = c.record(e.round, e.v);
      const bool leaf = children_empty(last.children);
      const int kind = leaf ? (last.parent == e.v ? 0 : 1) : 2;
      EXPECT_EQ(kind, e.kind) << "vertex " << e.v;
    }
  }
}

}  // namespace
}  // namespace parct::contract
