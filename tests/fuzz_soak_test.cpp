// Randomized cross-module soak: drives a single contraction structure
// through long random sequences of mixed batches (edge churn, vertex
// churn, weight-carrying re-insertions) while mirroring the forest in
// plain form and in both sequential baselines, and cross-checks
// *everything* every few steps: from-scratch structural equivalence, the
// independent simulator, RC queries, component weights, path aggregates,
// LCT and ETT answers.
//
// Seeds and length are modest by default; export PARCT_SOAK_STEPS to
// stress harder.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "baseline/euler_tour_tree.hpp"
#include "baseline/link_cut_tree.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"
#include "rc/subtree_aggregate.hpp"
#include "rc/tree_aggregate.hpp"
#include "test_util.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;

int soak_steps() {
  if (const char* s = std::getenv("PARCT_SOAK_STEPS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  // Quick mode under TSAN/ASAN: the sanitizers multiply runtime ~5-15x, so
  // the default soak shrinks; PARCT_SOAK_STEPS above still overrides.
  return test::kSanitizedBuild ? 8 : 24;
}

class FuzzSoak : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(FuzzSoak, EverythingAgrees) {
  const std::uint64_t seed = GetParam();
  hashing::SplitMix64 rng(seed);
  par::scheduler::initialize(1 + rng.next_below(4));

  const std::size_t n = 400;
  Forest cur = forest::build_tree(n, 4, 0.4 + 0.2 * rng.next_double(),
                                  rng.next(), /*extra_capacity=*/40);
  ContractionForest c(cur.capacity(), 4, rng.next());
  rc::PathAggregate<long, rc::PathPlus> path(c, 0);
  rc::SubtreeAggregate<long, rc::PathPlus> subtree(c, 0);
  contract::MultiHooks hooks{&path, &subtree};
  std::map<VertexId, long> edge_w;
  std::vector<long> vertex_w(cur.capacity(), 0);
  for (VertexId v = 0; v < cur.capacity(); ++v) {
    if (!cur.present(v)) continue;
    vertex_w[v] = static_cast<long>(rng.next_below(7));
    subtree.stage_vertex_weight(v, vertex_w[v]);
  }
  for (VertexId v = 0; v < cur.capacity(); ++v) {
    if (!cur.present(v) || cur.is_root(v)) continue;
    edge_w[v] = static_cast<long>(rng.next_below(9));
    path.stage_edge_weight(v, edge_w[v]);
  }
  contract::construct(c, cur, &hooks);
  DynamicUpdater updater(c);

  baseline::LinkCutTree lct(cur.capacity());
  baseline::EulerTourTree ett(cur.capacity(), rng.next());
  for (const Edge& e : cur.edges()) {
    lct.link(e.child, e.parent);
    ett.link(e.child, e.parent);
  }

  auto mirror_apply = [&](const ChangeSet& m) {
    for (const Edge& e : m.remove_edges) {
      lct.cut(e.child);
      ett.cut(e.child);
      edge_w.erase(e.child);
    }
    for (const Edge& e : m.add_edges) {
      lct.link(e.child, e.parent);
      ett.link(e.child, e.parent);
    }
    cur = forest::apply_change_set(cur, m);
  };

  const int steps = soak_steps();
  for (int step = 0; step < steps; ++step) {
    ChangeSet m;
    switch (rng.next_below(4)) {
      case 0:  // pure deletions
        if (cur.num_edges() >= 10) {
          m = forest::make_delete_batch(cur, 1 + rng.next_below(10),
                                        rng.next());
        }
        break;
      case 1: {  // deletions + re-insertions elsewhere (move subtrees)
        if (cur.num_edges() < 5) break;
        m = forest::make_delete_batch(cur, 1 + rng.next_below(5),
                                      rng.next());
        std::vector<int> extra(cur.capacity(), 0);
        for (const Edge& e : m.remove_edges) {
          for (int tries = 0; tries < 200; ++tries) {
            const VertexId p =
                static_cast<VertexId>(rng.next_below(cur.capacity()));
            if (!cur.present(p) || p == e.child) continue;
            if (cur.degree(p) + extra[p] >= cur.degree_bound()) continue;
            VertexId w = p;  // avoid re-rooting into the cut subtree
            while (!cur.is_root(w) && w != e.child) w = cur.parent(w);
            if (w == e.child) continue;
            ++extra[p];
            m.ins_edge(e.child, p);
            break;
          }
        }
        break;
      }
      case 2: {  // attach fresh leaf vertices
        ChangeSet vm;
        VertexId next_id = 0;
        for (VertexId v = 0; v < cur.capacity(); ++v) {
          if (cur.present(v)) next_id = v + 1;
        }
        const std::size_t k = 1 + rng.next_below(3);
        std::vector<int> extra(cur.capacity(), 0);
        for (std::size_t i = 0;
             i < k && next_id + i < cur.capacity(); ++i) {
          for (int tries = 0; tries < 200; ++tries) {
            const VertexId p =
                static_cast<VertexId>(rng.next_below(next_id));
            if (!cur.present(p)) continue;
            if (cur.degree(p) + extra[p] >= cur.degree_bound()) continue;
            ++extra[p];
            vm.ins_vertex(static_cast<VertexId>(next_id + i))
                .ins_edge(static_cast<VertexId>(next_id + i), p);
            break;
          }
        }
        m = vm;
        break;
      }
      default: {  // remove random leaf vertices
        std::vector<VertexId> leaves;
        for (VertexId v = 0; v < cur.capacity(); ++v) {
          if (cur.present(v) && cur.is_leaf(v) && !cur.is_root(v)) {
            leaves.push_back(v);
          }
        }
        const std::size_t k =
            std::min<std::size_t>(leaves.size(), 1 + rng.next_below(3));
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t j = i + rng.next_below(leaves.size() - i);
          std::swap(leaves[i], leaves[j]);
          m.del_vertex(leaves[i]).del_edge(leaves[i],
                                           cur.parent(leaves[i]));
        }
        break;
      }
    }
    if (m.empty()) continue;
    if (forest::check_change_set(cur, m).has_value()) continue;

    // Stage weights for new edges, mirror into the baselines. LCT/ETT see
    // vertex ops implicitly (ids exist up front). The mirror erases
    // weights of removed edges, so record re-inserted ones afterwards (an
    // edge can be removed and re-added for the same child in one batch).
    std::map<VertexId, long> staged;
    for (const Edge& e : m.add_edges) {
      staged[e.child] = static_cast<long>(rng.next_below(9));
      path.stage_edge_weight(e.child, staged[e.child]);
    }
    for (VertexId v : m.add_vertices) {
      if (vertex_w.size() <= v) vertex_w.resize(v + 1, 0);
      vertex_w[v] = static_cast<long>(rng.next_below(7));
      subtree.stage_vertex_weight(v, vertex_w[v]);
    }
    updater.apply(m, &hooks);
    mirror_apply(m);
    for (const auto& [v, val] : staged) edge_w[v] = val;

    // --- cross-checks -------------------------------------------------
    if (step % 4 == 3) {
      ContractionForest oracle(cur.capacity(), 4, c.seed());
      contract::construct(oracle, cur);
      ASSERT_TRUE(contract::structurally_equal(c, oracle))
          << "seed " << seed << " step " << step;
      auto verr = contract::check_valid(c, cur);
      ASSERT_FALSE(verr.has_value()) << *verr;
    }
    rc::RCForest rcf(c);
    rc::TreeAggregate<long> sizes(rcf,
                                  std::vector<long>(cur.capacity(), 1));
    std::vector<long> size_by_root(cur.capacity(), 0);
    for (VertexId v = 0; v < cur.capacity(); ++v) {
      if (cur.present(v)) ++size_by_root[forest::root_of(cur, v)];
    }
    for (int q = 0; q < 40; ++q) {
      const VertexId a =
          static_cast<VertexId>(rng.next_below(cur.capacity()));
      const VertexId b =
          static_cast<VertexId>(rng.next_below(cur.capacity()));
      if (!cur.present(a) || !cur.present(b)) continue;
      const VertexId root = forest::root_of(cur, a);
      ASSERT_EQ(rcf.root(a), root);
      ASSERT_EQ(rcf.root(a), lct.find_root(a));
      ASSERT_EQ(rcf.connected(a, b), ett.connected(a, b));
      ASSERT_EQ(sizes.tree_weight(a), size_by_root[root]);
      long brute = 0;
      for (VertexId x = a; !cur.is_root(x); x = cur.parent(x)) {
        brute += edge_w.at(x);
      }
      ASSERT_EQ(path.path_to_root(a), brute)
          << "seed " << seed << " step " << step << " vertex " << a;
      // Subtree sum vs recursive brute force.
      struct Rec {
        static long sum(const Forest& f, const std::vector<long>& w,
                        VertexId v) {
          long acc = w[v];
          for (VertexId u : f.children(v)) {
            if (u != kNoVertex) acc += sum(f, w, u);
          }
          return acc;
        }
      };
      ASSERT_EQ(subtree.subtree_sum(a), Rec::sum(cur, vertex_w, a))
          << "seed " << seed << " step " << step << " vertex " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoak,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct
