// TreeAggregate incremental repair (prepare_update/apply_update) vs the
// from-scratch rebuild() oracle, across edge churn, vertex churn and
// weight changes — and a locality check that the repaired region stays
// proportional to the affected region, not the forest.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/hooks.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::rc {
namespace {

// Repairs the derived layers after an update the way the serving layer
// does: old representatives captured before refresh, V- appended to the
// event-fired touched set.
void repair(RCForest& rcf, TreeAggregate<long>& agg,
            contract::TouchedRecorder& touched, const forest::ChangeSet& m) {
  std::vector<VertexId>& tv = touched.vertices();
  tv.insert(tv.end(), m.remove_vertices.begin(), m.remove_vertices.end());
  agg.prepare_update(tv);
  rcf.refresh(tv);
  agg.apply_update();
}

// The incremental accumulators must equal a from-scratch rebuild with the
// same weights (a fresh TreeAggregate rebuilds in its constructor).
void expect_matches_rebuild(const RCForest& rcf, const TreeAggregate<long>& agg) {
  TreeAggregate<long> oracle(rcf, agg.weights());
  const std::vector<long>& got = agg.accumulators();
  const std::vector<long>& want = oracle.accumulators();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "accumulator mismatch at vertex " << v;
  }
}

// Independent cross-check against the plain forest: the weight of v's
// tree is the sum of weights over v's component.
void expect_matches_forest(const forest::Forest& f, const RCForest& rcf,
                           const TreeAggregate<long>& agg,
                           const std::vector<long>& w) {
  std::vector<long> component(f.capacity(), 0);
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v)) component[forest::root_of(f, v)] += w[v];
  }
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    ASSERT_EQ(agg.tree_weight(v), component[forest::root_of(f, v)])
        << "tree weight mismatch at vertex " << v;
    (void)rcf;
  }
}

TEST(TreeAggregateIncremental, DeleteBatchesMatchRebuild) {
  const std::size_t n = 1200;
  forest::Forest f = forest::random_forest(n, 5, 4, 0.45, 21);
  contract::ContractionForest c(n, 4, 5);
  contract::construct(c, f);
  RCForest rcf(c);

  hashing::SplitMix64 rng(7);
  std::vector<long> w(n);
  for (long& x : w) x = static_cast<long>(rng.next_below(100));
  TreeAggregate<long> agg(rcf, w);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  for (int step = 0; step < 8; ++step) {
    forest::ChangeSet m = forest::make_delete_batch(cur, 6, 300 + step);
    contract::TouchedRecorder touched;
    updater.apply(m, &touched);
    cur = forest::apply_change_set(cur, m);
    repair(rcf, agg, touched, m);
    expect_matches_rebuild(rcf, agg);
    expect_matches_forest(cur, rcf, agg, w);
  }
}

TEST(TreeAggregateIncremental, InsertBatchesMatchRebuild) {
  const std::size_t n = 1000;
  forest::Forest full = forest::build_tree(n, 4, 0.5, 13);
  auto [cur, m0] = forest::make_insert_batch(full, 40, 99);
  contract::ContractionForest c(n, 4, 17);
  contract::construct(c, cur);
  RCForest rcf(c);

  std::vector<long> w(n, 1);
  TreeAggregate<long> agg(rcf, w);
  contract::DynamicUpdater updater(c);

  // Re-insert the cut edges in two halves, checking after each.
  forest::ChangeSet first, second;
  for (std::size_t i = 0; i < m0.add_edges.size(); ++i) {
    (i % 2 ? second : first).add_edges.push_back(m0.add_edges[i]);
  }
  for (const forest::ChangeSet* m : {&first, &second}) {
    contract::TouchedRecorder touched;
    updater.apply(*m, &touched);
    cur = forest::apply_change_set(cur, *m);
    repair(rcf, agg, touched, *m);
    expect_matches_rebuild(rcf, agg);
    expect_matches_forest(cur, rcf, agg, w);
  }
}

TEST(TreeAggregateIncremental, VertexChurnMatchesRebuild) {
  const std::size_t n = 800;
  forest::Forest f = forest::build_tree(n, 4, 0.5, 5, /*extra_capacity=*/64);
  contract::ContractionForest c(f.capacity(), 4, 23);
  contract::construct(c, f);
  RCForest rcf(c);

  std::vector<long> w(f.capacity(), 3);
  TreeAggregate<long> agg(rcf, w);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  for (int step = 0; step < 4; ++step) {
    forest::ChangeSet m =
        forest::make_vertex_batch(cur, /*k_add=*/6, /*k_del=*/5, 40 + step);
    contract::TouchedRecorder touched;
    updater.apply(m, &touched);
    cur = forest::apply_change_set(cur, m);
    repair(rcf, agg, touched, m);
    // Weights of churned ids: removed ids drop to 0, fresh ids get 3 —
    // ids can leave and re-enter across batches (the acc == weight
    // invariant for absent vertices).
    for (VertexId v : m.remove_vertices) {
      agg.set_weight(v, 0);
      w[v] = 0;
    }
    for (VertexId v : m.add_vertices) {
      agg.set_weight(v, 3);
      w[v] = 3;
    }
    expect_matches_rebuild(rcf, agg);
    expect_matches_forest(cur, rcf, agg, w);
  }
}

TEST(TreeAggregateIncremental, SetWeightBetweenStructuralUpdates) {
  const std::size_t n = 600;
  forest::Forest f = forest::random_forest(n, 3, 4, 0.4, 77);
  contract::ContractionForest c(n, 4, 31);
  contract::construct(c, f);
  RCForest rcf(c);
  std::vector<long> w(n, 2);
  TreeAggregate<long> agg(rcf, w);
  contract::DynamicUpdater updater(c);

  forest::Forest cur = f;
  hashing::SplitMix64 rng(11);
  for (int step = 0; step < 6; ++step) {
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    const long nw = static_cast<long>(rng.next_below(50));
    agg.set_weight(v, nw);
    w[v] = nw;

    forest::ChangeSet m = forest::make_delete_batch(cur, 3, 500 + step);
    contract::TouchedRecorder touched;
    updater.apply(m, &touched);
    cur = forest::apply_change_set(cur, m);
    repair(rcf, agg, touched, m);
    expect_matches_rebuild(rcf, agg);
    expect_matches_forest(cur, rcf, agg, w);
  }
}

TEST(TreeAggregateIncremental, RepairedRegionIsLocal) {
  // One edge deleted from a large chain: the repaired region must stay a
  // small fraction of the forest (it is the affected region times the
  // O(log n) representative chains, not O(n)) — the whole point of the
  // incremental path over the old full rebuild.
  const std::size_t n = 20000;
  forest::Forest f = forest::build_chain(n);
  contract::ContractionForest c(n, 4, 43);
  contract::construct(c, f);
  RCForest rcf(c);
  TreeAggregate<long> agg(rcf, std::vector<long>(n, 1));
  contract::DynamicUpdater updater(c);

  forest::ChangeSet m;
  m.del_edge(n / 2, n / 2 - 1);  // build_chain: parent of v is v-1
  contract::TouchedRecorder touched;
  updater.apply(m, &touched);
  repair(rcf, agg, touched, m);

  EXPECT_LT(agg.last_region().size(), n / 8)
      << "single-edge repair touched a large fraction of the forest";
  expect_matches_rebuild(rcf, agg);
}

}  // namespace
}  // namespace parct::rc
