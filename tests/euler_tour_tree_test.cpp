// Tests for the sequential Euler-Tour Tree baseline, including randomized
// cross-checking of connectivity, component sums and subtree sums against
// brute force on a mirrored Forest.
#include <gtest/gtest.h>

#include "baseline/euler_tour_tree.hpp"
#include "forest/forest.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"

namespace parct::baseline {
namespace {

long brute_subtree_sum(const forest::Forest& f, const std::vector<long>& w,
                       VertexId v) {
  long total = w[v];
  for (VertexId u : f.children(v)) {
    if (u != kNoVertex) total += brute_subtree_sum(f, w, u);
  }
  return total;
}

TEST(EulerTourTree, SingletonsDisconnected) {
  EulerTourTree ett(4);
  EXPECT_FALSE(ett.connected(0, 1));
  EXPECT_TRUE(ett.connected(2, 2));
  EXPECT_TRUE(ett.is_root(3));
  EXPECT_EQ(ett.component_size(0), 1u);
}

TEST(EulerTourTree, LinkCutConnectivity) {
  EulerTourTree ett(6);
  ett.link(1, 0);
  ett.link(2, 1);
  ett.link(4, 3);
  EXPECT_TRUE(ett.connected(0, 2));
  EXPECT_FALSE(ett.connected(2, 4));
  EXPECT_EQ(ett.component_size(0), 3u);
  ett.cut(1);
  EXPECT_FALSE(ett.connected(0, 2));
  EXPECT_TRUE(ett.connected(1, 2));
  EXPECT_EQ(ett.component_size(1), 2u);
  EXPECT_EQ(ett.component_size(0), 1u);
}

TEST(EulerTourTree, WeightsAndSums) {
  EulerTourTree ett(5);
  for (VertexId v = 0; v < 5; ++v) ett.set_weight(v, 10 * (v + 1));
  ett.link(1, 0);
  ett.link(2, 1);
  ett.link(3, 1);
  // Tree: 0 <- 1 <- {2, 3}; weights 10,20,30,40.
  EXPECT_EQ(ett.component_sum(3), 100);
  EXPECT_EQ(ett.subtree_sum(1), 90);
  EXPECT_EQ(ett.subtree_sum(2), 30);
  EXPECT_EQ(ett.subtree_sum(0), 100);
  ett.set_weight(2, 0);
  EXPECT_EQ(ett.subtree_sum(1), 60);
  EXPECT_EQ(ett.component_sum(0), 70);
}

TEST(EulerTourTree, SubtreeSumIsNonDestructive) {
  EulerTourTree ett(10);
  for (VertexId v = 1; v < 10; ++v) ett.link(v, v - 1);
  for (VertexId v = 0; v < 10; ++v) ett.set_weight(v, 1);
  for (int rep = 0; rep < 3; ++rep) {
    for (VertexId v = 0; v < 10; ++v) {
      EXPECT_EQ(ett.subtree_sum(v), static_cast<long>(10 - v));
    }
    EXPECT_TRUE(ett.connected(0, 9));
  }
}

TEST(EulerTourTree, DeepChain) {
  const std::size_t n = 30000;
  EulerTourTree ett(n);
  for (VertexId v = 1; v < n; ++v) ett.link(v, v - 1);
  EXPECT_TRUE(ett.connected(0, n - 1));
  EXPECT_EQ(ett.component_size(0), n);
  ett.cut(n / 2);
  EXPECT_FALSE(ett.connected(0, n - 1));
  EXPECT_EQ(ett.component_size(n - 1), n - n / 2);
}

TEST(EulerTourTree, MirrorsForestUnderRandomOps) {
  const std::size_t n = 600;
  forest::Forest f(n, 8, n);
  EulerTourTree ett(n, 42);
  hashing::SplitMix64 rng(999);
  std::vector<long> w(n);
  for (VertexId v = 0; v < n; ++v) {
    w[v] = static_cast<long>(rng.next_below(50));
    ett.set_weight(v, w[v]);
  }

  std::vector<VertexId> non_roots;
  for (int op = 0; op < 6000; ++op) {
    const int dice = static_cast<int>(rng.next_below(100));
    if (!non_roots.empty() && dice < 35) {
      const std::size_t k = rng.next_below(non_roots.size());
      const VertexId c = non_roots[k];
      non_roots[k] = non_roots.back();
      non_roots.pop_back();
      f.cut(c);
      ett.cut(c);
    } else if (dice < 45) {
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      w[v] = static_cast<long>(rng.next_below(50));
      ett.set_weight(v, w[v]);
    } else {
      const VertexId c = static_cast<VertexId>(rng.next_below(n));
      const VertexId p = static_cast<VertexId>(rng.next_below(n));
      if (!f.is_root(c) || c == p) continue;
      if (forest::root_of(f, p) == c) continue;
      if (f.degree(p) >= f.degree_bound()) continue;
      f.link(c, p);
      ett.link(c, p);
      non_roots.push_back(c);
    }
    if (op % 300 == 0) {
      for (int q = 0; q < 30; ++q) {
        const VertexId a = static_cast<VertexId>(rng.next_below(n));
        const VertexId b = static_cast<VertexId>(rng.next_below(n));
        ASSERT_EQ(ett.connected(a, b),
                  forest::root_of(f, a) == forest::root_of(f, b))
            << "op " << op;
        ASSERT_EQ(ett.subtree_sum(a), brute_subtree_sum(f, w, a))
            << "op " << op << " vertex " << a;
      }
    }
  }
}

}  // namespace
}  // namespace parct::baseline
