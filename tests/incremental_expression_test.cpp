// Tests for self-adjusting expression evaluation: agreement with the
// O(n) replay evaluator after construction and after batched structural
// edits, on hand-built and random expression forests.
#include <gtest/gtest.h>

#include <cmath>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/incremental_expression.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;
using rc::ExprNode;
using rc::IncrementalExpression;
using rc::Op;

double reference_eval(const Forest& f, const IncrementalExpression& expr,
                      VertexId v) {
  const ExprNode& node = expr.node(v);
  if (node.op == Op::kLeaf) return node.value;
  double acc = node.op == Op::kMul ? 1.0 : 0.0;
  for (VertexId u : f.children(v)) {
    if (u == kNoVertex) continue;
    const double x = reference_eval(f, expr, u);
    acc = node.op == Op::kMul ? acc * x : acc + x;
  }
  return acc;
}

TEST(IncrementalExpression, MatchesReplayOnConstruction) {
  // ((1+2) * (3+5)) + 4 — same tree as the replay evaluator's test.
  Forest f(5, 4, 5);
  f.link(1, 0);
  f.link(4, 0);
  f.link(2, 1);
  f.link(3, 1);
  ContractionForest c(5, 4, 9);
  IncrementalExpression expr(c);
  expr.stage_node(0, {Op::kAdd, 0});   // 0 = mul(5, 6) + 2
  expr.stage_node(1, {Op::kMul, 0});   // children: leaves 2, 3
  expr.stage_node(2, {Op::kLeaf, 5});
  expr.stage_node(3, {Op::kLeaf, 6});
  expr.stage_node(4, {Op::kLeaf, 2});
  contract::construct(c, f, &expr);
  EXPECT_DOUBLE_EQ(expr.value(0), 32.0);
}

TEST(IncrementalExpression, DeepChainLinearComposition) {
  const std::size_t n = 150;
  Forest f = forest::build_chain(n);
  ContractionForest c(n, 4, 13);
  IncrementalExpression expr(c);
  for (VertexId v = 0; v + 1 < n; ++v) expr.stage_node(v, {Op::kAdd, 0});
  expr.stage_node(static_cast<VertexId>(n - 1), {Op::kLeaf, 2.5});
  contract::construct(c, f, &expr);
  EXPECT_DOUBLE_EQ(expr.value(77), 2.5);
}

TEST(IncrementalExpression, RandomTreesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 600;
    Forest f = forest::build_tree(n, 4, 0.45, seed);
    ContractionForest c(n, 4, seed + 100);
    IncrementalExpression expr(c);
    hashing::SplitMix64 rng(seed);
    for (VertexId v = 0; v < n; ++v) {
      if (f.is_leaf(v)) {
        expr.stage_node(v, {Op::kLeaf, 0.5 + rng.next_double()});
      } else {
        expr.stage_node(v, {rng.next_bool() ? Op::kAdd : Op::kMul, 0});
      }
    }
    contract::construct(c, f, &expr);
    const double expected = reference_eval(f, expr, 0);
    EXPECT_NEAR(expr.value(0), expected,
                std::abs(expected) * 1e-9 + 1e-12)
        << "seed " << seed;
  }
}

TEST(IncrementalExpression, IncrementalGraftAndPrune) {
  // Sum forest; graft and prune subexpressions dynamically and compare
  // with the recursive reference each step.
  const std::size_t n = 200;
  Forest cur = forest::build_tree(n, 4, 0.5, 7, /*extra_capacity=*/20);
  ContractionForest c(cur.capacity(), 4, 77);
  IncrementalExpression expr(c);
  hashing::SplitMix64 rng(5);
  for (VertexId v = 0; v < n; ++v) {
    if (cur.is_leaf(v)) {
      expr.stage_node(v, {Op::kLeaf, 1.0 + rng.next_below(4)});
    } else {
      expr.stage_node(v, {Op::kAdd, 0});
    }
  }
  contract::construct(c, cur, &expr);
  DynamicUpdater updater(c);

  // Graft three new leaves under internal vertices (ADD arity grows).
  VertexId next = static_cast<VertexId>(n);
  for (int step = 0; step < 3; ++step) {
    VertexId parent = kNoVertex;
    for (VertexId p = 0; p < n; ++p) {
      if (cur.present(p) && !cur.is_leaf(p) &&
          cur.degree(p) < cur.degree_bound()) {
        parent = p;
        break;
      }
    }
    ASSERT_NE(parent, kNoVertex);
    ChangeSet m;
    m.ins_vertex(next).ins_edge(next, parent);
    expr.stage_node(next, {Op::kLeaf, 10.0 * (step + 1)});
    ASSERT_FALSE(forest::check_change_set(cur, m).has_value());
    updater.apply(m, &expr);
    cur = forest::apply_change_set(cur, m);
    ++next;

    for (VertexId r : cur.roots()) {
      ASSERT_NEAR(expr.value(r), reference_eval(cur, expr, r), 1e-9)
          << "graft step " << step;
    }
  }

  // Prune: detach a subtree; both halves must evaluate correctly.
  VertexId cut = kNoVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (cur.present(v) && !cur.is_root(v) && !cur.is_leaf(v)) {
      cut = v;
      break;
    }
  }
  ASSERT_NE(cut, kNoVertex);
  ChangeSet prune;
  prune.del_edge(cut, cur.parent(cut));
  updater.apply(prune, &expr);
  cur = forest::apply_change_set(cur, prune);
  for (VertexId r : cur.roots()) {
    ASSERT_NEAR(expr.value(r), reference_eval(cur, expr, r), 1e-9);
  }
}

TEST(IncrementalExpression, RebuildAfterLeafConstantChange) {
  Forest f(4, 4, 4);
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 0);
  ContractionForest c(4, 4, 5);
  IncrementalExpression expr(c);
  expr.stage_node(0, {Op::kAdd, 0});
  expr.stage_node(1, {Op::kLeaf, 1});
  expr.stage_node(2, {Op::kLeaf, 2});
  expr.stage_node(3, {Op::kLeaf, 3});
  contract::construct(c, f, &expr);
  EXPECT_DOUBLE_EQ(expr.value(0), 6.0);

  expr.stage_node(2, {Op::kLeaf, 20});
  expr.rebuild();
  EXPECT_DOUBLE_EQ(expr.value(0), 24.0);
}

}  // namespace
}  // namespace parct
