// Tests for the paper's input generators (§4 "Input Generation").
#include <gtest/gtest.h>

#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"

namespace parct::forest {
namespace {

TEST(TreeBuilder, BalancedTreeShape) {
  Forest f = build_balanced(21, 4);
  EXPECT_FALSE(check_forest(f).has_value());
  EXPECT_EQ(f.num_edges(), 20u);
  EXPECT_EQ(f.roots(), std::vector<VertexId>{0});
  // All but possibly one internal node has exactly 4 children.
  int partial = 0;
  for (VertexId v = 0; v < 21; ++v) {
    const int d = f.degree(v);
    if (d > 0 && d < 4) ++partial;
  }
  EXPECT_LE(partial, 1);
}

TEST(TreeBuilder, PerfectBinary) {
  Forest f = build_perfect_binary(15);
  EXPECT_FALSE(check_forest(f).has_value());
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(f.degree(v), 2);
  for (VertexId v = 7; v < 15; ++v) EXPECT_TRUE(f.is_leaf(v));
  EXPECT_EQ(height(f), 3u);
  EXPECT_THROW(build_perfect_binary(10), std::invalid_argument);
  EXPECT_THROW(build_perfect_binary(0), std::invalid_argument);
}

TEST(TreeBuilder, Chain) {
  Forest f = build_chain(100);
  EXPECT_FALSE(check_forest(f).has_value());
  EXPECT_EQ(height(f), 99u);
  EXPECT_EQ(root_of(f, 99), 0u);
}

class ChainFactor : public ::testing::TestWithParam<double> {};

TEST_P(ChainFactor, GuaranteesDegreeTwoFraction) {
  const double cf = GetParam();
  const std::size_t n = 5000;
  Forest f = build_tree(n, 4, cf, 42);
  EXPECT_FALSE(check_forest(f).has_value());
  EXPECT_EQ(f.num_present(), n);
  EXPECT_EQ(f.num_edges(), n - 1);  // single tree
  // Paper: at least f*n vertices have degree two (i.e. one child) as long
  // as f <= 1 - 2/n. "Degree two" counts the parent edge plus one child.
  std::size_t unary = 0;
  for (VertexId v = 0; v < n; ++v) unary += f.degree(v) == 1 ? 1 : 0;
  if (cf <= 1.0 - 2.0 / static_cast<double>(n)) {
    EXPECT_GE(unary, static_cast<std::size_t>(cf * n) > 0
                         ? static_cast<std::size_t>(cf * n) - 1
                         : 0);
  }
  // Degree bound respected.
  for (VertexId v = 0; v < n; ++v) EXPECT_LE(f.degree(v), 4);
}

INSTANTIATE_TEST_SUITE_P(Factors, ChainFactor,
                         ::testing::Values(0.0, 0.3, 0.6, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "cf" + std::to_string(static_cast<int>(
                                             info.param * 10));
                         });

TEST(TreeBuilder, ChainFactorOneIsSingleChain) {
  const std::size_t n = 200;
  Forest f = build_tree(n, 4, 1.0, 7);
  // r = 2, everything else splits edges: the result is one chain with a
  // single leaf.
  std::size_t leaves = 0;
  for (VertexId v = 0; v < n; ++v) {
    leaves += (f.present(v) && f.is_leaf(v)) ? 1 : 0;
  }
  EXPECT_EQ(leaves, 1u);
  EXPECT_EQ(height(f), n - 1);
}

TEST(TreeBuilder, ChainFactorZeroIsBalanced) {
  Forest f = build_tree(1000, 4, 0.0, 7);
  // Balanced 4-ary tree of 1000 vertices has height ceil(log4) ~ 5.
  EXPECT_LE(height(f), 6u);
}

TEST(TreeBuilder, DeterministicInSeed) {
  Forest a = build_tree(500, 4, 0.5, 99);
  Forest b = build_tree(500, 4, 0.5, 99);
  Forest c = build_tree(500, 4, 0.5, 100);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TreeBuilder, ExtraCapacityIsAbsent) {
  Forest f = build_tree(50, 4, 0.5, 1, 10);
  EXPECT_EQ(f.capacity(), 60u);
  EXPECT_EQ(f.num_present(), 50u);
  EXPECT_FALSE(f.present(55));
}

TEST(TreeBuilder, RejectsBadArguments) {
  EXPECT_THROW(build_tree(1, 4, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(build_tree(100, 4, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(build_tree(100, 4, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace parct::forest
