// Auto-shrinking of failing traces: greedy delta debugging over the step
// history (truncate after the failure, drop chunks of steps, then drop
// individual operations inside the surviving batches), accepting any
// candidate that still fails. The result is a minimal-ish trace whose
// replay file is small enough to read.
#pragma once

#include "harness/differential.hpp"
#include "harness/trace.hpp"

namespace parct::harness {

struct ShrinkReport {
  /// run_trace invocations spent (bounded by the budget).
  int runs = 0;
  /// Result of the final (shrunk) trace — re-run for the caller.
  RunResult result;
};

/// Minimizes a failing trace. `t` must fail under `opts`; the returned
/// trace still fails under `opts` (possibly at a different step or with a
/// different message — any failure counts). `budget` caps the number of
/// candidate executions.
Trace shrink_trace(const Trace& t, const RunOptions& opts,
                   ShrinkReport* report = nullptr, int budget = 300);

}  // namespace parct::harness
