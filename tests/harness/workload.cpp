#include "harness/workload.hpp"

#include <algorithm>
#include <vector>

#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "test_util.hpp"

namespace parct::harness {

namespace {

using forest::ChangeSet;
using forest::Forest;
using hashing::SplitMix64;

/// Skewed batch size in [1, max_batch]: uniform over exponentially growing
/// ranges, so most batches are small with occasional bursts at the cap.
std::size_t skewed_batch_size(SplitMix64& rng, std::size_t max_batch) {
  unsigned log_cap = 0;
  while ((2ull << log_cap) <= max_batch) ++log_cap;
  const std::size_t bound = std::min<std::size_t>(
      max_batch, 1ull << rng.next_below(log_cap + 1));
  return 1 + rng.next_below(bound);
}

std::vector<VertexId> absent_ids(const Forest& f) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) out.push_back(v);
  }
  return out;
}

/// True if `p` would end up inside `child`'s subtree once `child` is cut
/// loose (conservative pre-application cycle test, as in fuzz_soak).
bool reaches(const Forest& f, VertexId p, VertexId child) {
  VertexId w = p;
  while (!f.is_root(w) && w != child) w = f.parent(w);
  return w == child;
}

ChangeSet gen_subtree_moves(const Forest& cur, std::size_t k,
                            SplitMix64& rng) {
  ChangeSet m = forest::make_delete_batch(
      cur, std::min<std::size_t>(k, cur.num_edges()), rng.next());
  std::vector<int> extra(cur.capacity(), 0);
  for (const Edge& e : m.remove_edges) {
    for (int tries = 0; tries < 100; ++tries) {
      const VertexId p =
          static_cast<VertexId>(rng.next_below(cur.capacity()));
      if (!cur.present(p) || p == e.child) continue;
      if (cur.degree(p) + extra[p] >= cur.degree_bound()) continue;
      if (reaches(cur, p, e.child)) continue;
      ++extra[p];
      m.ins_edge(e.child, p);
      break;
    }
  }
  return m;
}

ChangeSet gen_fresh_vertices(const Forest& cur, std::size_t k,
                             SplitMix64& rng) {
  ChangeSet m;
  const std::vector<VertexId> free = absent_ids(cur);
  std::vector<int> extra(cur.capacity(), 0);
  for (std::size_t i = 0; i < k && i < free.size(); ++i) {
    for (int tries = 0; tries < 100; ++tries) {
      const VertexId p =
          static_cast<VertexId>(rng.next_below(cur.capacity()));
      if (!cur.present(p)) continue;
      if (cur.degree(p) + extra[p] >= cur.degree_bound()) continue;
      ++extra[p];
      m.ins_vertex(free[i]).ins_edge(free[i], p);
      break;
    }
  }
  return m;
}

ChangeSet gen_remove_leaves(const Forest& cur, std::size_t k,
                            SplitMix64& rng) {
  ChangeSet m;
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < cur.capacity(); ++v) {
    if (cur.present(v) && cur.is_leaf(v)) leaves.push_back(v);
  }
  const std::size_t take = std::min(leaves.size(), k);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.next_below(leaves.size() - i);
    std::swap(leaves[i], leaves[j]);
    m.del_vertex(leaves[i]);
    if (!cur.is_root(leaves[i])) {
      m.del_edge(leaves[i], cur.parent(leaves[i]));
    }
  }
  return m;
}

/// Batches aimed at tree roots: re-root a tree under another one, shed a
/// root's children, or delete a root vertex outright.
ChangeSet gen_root_churn(const Forest& cur, SplitMix64& rng) {
  ChangeSet m;
  const std::vector<VertexId> roots = cur.roots();
  if (roots.empty()) return m;
  const VertexId r = roots[rng.next_below(roots.size())];
  switch (rng.next_below(3)) {
    case 0: {  // attach root r under a vertex of another tree
      for (int tries = 0; tries < 100; ++tries) {
        const VertexId p =
            static_cast<VertexId>(rng.next_below(cur.capacity()));
        if (!cur.present(p) || forest::root_of(cur, p) == r) continue;
        if (cur.degree(p) >= cur.degree_bound()) continue;
        m.ins_edge(r, p);
        break;
      }
      break;
    }
    case 1: {  // cut some of r's child edges (children become roots)
      for (VertexId u : cur.children(r)) {
        if (u != kNoVertex && rng.next_bool()) m.del_edge(u, r);
      }
      break;
    }
    default: {  // delete the root vertex (all incident edges must go)
      for (VertexId u : cur.children(r)) {
        if (u != kNoVertex) m.del_edge(u, r);
      }
      m.del_vertex(r);
      break;
    }
  }
  return m;
}

/// Delete-then-reinsert of the very same edges within one batch (E- ∩ E+).
ChangeSet gen_edge_bounce(const Forest& cur, std::size_t k,
                          SplitMix64& rng) {
  ChangeSet m;
  if (cur.num_edges() == 0) return m;
  const std::vector<Edge> picked = forest::select_random_edges(
      cur, std::min<std::size_t>(k, cur.num_edges()), rng.next());
  for (const Edge& e : picked) {
    m.del_edge(e.child, e.parent).ins_edge(e.child, e.parent);
  }
  return m;
}

}  // namespace

Trace generate_trace(const WorkloadConfig& config) {
  SplitMix64 rng(config.seed);
  Trace t;
  t.master_seed = config.seed;
  t.num_workers = config.num_workers != 0
                      ? config.num_workers
                      : 1 + static_cast<unsigned>(rng.next_below(8));
  t.steal_seed = rng.next();
  t.contraction_seed = rng.next();
  t.ett_seed = rng.next();

  const std::size_t num_shapes = std::size(test::kShapes);
  const std::size_t shape =
      config.shape >= 0 ? static_cast<std::size_t>(config.shape) % num_shapes
                        : rng.next_below(num_shapes);
  Forest cur =
      test::kShapes[shape].build(config.n, rng.next(), config.extra_capacity);
  t.degree_bound = cur.degree_bound();
  t.initial = cur;

  for (VertexId v = 0; v < cur.capacity(); ++v) {
    if (!cur.present(v)) continue;
    t.initial_vertex_weights.emplace_back(
        v, static_cast<long>(rng.next_below(7)));
    if (!cur.is_root(v)) {
      t.initial_edge_weights.emplace_back(
          v, static_cast<long>(rng.next_below(9)));
    }
  }

  std::uint64_t ops = 0;
  // Generous attempt budget: some step kinds come up empty on degenerate
  // forests (no leaves, no spare ids, ...).
  std::uint64_t attempts = 16 + 8 * config.target_ops;
  while (ops < config.target_ops && attempts-- > 0) {
    const std::size_t k = skewed_batch_size(rng, config.max_batch);
    ChangeSet m;
    switch (rng.next_below(6)) {
      case 0:
        if (cur.num_edges() > 0) {
          m = forest::make_delete_batch(
              cur, std::min<std::size_t>(k, cur.num_edges()), rng.next());
        }
        break;
      case 1:
        if (cur.num_edges() > 0) m = gen_subtree_moves(cur, k, rng);
        break;
      case 2:
        m = gen_fresh_vertices(cur, k, rng);
        break;
      case 3:
        m = gen_remove_leaves(cur, std::min<std::size_t>(k, 8), rng);
        break;
      case 4:
        m = gen_root_churn(cur, rng);
        break;
      default:
        m = gen_edge_bounce(cur, k, rng);
        break;
    }
    if (m.empty()) continue;
    if (forest::check_change_set(cur, m).has_value()) continue;

    TraceStep step;
    step.batch = m;
    for (const Edge& e : m.add_edges) {
      step.edge_weights.emplace_back(e.child,
                                     static_cast<long>(rng.next_below(9)));
    }
    for (VertexId v : m.add_vertices) {
      step.vertex_weights.emplace_back(v,
                                       static_cast<long>(rng.next_below(7)));
    }
    cur = forest::apply_change_set(cur, m);
    ops += m.size();
    t.steps.push_back(std::move(step));
  }
  return t;
}

}  // namespace parct::harness
