#include "harness/differential.hpp"

#include <cstdlib>
#include <map>
#include <vector>

#include "analysis/sp_bags.hpp"
#include "baseline/euler_tour_tree.hpp"
#include "baseline/link_cut_tree.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/scheduler.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"
#include "rc/subtree_aggregate.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::harness {

namespace {

using contract::ContractionForest;
using forest::Forest;
using hashing::SplitMix64;

std::string vstr(VertexId v) { return std::to_string(v); }

/// Deterministic corruption of one round record — the injected fault the
/// harness must catch (and a replay must reproduce).
void corrupt_one_record(ContractionForest& c, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int tries = 0; tries < 4096; ++tries) {
    const VertexId v =
        static_cast<VertexId>(rng.next_below(c.capacity()));
    if (c.duration(v) == 0) continue;
    const std::uint32_t r = c.duration(v) - 1;
    contract::RoundRecord& rec = c.record_mut(r, v);
    rec.parent = rec.parent == v
                     ? (v + 1 < c.capacity() ? v + 1 : (v > 0 ? v - 1 : v))
                     : v;
    return;
  }
}

/// Brute-force number of vertices in v's tree (walk up, then flood down).
long brute_tree_size(const Forest& f, VertexId v) {
  std::vector<VertexId> stack{forest::root_of(f, v)};
  long count = 0;
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    ++count;
    for (VertexId u : f.children(x)) {
      if (u != kNoVertex) stack.push_back(u);
    }
  }
  return count;
}

long brute_subtree_sum(const Forest& f, const std::vector<long>& w,
                       VertexId v) {
  std::vector<VertexId> stack{v};
  long acc = 0;
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    acc += w[x];
    for (VertexId u : f.children(x)) {
      if (u != kNoVertex) stack.push_back(u);
    }
  }
  return acc;
}

RunResult run_trace_impl(const Trace& t, const RunOptions& opts) {
  RunResult res;
  par::scheduler::initialize(t.num_workers == 0 ? 1 : t.num_workers,
                             t.steal_seed);

  Forest cur = t.initial;
  const std::size_t cap = cur.capacity();
  ContractionForest c(cap, t.degree_bound, t.contraction_seed);
  rc::PathAggregate<long, rc::PathPlus> path(c, 0);
  rc::SubtreeAggregate<long, rc::PathPlus> subtree(c, 0);
  contract::MultiHooks hooks{&path, &subtree};

  baseline::LinkCutTree lct(cap);
  baseline::EulerTourTree ett(cap, t.ett_seed);
  std::map<VertexId, long> edge_w;
  std::vector<long> vertex_w(cap, 0);

  for (const auto& [v, w] : t.initial_vertex_weights) {
    vertex_w[v] = w;
    subtree.stage_vertex_weight(v, w);
    ett.set_weight(v, w);
  }
  for (const auto& [v, w] : t.initial_edge_weights) {
    edge_w[v] = w;
    path.stage_edge_weight(v, w);
  }
  contract::construct(c, cur, &hooks);
  contract::DynamicUpdater updater(c);
  for (const Edge& e : cur.edges()) {
    lct.link(e.child, e.parent);
    ett.link(e.child, e.parent);
  }

  auto fail = [&](int step, std::string msg) {
    res.ok = false;
    res.failed_step = step;
    res.failure = std::move(msg);
  };

  auto check_scratch = [&](int step) {
    ContractionForest oracle(cur.capacity(), t.degree_bound, c.seed());
    contract::construct(oracle, cur);
    if (auto diff = contract::structural_diff(c, oracle)) {
      fail(step, "structural mismatch vs from-scratch oracle: " + *diff);
      return false;
    }
    return true;
  };

  const int last = static_cast<int>(t.steps.size()) - 1;
  for (int s = 0; s <= last; ++s) {
    const TraceStep& step = t.steps[s];
    const forest::ChangeSet& m = step.batch;
    if (m.empty() || forest::check_change_set(cur, m).has_value()) {
      // Shrinking can leave steps invalid against the evolved mirror;
      // skipping them deterministically keeps every sub-trace executable.
      ++res.steps_skipped;
      continue;
    }

    for (const auto& [v, w] : step.edge_weights) {
      path.stage_edge_weight(v, w);
    }
    for (const auto& [v, w] : step.vertex_weights) {
      subtree.stage_vertex_weight(v, w);
      ett.set_weight(v, w);
      vertex_w[v] = w;
    }
    updater.apply(m, &hooks);

    for (const Edge& e : m.remove_edges) {
      lct.cut(e.child);
      ett.cut(e.child);
      edge_w.erase(e.child);
    }
    for (const Edge& e : m.add_edges) {
      lct.link(e.child, e.parent);
      ett.link(e.child, e.parent);
    }
    cur = forest::apply_change_set(cur, m);
    // Weight staging wins over the erase above: a batch may delete and
    // re-insert an edge for the same child.
    for (const auto& [v, w] : step.edge_weights) edge_w[v] = w;
    ++res.steps_applied;
    res.ops_applied += m.size();

    if (s == t.corrupt_step) {
      corrupt_one_record(c, t.corrupt_seed);
    }

    // --- cross-checks --------------------------------------------------
    const bool scratch_due =
        s == t.corrupt_step || s == last ||
        (opts.check_scratch_every > 0 &&
         (s + 1) % opts.check_scratch_every == 0);
    if (scratch_due && !check_scratch(s)) return res;

    if (opts.queries_per_step > 0) {
      rc::RCForest rcf(c);
      rc::TreeAggregate<long> sizes(rcf, std::vector<long>(cap, 1));
      SplitMix64 qrng(hashing::mix64(
          t.master_seed ^ (0x9E3779B97F4A7C15ull * (s + 1))));
      for (int q = 0; q < opts.queries_per_step; ++q) {
        const VertexId a = static_cast<VertexId>(qrng.next_below(cap));
        const VertexId b = static_cast<VertexId>(qrng.next_below(cap));
        if (!cur.present(a) || !cur.present(b)) continue;
        const VertexId root = forest::root_of(cur, a);
        if (rcf.root(a) != root) {
          fail(s, "root(" + vstr(a) + ") = " + vstr(rcf.root(a)) +
                      ", forest says " + vstr(root));
          return res;
        }
        if (lct.find_root(a) != root) {
          fail(s, "LCT root(" + vstr(a) + ") = " + vstr(lct.find_root(a)) +
                      ", forest says " + vstr(root));
          return res;
        }
        if (rcf.connected(a, b) != ett.connected(a, b)) {
          fail(s, "connected(" + vstr(a) + "," + vstr(b) +
                      "): structure says " +
                      (rcf.connected(a, b) ? "yes" : "no") +
                      ", ETT disagrees");
          return res;
        }
        const long tsize = brute_tree_size(cur, a);
        if (sizes.tree_weight(a) != tsize) {
          fail(s, "tree_weight(" + vstr(a) + ") = " +
                      std::to_string(sizes.tree_weight(a)) + ", brute " +
                      std::to_string(tsize));
          return res;
        }
        if (static_cast<long>(ett.component_size(a)) != tsize) {
          fail(s, "ETT component_size(" + vstr(a) + ") = " +
                      std::to_string(ett.component_size(a)) + ", brute " +
                      std::to_string(tsize));
          return res;
        }
        long pbrute = 0;
        for (VertexId x = a; !cur.is_root(x); x = cur.parent(x)) {
          pbrute += edge_w.at(x);
        }
        if (path.path_to_root(a) != pbrute) {
          fail(s, "path_to_root(" + vstr(a) + ") = " +
                      std::to_string(path.path_to_root(a)) + ", brute " +
                      std::to_string(pbrute));
          return res;
        }
        const long sbrute = brute_subtree_sum(cur, vertex_w, a);
        if (subtree.subtree_sum(a) != sbrute) {
          fail(s, "subtree_sum(" + vstr(a) + ") = " +
                      std::to_string(subtree.subtree_sum(a)) + ", brute " +
                      std::to_string(sbrute));
          return res;
        }
        if (ett.subtree_sum(a) != sbrute) {
          fail(s, "ETT subtree_sum(" + vstr(a) + ") = " +
                      std::to_string(ett.subtree_sum(a)) + ", brute " +
                      std::to_string(sbrute));
          return res;
        }
      }
    }
  }

  if (res.ok && opts.check_scratch_every == 0 && last >= 0) {
    if (!check_scratch(last)) return res;
  }
  if (res.ok && opts.validate_final) {
    if (auto err = contract::check_valid(c, cur)) {
      fail(last, "independent re-simulation: " + *err);
      return res;
    }
  }
  return res;
}

}  // namespace

// Applies RunOptions::serial_cutover for the duration of a run and
// restores the ambient configuration (env / auto-calibration) afterwards.
class CutoverOverride {
 public:
  explicit CutoverOverride(const std::optional<std::size_t>& cutover)
      : active_(cutover.has_value()) {
    if (active_) par::set_serial_cutover(*cutover);
  }
  ~CutoverOverride() {
    if (active_) par::clear_serial_cutover();
  }
  CutoverOverride(const CutoverOverride&) = delete;
  CutoverOverride& operator=(const CutoverOverride&) = delete;

 private:
  bool active_;
};

RunResult run_trace(const Trace& t, const RunOptions& opts) {
  const CutoverOverride cutover(opts.serial_cutover);
  if (opts.race_detect) {
#if PARCT_RACE_DETECT
    // One session for the whole run: construct, every update, and every
    // from-scratch oracle all execute serially under the detector, so a
    // race anywhere in the trace's execution is caught deterministically.
    analysis::spbags::Session session(analysis::spbags::OnRace::kThrow);
    try {
      return run_trace_impl(t, opts);
    } catch (const analysis::spbags::DeterminacyRace& e) {
      RunResult res;
      res.ok = false;
      res.failure = e.what();
      return res;
    }
#else
    RunResult res;
    res.ok = false;
    res.failure =
        "race detection requested, but this binary was built without "
        "-DPARCT_RACE_DETECT=ON";
    return res;
#endif
  }
  return run_trace_impl(t, opts);
}

std::string dump_replay(const Trace& t) {
  const char* dir = std::getenv("PARCT_REPLAY_DIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") +
                           "/parct-replay-seed" +
                           std::to_string(t.master_seed) + ".txt";
  save_trace_file(t, path);
  return path;
}

}  // namespace parct::harness
