#include "harness/trace.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace parct::harness {

namespace {

constexpr const char* kMagic = "parct-replay";
constexpr int kVersion = 1;

void put_weights(std::ostream& out, const char* tag,
                 const std::vector<std::pair<VertexId, long>>& ws) {
  out << tag << " " << ws.size();
  for (const auto& [v, w] : ws) out << " " << v << " " << w;
  out << "\n";
}

std::vector<std::pair<VertexId, long>> get_weights(std::istream& in,
                                                   const char* tag) {
  std::string got;
  std::size_t k = 0;
  if (!(in >> got >> k) || got != tag) {
    throw std::runtime_error("parct replay: expected '" + std::string(tag) +
                             "' section");
  }
  std::vector<std::pair<VertexId, long>> ws(k);
  for (auto& [v, w] : ws) {
    if (!(in >> v >> w)) {
      throw std::runtime_error("parct replay: truncated weight list");
    }
  }
  return ws;
}

void put_ids(std::ostream& out, const char* tag,
             const std::vector<VertexId>& ids) {
  out << tag << " " << ids.size();
  for (VertexId v : ids) out << " " << v;
  out << "\n";
}

std::vector<VertexId> get_ids(std::istream& in, const char* tag) {
  std::string got;
  std::size_t k = 0;
  if (!(in >> got >> k) || got != tag) {
    throw std::runtime_error("parct replay: expected '" + std::string(tag) +
                             "' section");
  }
  std::vector<VertexId> ids(k);
  for (VertexId& v : ids) {
    if (!(in >> v)) throw std::runtime_error("parct replay: truncated ids");
  }
  return ids;
}

void put_edges(std::ostream& out, const char* tag,
               const std::vector<Edge>& es) {
  out << tag << " " << es.size();
  for (const Edge& e : es) out << " " << e.child << " " << e.parent;
  out << "\n";
}

std::vector<Edge> get_edges(std::istream& in, const char* tag) {
  std::string got;
  std::size_t k = 0;
  if (!(in >> got >> k) || got != tag) {
    throw std::runtime_error("parct replay: expected '" + std::string(tag) +
                             "' section");
  }
  std::vector<Edge> es(k);
  for (Edge& e : es) {
    if (!(in >> e.child >> e.parent)) {
      throw std::runtime_error("parct replay: truncated edge list");
    }
  }
  return es;
}

template <typename T>
T get_field(std::istream& in, const char* name) {
  std::string got;
  T value{};
  if (!(in >> got >> value) || got != name) {
    throw std::runtime_error("parct replay: expected field '" +
                             std::string(name) + "'");
  }
  return value;
}

}  // namespace

void save_trace(const Trace& t, std::ostream& out) {
  out << kMagic << " v" << kVersion << "\n";
  out << "master_seed " << t.master_seed << "\n";
  out << "num_workers " << t.num_workers << "\n";
  out << "steal_seed " << t.steal_seed << "\n";
  out << "contraction_seed " << t.contraction_seed << "\n";
  out << "ett_seed " << t.ett_seed << "\n";
  out << "degree_bound " << t.degree_bound << "\n";
  out << "corrupt_step " << t.corrupt_step << "\n";
  out << "corrupt_seed " << t.corrupt_seed << "\n";
  out << "capacity " << t.initial.capacity() << "\n";
  put_ids(out, "present", t.initial.vertices());
  put_edges(out, "edges", t.initial.edges());
  put_weights(out, "edge_weights", t.initial_edge_weights);
  put_weights(out, "vertex_weights", t.initial_vertex_weights);
  out << "steps " << t.steps.size() << "\n";
  for (const TraceStep& s : t.steps) {
    put_ids(out, "del_vertices", s.batch.remove_vertices);
    put_edges(out, "del_edges", s.batch.remove_edges);
    put_ids(out, "ins_vertices", s.batch.add_vertices);
    put_edges(out, "ins_edges", s.batch.add_edges);
    put_weights(out, "ew", s.edge_weights);
    put_weights(out, "vw", s.vertex_weights);
  }
  out << "end\n";
}

void save_trace_file(const Trace& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  save_trace(t, out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

Trace load_trace(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("parct replay: bad magic");
  }
  if (version != "v" + std::to_string(kVersion)) {
    throw std::runtime_error("parct replay: unsupported version " + version);
  }
  Trace t;
  t.master_seed = get_field<std::uint64_t>(in, "master_seed");
  t.num_workers = get_field<unsigned>(in, "num_workers");
  t.steal_seed = get_field<std::uint64_t>(in, "steal_seed");
  t.contraction_seed = get_field<std::uint64_t>(in, "contraction_seed");
  t.ett_seed = get_field<std::uint64_t>(in, "ett_seed");
  t.degree_bound = get_field<int>(in, "degree_bound");
  t.corrupt_step = get_field<int>(in, "corrupt_step");
  t.corrupt_seed = get_field<std::uint64_t>(in, "corrupt_seed");
  const std::size_t capacity = get_field<std::size_t>(in, "capacity");

  const std::vector<VertexId> present = get_ids(in, "present");
  const std::vector<Edge> edges = get_edges(in, "edges");
  t.initial = forest::Forest(capacity, t.degree_bound, 0);
  for (VertexId v : present) t.initial.add_vertex(v);
  for (const Edge& e : edges) t.initial.link(e.child, e.parent);
  t.initial_edge_weights = get_weights(in, "edge_weights");
  t.initial_vertex_weights = get_weights(in, "vertex_weights");

  const std::size_t num_steps = get_field<std::size_t>(in, "steps");
  t.steps.resize(num_steps);
  for (TraceStep& s : t.steps) {
    s.batch.remove_vertices = get_ids(in, "del_vertices");
    s.batch.remove_edges = get_edges(in, "del_edges");
    s.batch.add_vertices = get_ids(in, "ins_vertices");
    s.batch.add_edges = get_edges(in, "ins_edges");
    s.edge_weights = get_weights(in, "ew");
    s.vertex_weights = get_weights(in, "vw");
  }
  std::string tail;
  if (!(in >> tail) || tail != "end") {
    throw std::runtime_error("parct replay: missing 'end' marker");
  }
  return t;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_trace(in);
}

}  // namespace parct::harness
