// Seeded workload generation for the differential harness: a single
// master seed determines the initial forest shape (including adversarial
// chains/stars from the shared shape table), every batch of the history
// (link/cut/insert/delete with skewed batch sizes, subtree moves, root
// churn), all staged aggregate weights, the worker count and the
// steal-order seed. The result is an explicit Trace — no RNG state needs
// to survive into the runner, so a trace replays identically anywhere.
#pragma once

#include <cstdint>

#include "harness/trace.hpp"

namespace parct::harness {

struct WorkloadConfig {
  std::uint64_t seed = 1;

  /// Approximate initial forest size and spare ids for vertex churn.
  std::size_t n = 400;
  std::size_t extra_capacity = 80;

  /// Generate steps until the trace holds at least this many operations
  /// (sum of batch sizes).
  std::uint64_t target_ops = 1000;

  /// Upper bound on one batch's operation count; sizes are skewed toward
  /// small batches with occasional bursts up to the cap.
  std::size_t max_batch = 64;

  /// 0 = derive a worker count in [1, 8] from the seed.
  unsigned num_workers = 0;

  /// Shape index into parct::test::kShapes; -1 = derive from the seed.
  int shape = -1;
};

/// Deterministically expands `config` into a full trace.
Trace generate_trace(const WorkloadConfig& config);

}  // namespace parct::harness
