// The differential runner: executes a Trace against the contraction
// structure while mirroring the forest into every oracle we have, and
// cross-checks after each step:
//
//   * full (P, C, D) structural equality against a from-scratch
//     ForestContraction of the current forest with the SAME coin schedule
//     (the paper's keystone behavioural-equivalence property),
//   * Link-Cut Tree and Euler-Tour Tree baselines (roots, connectivity,
//     component sizes, subtree sums),
//   * path-to-root and subtree aggregates against brute-force walks of the
//     plain mirrored forest,
//   * an independent sequential re-simulation (contract::check_valid) at
//     the end of the run.
//
// Every run is deterministic in the Trace alone (including the scheduler
// configuration it carries), so a failing trace re-executes to the same
// failure — which is what makes shrinking and replay files possible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "harness/trace.hpp"

namespace parct::harness {

struct RunOptions {
  /// Run the from-scratch (P, C, D) equality check every k-th step (1 =
  /// every step; 0 = only at the end). The final step is always checked.
  int check_scratch_every = 4;
  /// Oracle query probes per step (roots, connectivity, sizes, path and
  /// subtree aggregates). 0 disables query checking.
  int queries_per_step = 8;
  /// Re-simulate the final structure with the independent sequential
  /// checker (contract::check_valid).
  bool validate_final = true;
  /// Run the whole trace under an SP-bags determinacy-race detector
  /// session (analysis/sp_bags.hpp): the run executes serially, every
  /// instrumented shared access is checked, and a detected race fails the
  /// run with the detector's two-site report. Requires a binary built with
  /// -DPARCT_RACE_DETECT=ON; otherwise the run fails immediately with an
  /// explanatory message.
  bool race_detect = false;
  /// Override the adaptive serial cutover (par::set_serial_cutover) for
  /// the duration of the run: 0 pins every frontier to the parallel path,
  /// SIZE_MAX pins the inline serial fast path, nullopt keeps the ambient
  /// configuration (env / auto-calibration). The override is cleared when
  /// the run returns. Used by the equivalence suites to prove both
  /// execution paths produce identical structures (docs/PERFORMANCE.md
  /// "Small-batch fast path").
  std::optional<std::size_t> serial_cutover;
};

struct RunResult {
  bool ok = true;
  /// Step index the run failed at (-1 if ok).
  int failed_step = -1;
  /// Deterministic, human-readable failure description.
  std::string failure;

  // --- run statistics ---------------------------------------------------
  std::uint32_t steps_applied = 0;
  std::uint32_t steps_skipped = 0;  // batches invalid against the mirror
  std::uint64_t ops_applied = 0;

  bool failed() const { return !ok; }
};

/// Executes `t` (initializing the scheduler to the trace's worker count
/// and steal seed) and returns the outcome. Deterministic in `t`.
RunResult run_trace(const Trace& t, const RunOptions& opts = RunOptions{});

/// Writes `t` as a replay file named parct-replay-seed<master_seed>.txt in
/// $PARCT_REPLAY_DIR (or the working directory) and returns the path.
std::string dump_replay(const Trace& t);

}  // namespace parct::harness
