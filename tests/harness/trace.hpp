// Trace: a fully explicit, self-contained description of one differential
// harness run — initial forest, staged weights, every batch, the scheduler
// configuration (worker count + steal-order seed) and optional fault
// injection. A trace is what the workload generator produces, what the
// differential runner executes, what the shrinker minimizes, and what gets
// dumped to disk as a replay file that `parct_cli replay <file>`
// re-executes deterministically.
//
// The on-disk format is versioned plain text (whitespace-separated
// tokens): save_trace is deterministic, so save(load(save(t))) is
// byte-identical to save(t).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "forest/change_set.hpp"
#include "forest/forest.hpp"

namespace parct::harness {

/// One batch plus the aggregate weights staged for the edges/vertices it
/// inserts (keyed by child / vertex id, applied before the update).
struct TraceStep {
  forest::ChangeSet batch;
  std::vector<std::pair<VertexId, long>> edge_weights;
  std::vector<std::pair<VertexId, long>> vertex_weights;
};

struct Trace {
  /// Seed the whole run derives from (provenance; also drives the
  /// per-step query sampling in the runner).
  std::uint64_t master_seed = 0;

  // --- scheduler perturbation -----------------------------------------
  unsigned num_workers = 1;
  std::uint64_t steal_seed = 0;

  // --- structure configuration ----------------------------------------
  std::uint64_t contraction_seed = 0;  // coin-schedule master seed
  std::uint64_t ett_seed = 0;          // Euler-tour-tree treap priorities
  int degree_bound = 4;

  // --- fault injection (testing the harness itself) -------------------
  /// After applying step `corrupt_step`, deterministically corrupt one
  /// round record of the live structure (see differential.cpp). -1 = off.
  int corrupt_step = -1;
  std::uint64_t corrupt_seed = 0;

  // --- the run itself --------------------------------------------------
  forest::Forest initial{0, 4, 0};
  std::vector<std::pair<VertexId, long>> initial_edge_weights;
  std::vector<std::pair<VertexId, long>> initial_vertex_weights;
  std::vector<TraceStep> steps;

  /// Total modifications across all batches.
  std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const TraceStep& s : steps) n += s.batch.size();
    return n;
  }
};

/// Writes `t` in the versioned text replay format. Deterministic.
void save_trace(const Trace& t, std::ostream& out);
/// Convenience: save to a file path. Throws std::runtime_error on I/O
/// failure.
void save_trace_file(const Trace& t, const std::string& path);

/// Parses a trace written by save_trace. Throws std::runtime_error on a
/// malformed stream.
Trace load_trace(std::istream& in);
Trace load_trace_file(const std::string& path);

}  // namespace parct::harness
