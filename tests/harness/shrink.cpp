#include "harness/shrink.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace parct::harness {

namespace {

/// Drops steps [lo, hi), keeping the fault-injection step (if any) and
/// re-indexing it. Returns nullopt if the range contains the injection.
std::optional<Trace> remove_step_range(const Trace& t, std::size_t lo,
                                       std::size_t hi) {
  Trace out = t;
  if (out.corrupt_step >= 0) {
    const std::size_t cs = static_cast<std::size_t>(out.corrupt_step);
    if (cs >= lo && cs < hi) return std::nullopt;
    if (cs >= hi) out.corrupt_step -= static_cast<int>(hi - lo);
  }
  out.steps.erase(out.steps.begin() + lo, out.steps.begin() + hi);
  return out;
}

/// Drops weight entries whose key no longer appears among `keep`.
void prune_weights(std::vector<std::pair<VertexId, long>>& ws,
                   const std::vector<VertexId>& keep) {
  ws.erase(std::remove_if(ws.begin(), ws.end(),
                          [&](const auto& kv) {
                            return std::find(keep.begin(), keep.end(),
                                             kv.first) == keep.end();
                          }),
           ws.end());
}

void sync_step_weights(TraceStep& s) {
  std::vector<VertexId> edge_children;
  for (const Edge& e : s.batch.add_edges) edge_children.push_back(e.child);
  prune_weights(s.edge_weights, edge_children);
  prune_weights(s.vertex_weights, s.batch.add_vertices);
}

}  // namespace

Trace shrink_trace(const Trace& t, const RunOptions& opts,
                   ShrinkReport* report, int budget) {
  int runs = 0;
  auto attempt = [&](const Trace& cand) {
    ++runs;
    return run_trace(cand, opts);
  };

  Trace best = t;
  RunResult best_res = attempt(best);
  auto finish = [&]() {
    if (report != nullptr) {
      report->runs = runs;
      report->result = best_res;
    }
    return best;
  };
  if (best_res.ok) return finish();  // nothing to shrink

  auto truncate_after_failure = [&]() {
    if (best_res.failed_step >= 0 &&
        best_res.failed_step + 1 <
            static_cast<int>(best.steps.size())) {
      best.steps.resize(best_res.failed_step + 1);
    }
  };
  truncate_after_failure();

  // Phase 1: drop chunks of steps, halving the chunk size.
  for (std::size_t chunk = std::max<std::size_t>(1, best.steps.size() / 2);
       chunk >= 1; chunk /= 2) {
    std::size_t lo = 0;
    while (lo < best.steps.size() && runs < budget) {
      const std::size_t hi = std::min(lo + chunk, best.steps.size());
      if (auto cand = remove_step_range(best, lo, hi)) {
        const RunResult r = attempt(*cand);
        if (r.failed()) {
          best = std::move(*cand);
          best_res = r;
          truncate_after_failure();
          continue;  // same lo now names different steps
        }
      }
      lo = hi;
    }
    if (chunk == 1) break;
  }

  // Phase 2: drop individual operations inside the surviving batches.
  for (std::size_t s = 0; s < best.steps.size() && runs < budget; ++s) {
    auto try_erase = [&](auto member) {
      auto& vec = best.steps[s].batch.*member;
      for (std::size_t i = vec.size(); i-- > 0 && runs < budget;) {
        Trace cand = best;
        auto& cvec = cand.steps[s].batch.*member;
        cvec.erase(cvec.begin() + i);
        sync_step_weights(cand.steps[s]);
        const RunResult r = attempt(cand);
        if (r.failed()) {
          best = std::move(cand);
          best_res = r;
        }
      }
    };
    try_erase(&forest::ChangeSet::add_edges);
    try_erase(&forest::ChangeSet::add_vertices);
    try_erase(&forest::ChangeSet::remove_edges);
    try_erase(&forest::ChangeSet::remove_vertices);
  }
  truncate_after_failure();

  // Re-establish the exact failure of the final candidate (phases may have
  // left best_res pointing at a pre-truncation run).
  best_res = attempt(best);
  return finish();
}

}  // namespace parct::harness
