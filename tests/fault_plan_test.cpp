// Fault-injection plan mechanics, independent of any armed build: the
// schedule decision function, the spec format round trip, and malformed
// spec rejection. These run in every build (the spec types compile
// unconditionally); the armed end-to-end schedules live in chaos_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "fault/fault_injection.hpp"

namespace parct::fault {
namespace {

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (unsigned i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    const auto parsed = parse_site(site_name(s));
    ASSERT_TRUE(parsed.has_value()) << site_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_site("no-such-site").has_value());
  EXPECT_FALSE(parse_site("").has_value());
}

TEST(FaultPlan, ScheduleDecisionFunction) {
  SiteSchedule off;
  for (std::uint64_t h = 0; h < 10; ++h) EXPECT_FALSE(off.fires(h));

  SiteSchedule once{Mode::kOnce, 3, 1, 1};
  for (std::uint64_t h = 0; h < 10; ++h) {
    EXPECT_EQ(once.fires(h), h == 3) << h;
  }

  SiteSchedule periodic{Mode::kPeriodic, 2, 4, 1};
  for (std::uint64_t h = 0; h < 20; ++h) {
    EXPECT_EQ(periodic.fires(h), h >= 2 && (h - 2) % 4 == 0) << h;
  }

  SiteSchedule burst{Mode::kBurst, 5, 1, 3};
  for (std::uint64_t h = 0; h < 12; ++h) {
    EXPECT_EQ(burst.fires(h), h >= 5 && h < 8) << h;
  }
}

TEST(FaultPlan, SpecFormatRoundTrips) {
  Plan plan;
  plan.seed = 42;
  plan[Site::kEpochApply] = {Mode::kBurst, 3, 1, 2};
  plan[Site::kQueueAdmission] = {Mode::kPeriodic, 1, 5, 1};
  plan[Site::kWorkspaceAcquire] = {Mode::kOnce, 7, 1, 1};

  const std::string spec = format_plan(plan);
  // Self-describing and stable — this exact string is what a failing
  // chaos run prints for PARCT_CHAOS_SPEC.
  EXPECT_EQ(spec,
            "seed=42;workspace-acquire:once@7;epoch-apply:burst@3x2;"
            "queue-admission:periodic@1/5");

  const Plan back = parse_plan(spec);
  EXPECT_EQ(back.seed, plan.seed);
  for (unsigned i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    EXPECT_EQ(back[s].mode, plan[s].mode) << site_name(s);
    for (std::uint64_t h = 0; h < 64; ++h) {
      EXPECT_EQ(back[s].fires(h), plan[s].fires(h))
          << site_name(s) << " hit " << h;
    }
  }
  EXPECT_EQ(format_plan(back), spec) << "format must be a fixed point";
}

TEST(FaultPlan, EmptyPlanIsJustTheSeed) {
  Plan plan;
  plan.seed = 9;
  EXPECT_EQ(format_plan(plan), "seed=9");
  const Plan back = parse_plan("seed=9");
  for (unsigned i = 0; i < kNumSites; ++i) {
    EXPECT_EQ(back.sites[i].mode, Mode::kOff);
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_plan(""), std::runtime_error);
  EXPECT_THROW(parse_plan("epoch-apply:once@1"), std::runtime_error)
      << "seed is mandatory";
  EXPECT_THROW(parse_plan("seed=banana"), std::runtime_error);
  EXPECT_THROW(parse_plan("seed=1;no-such-site:once@0"), std::runtime_error);
  EXPECT_THROW(parse_plan("seed=1;epoch-apply:sometimes@0"),
               std::runtime_error);
  EXPECT_THROW(parse_plan("seed=1;epoch-apply"), std::runtime_error);
  EXPECT_THROW(parse_plan("seed=1;epoch-apply:once"), std::runtime_error);
}

TEST(FaultPlan, InjectedFaultCarriesItsSite) {
  const InjectedFault e(Site::kEpochApply);
  EXPECT_EQ(e.site(), Site::kEpochApply);
  EXPECT_NE(std::string(e.what()).find("epoch-apply"), std::string::npos);
}

#if !PARCT_FAULT_INJECT
TEST(FaultPlan, StubsAreInertWithoutTheBuildFlag) {
  Plan plan;
  plan.seed = 1;
  plan[Site::kEpochApply] = {Mode::kBurst, 0, 1, 1000};
  arm(plan);  // no-op stub
  EXPECT_FALSE(armed());
  EXPECT_EQ(hits(Site::kEpochApply), 0u);
  EXPECT_EQ(fired(Site::kEpochApply), 0u);
  disarm();
}
#endif

}  // namespace
}  // namespace parct::fault
