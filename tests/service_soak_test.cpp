// Concurrent serving soak: multiple client threads hammer a started
// BatchServer with query batches while an updater thread streams edge-churn
// batches through it. Every QueryResult carries the version it was answered
// at, so the concurrent history is checked against a serialized oracle: the
// forest obtained by applying the first `version` updates in submission
// order. Runs under TSAN in the sanitizer CI job; under PARCT_RACE_DETECT
// the same workload is driven through the deterministic single-threaded
// step() path, which still exercises the logical parallelism (query
// fan-out, update propagation) under the SP-bags detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct::service {
namespace {

constexpr std::size_t kN = 2000;
constexpr int kUpdates = 24;
constexpr int kQueryThreads = 2;
constexpr int kBatchesPerThread = 40;
constexpr std::size_t kQueriesPerBatch = 48;

struct Workload {
  forest::Forest initial{0};
  std::vector<forest::ChangeSet> batches;       // in submission order
  std::vector<forest::Forest> at_version;       // at_version[v]: after v batches
};

Workload make_workload() {
  Workload wl;
  wl.initial = forest::random_forest(kN, 8, 4, 0.45, 91);
  wl.at_version.push_back(wl.initial);
  for (int u = 0; u < kUpdates; ++u) {
    // Edge churn only: every vertex stays present, so any id < kN is a
    // valid query at every version (vertex churn is covered in
    // service_test.cpp).
    forest::ChangeSet m =
        forest::make_delete_batch(wl.at_version.back(), 4, 1000 + u);
    wl.at_version.push_back(
        forest::apply_change_set(wl.at_version.back(), m));
    wl.batches.push_back(std::move(m));
  }
  return wl;
}

QueryBatch make_queries(std::uint64_t seed) {
  hashing::SplitMix64 rng(seed);
  QueryBatch q;
  for (std::size_t i = 0; i < kQueriesPerBatch; ++i) {
    q.roots.push_back(static_cast<VertexId>(rng.next_below(kN)));
    q.connected.push_back({static_cast<VertexId>(rng.next_below(kN)),
                           static_cast<VertexId>(rng.next_below(kN))});
    q.tree_weights.push_back(static_cast<VertexId>(rng.next_below(kN)));
  }
  return q;
}

class Oracle {
 public:
  explicit Oracle(const Workload& wl, const std::vector<Weight>& w)
      : wl_(wl), w_(w) {}

  void check(const QueryBatch& q, const QueryResult& r) {
    ASSERT_LT(r.version, wl_.at_version.size());
    const forest::Forest& f = wl_.at_version[r.version];
    const std::vector<Weight>& component = components(r.version);
    for (std::size_t i = 0; i < q.roots.size(); ++i) {
      ASSERT_EQ(r.roots[i], forest::root_of(f, q.roots[i]))
          << "version " << r.version;
    }
    for (std::size_t i = 0; i < q.connected.size(); ++i) {
      ASSERT_EQ(r.connected[i] != 0,
                forest::root_of(f, q.connected[i].first) ==
                    forest::root_of(f, q.connected[i].second))
          << "version " << r.version;
    }
    for (std::size_t i = 0; i < q.tree_weights.size(); ++i) {
      ASSERT_EQ(r.tree_weights[i],
                component[forest::root_of(f, q.tree_weights[i])])
          << "version " << r.version;
    }
  }

 private:
  // component[root] = total weight of that tree, memoized per version.
  const std::vector<Weight>& components(std::uint64_t version) {
    auto it = cache_.find(version);
    if (it != cache_.end()) return it->second;
    const forest::Forest& f = wl_.at_version[version];
    std::vector<Weight> comp(f.capacity(), 0);
    for (VertexId v = 0; v < f.capacity(); ++v) {
      if (f.present(v)) comp[forest::root_of(f, v)] += w_[v];
    }
    return cache_.emplace(version, std::move(comp)).first->second;
  }

  const Workload& wl_;
  const std::vector<Weight>& w_;
  std::unordered_map<std::uint64_t, std::vector<Weight>> cache_;
};

#if PARCT_RACE_DETECT

TEST(ServiceSoak, SteppedEpochsUnderRaceDetector) {
  par::scheduler::initialize(4);
  Workload wl = make_workload();
  std::vector<Weight> w(kN);
  hashing::SplitMix64 wrng(3);
  for (Weight& x : w) x = static_cast<Weight>(wrng.next_below(64));

  contract::ContractionForest c(kN, 4, 7);
  contract::construct(c, wl.initial);
  BatchServer server(c, {}, w);

  Oracle oracle(wl, w);
  std::uint64_t seed = 1;
  for (int u = 0; u < kUpdates; ++u) {
    QueryBatch q = make_queries(seed++);
    auto qfut = server.submit_queries(q);
    UpdateRequest req;
    req.batch = wl.batches[u];
    auto ufut = server.submit_update(std::move(req));
    ASSERT_TRUE(server.step());
    oracle.check(q, qfut.get());
    ASSERT_EQ(ufut.get().version, static_cast<std::uint64_t>(u) + 1);
  }
  par::scheduler::initialize(1);
}

#else  // !PARCT_RACE_DETECT

TEST(ServiceSoak, ConcurrentClientsMatchSerializedOracle) {
  par::scheduler::initialize(4);
  Workload wl = make_workload();
  std::vector<Weight> w(kN);
  hashing::SplitMix64 wrng(3);
  for (Weight& x : w) x = static_cast<Weight>(wrng.next_below(64));

  contract::ContractionForest c(kN, 4, 7);
  contract::construct(c, wl.initial);
  ServiceConfig cfg;
  cfg.overlap_updates = true;
  cfg.max_pending_updates = 4;  // small queues: exercise backpressure
  cfg.max_pending_query_batches = 8;
  BatchServer server(c, cfg, w);
  server.start();

  // One updater thread streams the precomputed batches in order; query
  // threads submit concurrently and keep (batch, future) pairs for the
  // post-hoc oracle check. Client threads only touch the server's
  // thread-safe submit API — never the pool (the engine owns it).
  std::vector<std::future<UpdateResult>> ufuts(kUpdates);
  // parct-lint: allow(raw-thread) — soak clients are OS threads by design.
  std::thread updater([&] {
    for (int u = 0; u < kUpdates; ++u) {
      UpdateRequest req;
      req.batch = wl.batches[u];
      ufuts[u] = server.submit_update(std::move(req));
    }
  });

  using Submitted = std::pair<QueryBatch, std::future<QueryResult>>;
  std::vector<std::vector<Submitted>> per_thread(kQueryThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kQueryThreads; ++t) {
    // parct-lint: allow(raw-thread)
    clients.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        QueryBatch q = make_queries(7000 + 100 * t + b);
        auto fut = server.submit_queries(q);
        per_thread[t].push_back({std::move(q), std::move(fut)});
      }
    });
  }

  updater.join();
  for (std::thread& th : clients) th.join();
  server.stop();  // drains everything admitted

  for (int u = 0; u < kUpdates; ++u) {
    ASSERT_EQ(ufuts[u].get().version, static_cast<std::uint64_t>(u) + 1)
        << "updates must apply in submission order";
  }
  Oracle oracle(wl, w);
  for (auto& thread_results : per_thread) {
    for (auto& [q, fut] : thread_results) {
      QueryResult r = fut.get();
      oracle.check(q, r);
    }
  }

  const ServiceStats s = server.stats();
  EXPECT_EQ(s.updates_applied, static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(s.queries_served,
            static_cast<std::uint64_t>(kQueryThreads) * kBatchesPerThread *
                kQueriesPerBatch * 3);
  EXPECT_EQ(s.snapshots_published, static_cast<std::uint64_t>(kUpdates) + 1);
  par::scheduler::initialize(1);
}

#endif  // PARCT_RACE_DETECT

}  // namespace
}  // namespace parct::service
