// Tests for the Forest representation and validation helpers.
#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "forest/validation.hpp"

namespace parct::forest {
namespace {

TEST(Forest, FreshForestAllIsolatedRoots) {
  Forest f(10, 4, 10);
  EXPECT_EQ(f.num_present(), 10u);
  EXPECT_EQ(f.num_edges(), 0u);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_TRUE(f.present(v));
    EXPECT_TRUE(f.is_root(v));
    EXPECT_TRUE(f.is_isolated(v));
  }
  EXPECT_FALSE(check_forest(f).has_value());
}

TEST(Forest, PartialPresence) {
  Forest f(10, 4, 6);
  EXPECT_TRUE(f.present(5));
  EXPECT_FALSE(f.present(6));
  f.add_vertex(8);
  EXPECT_TRUE(f.present(8));
  EXPECT_EQ(f.num_present(), 7u);
  f.remove_vertex(8);
  EXPECT_FALSE(f.present(8));
}

TEST(Forest, LinkCutRoundTrip) {
  Forest f(5, 4, 5);
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 1);
  EXPECT_EQ(f.num_edges(), 3u);
  EXPECT_EQ(f.parent(3), 1u);
  EXPECT_EQ(f.degree(0), 2);
  EXPECT_TRUE(f.has_edge(1, 0));
  EXPECT_FALSE(f.has_edge(0, 1));
  EXPECT_FALSE(check_forest(f).has_value());

  f.cut(1);
  EXPECT_TRUE(f.is_root(1));
  EXPECT_EQ(f.degree(0), 1);
  EXPECT_EQ(f.num_edges(), 2u);
  EXPECT_FALSE(check_forest(f).has_value());
}

TEST(Forest, ChildSlotsReusedAfterCut) {
  Forest f(8, 2, 8);
  f.link(1, 0);
  f.link(2, 0);
  EXPECT_THROW(f.link(3, 0), std::runtime_error);  // degree bound 2
  f.cut(1);
  f.link(3, 0);  // slot freed by cutting 1
  EXPECT_EQ(f.degree(0), 2);
  EXPECT_FALSE(check_forest(f).has_value());
}

TEST(Forest, DegreeBoundValidated) {
  EXPECT_THROW(Forest(4, 0), std::invalid_argument);
  EXPECT_THROW(Forest(4, kMaxDegree + 1), std::invalid_argument);
}

TEST(Forest, EdgesAndRootsEnumeration) {
  Forest f(6, 4, 6);
  f.link(1, 0);
  f.link(2, 1);
  f.link(4, 3);
  auto edges = f.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{1, 0}));
  EXPECT_EQ(edges[1], (Edge{2, 1}));
  EXPECT_EQ(edges[2], (Edge{4, 3}));
  EXPECT_EQ(f.roots(), (std::vector<VertexId>{0, 3, 5}));
  EXPECT_EQ(f.vertices().size(), 6u);
}

TEST(Forest, DepthRootHeight) {
  Forest f(7, 4, 7);
  f.link(1, 0);
  f.link(2, 1);
  f.link(3, 2);
  f.link(5, 4);
  EXPECT_EQ(depth(f, 3), 3u);
  EXPECT_EQ(depth(f, 0), 0u);
  EXPECT_EQ(root_of(f, 3), 0u);
  EXPECT_EQ(root_of(f, 5), 4u);
  EXPECT_EQ(height(f), 3u);
}

TEST(Forest, EqualityIgnoresSlotLayout) {
  Forest a(4, 4, 4), b(4, 4, 4);
  a.link(1, 0);
  a.link(2, 0);
  b.link(2, 0);  // different insertion order -> different slots
  b.link(1, 0);
  EXPECT_TRUE(a == b);
}

TEST(ForestValidation, DetectsInconsistencies) {
  // check_forest sees cross-link inconsistencies only via direct state
  // corruption, which the public API prevents; here we at least check the
  // positive path plus the degree-bound violation path through link().
  Forest f(3, 1, 3);
  f.link(1, 0);
  EXPECT_THROW(f.link(2, 0), std::runtime_error);
  EXPECT_FALSE(check_forest(f).has_value());
}

}  // namespace
}  // namespace parct::forest
