// End-to-end integration tests: long interleavings of construction,
// batched updates, validity checks and application-level queries — the
// full public API exercised together, across worker counts.
#include <gtest/gtest.h>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/validate.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "parallel/scheduler.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct {
namespace {

using contract::ContractionForest;
using contract::DynamicUpdater;
using forest::ChangeSet;
using forest::Forest;

class IntegrationWorkers : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { par::scheduler::initialize(GetParam()); }
  void TearDown() override { par::scheduler::initialize(1); }
};

TEST_P(IntegrationWorkers, LongMixedSession) {
  const std::size_t n = 1200;
  Forest full = forest::build_tree(n, 4, 0.5, 77, /*extra_capacity=*/64);
  ContractionForest c(full.capacity(), 4, 4242);
  contract::construct(c, full);
  DynamicUpdater updater(c);
  Forest cur = full;
  hashing::SplitMix64 rng(31337);

  for (int step = 0; step < 15; ++step) {
    ChangeSet m;
    switch (step % 4) {
      case 0:
        m = forest::make_delete_batch(cur, 1 + rng.next_below(15),
                                      rng.next());
        break;
      case 1: {
        // Re-link some trees: cut edges then re-add them reversed where
        // legal; simplest valid move set: delete then, next step, rebuild.
        m = forest::make_delete_batch(cur, 1 + rng.next_below(8),
                                      rng.next());
        break;
      }
      case 2: {
        // Insert edges between roots (merges trees, always acyclic).
        auto roots = cur.roots();
        if (roots.size() >= 2) {
          for (std::size_t k = 0; k + 1 < std::min<std::size_t>(
                   roots.size(), 6); k += 2) {
            if (cur.degree(roots[k]) < cur.degree_bound()) {
              m.ins_edge(roots[k + 1], roots[k]);
            }
          }
        }
        break;
      }
      default:
        m = forest::make_vertex_batch(cur, 1 + rng.next_below(4), 0,
                                      rng.next());
        break;
    }
    if (m.empty()) continue;
    ASSERT_FALSE(forest::check_change_set(cur, m).has_value());
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);

    // Full validity against the independent simulator every few steps
    // (it is O(n) per check).
    if (step % 5 == 4) {
      auto err = contract::check_valid(c, cur);
      ASSERT_FALSE(err.has_value()) << *err << " at step " << step;
    }
  }
  // Final: from-scratch equivalence.
  ContractionForest oracle(cur.capacity(), 4, 4242);
  contract::construct(oracle, cur);
  EXPECT_TRUE(contract::structurally_equal(c, oracle));
}

TEST_P(IntegrationWorkers, QueriesTrackStructure) {
  const std::size_t n = 800;
  Forest cur = forest::random_forest(n, 4, 4, 0.4, 5);
  ContractionForest c(cur.capacity(), 4, 99);
  contract::construct(c, cur);
  DynamicUpdater updater(c);

  hashing::SplitMix64 rng(17);
  for (int step = 0; step < 8; ++step) {
    ChangeSet m = forest::make_delete_batch(cur, 5, rng.next());
    updater.apply(m);
    cur = forest::apply_change_set(cur, m);

    rc::RCForest rcf(c);
    rc::TreeAggregate<long> agg(rcf, std::vector<long>(cur.capacity(), 1));
    std::vector<long> size_by_root(cur.capacity(), 0);
    for (VertexId v = 0; v < cur.capacity(); ++v) {
      if (cur.present(v)) ++size_by_root[forest::root_of(cur, v)];
    }
    for (int q = 0; q < 100; ++q) {
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      EXPECT_EQ(rcf.root(v), forest::root_of(cur, v));
      EXPECT_EQ(agg.tree_weight(v), size_by_root[forest::root_of(cur, v)]);
    }
  }
}

TEST_P(IntegrationWorkers, UpdateThenUpdateBackRestoresStructure) {
  // Applying a batch and then its inverse must reproduce the original
  // structure bit-for-bit (same coin schedule throughout).
  Forest full = forest::build_tree(1000, 4, 0.6, 13);
  ContractionForest original(full.capacity(), 4, 321);
  contract::construct(original, full);

  ContractionForest c(full.capacity(), 4, 321);
  contract::construct(c, full);
  DynamicUpdater updater(c);

  ChangeSet m = forest::make_delete_batch(full, 60, 7);
  updater.apply(m);
  ChangeSet inverse;
  inverse.add_edges = m.remove_edges;
  updater.apply(inverse);

  EXPECT_TRUE(contract::structurally_equal(c, original));
}

INSTANTIATE_TEST_SUITE_P(Workers, IntegrationWorkers,
                         ::testing::Values(1u, 3u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parct
