// Chaos tests: seeded fault schedules driven through the serving stack.
// Every injection site is exercised under every schedule mode (once,
// periodic, burst), singly and combined, against a live engine with
// concurrent epochs. The invariant is the acceptance criterion of the
// fault layer: every admitted request's future either resolves with a
// result that matches the oracle at the version it reports, or rejects
// with a documented error — no wedged futures, no torn snapshots, no
// version that skips or repeats.
//
// Replay: each run announces its plan spec via SCOPED_TRACE, so a failing
// schedule prints as `replay: PARCT_CHAOS_SPEC=...`. Exporting that
// variable re-runs exactly that plan through the deterministic stepped
// driver (ReplaysSpecFromEnvironment), whose whole outcome — versions and
// per-future dispositions — is a pure function of the spec
// (docs/TESTING.md §5).
#include <gtest/gtest.h>

#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "contraction/construct.hpp"
#include "fault/fault_injection.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct::service {
namespace {

#if !PARCT_FAULT_INJECT

TEST(Chaos, RequiresFaultInjectBuild) {
  GTEST_SKIP() << "built without PARCT_FAULT_INJECT; the chaos schedules "
                  "run in the fault-injection CI job";
}

#else  // PARCT_FAULT_INJECT

constexpr std::size_t kN = 700;
constexpr int kRounds = 24;

// How one submitted request ended: the version it was served at, or a
// coarse rejection class. Comparable across runs for replay determinism.
enum class Disposition : int {
  kServed = 0,
  kAdmissionDropped,
  kDeadlineOrShed,
  kEpochAborted,
  kAllocFailure,   // injected bad_alloc surfaced through apply
  kUpdatesHalted,  // rejected because an earlier apply failed mid-flight
};

struct RunOutcome {
  std::uint64_t final_version = 0;
  std::vector<std::pair<Disposition, std::uint64_t>> queries;  // + version
  std::vector<Disposition> updates;

  bool operator==(const RunOutcome& o) const {
    return final_version == o.final_version && queries == o.queries &&
           updates == o.updates;
  }
};

Disposition classify(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const AdmissionDropped&) {
    return Disposition::kAdmissionDropped;
  } catch (const DeadlineExceeded&) {
    return Disposition::kDeadlineOrShed;
  } catch (const QueryShed&) {
    return Disposition::kDeadlineOrShed;
  } catch (const EpochAborted&) {
    return Disposition::kEpochAborted;
  } catch (const std::bad_alloc&) {
    return Disposition::kAllocFailure;
  } catch (const std::runtime_error&) {
    return Disposition::kUpdatesHalted;
  } catch (...) {
    ADD_FAILURE() << "future rejected with an undocumented error type";
    return Disposition::kUpdatesHalted;
  }
}

// Drives kRounds of interleaved query/update traffic through a BatchServer
// with `plan` armed, then checks every future against the
// oracle-reconstructed version chain. `stepped` uses the deterministic
// step() driver (one epoch per round — the replay mode); otherwise a live
// engine thread coalesces epochs on its own.
RunOutcome run_chaos(const fault::Plan& plan, bool stepped) {
  SCOPED_TRACE("replay: PARCT_CHAOS_SPEC='" + fault::format_plan(plan) +
               "'");
  forest::Forest f = forest::random_forest(kN, 5, 4, 0.4, 17);
  contract::ContractionForest c(kN, 4, 3);
  contract::construct(c, f);
  ServiceConfig cfg;
  cfg.max_epoch_retries = 2;
  cfg.retry_backoff = std::chrono::microseconds(50);
  BatchServer server(c, cfg, std::vector<Weight>(kN, 1));

  fault::arm(plan);
  if (!stepped) server.start();

  // Each update batch is generated against the forest as it would be if
  // every prior update succeeded; batches are independent edge sets, so a
  // later batch stays valid even when an earlier one was rejected (the
  // oracle chain below applies only the batches that actually landed).
  hashing::SplitMix64 rng(plan.seed * 1299709 + 1);
  forest::Forest hypothetical = f;
  std::vector<std::pair<QueryBatch, std::future<QueryResult>>> qfuts;
  std::vector<std::pair<forest::ChangeSet, std::future<UpdateResult>>> ufuts;
  for (int i = 0; i < kRounds; ++i) {
    QueryBatch q;
    for (int j = 0; j < 24; ++j) {
      q.roots.push_back(static_cast<VertexId>(rng.next_below(kN)));
      q.connected.push_back({static_cast<VertexId>(rng.next_below(kN)),
                             static_cast<VertexId>(rng.next_below(kN))});
      q.tree_weights.push_back(static_cast<VertexId>(rng.next_below(kN)));
    }
    auto qfut = server.submit_queries(q);
    qfuts.emplace_back(std::move(q), std::move(qfut));
    if (i % 3 == 1) {
      forest::ChangeSet batch = forest::make_delete_batch(
          hypothetical, 3, plan.seed * 100 + i);
      hypothetical = forest::apply_change_set(hypothetical, batch);
      UpdateRequest u;
      u.batch = batch;
      auto ufut = server.submit_update(std::move(u));
      ufuts.emplace_back(std::move(batch), std::move(ufut));
    }
    if (stepped) server.step();
  }
  if (stepped) {
    while (server.step()) {
    }
  }
  server.stop();
  // Every run submits through the admission site, so the hit counters must
  // have ticked — catches a build where the macros silently compiled away.
  EXPECT_GT(fault::hits(fault::Site::kQueueAdmission), 0u);
  fault::disarm();

  // Reconstruct the version chain from the updates that actually applied:
  // update epochs run in submission order, and every success advances the
  // published version by exactly one.
  RunOutcome out;
  std::vector<forest::Forest> at_version = {f};
  for (auto& [batch, fut] : ufuts) {
    try {
      UpdateResult ur = fut.get();
      EXPECT_EQ(ur.version, at_version.size())
          << "versions must advance by one per applied update";
      at_version.push_back(
          forest::apply_change_set(at_version.back(), batch));
      out.updates.push_back(Disposition::kServed);
    } catch (...) {
      out.updates.push_back(classify(std::current_exception()));
    }
  }
  out.final_version = server.version();
  EXPECT_EQ(out.final_version, at_version.size() - 1);

  // ASSERT_* needs a void scope; failures propagate via HasFatalFailure.
  auto check_query = [&](const QueryBatch& q, const QueryResult& r) {
    ASSERT_LT(r.version, at_version.size()) << "phantom version";
    const forest::Forest& oracle = at_version[r.version];
    std::vector<Weight> component(kN, 0);
    for (VertexId v = 0; v < kN; ++v) {
      if (oracle.present(v)) component[forest::root_of(oracle, v)] += 1;
    }
    for (std::size_t i = 0; i < q.roots.size(); ++i) {
      ASSERT_EQ(r.roots[i], forest::root_of(oracle, q.roots[i]))
          << "root mismatch at version " << r.version;
      ASSERT_EQ(r.connected[i] != 0,
                forest::root_of(oracle, q.connected[i].first) ==
                    forest::root_of(oracle, q.connected[i].second))
          << "connectivity mismatch at version " << r.version;
      ASSERT_EQ(r.tree_weights[i],
                component[forest::root_of(oracle, q.tree_weights[i])])
          << "tree weight mismatch at version " << r.version;
    }
  };
  for (auto& [q, fut] : qfuts) {
    try {
      QueryResult r = fut.get();
      check_query(q, r);
      if (::testing::Test::HasFatalFailure()) return out;
      out.queries.push_back({Disposition::kServed, r.version});
    } catch (const std::exception&) {
      out.queries.push_back({classify(std::current_exception()), 0});
    }
  }

  // The final published snapshot must answer like the oracle's final
  // forest — the structure survived the schedule intact.
  const SnapshotHandle snap = server.snapshot();
  [&] {
    for (VertexId v = 0; v < kN; v += 13) {
      ASSERT_EQ(snap->root(v), forest::root_of(at_version.back(), v))
          << "final snapshot diverged from the oracle";
    }
  }();
  return out;
}

fault::SiteSchedule make_schedule(fault::Mode mode, hashing::SplitMix64& g) {
  fault::SiteSchedule s;
  s.mode = mode;
  s.at = g.next_below(16);
  s.every = 1 + g.next_below(7);
  s.len = 1 + g.next_below(3);
  return s;
}

class ChaosMatrix : public ::testing::Test {
 protected:
  void SetUp() override { par::scheduler::initialize(4); }
  void TearDown() override {
    fault::disarm();
    par::scheduler::initialize(1);
  }
};

TEST_F(ChaosMatrix, EverySiteUnderEveryMode) {
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(::testing::UnitTest::GetInstance()
                                     ->random_seed());
  for (unsigned site = 0; site < fault::kNumSites; ++site) {
    for (const fault::Mode mode :
         {fault::Mode::kOnce, fault::Mode::kPeriodic, fault::Mode::kBurst}) {
      fault::Plan plan;
      plan.seed = base_seed * 31 + site * 3 + static_cast<unsigned>(mode);
      hashing::SplitMix64 g(plan.seed);
      plan.sites[site] = make_schedule(mode, g);
      run_chaos(plan, /*stepped=*/false);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(ChaosMatrix, AllSitesCombined) {
  fault::Plan plan;
  plan.seed = 424242;
  hashing::SplitMix64 g(plan.seed);
  plan[fault::Site::kWorkspaceAcquire] =
      make_schedule(fault::Mode::kOnce, g);
  plan[fault::Site::kSchedulerSteal] =
      make_schedule(fault::Mode::kPeriodic, g);
  plan[fault::Site::kSerialHandoff] = make_schedule(fault::Mode::kBurst, g);
  plan[fault::Site::kEpochApply] = make_schedule(fault::Mode::kOnce, g);
  plan[fault::Site::kQueueAdmission] =
      make_schedule(fault::Mode::kPeriodic, g);
  run_chaos(plan, /*stepped=*/false);
}

TEST_F(ChaosMatrix, SteppedScheduleReplaysExactly) {
  // The replay contract: under the stepped driver with a serial pool the
  // whole outcome is a pure function of the plan spec. Two runs of the
  // same spec — one of them round-tripped through format_plan/parse_plan —
  // must match disposition for disposition.
  par::scheduler::initialize(1);  // serial: hit sequences replay exactly
  fault::Plan plan;
  plan.seed = 77;
  plan[fault::Site::kEpochApply] = {fault::Mode::kPeriodic, 1, 3, 1};
  plan[fault::Site::kQueueAdmission] = {fault::Mode::kPeriodic, 2, 5, 1};
  plan[fault::Site::kWorkspaceAcquire] = {fault::Mode::kOnce, 40, 1, 1};
  const RunOutcome first = run_chaos(plan, /*stepped=*/true);
  const fault::Plan reparsed = fault::parse_plan(fault::format_plan(plan));
  const RunOutcome second = run_chaos(reparsed, /*stepped=*/true);
  EXPECT_TRUE(first == second)
      << "stepped chaos run diverged on replay of "
      << fault::format_plan(plan);
}

TEST_F(ChaosMatrix, ReplaysSpecFromEnvironment) {
  const char* spec = std::getenv("PARCT_CHAOS_SPEC");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "set PARCT_CHAOS_SPEC to replay a failing schedule";
  }
  par::scheduler::initialize(1);
  run_chaos(fault::parse_plan(spec), /*stepped=*/true);
}

#endif  // PARCT_FAULT_INJECT

}  // namespace
}  // namespace parct::service
