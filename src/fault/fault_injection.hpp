// Deterministic fault injection for the serving and runtime layers.
//
// A *site* is a named point in the code where a failure can be provoked:
// an allocation failure in a Workspace acquire, an artificial stall in the
// scheduler's steal sweep or at a SerialScope handoff, an abort at the
// epoch-apply boundary of the BatchServer, or a drop at queue admission.
// A *plan* assigns each site a schedule over its hit sequence — the k-th
// time execution reaches the site is hit index k, and the schedule decides
// whether that hit fires:
//
//   once      fire exactly at hit index `at`
//   periodic  fire at `at`, `at + every`, `at + 2*every`, ...
//   burst     fire at every hit in [at, at + len)
//
// Determinism: firing is a pure function of (plan, hit index). Hit indices
// are assigned by a global per-site counter, so in single-threaded
// execution (BatchServer::step(), serial tests) the whole schedule replays
// exactly; with concurrent threads the *set* of firing hit indices is
// still exact even though which thread draws a given index may vary.
//
// Everything here compiles away unless the build defines
// PARCT_FAULT_INJECT (CMake: -DPARCT_FAULT_INJECT=ON). Injection sites in
// the runtime must use the PARCT_FAULT_POINT / PARCT_FAULT_STALL macros —
// never call fault::detail:: directly — so an OFF build contains no trace
// of the site (enforced by the `fault-macro` rule of
// tools/lint_parallel.py). The plan spec format and the exception type are
// compiled unconditionally (they are inert without armed sites), so tests
// and tools can be built in both modes.
//
// Replay: format_plan/parse_plan round-trip a plan through a one-line
// spec, e.g.
//
//   seed=42;epoch-apply:burst@3x2;queue-admission:periodic@1/5
//
// which is what tests/chaos_test.cpp prints on failure and accepts back
// through PARCT_CHAOS_SPEC (docs/TESTING.md §5).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace parct::fault {

enum class Site : unsigned {
  kWorkspaceAcquire = 0,  ///< Workspace::acquire — fires std::bad_alloc
  kSchedulerSteal,        ///< scheduler steal sweep — fires a bounded stall
  kSerialHandoff,         ///< SerialScope open — fires a bounded stall
  kEpochApply,            ///< BatchServer epoch-apply boundary — fires an
                          ///< InjectedFault abort (pre-mutation)
  kQueueAdmission,        ///< BatchServer submit_* — fires an admission drop
  kDurabilityFsync,       ///< durability fsync (WAL or checkpoint) — fires an
                          ///< InjectedFault before the data reaches disk
  kDurabilityRename,      ///< checkpoint publish rename — fires an
                          ///< InjectedFault, leaving only the .tmp file
  kWalAppend,             ///< WAL record append — fires an InjectedFault
                          ///< after a *partial* write (a torn tail record)
};
inline constexpr std::size_t kNumSites = 8;

/// Stable spec-format name of a site ("workspace-acquire", ...).
const char* site_name(Site s);
/// Inverse of site_name; nullopt for an unknown name.
std::optional<Site> parse_site(std::string_view name);

enum class Mode : unsigned { kOff = 0, kOnce, kPeriodic, kBurst };

struct SiteSchedule {
  Mode mode = Mode::kOff;
  std::uint64_t at = 0;     ///< first firing hit index
  std::uint64_t every = 1;  ///< periodic: stride between firings
  std::uint64_t len = 1;    ///< burst: number of consecutive firing hits

  /// Pure decision function: does hit index `hit` fire under this
  /// schedule?
  bool fires(std::uint64_t hit) const {
    switch (mode) {
      case Mode::kOff:
        return false;
      case Mode::kOnce:
        return hit == at;
      case Mode::kPeriodic:
        return hit >= at && every != 0 && (hit - at) % every == 0;
      case Mode::kBurst:
        return hit >= at && hit - at < len;
    }
    return false;
  }
};

struct Plan {
  /// Provenance only: the seed the schedule was derived from (carried
  /// through the spec so a replay line is self-describing).
  std::uint64_t seed = 0;
  std::array<SiteSchedule, kNumSites> sites{};

  SiteSchedule& operator[](Site s) { return sites[static_cast<unsigned>(s)]; }
  const SiteSchedule& operator[](Site s) const {
    return sites[static_cast<unsigned>(s)];
  }
};

/// One-line spec: `seed=<n>` then `;<site>:<mode>@<at>` entries, with
/// `x<len>` for burst and `/<every>` for periodic. Deterministic; sites
/// with mode off are omitted.
std::string format_plan(const Plan& plan);
/// Parses a format_plan spec. Throws std::runtime_error on a malformed
/// spec or unknown site/mode name.
Plan parse_plan(std::string_view spec);

/// The abort thrown by fire-type sites (kEpochApply). By contract it is
/// raised at the *boundary* of the guarded operation, before any state is
/// mutated — which is what makes the BatchServer's retry of an aborted
/// epoch sound (the batch re-applies against unchanged state).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(Site site)
      : std::runtime_error(std::string("parct: injected fault at site ") +
                           site_name(site)),
        site_(site) {}
  Site site() const { return site_; }

 private:
  Site site_;
};

#if PARCT_FAULT_INJECT

/// Installs `plan` and zeroes all hit/fired counters. Sites evaluate the
/// new plan from their next hit on. Thread-safe.
void arm(const Plan& plan);
/// Removes the active plan; sites stop firing (counters keep their
/// values until the next arm()). Thread-safe.
void disarm();
/// True between arm() and disarm().
bool armed();
/// Times `s` was evaluated since the last arm(). Thread-safe.
std::uint64_t hits(Site s);
/// Times `s` fired since the last arm(). Thread-safe.
std::uint64_t fired(Site s);

namespace detail {
/// Advances the site's hit counter and evaluates the armed schedule.
/// Never throws; the *caller* turns a true result into the site's failure
/// mode (throw, drop, stall).
bool should_fire(Site s) noexcept;
/// should_fire + a bounded sleep (kStallMicros) when it fires — the
/// delay-type sites. Never throws.
void stall(Site s) noexcept;
/// Length of one injected stall, long enough to perturb epoch/steal
/// timing, short enough that burst schedules stay inside test timeouts.
inline constexpr unsigned kStallMicros = 200;
}  // namespace detail

#else  // !PARCT_FAULT_INJECT — inert stubs so tests compile in any build

inline void arm(const Plan&) {}
inline void disarm() {}
inline bool armed() { return false; }
inline std::uint64_t hits(Site) { return 0; }
inline std::uint64_t fired(Site) { return 0; }

#endif  // PARCT_FAULT_INJECT

}  // namespace parct::fault

// Injection-site macros. In a PARCT_FAULT_INJECT build, PARCT_FAULT_POINT
// evaluates to true when the site fires this hit; PARCT_FAULT_STALL
// additionally sleeps on a firing hit. In a normal build both compile to
// constants — no counter traffic, no branches, no linkage into the fault
// registry (the lint rule `fault-macro` keeps call sites on these macros).
#if PARCT_FAULT_INJECT
#define PARCT_FAULT_POINT(site) (::parct::fault::detail::should_fire(site))
#define PARCT_FAULT_STALL(site) (::parct::fault::detail::stall(site))
#else
#define PARCT_FAULT_POINT(site) (false)
#define PARCT_FAULT_STALL(site) ((void)0)
#endif
