#include "fault/fault_injection.hpp"

#include <charconv>

#if PARCT_FAULT_INJECT
#include <chrono>
#include <thread>

#include "parallel/capability.hpp"
#endif

namespace parct::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "workspace-acquire", "scheduler-steal",    "serial-handoff",
    "epoch-apply",       "queue-admission",    "durability-fsync",
    "durability-rename", "wal-append",
};

constexpr const char* kModeNames[] = {"off", "once", "periodic", "burst"};

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("parct: fault plan spec: bad ") +
                             what + " '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

const char* site_name(Site s) {
  return kSiteNames[static_cast<unsigned>(s)];
}

std::optional<Site> parse_site(std::string_view name) {
  for (unsigned i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

std::string format_plan(const Plan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed);
  for (unsigned i = 0; i < kNumSites; ++i) {
    const SiteSchedule& sch = plan.sites[i];
    if (sch.mode == Mode::kOff) continue;
    out += ';';
    out += kSiteNames[i];
    out += ':';
    out += kModeNames[static_cast<unsigned>(sch.mode)];
    out += '@';
    out += std::to_string(sch.at);
    if (sch.mode == Mode::kPeriodic) {
      out += '/';
      out += std::to_string(sch.every);
    } else if (sch.mode == Mode::kBurst) {
      out += 'x';
      out += std::to_string(sch.len);
    }
  }
  return out;
}

Plan parse_plan(std::string_view spec) {
  Plan plan;
  bool saw_seed = false;
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    std::string_view tok = spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (tok.empty()) continue;
    if (tok.substr(0, 5) == "seed=") {
      plan.seed = parse_u64(tok.substr(5), "seed");
      saw_seed = true;
      continue;
    }
    const std::size_t colon = tok.find(':');
    const std::size_t atpos = tok.find('@');
    if (colon == std::string_view::npos || atpos == std::string_view::npos ||
        atpos < colon) {
      throw std::runtime_error(
          "parct: fault plan spec: expected <site>:<mode>@<at>, got '" +
          std::string(tok) + "'");
    }
    const std::optional<Site> site = parse_site(tok.substr(0, colon));
    if (!site) {
      throw std::runtime_error("parct: fault plan spec: unknown site '" +
                               std::string(tok.substr(0, colon)) + "'");
    }
    const std::string_view mode = tok.substr(colon + 1, atpos - colon - 1);
    std::string_view rest = tok.substr(atpos + 1);
    SiteSchedule sch;
    if (mode == "once") {
      sch.mode = Mode::kOnce;
      sch.at = parse_u64(rest, "hit index");
    } else if (mode == "periodic") {
      const std::size_t slash = rest.find('/');
      if (slash == std::string_view::npos) {
        throw std::runtime_error(
            "parct: fault plan spec: periodic needs @<at>/<every>");
      }
      sch.mode = Mode::kPeriodic;
      sch.at = parse_u64(rest.substr(0, slash), "hit index");
      sch.every = parse_u64(rest.substr(slash + 1), "period");
      if (sch.every == 0) {
        throw std::runtime_error("parct: fault plan spec: period must be > 0");
      }
    } else if (mode == "burst") {
      const std::size_t xpos = rest.find('x');
      if (xpos == std::string_view::npos) {
        throw std::runtime_error(
            "parct: fault plan spec: burst needs @<at>x<len>");
      }
      sch.mode = Mode::kBurst;
      sch.at = parse_u64(rest.substr(0, xpos), "hit index");
      sch.len = parse_u64(rest.substr(xpos + 1), "burst length");
    } else {
      throw std::runtime_error("parct: fault plan spec: unknown mode '" +
                               std::string(mode) + "'");
    }
    plan[*site] = sch;
  }
  if (!saw_seed) {
    throw std::runtime_error("parct: fault plan spec: missing seed=<n>");
  }
  return plan;
}

#if PARCT_FAULT_INJECT

namespace {

// All registry state behind one mutex: sites are not performance-relevant
// in a fault build (they exist to be perturbed), and a single lock keeps
// arm/disarm racing an active site well-defined under TSAN — the chaos CI
// job runs this build with sanitizers on.
struct Registry {
  Mutex mu;
  bool armed PARCT_GUARDED_BY(mu) = false;
  Plan plan PARCT_GUARDED_BY(mu);
  std::uint64_t hits[kNumSites] PARCT_GUARDED_BY(mu) = {};
  std::uint64_t fired[kNumSites] PARCT_GUARDED_BY(mu) = {};
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void arm(const Plan& plan) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  r.armed = true;
  r.plan = plan;
  for (unsigned i = 0; i < kNumSites; ++i) r.hits[i] = r.fired[i] = 0;
}

void disarm() {
  Registry& r = registry();
  MutexLock lk(r.mu);
  r.armed = false;
}

bool armed() {
  Registry& r = registry();
  MutexLock lk(r.mu);
  return r.armed;
}

std::uint64_t hits(Site s) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  return r.hits[static_cast<unsigned>(s)];
}

std::uint64_t fired(Site s) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  return r.fired[static_cast<unsigned>(s)];
}

namespace detail {

bool should_fire(Site s) noexcept {
  Registry& r = registry();
  MutexLock lk(r.mu);
  if (!r.armed) return false;
  const unsigned i = static_cast<unsigned>(s);
  const std::uint64_t hit = r.hits[i]++;
  const bool fire = r.plan.sites[i].fires(hit);
  if (fire) ++r.fired[i];
  return fire;
}

void stall(Site s) noexcept {
  if (should_fire(s)) {
    std::this_thread::sleep_for(std::chrono::microseconds(kStallMicros));
  }
}

}  // namespace detail

#endif  // PARCT_FAULT_INJECT

}  // namespace parct::fault
