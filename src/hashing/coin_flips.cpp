#include "hashing/coin_flips.hpp"

namespace parct::hashing {

CoinSchedule::CoinSchedule(std::uint64_t master_seed)
    : master_seed_(master_seed), generator_(master_seed) {
  ensure_rounds(64);  // enough for forests up to ~2^40 vertices in practice
}

void CoinSchedule::ensure_rounds(std::size_t rounds) {
  while (hashes_.size() < rounds) {
    hashes_.push_back(TwoIndependentHash::random(generator_));
  }
}

}  // namespace parct::hashing
