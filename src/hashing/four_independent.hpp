// A 4-wise independent hash family over the Mersenne prime p = 2^61 - 1:
// h(x) = a3*x^3 + a2*x^2 + a1*x + a0 (mod p), a3 != 0.
//
// The paper's algorithm needs only 2-wise independence for its expected
// bounds, but pair events like "v compresses" involve TWO adjacent coins,
// whose covariance 2-wise independence does not control — on long chains
// the per-round shrink factor visibly fluctuates (see
// tests/contraction_forest_test.cpp ChainDecayNearThreeQuartersOnAverage
// and bench_ablation_hashing). Degree-3 polynomials give 4-wise
// independence, which pins the variance of compress counts and
// concentrates the decay at its 3/4 mean.
#pragma once

#include <cstdint>

#include "hashing/splitmix64.hpp"
#include "hashing/two_independent.hpp"

namespace parct::hashing {

class FourIndependentHash {
 public:
  FourIndependentHash() : a_{0, 0, 0, 1} {}
  FourIndependentHash(std::uint64_t a0, std::uint64_t a1, std::uint64_t a2,
                      std::uint64_t a3)
      : a_{a0 % kMersenne61, a1 % kMersenne61, a2 % kMersenne61,
           a3 % kMersenne61} {
    if (a_[3] == 0) a_[3] = 1;
  }

  static FourIndependentHash random(SplitMix64& rng) {
    return FourIndependentHash(rng.next_below(kMersenne61),
                               rng.next_below(kMersenne61),
                               rng.next_below(kMersenne61),
                               1 + rng.next_below(kMersenne61 - 1));
  }

  std::uint64_t operator()(std::uint64_t x) const {
    // Horner's rule over Z_p.
    x %= kMersenne61;
    std::uint64_t acc = a_[3];
    acc = add_mod_m61(mul_mod_m61(acc, x), a_[2]);
    acc = add_mod_m61(mul_mod_m61(acc, x), a_[1]);
    acc = add_mod_m61(mul_mod_m61(acc, x), a_[0]);
    return acc;
  }

  bool coin(std::uint64_t x) const { return (operator()(x) & 1) != 0; }

 private:
  std::uint64_t a_[4];
};

}  // namespace parct::hashing
