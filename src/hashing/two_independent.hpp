// A 2-wise independent hash family over the Mersenne prime p = 2^61 - 1:
// h_{a,b}(x) = ((a*x + b) mod p), with a in [1, p), b in [0, p).
// The paper's Heads(i, v) coin flips draw one member per contraction round
// from such a family (§2.4).
#pragma once

#include <cstdint>

#include "hashing/splitmix64.hpp"

namespace parct::hashing {

inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// (x * y) mod (2^61 - 1) without overflow.
inline std::uint64_t mul_mod_m61(std::uint64_t x, std::uint64_t y) {
  const unsigned __int128 z = static_cast<unsigned __int128>(x) * y;
  std::uint64_t lo = static_cast<std::uint64_t>(z) & kMersenne61;
  std::uint64_t hi = static_cast<std::uint64_t>(z >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

inline std::uint64_t add_mod_m61(std::uint64_t x, std::uint64_t y) {
  std::uint64_t r = x + y;  // both < 2^61, no overflow
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// One member h_{a,b} of the family.
class TwoIndependentHash {
 public:
  TwoIndependentHash() : a_(1), b_(0) {}
  TwoIndependentHash(std::uint64_t a, std::uint64_t b)
      : a_(a % kMersenne61), b_(b % kMersenne61) {
    if (a_ == 0) a_ = 1;
  }

  /// Draws a random member using `rng` for the parameters.
  static TwoIndependentHash random(SplitMix64& rng) {
    return TwoIndependentHash(1 + rng.next_below(kMersenne61 - 1),
                              rng.next_below(kMersenne61));
  }

  std::uint64_t operator()(std::uint64_t x) const {
    return add_mod_m61(mul_mod_m61(a_, x % kMersenne61), b_);
  }

  /// One unbiased-enough coin: parity of the hash value. For a 2-wise
  /// independent family over Z_p the low bit is 2-wise independent up to an
  /// O(1/p) additive bias (p = 2^61 - 1).
  bool coin(std::uint64_t x) const { return (operator()(x) & 1) != 0; }

  std::uint64_t a() const { return a_; }
  std::uint64_t b() const { return b_; }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace parct::hashing
