// CoinSchedule: the per-round randomness of the contraction algorithm.
//
// Round i uses one member of a 2-wise independent family (Heads(i, v) in
// the paper). The schedule is derived deterministically from a master seed
// and extended lazily as contraction (or change propagation) reaches new
// rounds, so a dynamic update reuses *exactly* the coin flips of the
// original construction on unaffected rounds — the property change
// propagation needs to reuse unaffected sub-computations, and the property
// our from-scratch-equivalence tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "hashing/two_independent.hpp"

namespace parct::hashing {

class CoinSchedule {
 public:
  explicit CoinSchedule(std::uint64_t master_seed = 0x5EEDBA5EDC0FFEEull);

  /// Heads(i, v): did vertex v flip heads in round i?
  bool heads(std::size_t round, std::uint64_t v) const {
    // const_cast-free lazy growth is handled by ensure_rounds() callers on
    // the mutation path; reads assume the round already exists.
    return hashes_[round].coin(v);
  }

  /// Guarantees rounds [0, rounds) are available. Not thread-safe; call
  /// before entering a parallel region for a round.
  void ensure_rounds(std::size_t rounds);

  std::size_t available_rounds() const { return hashes_.size(); }
  std::uint64_t master_seed() const { return master_seed_; }

  bool operator==(const CoinSchedule& other) const {
    return master_seed_ == other.master_seed_;
  }

 private:
  std::uint64_t master_seed_;
  SplitMix64 generator_;
  std::vector<TwoIndependentHash> hashes_;
};

}  // namespace parct::hashing
