// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
// generators"): the seed-expansion PRNG used to derive per-round hash
// function parameters and for deterministic input generation.
#pragma once

#include <cstdint>

namespace parct::hashing {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection-free
  /// approximation (bias < 2^-64 * bound, negligible for our bounds).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next() & 1) != 0; }

 private:
  std::uint64_t state_;
};

/// One-shot stateless mix of a 64-bit value (same finalizer as SplitMix64).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace parct::hashing
