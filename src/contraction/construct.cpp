#include "contraction/construct.hpp"

#include "analysis/annotations.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/parallel_for.hpp"
#include "primitives/pack.hpp"

namespace parct::contract {

namespace {

// One round of RandomizedContract (paper Fig. 1): classify every live
// vertex, allocate next-round records for survivors, promote edges, then
// compact the live set into `next_live` (double-buffered by the caller so
// no round allocates a fresh live vector; scan scratch leases from `ws`).
void randomized_contract(ContractionForest& c, std::uint32_t i,
                         const std::vector<VertexId>& live,
                         std::vector<VertexId>& next_live,
                         std::vector<Kind>& status, EventHooks* hooks,
                         ConstructStats& stats, Workspace& ws) {
  ws.epoch_reset();  // round boundary: no scratch lease crosses rounds
  c.coins().ensure_rounds(i + 2);
  const std::size_t n = live.size();

  // The late contraction tail (live set below the adaptive cutover) runs
  // each round inline — the same fast path small-batch updates take (see
  // parallel/adaptive.hpp). Serial rounds are timed whole into
  // phase_seconds[kPhaseConstructSerial]; per-phase brackets would cost
  // more clock reads than the round does work.
  const par::AdaptivePhase round_mode(n);
  stats.chose_serial += round_mode.serial() ? 1 : 0;
  StatsTimePoint t_phase = stats_now();
  auto phase_done = [&](double& sink) {
    if constexpr (kStatsEnabled) {
      if (round_mode.serial()) return;
      sink += stats_since(t_phase);
      t_phase = stats_now();
    }
  };

  // Phase A: contraction decisions. `status` is indexed by vertex id and
  // only entries of live vertices are read, so no per-round reset needed.
  par::adaptive_for(0, n, [&](std::size_t k) {
    PARCT_SHADOW_WRITE(analysis::scratch_cell(
        analysis::ShadowArray::kConstructStatus, live[k]));
    status[live[k]] = c.classify(i, live[k]);
  });
  phase_done(stats.phase_seconds[kPhaseClassify]);

  // Phase B: allocate and blank the round-(i+1) record of every survivor.
  // Each iteration touches only its own vertex's history, so growth is
  // race-free.
  {
    par::adaptive_for(0, n, [&](std::size_t k) {
      const VertexId v = live[k];
      PARCT_SHADOW_READ(analysis::scratch_cell(
          analysis::ShadowArray::kConstructStatus, v));
      if (status[v] != Kind::kSurvive) return;
      c.ensure_round(v, i + 1);
      PARCT_SHADOW_WRITE_REC(c.shadow_id(), v, i + 1);
      RoundRecord& r = c.record_mut(i + 1, v);
      r.parent = v;
      r.parent_slot = 0;
      r.children = kEmptyChildren;
    });
  }
  phase_done(stats.phase_seconds[kPhaseAllocate]);

  // Phase C: PromoteEdges (paper Fig. 2). Every round-(i+1) field has
  // exactly one writer: a vertex's parent pointer is written by its
  // surviving parent or by its compressing parent's promotion; child slot
  // (p, j) is written by the surviving vertex owning j or by the vertex
  // its compressing owner hands it to.
  par::adaptive_for(0, n, [&](std::size_t k) {
    const VertexId v = live[k];
    PARCT_SHADOW_READ(analysis::scratch_cell(
        analysis::ShadowArray::kConstructStatus, v));
    PARCT_SHADOW_READ_REC(c.shadow_id(), v, i);
    const RoundRecord& r = c.record(i, v);
    switch (status[v]) {
      case Kind::kSurvive: {
        if (hooks) hooks->on_vertex_persist(i, v);
        PARCT_SHADOW_READ(analysis::scratch_cell(
            analysis::ShadowArray::kConstructStatus, r.parent));
        if (r.parent != v && status[r.parent] == Kind::kSurvive) {
          PARCT_SHADOW_WRITE(analysis::record_child_cell(
              c.shadow_id(), r.parent, i + 1, r.parent_slot));
          c.record_mut(i + 1, r.parent).children[r.parent_slot] = v;
          if (hooks) hooks->on_edge_persist(i, v, r.parent);
        }
        for (int s = 0; s < kMaxDegree; ++s) {
          const VertexId u = r.children[s];
          if (u == kNoVertex) continue;
          PARCT_SHADOW_READ(analysis::scratch_cell(
              analysis::ShadowArray::kConstructStatus, u));
          if (status[u] != Kind::kSurvive) continue;
          PARCT_SHADOW_WRITE(
              analysis::record_parent_cell(c.shadow_id(), u, i + 1));
          RoundRecord& ru = c.record_mut(i + 1, u);
          ru.parent = v;
          ru.parent_slot = static_cast<std::uint8_t>(s);
        }
        break;
      }
      case Kind::kFinalize:
        c.set_duration(v, i + 1);
        if (hooks) hooks->on_finalize(i, v);
        break;
      case Kind::kRake:
        c.set_duration(v, i + 1);
        if (hooks) hooks->on_rake(i, v, r.parent);
        break;
      case Kind::kCompress: {
        const VertexId u = only_child(r.children);
        // Both endpoints survive (the parent flipped tails, the child is
        // not a leaf and flipped tails), so their records exist.
        PARCT_SHADOW_WRITE(analysis::record_child_cell(
            c.shadow_id(), r.parent, i + 1, r.parent_slot));
        c.record_mut(i + 1, r.parent).children[r.parent_slot] = u;
        PARCT_SHADOW_WRITE(
            analysis::record_parent_cell(c.shadow_id(), u, i + 1));
        RoundRecord& ru = c.record_mut(i + 1, u);
        ru.parent = r.parent;
        ru.parent_slot = r.parent_slot;
        c.set_duration(v, i + 1);
        if (hooks) hooks->on_compress(i, v, u, r.parent);
        break;
      }
    }
  });
  phase_done(stats.phase_seconds[kPhasePromoteEdges]);

  // Phase D: compact the live set (the paper's C(n) subroutine).
  prim::pack_into(live, [&](std::size_t k) {
    PARCT_SHADOW_READ(analysis::scratch_cell(
        analysis::ShadowArray::kConstructStatus, live[k]));
    return status[live[k]] == Kind::kSurvive;
  }, next_live, ws);
  phase_done(stats.phase_seconds[kPhaseCompact]);
  if constexpr (kStatsEnabled) {
    if (round_mode.serial()) {
      stats.phase_seconds[kPhaseConstructSerial] += stats_since(t_phase);
    }
  }
}

}  // namespace

ConstructStats construct(ContractionForest& c, const forest::Forest& f,
                         EventHooks* hooks, Workspace* workspace) {
  const StatsTimePoint t_begin = stats_now();
  Workspace local_ws;
  Workspace& ws = workspace != nullptr ? *workspace : local_ws;
  const WorkspaceStats ws_begin = ws.stats();
  c.init_from_forest(f);
  if (hooks) hooks->on_begin(c.capacity());
  std::vector<VertexId> live = f.vertices();
  std::vector<VertexId> next_live;
  std::vector<Kind> status(c.capacity(), Kind::kSurvive);

  ConstructStats stats;
  std::uint32_t i = 0;
  while (!live.empty()) {
    stats.total_live += live.size();
    stats.live_per_round.push_back(static_cast<std::uint32_t>(live.size()));
    randomized_contract(c, i, live, next_live, status, hooks, stats, ws);
    std::swap(live, next_live);  // both buffers keep their capacity
    ++i;
  }
  stats.rounds = i;
  if constexpr (kStatsEnabled) stats.total_seconds = stats_since(t_begin);
  const WorkspaceStats ws_delta = workspace_stats_delta(ws_begin, ws.stats());
  stats.ws_acquires = ws_delta.acquires;
  stats.ws_hits = ws_delta.hits;
  stats.ws_misses = ws_delta.misses;
  stats.ws_bytes_allocated = ws_delta.bytes_allocated;
  stats.ws_container_growths = ws_delta.container_growths;
  stats.ws_container_bytes = ws_delta.container_bytes;
  return stats;
}

}  // namespace parct::contract
