// Independent validity checking of contraction data structures (paper
// §2.3's definition of "valid for a forest F"): re-simulates Miller-Reif
// contraction of F with the structure's own coin schedule using a simple,
// obviously-correct sequential implementation, and compares every round.
#pragma once

#include <optional>
#include <string>

#include "contraction/contraction_forest.hpp"
#include "forest/forest.hpp"

namespace parct::contract {

/// Returns an error description if `c` is not valid for `f` (i.e. if any
/// duration is wrong or any per-round parent/children disagree with a
/// from-scratch sequential contraction of `f` under c.coins()), else
/// nullopt. O(n log n)-ish; intended for tests.
std::optional<std::string> check_valid(const ContractionForest& c,
                                       const forest::Forest& f);

}  // namespace parct::contract
