// Zero-cost-when-off phase telemetry for construct/dynamic_update.
//
// Built with the PARCT_STATS compile definition (CMake option PARCT_STATS,
// default ON), PARCT_PHASE_TIMER(sink) accumulates the wall-clock seconds
// of its enclosing scope into `sink`, and stats_now()/stats_since() give
// cheap explicit timestamps. Without the definition every helper compiles
// to nothing — no clock calls, no stores — so hot update paths pay nothing
// (the acceptance bar: no measurable regression on bench_fig6 with
// PARCT_STATS=OFF).
#pragma once

#include <chrono>

namespace parct::contract {

#ifdef PARCT_STATS
inline constexpr bool kStatsEnabled = true;
#else
inline constexpr bool kStatsEnabled = false;
#endif

using StatsTimePoint = std::chrono::steady_clock::time_point;

/// Now, or a dummy value when telemetry is compiled out.
inline StatsTimePoint stats_now() {
  if constexpr (kStatsEnabled) return std::chrono::steady_clock::now();
  return StatsTimePoint{};
}

/// Seconds since `t0`, or 0.0 when telemetry is compiled out.
inline double stats_since(StatsTimePoint t0) {
  if constexpr (kStatsEnabled) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }
  (void)t0;
  return 0.0;
}

#ifdef PARCT_STATS
/// Scope timer: adds the scope's wall-clock seconds to the bound sink.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& sink)
      : sink_(&sink), t0_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point t0_;
};

#define PARCT_PHASE_TIMER_CAT2(a, b) a##b
#define PARCT_PHASE_TIMER_CAT(a, b) PARCT_PHASE_TIMER_CAT2(a, b)
#define PARCT_PHASE_TIMER(sink)                               \
  ::parct::contract::PhaseTimer PARCT_PHASE_TIMER_CAT(        \
      parct_phase_timer_, __LINE__)(sink)
#else
#define PARCT_PHASE_TIMER(sink) ((void)0)
#endif

}  // namespace parct::contract
