// Binary (de)serialization of contraction data structures. The coin
// schedule is a pure function of its master seed, so only the seed is
// stored; a loaded structure supports dynamic updates exactly like the
// original (identical future coin flips).
#pragma once

#include <iosfwd>

#include "contraction/contraction_forest.hpp"

namespace parct::contract {

/// Writes `c` to `out` in the parct binary format (little-endian hosts).
void save(const ContractionForest& c, std::ostream& out);

/// Reads a structure written by `save`. Throws std::runtime_error on a
/// malformed stream.
ContractionForest load(std::istream& in);

}  // namespace parct::contract
