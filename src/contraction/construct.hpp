// The construction algorithm (paper §2.4, Fig. 1): run Miller-Reif
// randomized tree contraction on the input forest and record every round
// into the contraction data structure.
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "contraction/telemetry.hpp"
#include "forest/forest.hpp"
#include "primitives/workspace.hpp"

namespace parct::contract {

/// Phases of one RandomizedContract round (see construct.cpp). Indexes
/// ConstructStats::phase_seconds.
enum ConstructPhase : unsigned {
  kPhaseClassify = 0,  // A: contraction decisions
  kPhaseAllocate,      // B: blank round-(i+1) survivor records
  kPhasePromoteEdges,  // C: PromoteEdges
  kPhaseCompact,       // D: pack the live set
  kPhaseConstructSerial,  // whole-round time of sub-cutover serial rounds
  kNumConstructPhases
};

struct ConstructStats {
  std::uint32_t rounds = 0;
  /// Sum over rounds of |V^i| — the algorithm's total work measure
  /// (Theorem 1: O(n) in expectation).
  std::uint64_t total_live = 0;
  /// |V^i| per round (for the geometric-decay property tests, Lemma 5).
  std::vector<std::uint32_t> live_per_round;
  /// Rounds whose live set was below the adaptive serial cutover and ran
  /// inline (the late contraction tail; par::AdaptivePhase).
  std::uint64_t chose_serial = 0;

  // --- telemetry (populated only when built with PARCT_STATS) ---
  /// Wall-clock seconds per phase, summed over rounds. Index by
  /// ConstructPhase.
  double phase_seconds[kNumConstructPhases] = {};
  /// Wall-clock seconds of the whole construct().
  double total_seconds = 0.0;

  // --- allocation discipline (always on; see docs/PERFORMANCE.md) ---
  /// Workspace activity of this construct(): pool hits vs heap misses for
  /// the per-round scratch, plus capacity growths of the reused live-set
  /// buffers. A construct() over a warm workspace has ws_misses == 0.
  std::uint64_t ws_acquires = 0;
  std::uint64_t ws_hits = 0;
  std::uint64_t ws_misses = 0;
  std::uint64_t ws_bytes_allocated = 0;
  std::uint64_t ws_container_growths = 0;
  std::uint64_t ws_container_bytes = 0;
};

/// Runs ForestContraction(V, E): initializes `c` from `f` (round 0) and
/// contracts until every vertex is dead, filling P, C and D. Uses the coin
/// schedule already attached to `c`, so the result is deterministic in
/// (f, c.seed()). Parallelized over the live set each round.
///
/// Per-round scratch (the compaction's block counts, the live-set double
/// buffer's growth tracking) comes from `workspace` when provided; callers
/// that construct repeatedly should pass a long-lived Workspace so later
/// runs reuse the pooled blocks (ws_misses == 0). With the default nullptr
/// a function-local arena is used and dropped on return.
ConstructStats construct(ContractionForest& c, const forest::Forest& f,
                         EventHooks* hooks = nullptr,
                         Workspace* workspace = nullptr);

}  // namespace parct::contract
