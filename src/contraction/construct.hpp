// The construction algorithm (paper §2.4, Fig. 1): run Miller-Reif
// randomized tree contraction on the input forest and record every round
// into the contraction data structure.
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "forest/forest.hpp"

namespace parct::contract {

struct ConstructStats {
  std::uint32_t rounds = 0;
  /// Sum over rounds of |V^i| — the algorithm's total work measure
  /// (Theorem 1: O(n) in expectation).
  std::uint64_t total_live = 0;
  /// |V^i| per round (for the geometric-decay property tests, Lemma 5).
  std::vector<std::uint32_t> live_per_round;
};

/// Runs ForestContraction(V, E): initializes `c` from `f` (round 0) and
/// contracts until every vertex is dead, filling P, C and D. Uses the coin
/// schedule already attached to `c`, so the result is deterministic in
/// (f, c.seed()). Parallelized over the live set each round.
ConstructStats construct(ContractionForest& c, const forest::Forest& f,
                         EventHooks* hooks = nullptr);

}  // namespace parct::contract
