// ContractionForest: the contraction data structure (P, C, D) of paper
// §2.3, plus the per-round coin schedule that drove (and will re-drive) the
// contraction. Built by `construct` (construct.hpp) and edited in place by
// `DynamicUpdater` (dynamic_update.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/annotations.hpp"
#include "contraction/round_record.hpp"
#include "forest/forest.hpp"
#include "forest/types.hpp"
#include "hashing/coin_flips.hpp"

namespace parct::contract {

class ContractionForest {
 public:
  ContractionForest(std::size_t capacity, int degree_bound,
                    std::uint64_t seed);

  std::size_t capacity() const { return history_.size(); }
  int degree_bound() const { return degree_bound_; }

  hashing::CoinSchedule& coins() { return coins_; }
  const hashing::CoinSchedule& coins() const { return coins_; }
  std::uint64_t seed() const { return coins_.master_seed(); }

  /// Grows the vertex universe (new ids start absent, duration 0).
  void ensure_capacity(std::size_t capacity);

  // --- per-vertex accessors -------------------------------------------

  /// D[v]: rounds alive; 0 = absent/dead-from-start. During a dynamic
  /// update this holds the *old* duration until the vertex is dead in both
  /// the old and new forests (the algorithm needs the old value; see
  /// dynamic_update.cpp).
  std::uint32_t duration(VertexId v) const {
    PARCT_SHADOW_READ(analysis::duration_cell(shadow_id(), v));
    return history_[v].duration;
  }
  void set_duration(VertexId v, std::uint32_t d) {
    PARCT_SHADOW_WRITE(analysis::duration_cell(shadow_id(), v));
    history_[v].duration = d;
  }

  bool alive(std::uint32_t round, VertexId v) const {
    return round < duration(v);
  }

  const RoundRecord& record(std::uint32_t round, VertexId v) const {
    // Indexing the rounds vector races with a concurrent ensure_round
    // growing it; model the vector itself as one shadow cell. The
    // caller annotates the record *fields* it actually touches.
    PARCT_SHADOW_READ(analysis::record_rounds_cell(shadow_id(), v));
    return history_[v].rounds[round];
  }
  RoundRecord& record_mut(std::uint32_t round, VertexId v) {
    PARCT_SHADOW_READ(analysis::record_rounds_cell(shadow_id(), v));
    return history_[v].rounds[round];
  }

  /// Guarantees v's rounds vector covers index `round`. Single-writer per
  /// vertex: safe from parallel loops where each iteration owns one vertex.
  void ensure_round(VertexId v, std::uint32_t round) {
    auto& rounds = history_[v].rounds;
    if (rounds.size() <= round) {
      PARCT_SHADOW_WRITE(analysis::record_rounds_cell(shadow_id(), v));
      rounds.resize(round + 1);
    } else {
      PARCT_SHADOW_READ(analysis::record_rounds_cell(shadow_id(), v));
    }
  }

  std::size_t rounds_stored(VertexId v) const {
    PARCT_SHADOW_READ(analysis::record_rounds_cell(shadow_id(), v));
    return history_[v].rounds.size();
  }

  /// Drops records at indices >= duration(v) (bookkeeping after a vertex
  /// dies earlier in the new forest than in the old one).
  void truncate_to_duration(VertexId v) {
    PARCT_SHADOW_READ(analysis::duration_cell(shadow_id(), v));
    PARCT_SHADOW_WRITE(analysis::record_rounds_cell(shadow_id(), v));
    history_[v].rounds.resize(history_[v].duration);
  }

  // --- coin flips and contraction predicates (paper Fig. 2) ------------

  bool heads(std::uint32_t round, VertexId v) const {
    return coins_.heads(round, v);
  }

  /// How v contracts in `round`, judged from the current round-`round`
  /// records. The caller guarantees v is alive in that round.
  Kind classify(std::uint32_t round, VertexId v) const {
    PARCT_SHADOW_READ_REC(shadow_id(), v, round);
    const RoundRecord& r = record(round, v);
    if (children_empty(r.children)) {
      return r.parent == v ? Kind::kFinalize : Kind::kRake;
    }
    const VertexId u = only_child(r.children);
    if (u != kNoVertex) {
      PARCT_SHADOW_READ_CHILDREN(shadow_id(), u, round);
    }
    // Coin flips are a pure function of (seed, round, v): no shadow cells.
    if (u != kNoVertex && !children_empty(record(round, u).children) &&
        !heads(round, r.parent) && heads(round, v)) {
      return Kind::kCompress;
    }
    return Kind::kSurvive;
  }

  bool contracts(std::uint32_t round, VertexId v) const {
    return classify(round, v) != Kind::kSurvive;
  }

  // --- whole-structure operations --------------------------------------

  /// Copies `f` into the round-0 records (slots preserved) and resets all
  /// durations (present vertices get duration 0 too; `construct` sets them
  /// as vertices die).
  void init_from_forest(const forest::Forest& f);

  /// Number of contraction rounds: max duration over all vertices.
  /// O(capacity) — a diagnostic, not for inner loops.
  std::uint32_t num_rounds() const;

  /// Materializes the round-0 forest (vertices with duration > 0). Child
  /// slot assignments may differ from the original input forest. O(n).
  forest::Forest extract_forest() const;

  /// Total round records currently stored (the O(n) space of §4). O(n).
  std::size_t total_records() const;

#if PARCT_RACE_DETECT
  /// Process-unique id namespacing this structure's shadow cells, so the
  /// race detector never aliases cells of distinct structures (e.g. the
  /// live structure vs a from-scratch oracle).
  std::uint32_t shadow_id() const { return shadow_id_; }
#else
  static constexpr std::uint32_t shadow_id() { return 0; }
#endif

 private:
  int degree_bound_;
  hashing::CoinSchedule coins_;
  std::vector<VertexHistory> history_;
#if PARCT_RACE_DETECT
  std::uint32_t shadow_id_ = analysis::spbags::new_structure_id();
#endif
};

/// Structure equality up to child-slot layout: equal durations and, for
/// every vertex and round < duration, equal parent and equal child *sets*.
/// Capacities may differ as long as extra vertices have duration 0.
/// This is the paper's behavioural-equivalence notion: a dynamic update
/// must leave the structure structurally_equal to a from-scratch
/// construction on the edited forest with the same coin schedule.
bool structurally_equal(const ContractionForest& a,
                        const ContractionForest& b);

/// First structural difference between `a` and `b` under the
/// structurally_equal notion, as a human-readable description — or nullopt
/// if the structures are equal. Used by equivalence tests and the
/// differential harness to report *where* a dynamic update diverged from
/// the from-scratch oracle.
std::optional<std::string> structural_diff(const ContractionForest& a,
                                           const ContractionForest& b);

}  // namespace parct::contract
