// User-defined contraction event callbacks: the paper's DoFinalize, DoRake
// and DoCompress (Fig. 2), which applications use to accumulate data during
// contraction (e.g. RC-tree style aggregates, expression evaluation).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "forest/types.hpp"
#include "parallel/capability.hpp"

namespace parct::contract {

/// Contract: callbacks fire from parallel regions, but at most once per
/// vertex per round within one construction or propagation pass, and never
/// concurrently for the same vertex. During a dynamic update, callbacks are
/// re-invoked for re-executed (affected) vertices — implementations must
/// treat an event as *overwriting* any previous event for that vertex.
class EventHooks {
 public:
  virtual ~EventHooks() = default;

  /// Called once, single-threaded, before any parallel phase of a
  /// construction or dynamic update, with the structure's (possibly just
  /// grown) vertex capacity. Value layers use it to size their storage so
  /// the parallel callbacks never reallocate shared vectors.
  virtual void on_begin(std::size_t capacity) { (void)capacity; }

  /// v finalizes in `round` (isolated root; its tree is fully contracted).
  virtual void on_finalize(std::uint32_t round, VertexId v) {
    (void)round; (void)v;
  }
  /// v (a non-root leaf) rakes into `parent` in `round`.
  virtual void on_rake(std::uint32_t round, VertexId v, VertexId parent) {
    (void)round; (void)v; (void)parent;
  }
  /// v (unary) compresses in `round`; its child `child` is linked to
  /// `parent` in the next round.
  virtual void on_compress(std::uint32_t round, VertexId v, VertexId child,
                           VertexId parent) {
    (void)round; (void)v; (void)child; (void)parent;
  }

  /// The edge v -> parent survives `round` unchanged (both endpoints
  /// survive). Together with on_compress — which replaces the surviving
  /// child's edge by the concatenation over the compressed vertex — these
  /// two callbacks describe the complete life of every edge, which is what
  /// per-edge value layers (e.g. rc::PathAggregate) need. Exactly one of
  /// {on_edge_persist(·, v, ·), on_compress(·, parent-of-v, v, ·)} fires
  /// per surviving non-root v per round.
  virtual void on_edge_persist(std::uint32_t round, VertexId v,
                               VertexId parent) {
    (void)round; (void)v; (void)parent;
  }

  /// v survives `round` (fires for every survivor, roots included,
  /// exactly once per round). Fired from v's own loop iteration, so the
  /// implementation may freely read v's round-`round` record and its
  /// children's round-`round` state, and write v's round-(round+1) value
  /// slots (e.g. folding in children that rake this round, as
  /// rc::SubtreeAggregate does).
  virtual void on_vertex_persist(std::uint32_t round, VertexId v) {
    (void)round; (void)v;
  }
};

/// Fans every event out to several hook sinks (e.g. two value layers
/// maintained over one structure). Does not own the sinks.
class MultiHooks final : public EventHooks {
 public:
  MultiHooks() = default;
  MultiHooks(std::initializer_list<EventHooks*> sinks) : sinks_(sinks) {}
  void add(EventHooks* sink) { sinks_.push_back(sink); }

  void on_begin(std::size_t capacity) override {
    for (EventHooks* s : sinks_) s->on_begin(capacity);
  }
  void on_finalize(std::uint32_t round, VertexId v) override {
    for (EventHooks* s : sinks_) s->on_finalize(round, v);
  }
  void on_rake(std::uint32_t round, VertexId v, VertexId parent) override {
    for (EventHooks* s : sinks_) s->on_rake(round, v, parent);
  }
  void on_compress(std::uint32_t round, VertexId v, VertexId child,
                   VertexId parent) override {
    for (EventHooks* s : sinks_) s->on_compress(round, v, child, parent);
  }
  void on_edge_persist(std::uint32_t round, VertexId v,
                       VertexId parent) override {
    for (EventHooks* s : sinks_) s->on_edge_persist(round, v, parent);
  }
  void on_vertex_persist(std::uint32_t round, VertexId v) override {
    for (EventHooks* s : sinks_) s->on_vertex_persist(round, v);
  }

 private:
  std::vector<EventHooks*> sinks_;
};

/// Records every vertex whose contraction event was (re)computed during a
/// construction or dynamic update — exactly the refresh set that
/// RCForest::refresh and TreeAggregate::prepare_update need, except for
/// the batch's removed vertices (V- fires no event; append those
/// yourself). Entries may repeat across rounds of one update; consumers
/// that need uniqueness deduplicate (refresh and prepare_update both
/// tolerate duplicates).
class TouchedRecorder final : public EventHooks {
 public:
  void on_finalize(std::uint32_t, VertexId v) override { note(v); }
  void on_rake(std::uint32_t, VertexId v, VertexId) override { note(v); }
  void on_compress(std::uint32_t, VertexId v, VertexId,
                   VertexId) override {
    note(v);
  }

  // Quiescent accessors: called after the construction/update (and its
  // joins) completes, when no hook can fire concurrently — lock-free by
  // contract, so the analysis is deliberately waived here rather than
  // pretending a lock is needed.
  const std::vector<VertexId>& vertices() const
      PARCT_NO_THREAD_SAFETY_ANALYSIS {
    return vs_;
  }
  std::vector<VertexId>& vertices() PARCT_NO_THREAD_SAFETY_ANALYSIS {
    return vs_;
  }
  void clear() PARCT_NO_THREAD_SAFETY_ANALYSIS { vs_.clear(); }

 private:
  // Events fire from parallel regions (distinct vertices concurrently);
  // the touched set is small — the affected region — so a mutex push is
  // cheap relative to the re-execution work that triggered it.
  void note(VertexId v) PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    vs_.push_back(v);
  }

  Mutex mu_;
  std::vector<VertexId> vs_ PARCT_GUARDED_BY(mu_);
};

}  // namespace parct::contract
