#include "contraction/validate.hpp"

#include <map>
#include <set>

namespace parct::contract {

namespace {

// Deliberately naive forest state: ordered maps/sets, sequential loops.
// This code shares nothing with the optimized algorithms beyond the coin
// schedule, so agreement is meaningful evidence of correctness.
struct SimForest {
  std::map<VertexId, VertexId> parent;        // self for roots
  std::map<VertexId, std::set<VertexId>> children;

  bool alive(VertexId v) const { return parent.count(v) != 0; }
};

enum class SimKind { kSurvive, kFinalize, kRake, kCompress };

SimKind sim_classify(const SimForest& f, const hashing::CoinSchedule& coins,
                     std::uint32_t i, VertexId v) {
  const VertexId p = f.parent.at(v);
  const auto& kids = f.children.at(v);
  if (kids.empty()) return p == v ? SimKind::kFinalize : SimKind::kRake;
  if (kids.size() == 1) {
    const VertexId u = *kids.begin();
    if (!f.children.at(u).empty() && !coins.heads(i, p) &&
        coins.heads(i, v)) {
      return SimKind::kCompress;
    }
  }
  return SimKind::kSurvive;
}

SimForest sim_round(const SimForest& f, const hashing::CoinSchedule& coins,
                    std::uint32_t i) {
  SimForest next;
  std::map<VertexId, SimKind> kind;
  for (const auto& [v, p] : f.parent) kind[v] = sim_classify(f, coins, i, v);
  for (const auto& [v, k] : kind) {
    if (k == SimKind::kSurvive) {
      next.parent[v] = v;  // provisional; overwritten below if non-root
      next.children[v];
    }
  }
  for (const auto& [v, k] : kind) {
    const VertexId p = f.parent.at(v);
    if (k == SimKind::kSurvive) {
      if (p != v && kind.at(p) == SimKind::kSurvive) {
        next.parent[v] = p;
        next.children[p].insert(v);
      }
    } else if (k == SimKind::kCompress) {
      const VertexId u = *f.children.at(v).begin();
      next.parent[u] = p;
      next.children[p].insert(u);
    }
  }
  return next;
}

}  // namespace

std::optional<std::string> check_valid(const ContractionForest& c,
                                       const forest::Forest& f) {
  using std::to_string;
  SimForest cur;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    cur.parent[v] = f.parent(v);
    auto& kids = cur.children[v];
    for (VertexId u : f.children(v)) {
      if (u != kNoVertex) kids.insert(u);
    }
  }
  // Absent vertices must have duration 0.
  for (VertexId v = 0; v < c.capacity(); ++v) {
    const bool present = v < f.capacity() && f.present(v);
    if (!present && c.duration(v) != 0) {
      return "absent vertex " + to_string(v) + " has nonzero duration";
    }
  }

  std::uint32_t i = 0;
  while (!cur.parent.empty()) {
    if (i >= c.coins().available_rounds()) {
      return "simulation needs more rounds than the coin schedule holds "
             "(structure likely records wrong durations)";
    }
    // Compare round i of `c` with the simulated forest.
    for (const auto& [v, p] : cur.parent) {
      if (c.duration(v) <= i) {
        return "vertex " + to_string(v) + " has duration " +
               to_string(c.duration(v)) + " but is alive at round " +
               to_string(i);
      }
      const RoundRecord& r = c.record(i, v);
      if (r.parent != p) {
        return "P[" + to_string(i) + "][" + to_string(v) + "] = " +
               to_string(r.parent) + ", expected " + to_string(p);
      }
      std::set<VertexId> rec_children;
      for (VertexId u : r.children) {
        if (u != kNoVertex) rec_children.insert(u);
      }
      if (rec_children != cur.children.at(v)) {
        return "C[" + to_string(i) + "][" + to_string(v) + "] mismatch";
      }
    }
    // Vertices dead in simulation must be dead in `c` too (duration <= i):
    // checked lazily via the counting below.
    SimForest next = sim_round(cur, c.coins(), i);
    for (const auto& [v, p] : cur.parent) {
      const bool sim_alive_next = next.alive(v);
      const bool c_alive_next = c.duration(v) > i + 1;
      if (sim_alive_next != c_alive_next) {
        return "duration of vertex " + to_string(v) +
               " disagrees at round " + to_string(i + 1);
      }
    }
    cur = std::move(next);
    ++i;
  }
  return std::nullopt;
}

}  // namespace parct::contract
