#include "contraction/contraction_forest.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/adaptive.hpp"

namespace parct::contract {

ContractionForest::ContractionForest(std::size_t capacity, int degree_bound,
                                     std::uint64_t seed)
    : degree_bound_(degree_bound), coins_(seed), history_(capacity) {
  if (degree_bound < 1 || degree_bound > kMaxDegree) {
    throw std::invalid_argument("degree_bound must be in [1, kMaxDegree]");
  }
}

void ContractionForest::ensure_capacity(std::size_t capacity) {
  if (history_.size() < capacity) history_.resize(capacity);
}

void ContractionForest::init_from_forest(const forest::Forest& f) {
  ensure_capacity(f.capacity());
  par::adaptive_for(0, history_.size(), [&](std::size_t i) {
    const VertexId v = static_cast<VertexId>(i);
    VertexHistory& h = history_[v];
    PARCT_SHADOW_WRITE(analysis::duration_cell(shadow_id(), v));
    h.duration = 0;
    if (i >= f.capacity() || !f.present(v)) {
      PARCT_SHADOW_WRITE(analysis::record_rounds_cell(shadow_id(), v));
      h.rounds.clear();
      return;
    }
    PARCT_SHADOW_WRITE(analysis::record_rounds_cell(shadow_id(), v));
    h.rounds.resize(1);
    PARCT_SHADOW_WRITE_REC(shadow_id(), v, 0);
    RoundRecord& r = h.rounds[0];
    r.parent = f.parent(v);
    r.parent_slot = static_cast<std::uint8_t>(f.parent_slot(v));
    r.children = f.children(v);
  });
}

std::uint32_t ContractionForest::num_rounds() const {
  std::uint32_t best = 0;
  for (const VertexHistory& h : history_) best = std::max(best, h.duration);
  return best;
}

forest::Forest ContractionForest::extract_forest() const {
  forest::Forest f(capacity(), degree_bound_, 0);
  for (VertexId v = 0; v < capacity(); ++v) {
    if (duration(v) > 0) f.add_vertex(v);
  }
  for (VertexId v = 0; v < capacity(); ++v) {
    if (duration(v) == 0) continue;
    const VertexId p = record(0, v).parent;
    if (p != v) f.link(v, p);
  }
  return f;
}

std::size_t ContractionForest::total_records() const {
  std::size_t total = 0;
  for (const VertexHistory& h : history_) total += h.rounds.size();
  return total;
}

namespace {

// Children as a sorted set (ignoring slot positions).
ChildArray sorted_children(const RoundRecord& r) {
  ChildArray c = r.children;
  std::sort(c.begin(), c.end());
  return c;
}

}  // namespace

std::optional<std::string> structural_diff(const ContractionForest& a,
                                           const ContractionForest& b) {
  const std::size_t cap = std::max(a.capacity(), b.capacity());
  for (VertexId v = 0; v < cap; ++v) {
    const std::uint32_t da = v < a.capacity() ? a.duration(v) : 0;
    const std::uint32_t db = v < b.capacity() ? b.duration(v) : 0;
    if (da != db) {
      return "v" + std::to_string(v) + ": duration " + std::to_string(da) +
             " vs " + std::to_string(db);
    }
    for (std::uint32_t i = 0; i < da; ++i) {
      const RoundRecord& ra = a.record(i, v);
      const RoundRecord& rb = b.record(i, v);
      if (ra.parent != rb.parent) {
        return "v" + std::to_string(v) + " round " + std::to_string(i) +
               ": parent " + std::to_string(ra.parent) + " vs " +
               std::to_string(rb.parent);
      }
      if (sorted_children(ra) != sorted_children(rb)) {
        std::string msg = "v" + std::to_string(v) + " round " +
                          std::to_string(i) + ": children {";
        for (VertexId u : sorted_children(ra)) {
          if (u != kNoVertex) msg += " " + std::to_string(u);
        }
        msg += " } vs {";
        for (VertexId u : sorted_children(rb)) {
          if (u != kNoVertex) msg += " " + std::to_string(u);
        }
        msg += " }";
        return msg;
      }
    }
  }
  return std::nullopt;
}

bool structurally_equal(const ContractionForest& a,
                        const ContractionForest& b) {
  return !structural_diff(a, b).has_value();
}

}  // namespace parct::contract
