#include "contraction/dynamic_update.hpp"

#include <cassert>
#include <stdexcept>

#include "analysis/annotations.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/parallel_for.hpp"
#include "primitives/pack.hpp"
#include "primitives/sort.hpp"

namespace parct::contract {

namespace {
// Candidate-buffer width: a vertex plus its parent plus up to kMaxDegree
// children.
constexpr std::size_t kWidth = kMaxDegree + 2;

// Shorthand for the shadow cells of the updater's scratch arrays.
constexpr analysis::ShadowKey cand_cell(std::size_t k) {
  return analysis::scratch_cell(analysis::ShadowArray::kCand, k);
}
constexpr analysis::ShadowKey mark_l_cell(VertexId v) {
  return analysis::scratch_cell(analysis::ShadowArray::kMarkL, v);
}
constexpr analysis::ShadowKey mark_lx_cell(VertexId v) {
  return analysis::scratch_cell(analysis::ShadowArray::kMarkLX, v);
}
constexpr analysis::ShadowKey status_g_cell(VertexId v) {
  return analysis::scratch_cell(analysis::ShadowArray::kStatusG, v);
}
constexpr analysis::ShadowKey old_leaf_cell(VertexId v) {
  return analysis::scratch_cell(analysis::ShadowArray::kOldLeaf, v);
}
constexpr analysis::ShadowKey new_leaf_cell(VertexId v) {
  return analysis::scratch_cell(analysis::ShadowArray::kNewLeaf, v);
}
}  // namespace

DynamicUpdater::DynamicUpdater(ContractionForest& c) : c_(c) {
  grow_scratch();
}

void DynamicUpdater::grow_scratch() {
  const std::size_t cap = c_.capacity();
  if (cap <= scratch_cap_) return;
  // Epoch stamps need not survive growth: fresh zeroed arrays are "never
  // claimed" since epochs start at 1.
  claim_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  for (std::size_t v = 0; v < cap; ++v) {
    claim_[v].store(0, std::memory_order_relaxed);
  }
  mark_l_.assign(cap, 0);
  mark_lx_.assign(cap, 0);
  status_g_.assign(cap, 0);
  old_leaf_.assign(cap, 0);
  new_leaf_.assign(cap, 0);
  scratch_cap_ = cap;
}

UpdateStats DynamicUpdater::apply(const forest::ChangeSet& m,
                                  EventHooks* hooks) {
  UpdateStats stats;
  if (m.empty()) return stats;
  const StatsTimePoint t_begin = stats_now();
  const WorkspaceStats ws_begin = ws_.stats();
  ws_.epoch_reset();

  // --- capacity for fresh vertex ids ---------------------------------
  std::size_t need = c_.capacity();
  for (VertexId v : m.add_vertices) {
    need = std::max<std::size_t>(need, static_cast<std::size_t>(v) + 1);
  }
  c_.ensure_capacity(need);
  grow_scratch();
  if (hooks) hooks->on_begin(c_.capacity());

  lset_.clear();
  xset_.clear();

  // --- initial phase (paper Fig. 3, lines 2-18): O(m) work, low span. --
  // One adaptive decision covers the whole phase: a small batch runs it
  // inline (every loop, pack and sort below degenerates to its sequential
  // path with zero scheduler interaction).
  const std::size_t num_edges = m.remove_edges.size() + m.add_edges.size();
  const std::size_t batch_n =
      m.remove_vertices.size() + m.add_vertices.size() + 2 * num_edges;
  {
  const par::AdaptivePhase initial_mode(batch_n);
  stats.chose_serial += initial_mode.serial() ? 1 : 0;
  const std::uint64_t e_vminus = ++epoch_;
  ws_.resize_tracked(xset_, m.remove_vertices.size());
  par::adaptive_for(0, m.remove_vertices.size(), [&](std::size_t k) {
    const VertexId v = m.remove_vertices[k];
    claim_[v].store(e_vminus, std::memory_order_relaxed);
    xset_[k] = {v, 0};
  });

  // V+ vertices "were previously dead" (D[v] = 0) and start with fresh,
  // isolated round-0 records. They also join L (claimed below with the
  // endpoints; V+ ids are fresh so their claims always win).
  const std::uint64_t e_l0 = ++epoch_;
  par::adaptive_for(0, m.add_vertices.size(), [&](std::size_t k) {
    const VertexId v = m.add_vertices[k];
    c_.set_duration(v, 0);
    c_.ensure_round(v, 0);
    PARCT_SHADOW_WRITE_REC(c_.shadow_id(), v, 0);
    c_.record_mut(0, v) = RoundRecord{v, 0, kEmptyChildren};
  });

  // U = endpoints of E- and E+; all of U \ V- joins L, as does V+.
  // Claim-then-pack produces a duplicate-free L0; the same pass captures
  // the pre-edit leaf statuses (for the leaf-change rule below).
  auto edge_at = [&](std::size_t k) -> const Edge& {
    return k < m.remove_edges.size()
               ? m.remove_edges[k]
               : m.add_edges[k - m.remove_edges.size()];
  };
  assign_tracked(cand_, m.add_vertices.size() + 2 * num_edges, kNoVertex);
  par::adaptive_for(0, m.add_vertices.size(), [&](std::size_t k) {
    const VertexId v = m.add_vertices[k];
    if (try_claim(v, e_l0)) {
      PARCT_SHADOW_WRITE(cand_cell(k));
      cand_[k] = v;
    }
  });
  const std::size_t edge_cand_base = m.add_vertices.size();
  par::adaptive_for(0, num_edges, [&](std::size_t k) {
    const Edge& e = edge_at(k);
    VertexId* out = cand_.data() + edge_cand_base + 2 * k;
    for (int side = 0; side < 2; ++side) {
      const VertexId v = side == 0 ? e.child : e.parent;
      if (claimed(v, e_vminus)) continue;  // deleted: tracked via X
      if (try_claim(v, e_l0)) {
        PARCT_SHADOW_WRITE(cand_cell(edge_cand_base + 2 * k + side));
        out[side] = v;
        if (c_.duration(v) > 0) {  // pre-existing: remember leaf status
          PARCT_SHADOW_READ_CHILDREN(c_.shadow_id(), v, 0);
          PARCT_SHADOW_WRITE(old_leaf_cell(v));
          old_leaf_[v] =
              children_empty(c_.record(0, v).children) ? 1 : 0;
        }
      }
    }
  });
  prim::pack_into(cand_, [&](std::size_t k) {
    PARCT_SHADOW_READ(cand_cell(k));
    return cand_[k] != kNoVertex;
  }, lset_, ws_);

  // Apply the edits to round 0: deletions first (freeing slots), then
  // insertions. Deletions touch disjoint (child, parent-slot) pairs and
  // run fully in parallel; insertions are grouped by parent (stable sort)
  // so each group assigns its parent's free slots sequentially.
  par::adaptive_for(0, m.remove_edges.size(), [&](std::size_t k) {
    const Edge& e = m.remove_edges[k];
    PARCT_SHADOW_READ(
        analysis::record_parent_cell(c_.shadow_id(), e.child, 0));
    RoundRecord& rc = c_.record_mut(0, e.child);
    assert(rc.parent == e.parent && "E- edge not present");
    PARCT_SHADOW_WRITE(analysis::record_child_cell(c_.shadow_id(), e.parent,
                                                   0, rc.parent_slot));
    c_.record_mut(0, e.parent).children[rc.parent_slot] = kNoVertex;
    PARCT_SHADOW_WRITE(
        analysis::record_parent_cell(c_.shadow_id(), e.child, 0));
    rc.parent = e.child;
    rc.parent_slot = 0;
  });
  {
    if (inserts_.capacity() < m.add_edges.size()) {
      ws_.note_container_growth(
          (m.add_edges.size() - inserts_.capacity()) * sizeof(Edge));
    }
    inserts_.assign(m.add_edges.begin(), m.add_edges.end());
    prim::parallel_sort_into(inserts_, [](const Edge& a, const Edge& b) {
      return a.parent < b.parent;
    }, ws_);
    std::atomic<bool> overflow{false};
    par::adaptive_for(0, inserts_.size(), [&](std::size_t k) {
      if (k > 0 && inserts_[k].parent == inserts_[k - 1].parent) {
        return;  // not a group head
      }
      RoundRecord& rp = c_.record_mut(0, inserts_[k].parent);
      for (std::size_t j = k;
           j < inserts_.size() && inserts_[j].parent == inserts_[k].parent;
           ++j) {
        PARCT_SHADOW_READ_CHILDREN(c_.shadow_id(), inserts_[k].parent, 0);
        const int slot = find_free_slot(rp.children, c_.degree_bound());
        if (slot < 0) {
          overflow.store(true, std::memory_order_relaxed);
          return;
        }
        PARCT_SHADOW_WRITE(analysis::record_child_cell(
            c_.shadow_id(), inserts_[k].parent, 0,
            static_cast<std::uint32_t>(slot)));
        rp.children[slot] = inserts_[j].child;
        PARCT_SHADOW_WRITE(analysis::record_parent_cell(
            c_.shadow_id(), inserts_[j].child, 0));
        RoundRecord& rc = c_.record_mut(0, inserts_[j].child);
        rc.parent = inserts_[j].parent;
        rc.parent_slot = static_cast<std::uint8_t>(slot);
      }
    });
    if (overflow.load()) {
      throw std::runtime_error(
          "ChangeSet insertion exceeds the degree bound");
    }
  }

  // A leaf-status flip of an endpoint affects its (post-edit) parent.
  assign_tracked(cand_, num_edges * 2, kNoVertex);
  par::adaptive_for(0, num_edges, [&](std::size_t k) {
    const Edge& e = edge_at(k);
    VertexId* out = cand_.data() + 2 * k;
    for (int side = 0; side < 2; ++side) {
      const VertexId v = side == 0 ? e.child : e.parent;
      // Only the claim winner evaluated v's old status; everyone may read
      // it now (claims finished at the barrier above), but only one writer
      // per flipped parent wins the L claim.
      if (claimed(v, e_vminus) || c_.duration(v) == 0) continue;
      PARCT_SHADOW_READ_CHILDREN(c_.shadow_id(), v, 0);
      const bool now_leaf = children_empty(c_.record(0, v).children);
      PARCT_SHADOW_READ(old_leaf_cell(v));
      if (now_leaf == (old_leaf_[v] != 0)) continue;
      PARCT_SHADOW_READ(analysis::record_parent_cell(c_.shadow_id(), v, 0));
      const VertexId p = c_.record(0, v).parent;
      if (p != v && try_claim(p, e_l0)) {
        PARCT_SHADOW_WRITE(cand_cell(2 * k + side));
        out[side] = p;
      }
    }
  });
  prim::pack_into(cand_, [&](std::size_t k) {
    PARCT_SHADOW_READ(cand_cell(k));
    return cand_[k] != kNoVertex;
  }, flipped_, ws_);
  if (lset_.capacity() < lset_.size() + flipped_.size()) {
    ws_.note_container_growth(
        (lset_.size() + flipped_.size() - lset_.capacity()) *
        sizeof(VertexId));
  }
  lset_.insert(lset_.end(), flipped_.begin(), flipped_.end());

  stats.initial_affected = lset_.size() + xset_.size();
  if constexpr (kStatsEnabled) {
    stats.phase_seconds[kPhaseInitial] += stats_since(t_begin);
  }
  }  // initial_mode: each propagation round makes its own serial decision

  // --- change propagation (paper Fig. 3, lines 19-21) ------------------
  StatsTimePoint serial_t0{};
  bool serial_open = false;
  std::uint32_t i = 0;
  while (!lset_.empty() || !xset_.empty()) {
    propagate(i, hooks, stats, serial_t0, serial_open);
    ++i;
  }
  stats.rounds = i;
  if constexpr (kStatsEnabled) {
    if (serial_open) {
      stats.phase_seconds[kPhaseSerial] += stats_since(serial_t0);
    }
    stats.total_seconds = stats_since(t_begin);
  }
  const WorkspaceStats ws_delta =
      workspace_stats_delta(ws_begin, ws_.stats());
  stats.ws_acquires = ws_delta.acquires;
  stats.ws_hits = ws_delta.hits;
  stats.ws_misses = ws_delta.misses;
  stats.ws_bytes_allocated = ws_delta.bytes_allocated;
  stats.ws_container_growths = ws_delta.container_growths;
  stats.ws_container_bytes = ws_delta.container_bytes;
  return stats;
}

void DynamicUpdater::propagate(std::uint32_t i, EventHooks* hooks,
                               UpdateStats& stats,
                               StatsTimePoint& serial_t0,
                               bool& serial_open) {
  ws_.epoch_reset();  // round boundary: no scratch lease crosses rounds
  c_.coins().ensure_rounds(i + 2);
  const std::size_t nl_count = lset_.size();
  stats.total_affected += nl_count + xset_.size();
  stats.max_affected =
      std::max<std::uint64_t>(stats.max_affected, nl_count + xset_.size());
  if constexpr (kStatsEnabled) {
    stats.affected_per_round.push_back(
        static_cast<std::uint32_t>(nl_count + xset_.size()));
  }

  // One serial-vs-parallel decision per round: a sub-cutover frontier runs
  // the whole round inline (AdaptivePhase forces the sequential paths of
  // every loop and primitive below; docs/PERFORMANCE.md "Small-batch fast
  // path"). The per-round stats above are recorded before the decision, so
  // both paths report identical round telemetry.
  const par::AdaptivePhase round_mode(nl_count + xset_.size());
  stats.chose_serial += round_mode.serial() ? 1 : 0;
  if constexpr (kStatsEnabled) {
    stats.serial_per_round.push_back(round_mode.serial() ? 1 : 0);
  }

  // Serial rounds skip per-phase attribution — at ~tens of ns per clock
  // read, 8 brackets/round would dwarf a tiny round's actual work. They
  // are instead timed whole into phase_seconds[kPhaseSerial] through a
  // bracket the caller carries across consecutive serial rounds, so a
  // fully-serial update pays two clock reads total, not two per round.
  StatsTimePoint t_phase{};
  if constexpr (kStatsEnabled) {
    if (round_mode.serial()) {
      if (!serial_open) {
        serial_t0 = stats_now();
        serial_open = true;
      }
    } else {
      if (serial_open) {
        stats.phase_seconds[kPhaseSerial] += stats_since(serial_t0);
        serial_open = false;
      }
      t_phase = stats_now();
    }
  }
  // Accumulates the time since the previous phase boundary into `sink`.
  auto phase_done = [&](double& sink) {
    if constexpr (kStatsEnabled) {
      if (round_mode.serial()) return;
      sink += stats_since(t_phase);
      t_phase = stats_now();
    }
  };

  // Phase A+B (fused): one traversal of L marks it (and L-union-X),
  // classifies members in G, records old (F) leaf statuses at round i+1
  // before anything rewrites them (the ell of LeafStatuses, paper Fig. 4
  // line 2), and claims NL = L plus all round-i neighbours in G (Fig. 4
  // line 3). Fusing is legal because the B half reads only round-i records
  // and the claim stamps — never the mark/status/leaf arrays the A half
  // writes — so no iteration observes another's A-half effects.
  epoch_l_ = ++epoch_;
  epoch_lx_ = ++epoch_;
  epoch_nlx_ = ++epoch_;
  assign_tracked(cand_, nl_count * kWidth, kNoVertex);
  par::adaptive_for(0, xset_.size(), [&](std::size_t k) {
    PARCT_SHADOW_WRITE(mark_lx_cell(xset_[k].first));
    mark_lx_[xset_[k].first] = epoch_lx_;
  });
  par::adaptive_for(0, nl_count, [&](std::size_t k) {
    const VertexId v = lset_[k];
    PARCT_SHADOW_WRITE(mark_l_cell(v));
    mark_l_[v] = epoch_l_;
    PARCT_SHADOW_WRITE(mark_lx_cell(v));
    mark_lx_[v] = epoch_lx_;
    const Kind kind = c_.classify(i, v);
    PARCT_SHADOW_WRITE(status_g_cell(v));
    status_g_[v] = static_cast<std::uint8_t>(kind);
    if (kind == Kind::kSurvive && c_.duration(v) > i + 1) {
      PARCT_SHADOW_READ_CHILDREN(c_.shadow_id(), v, i + 1);
      PARCT_SHADOW_WRITE(old_leaf_cell(v));
      old_leaf_[v] =
          children_empty(c_.record(i + 1, v).children) ? 1 : 0;
    }
    VertexId* out = cand_.data() + k * kWidth;
    if (try_claim(v, epoch_nlx_)) {
      PARCT_SHADOW_WRITE(cand_cell(k * kWidth));
      out[0] = v;
    }
    PARCT_SHADOW_READ_REC(c_.shadow_id(), v, i);
    const RoundRecord& r = c_.record(i, v);
    if (r.parent != v && try_claim(r.parent, epoch_nlx_)) {
      PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 1));
      out[1] = r.parent;
    }
    for (int s = 0; s < kMaxDegree; ++s) {
      const VertexId u = r.children[s];
      if (u != kNoVertex && try_claim(u, epoch_nlx_)) {
        PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 2 + s));
        out[2 + s] = u;
      }
    }
  });
  stats.fused_passes += 1;
  phase_done(stats.phase_seconds[kPhaseMark]);

  prim::pack_into(cand_, [&](std::size_t k) {
    PARCT_SHADOW_READ(cand_cell(k));
    return cand_[k] != kNoVertex;
  }, nl_, ws_);
  stats.total_neighborhood += nl_.size();
  if constexpr (kStatsEnabled) {
    stats.neighborhood_per_round.push_back(
        static_cast<std::uint32_t>(nl_.size()));
  }
  phase_done(stats.phase_seconds[kPhaseNeighborhood]);

  // Phase C: erase round-(i+1) edges incident on *affected* vertices
  // (L union X; the paper's "delete all edges which are incident upon an
  // affected vertex"). Edges between two unaffected vertices are identical
  // in F and G (Lemma 1) and are kept — crucially, such an edge's creator
  // (e.g. an unaffected compressing vertex) may lie outside NL and would
  // never re-promote it. Members of L that survive in G but are already
  // dead in F get a fresh blank record.
  par::adaptive_for(0, nl_.size(), [&](std::size_t k) {
    const VertexId v = nl_[k];
    if (c_.duration(v) > i + 1) {
      RoundRecord& r = c_.record_mut(i + 1, v);
      PARCT_SHADOW_READ(
          analysis::record_parent_cell(c_.shadow_id(), v, i + 1));
      if (r.parent != v && (in_lx(r.parent) || in_lx(v))) {
        PARCT_SHADOW_WRITE(
            analysis::record_parent_cell(c_.shadow_id(), v, i + 1));
        r.parent = v;
        r.parent_slot = 0;
      }
      for (int s = 0; s < kMaxDegree; ++s) {
        PARCT_SHADOW_READ(analysis::record_child_cell(
            c_.shadow_id(), v, i + 1, static_cast<std::uint32_t>(s)));
        if (r.children[s] != kNoVertex &&
            (in_lx(r.children[s]) || in_lx(v))) {
          PARCT_SHADOW_WRITE(analysis::record_child_cell(
              c_.shadow_id(), v, i + 1, static_cast<std::uint32_t>(s)));
          r.children[s] = kNoVertex;
        }
      }
    } else if (in_l(v)) {
      PARCT_SHADOW_READ(status_g_cell(v));
      if (static_cast<Kind>(status_g_[v]) == Kind::kSurvive) {
        c_.ensure_round(v, i + 1);
        PARCT_SHADOW_WRITE_REC(c_.shadow_id(), v, i + 1);
        c_.record_mut(i + 1, v) = RoundRecord{v, 0, kEmptyChildren};
      }
    }
  });
  phase_done(stats.phase_seconds[kPhaseErase]);

  // Phase D: re-promote edges for NL (PromoteEdges over the affected
  // region and its fringe — the paper's "we also have to promote edges
  // incident upon any neighbor of an affected vertex"). Unaffected NL
  // members redo exactly what F did (Lemma 2), so their writes are
  // idempotent re-executions.
  par::adaptive_for(0, nl_.size(), [&](std::size_t k) {
    const VertexId v = nl_[k];
    const Kind kind = kind_of(i, v);
    PARCT_SHADOW_READ_REC(c_.shadow_id(), v, i);
    const RoundRecord& r = c_.record(i, v);
    switch (kind) {
      case Kind::kSurvive: {
        if (hooks) hooks->on_vertex_persist(i, v);
        if (r.parent != v && survives(i, r.parent)) {
          PARCT_SHADOW_WRITE(analysis::record_child_cell(
              c_.shadow_id(), r.parent, i + 1, r.parent_slot));
          c_.record_mut(i + 1, r.parent).children[r.parent_slot] = v;
          if (hooks) hooks->on_edge_persist(i, v, r.parent);
        }
        for (int s = 0; s < kMaxDegree; ++s) {
          const VertexId u = r.children[s];
          if (u == kNoVertex || !survives(i, u)) continue;
          PARCT_SHADOW_WRITE(
              analysis::record_parent_cell(c_.shadow_id(), u, i + 1));
          RoundRecord& ru = c_.record_mut(i + 1, u);
          ru.parent = v;
          ru.parent_slot = static_cast<std::uint8_t>(s);
        }
        break;
      }
      case Kind::kFinalize:
        if (hooks) hooks->on_finalize(i, v);
        break;
      case Kind::kRake:
        if (hooks) hooks->on_rake(i, v, r.parent);
        break;
      case Kind::kCompress: {
        const VertexId u = only_child(r.children);
        PARCT_SHADOW_WRITE(analysis::record_child_cell(
            c_.shadow_id(), r.parent, i + 1, r.parent_slot));
        c_.record_mut(i + 1, r.parent).children[r.parent_slot] = u;
        PARCT_SHADOW_WRITE(
            analysis::record_parent_cell(c_.shadow_id(), u, i + 1));
        RoundRecord& ru = c_.record_mut(i + 1, u);
        ru.parent = r.parent;
        ru.parent_slot = r.parent_slot;
        if (hooks) hooks->on_compress(i, v, u, r.parent);
        break;
      }
    }
  });
  phase_done(stats.phase_seconds[kPhasePromote]);

  // Phase E+F (fused): Spread (Fig. 4 lines 20-31) builds the next round's
  // L; the old standalone Phase E (new G leaf statuses at round i+1, the
  // ell' of Fig. 4) is folded into case (d) below — the only consumer of
  // new_leaf_, and its guard (kSurvive with D[v] > i+1) is exactly E's
  // write condition. Each iteration computes and compares its own vertex's
  // statuses, so the fusion removes one full frontier traversal without
  // introducing any cross-iteration read of another's write.
  //  (a) a contracting member affects its round-i G-neighbours (which all
  //      survive round i — rake/compress neighbours cannot contract
  //      simultaneously);
  //  (b) survivors stay affected;
  //  (c) a survivor that dies in F exactly this round (D[v] = i+1) affects
  //      its round-(i+1) G-neighbours;
  //  (d) a survivor alive in both forests whose leaf status differs
  //      affects its round-(i+1) parent.
  const std::uint64_t e_next = ++epoch_;
  assign_tracked(cand_, nl_count * kWidth, kNoVertex);
  par::adaptive_for(0, nl_count, [&](std::size_t k) {
    const VertexId v = lset_[k];
    VertexId* out = cand_.data() + k * kWidth;
    PARCT_SHADOW_READ(status_g_cell(v));
    if (static_cast<Kind>(status_g_[v]) == Kind::kSurvive) {
      if (try_claim(v, e_next)) {  // (b)
        PARCT_SHADOW_WRITE(cand_cell(k * kWidth));
        out[0] = v;
      }
      const std::uint32_t dur_f = c_.duration(v);
      if (dur_f == i + 1) {  // (c)
        PARCT_SHADOW_READ_REC(c_.shadow_id(), v, i + 1);
        const RoundRecord& r1 = c_.record(i + 1, v);
        if (r1.parent != v && try_claim(r1.parent, e_next)) {
          PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 1));
          out[1] = r1.parent;
        }
        for (int s = 0; s < kMaxDegree; ++s) {
          const VertexId u = r1.children[s];
          if (u != kNoVertex && try_claim(u, e_next)) {
            PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 2 + s));
            out[2 + s] = u;
          }
        }
      } else if (dur_f > i + 1) {  // (d), with E's ell' computed in place
        PARCT_SHADOW_READ_CHILDREN(c_.shadow_id(), v, i + 1);
        PARCT_SHADOW_WRITE(new_leaf_cell(v));
        new_leaf_[v] =
            children_empty(c_.record(i + 1, v).children) ? 1 : 0;
        PARCT_SHADOW_READ(old_leaf_cell(v));
        if (new_leaf_[v] != old_leaf_[v]) {
          PARCT_SHADOW_READ(
              analysis::record_parent_cell(c_.shadow_id(), v, i + 1));
          const VertexId p = c_.record(i + 1, v).parent;
          if (p != v && try_claim(p, e_next)) {
            PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 1));
            out[1] = p;
          }
        }
      }
    } else {  // (a)
      PARCT_SHADOW_READ_REC(c_.shadow_id(), v, i);
      const RoundRecord& r = c_.record(i, v);
      if (r.parent != v && try_claim(r.parent, e_next)) {
        PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 1));
        out[1] = r.parent;
      }
      for (int s = 0; s < kMaxDegree; ++s) {
        const VertexId u = r.children[s];
        if (u != kNoVertex && try_claim(u, e_next)) {
          PARCT_SHADOW_WRITE(cand_cell(k * kWidth + 2 + s));
          out[2 + s] = u;
        }
      }
    }
  });
  stats.fused_passes += 1;
  prim::pack_into(cand_, [&](std::size_t k) {
    PARCT_SHADOW_READ(cand_cell(k));
    return cand_[k] != kNoVertex;
  }, next_l_, ws_);
  phase_done(stats.phase_seconds[kPhaseSpread]);

  // Phase G: X bookkeeping (Fig. 3 line 18, Fig. 4 lines on X): members of
  // L that contract in G but are still alive in F join X with their G
  // death round; vertices now dead in both forests get their final
  // durations. Sequential: O(|L| + |X|). xset_ is rebuilt *in place* — a
  // write-index compaction of the survivors (the write cursor never passes
  // the read cursor) followed by appends for L's contractors — so the
  // buffer's capacity carries over round to round.
  std::size_t xw = 0;
  for (std::size_t k = 0; k < xset_.size(); ++k) {
    const auto [v, j] = xset_[k];
    if (c_.duration(v) > i + 1) {
      xset_[xw++] = {v, j};
    } else {
      c_.set_duration(v, j);
      c_.truncate_to_duration(v);
    }
  }
  xset_.resize(xw);
  const std::size_t x_cap = xset_.capacity();
  for (std::size_t k = 0; k < nl_count; ++k) {
    const VertexId v = lset_[k];
    if (static_cast<Kind>(status_g_[v]) == Kind::kSurvive) continue;
    if (c_.duration(v) > i + 1) {
      xset_.push_back({v, i + 1});
    } else {
      c_.set_duration(v, i + 1);
      c_.truncate_to_duration(v);
    }
  }
  if (xset_.capacity() != x_cap) {
    ws_.note_container_growth((xset_.capacity() - x_cap) *
                              sizeof(xset_[0]));
  }

  phase_done(stats.phase_seconds[kPhaseX]);
  // Serial rounds leave their kPhaseSerial bracket open — the next
  // non-serial round or apply() itself closes it.

  // Swap, never move-assign: lset_'s old buffer becomes next round's
  // next_l_ destination, so both capacities survive.
  std::swap(lset_, next_l_);
}

UpdateStats modify_contraction(ContractionForest& c,
                               const forest::ChangeSet& m,
                               EventHooks* hooks) {
  DynamicUpdater updater(c);
  return updater.apply(m, hooks);
}

}  // namespace parct::contract
