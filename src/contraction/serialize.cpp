#include "contraction/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace parct::contract {

namespace {

constexpr std::uint64_t kMagic = 0x50415243'54434631ull;  // "PARCTCF1"
constexpr std::uint32_t kVersion = 1;

// Bounds on header fields read from an untrusted stream. A corrupt
// `capacity` or per-vertex `duration` must not translate into a multi-GB
// allocation before truncation is detected: both are rejected up front,
// and the history is grown in bounded chunks as vertex payloads actually
// arrive, so a lying header can waste at most one chunk of memory.
constexpr std::uint64_t kMaxLoadCapacity = 1ull << 32;  // 4G vertices
constexpr std::uint32_t kMaxLoadRounds = 1u << 20;      // rounds per vertex
constexpr std::uint64_t kCapacityChunk = 1ull << 16;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("parct::load: truncated stream");
  return value;
}

}  // namespace

void save(const ContractionForest& c, std::ostream& out) {
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(c.capacity()));
  put(out, static_cast<std::uint32_t>(c.degree_bound()));
  put(out, c.seed());
  for (VertexId v = 0; v < c.capacity(); ++v) {
    const std::uint32_t d = c.duration(v);
    put(out, d);
    for (std::uint32_t i = 0; i < d; ++i) {
      const RoundRecord& r = c.record(i, v);
      put(out, r.parent);
      put(out, r.parent_slot);
      for (VertexId u : r.children) put(out, u);
    }
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("parct::save: stream write failed");
  }
}

ContractionForest load(std::istream& in) {
  if (get<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("parct::load: bad magic");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("parct::load: unsupported version");
  }
  const std::uint64_t capacity = get<std::uint64_t>(in);
  const std::uint32_t degree_bound = get<std::uint32_t>(in);
  const std::uint64_t seed = get<std::uint64_t>(in);
  if (degree_bound < 1 || degree_bound > kMaxDegree) {
    throw std::runtime_error("parct::load: bad degree bound");
  }
  if (capacity > kMaxLoadCapacity) {
    throw std::runtime_error("parct::load: capacity exceeds sane bound");
  }

  // Start small and grow in chunks while vertex payloads keep arriving:
  // the declared capacity only commits memory once the stream has actually
  // delivered bytes to back it.
  ContractionForest c(static_cast<std::size_t>(
                          std::min<std::uint64_t>(capacity, kCapacityChunk)),
                      static_cast<int>(degree_bound), seed);
  std::uint32_t max_rounds = 0;
  for (VertexId v = 0; v < capacity; ++v) {
    if (v >= c.capacity()) {
      c.ensure_capacity(static_cast<std::size_t>(
          std::min<std::uint64_t>(capacity, c.capacity() + kCapacityChunk)));
    }
    const std::uint32_t d = get<std::uint32_t>(in);
    if (d > kMaxLoadRounds) {
      throw std::runtime_error("parct::load: vertex duration exceeds bound");
    }
    c.set_duration(v, d);
    max_rounds = std::max(max_rounds, d);
    for (std::uint32_t i = 0; i < d; ++i) {
      // Grow the round vector as records actually arrive (vector capacity
      // doubles underneath), not up front from the untrusted duration.
      c.ensure_round(v, i);
      RoundRecord& r = c.record_mut(i, v);
      r.parent = get<VertexId>(in);
      r.parent_slot = get<std::uint8_t>(in);
      for (int s = 0; s < kMaxDegree; ++s) {
        r.children[s] = get<VertexId>(in);
      }
    }
  }
  c.ensure_capacity(static_cast<std::size_t>(capacity));
  // Re-derive the coin schedule far enough for the recorded rounds (and
  // one extra, like the algorithms keep). max_rounds is bounded by
  // kMaxLoadRounds above, so the +1 cannot wrap.
  c.coins().ensure_rounds(max_rounds + 1);
  return c;
}

}  // namespace parct::contract
