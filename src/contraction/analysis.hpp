// Post-hoc analysis of a contraction data structure: per-round live
// counts and contraction-kind histograms, straight from the records. Used
// by the property tests (Lemma 5's geometric decay, rake/compress mix) and
// by the benchmark harness for machine-independent work/depth reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"

namespace parct::contract {

struct RoundProfile {
  std::uint32_t live = 0;       // |V^i|
  std::uint32_t finalizes = 0;  // deaths in this round, by kind
  std::uint32_t rakes = 0;
  std::uint32_t compresses = 0;

  std::uint32_t contracted() const {
    return finalizes + rakes + compresses;
  }
};

struct ContractionProfile {
  std::vector<RoundProfile> rounds;

  std::uint32_t num_rounds() const {
    return static_cast<std::uint32_t>(rounds.size());
  }
  std::uint64_t total_work() const {
    std::uint64_t w = 0;
    for (const RoundProfile& r : rounds) w += r.live;
    return w;
  }
  /// Largest live-set shrink factor |V^{i+1}| / |V^i| over all rounds with
  /// at least `min_live` vertices — empirical beta of Lemma 5.
  double worst_decay(std::uint32_t min_live = 32) const {
    double worst = 0.0;
    for (std::size_t i = 0; i + 1 < rounds.size(); ++i) {
      if (rounds[i].live < min_live) continue;
      worst = std::max(worst, static_cast<double>(rounds[i + 1].live) /
                                  rounds[i].live);
    }
    return worst;
  }
};

/// Scans all records. O(total records).
inline ContractionProfile profile(const ContractionForest& c) {
  ContractionProfile p;
  for (VertexId v = 0; v < c.capacity(); ++v) {
    const std::uint32_t d = c.duration(v);
    if (d == 0) continue;
    if (p.rounds.size() < d) p.rounds.resize(d);
    for (std::uint32_t i = 0; i < d; ++i) ++p.rounds[i].live;
    const RoundRecord& last = c.record(d - 1, v);
    if (children_empty(last.children)) {
      if (last.parent == v) {
        ++p.rounds[d - 1].finalizes;
      } else {
        ++p.rounds[d - 1].rakes;
      }
    } else {
      ++p.rounds[d - 1].compresses;
    }
  }
  return p;
}

}  // namespace parct::contract
