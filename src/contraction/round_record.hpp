// Per-round per-vertex record of the contraction data structure (paper
// §2.3): the parent pointer P[i][v] (with its child-array slot, §2.6) and
// the slotted children set C[i][v].
#pragma once

#include <cstdint>
#include <vector>

#include "forest/types.hpp"

namespace parct::contract {

struct RoundRecord {
  VertexId parent = kNoVertex;  // == the vertex itself for roots
  std::uint8_t parent_slot = 0; // slot this vertex owns in parent's array
  ChildArray children = kEmptyChildren;
};

/// The paper's "map from vertices to lists of length D[v]" (§4): round i's
/// record for v sits at rounds[i]; `duration` is D[v] — the number of
/// rounds the vertex stays alive (0 = absent). Entries at indices >=
/// duration may exist but are meaningless.
struct VertexHistory {
  std::uint32_t duration = 0;
  std::vector<RoundRecord> rounds;
};

/// Contraction kind of a vertex in a given round (paper Fig. 2).
enum class Kind : std::uint8_t {
  kSurvive = 0,
  kFinalize,  // isolated root
  kRake,      // non-root leaf
  kCompress,  // unary, non-leaf child, lost the coin-flip race
};

}  // namespace parct::contract
