// The dynamic update algorithm (paper §2.5, Figs. 3-4): change propagation
// over the contraction data structure. Applying a batch
// ((V-, E-), (V+, E+)) leaves the structure exactly as if the construction
// algorithm had been re-run from scratch on the edited forest with the same
// coin schedule — but does only O(m log((n+m)/m)) expected work (Thm. 2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "contraction/telemetry.hpp"
#include "forest/change_set.hpp"
#include "primitives/workspace.hpp"

namespace parct::contract {

/// Phases of one apply(): the initial O(m) batch-application phase, then
/// A-G of each Propagate round (see dynamic_update.cpp). Indexes
/// UpdateStats::phase_seconds.
enum UpdatePhase : unsigned {
  kPhaseInitial = 0,  // apply batch to round 0, build L0/X0
  kPhaseMark,         // A: mark L / L-union-X, classify, old leaf statuses
  kPhaseNeighborhood, // B: build NL (claim-then-pack)
  kPhaseErase,        // C: erase round-(i+1) edges incident on affected
  kPhasePromote,      // D: re-promote edges over NL
  kPhaseLeaf,         // E: new leaf statuses (fused into F; see .cpp)
  kPhaseSpread,       // F: build next round's L (includes fused E)
  kPhaseX,            // G: X bookkeeping (sequential)
  kPhaseSerial,       // whole-round time of sub-cutover serial rounds
  kNumUpdatePhases
};

struct UpdateStats {
  /// Rounds of change propagation executed.
  std::uint32_t rounds = 0;
  /// |A^0| (paper Lemma 7 bounds this by 3m).
  std::uint64_t initial_affected = 0;
  /// Sum over rounds of |A^i| = |L| + |X| — the algorithm's work measure
  /// (Theorem 2: O(m log((n+m)/m)) in expectation).
  std::uint64_t total_affected = 0;
  /// max over rounds of |A^i| (paper Lemma 10: O(m) in expectation).
  std::uint64_t max_affected = 0;
  /// Sum over rounds of |NL| (affected vertices plus their neighbours).
  std::uint64_t total_neighborhood = 0;
  /// Adaptive-execution decisions that chose the inline serial path (the
  /// initial batch phase plus each propagation round makes one; see
  /// par::AdaptivePhase and docs/PERFORMANCE.md "Small-batch fast path").
  std::uint64_t chose_serial = 0;
  /// Fused frontier traversals executed (A+B and E+F count one each per
  /// round, on both the serial and the parallel path).
  std::uint64_t fused_passes = 0;

  // --- telemetry (populated only when built with PARCT_STATS; see
  // contraction/telemetry.hpp and docs/OBSERVABILITY.md) ---
  /// Wall-clock seconds per phase, summed over rounds. Index by UpdatePhase.
  double phase_seconds[kNumUpdatePhases] = {};
  /// Wall-clock seconds of the whole apply().
  double total_seconds = 0.0;
  /// |L| + |X| entering each propagation round.
  std::vector<std::uint32_t> affected_per_round;
  /// |NL| of each propagation round.
  std::vector<std::uint32_t> neighborhood_per_round;
  /// 1 for each round that took the serial fast path, 0 otherwise (same
  /// length as affected_per_round; excludes the initial batch phase).
  std::vector<std::uint8_t> serial_per_round;

  // --- allocation discipline (always on — counters are bumped only on
  // the scratch acquire/release paths, a handful per phase; see
  // docs/PERFORMANCE.md "Memory discipline") ---
  /// Workspace activity of this apply(): scratch leases served from the
  /// pool (hits) vs heap-allocated (misses), fresh bytes, and capacity
  /// growths of the reused destination vectors. An allocation-free
  /// steady-state apply has ws_misses == 0 && ws_container_growths == 0.
  std::uint64_t ws_acquires = 0;
  std::uint64_t ws_hits = 0;
  std::uint64_t ws_misses = 0;
  std::uint64_t ws_bytes_allocated = 0;
  std::uint64_t ws_container_growths = 0;
  std::uint64_t ws_container_bytes = 0;
};

/// Applies batches of changes to a ContractionForest in place. Holds O(n)
/// scratch so that individual updates cost work proportional to the
/// affected region only — construct one updater per structure and reuse it
/// (the paper's implementation preallocates all memory, §4).
class DynamicUpdater {
 public:
  explicit DynamicUpdater(ContractionForest& c);

  DynamicUpdater(const DynamicUpdater&) = delete;
  DynamicUpdater& operator=(const DynamicUpdater&) = delete;

  /// ModifyContraction (paper Fig. 3). Preconditions as in the paper: V-
  /// present, V+ fresh, E- existing edges, E+ new edges between
  /// present-after-edit vertices, every edge incident to V- listed in E-,
  /// and the edited graph is a bounded-degree forest (use
  /// forest::check_change_set to verify). Not thread-safe with respect to
  /// concurrent reads of the structure.
  UpdateStats apply(const forest::ChangeSet& m, EventHooks* hooks = nullptr);

  ContractionForest& structure() { return c_; }

 private:
  void grow_scratch();
  /// One round of Propagate (paper Fig. 4); consumes lset_/xset_ and
  /// replaces them with the next round's sets. serial_t0/serial_open carry
  /// one phase_seconds[kPhaseSerial] bracket across *consecutive* serial
  /// rounds: small updates whose every round is sub-cutover pay two clock
  /// reads total instead of two per round (apply() closes the bracket).
  void propagate(std::uint32_t i, EventHooks* hooks, UpdateStats& stats,
                 StatsTimePoint& serial_t0, bool& serial_open);

  /// assign(n, fill) with capacity growth recorded in the workspace stats,
  /// so the steady-state allocation check covers the claim buffers too.
  template <typename T>
  void assign_tracked(std::vector<T>& v, std::size_t n, const T& fill) {
    if (n > v.capacity()) {
      ws_.note_container_growth((n - v.capacity()) * sizeof(T));
    }
    v.assign(n, fill);
  }

  // claim_ is deliberately *not* shadow-instrumented: competing CAS claims
  // of one vertex are commutative (exactly one winner, and the resulting
  // claimed-set is schedule-independent), so they are not determinacy
  // races even though they contend. The detector instead checks what the
  // winners go on to write (cand_ slots, record cells).
  bool try_claim(VertexId v, std::uint64_t epoch) {
    std::uint64_t old = claim_[v].load(std::memory_order_relaxed);
    if (old == epoch) return false;
    return claim_[v].compare_exchange_strong(old, epoch,
                                             std::memory_order_relaxed);
  }
  bool claimed(VertexId v, std::uint64_t epoch) const {
    return claim_[v].load(std::memory_order_relaxed) == epoch;
  }

  bool in_l(VertexId v) const {
    PARCT_SHADOW_READ(
        analysis::scratch_cell(analysis::ShadowArray::kMarkL, v));
    return mark_l_[v] == epoch_l_;
  }
  /// v affected this round (in L or X) — the membership test of the erase
  /// phase: only edges incident on *affected* vertices are deleted; edges
  /// between unaffected vertices are identical in both forests (Lemma 1)
  /// and must be kept, since their (possibly unaffected, outside-NL)
  /// creators do not re-promote them.
  bool in_lx(VertexId v) const {
    PARCT_SHADOW_READ(
        analysis::scratch_cell(analysis::ShadowArray::kMarkLX, v));
    return mark_lx_[v] == epoch_lx_;
  }
  /// Contraction kind in the *new* forest this round; valid for any vertex
  /// alive in G at round i.
  Kind kind_of(std::uint32_t i, VertexId v) const {
    if (in_l(v)) {
      PARCT_SHADOW_READ(
          analysis::scratch_cell(analysis::ShadowArray::kStatusG, v));
      return static_cast<Kind>(status_g_[v]);
    }
    return c_.classify(i, v);
  }
  bool survives(std::uint32_t i, VertexId v) const {
    return kind_of(i, v) == Kind::kSurvive;
  }

  ContractionForest& c_;
  std::size_t scratch_cap_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> claim_;  // epoch stamps
  std::vector<std::uint64_t> mark_l_;                    // v in current L?
  std::vector<std::uint64_t> mark_lx_;                   // v in L or X?
  std::vector<std::uint8_t> status_g_;   // Kind of L members this round
  std::vector<std::uint8_t> old_leaf_;   // leaf status in F at round i+1
  std::vector<std::uint8_t> new_leaf_;   // leaf status in G at round i+1
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_l_ = 0;
  std::uint64_t epoch_lx_ = 0;
  std::uint64_t epoch_nlx_ = 0;

  std::vector<VertexId> lset_;  // affected, alive in G this round
  std::vector<std::pair<VertexId, std::uint32_t>> xset_;  // (v, G-death)
  std::vector<VertexId> cand_;  // claim-then-pack candidate buffer

  // Reused round pipelines: every per-round set lives in a member whose
  // capacity carries over (swap, never move-assign, so both buffers keep
  // their storage), and all primitive scratch comes from ws_. After the
  // first batch warms the capacities, apply() performs zero heap
  // allocations on the hot path — tracked by the ws_* stats above and
  // enforced by the steady-state CTest (tests/workspace_test.cpp).
  Workspace ws_;                  // scratch arena for the *_into primitives
  std::vector<VertexId> nl_;      // NL of the current round
  std::vector<VertexId> next_l_;  // next round's L (swapped into lset_)
  std::vector<VertexId> flipped_; // parents of leaf-status flips (round 0)
  std::vector<Edge> inserts_;     // E+ sorted by parent (initial phase)
};

/// One-shot convenience wrapper (allocates O(n) scratch per call; prefer a
/// long-lived DynamicUpdater in performance-sensitive code).
UpdateStats modify_contraction(ContractionForest& c,
                               const forest::ChangeSet& m,
                               EventHooks* hooks = nullptr);

}  // namespace parct::contract
