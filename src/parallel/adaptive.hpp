// Size-adaptive execution for change propagation: below a tunable cutover
// the frontier runs inline on the calling thread with zero scheduler
// interaction (no task pushes, no grain computation, no steal traffic).
//
// Why: the update bound O(m log((n+m)/m)) means small batches touch tiny
// per-round frontiers, where fork/join scaffolding dominates the actual
// propagation work ("Parallel Batch-dynamic Trees via Change Propagation",
// Acar et al. 2020, makes the same granularity-control observation). The
// cutover resolves, in precedence order:
//
//   1. a programmatic override (set_serial_cutover — the CLI / harness
//      `--serial-cutover N` plumbing),
//   2. the PARCT_SERIAL_CUTOVER environment variable (strict numeric
//      parse; 0 means always-parallel, SIZE_MAX means always-serial),
//   3. the value auto-calibrated at pool init from a microbenchmark of
//      fork2join overhead (scheduler::initialize), else
//   4. a conservative built-in default.
//
// Race-detection contract: an active SP-bags session takes precedence over
// the cutover — adaptive_for and AdaptivePhase then defer to the regular
// parallel constructs, which model the full logical fork tree (serially,
// at grain 1). The fast path therefore never hides an access from the
// detector: either the session is active and the parallel shape is taken,
// or it is not and the inline loop runs the same annotated body. Workspace
// lease nonces are likewise untouched — sub-cutover phases reach the
// primitives' sequential paths (par::sequential_mode()), the same ones a
// 1-worker pool exercises, which the equivalence suites pin against the
// parallel paths.
#pragma once

#include <cstddef>

#include "parallel/parallel_for.hpp"

namespace parct::par {

/// The active serial cutover: loops/phases over at most this many elements
/// run inline. 0 disables the fast path entirely; SIZE_MAX forces it.
std::size_t serial_cutover();

/// Pins the cutover, overriding the environment and the auto-calibrated
/// value (highest precedence). Used by parct_cli / harness RunOptions.
void set_serial_cutover(std::size_t cutover);

/// Drops a set_serial_cutover override; the env / calibrated / default
/// resolution applies again.
void clear_serial_cutover();

namespace adaptive_detail {
/// Re-derives the auto-calibrated cutover for a pool of `num_workers`
/// workers by timing fork2join overhead against a trivial serial loop.
/// Called by scheduler::initialize() after the pool is up; ~100 µs. A
/// no-op (falls back to the built-in default) for 1-worker pools and under
/// an active detection session.
void recalibrate_serial_cutover(unsigned num_workers);

/// The last calibrated value, or 0 if calibration has not run (tests).
std::size_t calibrated_serial_cutover();
}  // namespace adaptive_detail

/// True if a phase over `n` elements should run inline on the calling
/// thread. Never true under an active SP-bags session (the detector needs
/// the parallel shape).
inline bool adaptive_serial(std::size_t n) {
  return !race_detect_forced() && n <= serial_cutover();
}

/// parallel_for with the sub-cutover fast path: below the cutover (or under
/// an enclosing SerialScope) the body runs as a plain loop with zero
/// scheduler interaction; above it, defers to parallel_for unchanged.
/// Under an active detection session always defers (grain-1 fork-tree
/// modeling).
template <typename F>
void adaptive_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t grain = 0) {
  if (hi <= lo) return;
  if (race_detect_forced()) {
    parallel_for(lo, hi, f, grain);
    return;
  }
  if (scheduler::serial_forced() || hi - lo <= serial_cutover()) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  parallel_for(lo, hi, f, grain);
}

/// RAII: one serial-vs-parallel decision for a whole phase (a propagation
/// round, a contraction round). When the frontier is below the cutover the
/// scope forces serial execution on the calling thread for its extent —
/// every nested parallel_for / fork2join / *_into primitive degenerates to
/// its sequential path without touching the pool. Unlike
/// scheduler::SerialScope this does not fire the kSerialHandoff fault site:
/// the phase never leaves the calling thread, so there is no handoff to
/// perturb (and a chaos stall per sub-cutover round would be pure noise).
class AdaptivePhase {
 public:
  explicit AdaptivePhase(std::size_t frontier)
      : serial_(adaptive_serial(frontier)) {
    if (serial_) scheduler::detail::enter_serial();
  }
  ~AdaptivePhase() {
    if (serial_) scheduler::detail::exit_serial();
  }
  AdaptivePhase(const AdaptivePhase&) = delete;
  AdaptivePhase& operator=(const AdaptivePhase&) = delete;

  /// True if this phase chose the inline serial path (telemetry:
  /// UpdateStats/ConstructStats::chose_serial).
  bool serial() const { return serial_; }

 private:
  bool serial_;
};

/// Function form: runs `body()` under an AdaptivePhase(frontier) and
/// returns whether the serial path was chosen.
template <typename Body>
bool adaptive_phase(std::size_t frontier, Body&& body) {
  AdaptivePhase phase(frontier);
  body();
  return phase.serial();
}

}  // namespace parct::par
