// Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005), with the C11
// memory orderings of Lê et al., PPoPP 2013 ("Correct and efficient
// work-stealing for weak memory models").
//
// The owner pushes and pops at the bottom; thieves steal from the top.
// Elements are raw pointers; the deque never owns what it stores.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/tsan.hpp"

namespace parct::par {

/// A lock-free single-owner, multi-thief deque of `T*`.
///
/// Thread-safety contract: `push_bottom` and `pop_bottom` may only be called
/// by the owning worker thread; `steal_top` may be called by any thread.
template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::int64_t initial_capacity = 64)
      : top_(0), bottom_(0), buffer_(new Buffer(initial_capacity)) {
    assert((initial_capacity & (initial_capacity - 1)) == 0 &&
           "capacity must be a power of two");
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    Buffer* b = buffer_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Buffer* prev = b->prev;
      delete b;
      b = prev;
    }
  }

  /// Owner only. Pushes `item` at the bottom.
  void push_bottom(T* item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    detail::fence(std::memory_order_release);
    bottom_.store(b + 1, detail::mo(std::memory_order_relaxed,
                                    std::memory_order_release));
  }

  /// Owner only. Pops from the bottom; returns nullptr if empty.
  T* pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, detail::mo(std::memory_order_relaxed,
                                std::memory_order_seq_cst));
    detail::fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(detail::mo(std::memory_order_relaxed,
                                          std::memory_order_seq_cst));
    if (t > b) {
      // Deque was empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost the race
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Steals from the top; returns nullptr if empty or the
  /// steal raced and lost.
  T* steal_top() {
    std::int64_t t = top_.load(detail::mo(std::memory_order_acquire,
                                          std::memory_order_seq_cst));
    detail::fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(detail::mo(std::memory_order_acquire,
                                             std::memory_order_seq_cst));
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T* item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  /// Approximate size; safe to call from any thread, result is advisory.
  std::int64_t size_estimate() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]),
          prev(nullptr) {}
    ~Buffer() { delete[] slots; }

    T* get(std::int64_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* item) {
      slots[i & mask].store(item, std::memory_order_relaxed);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::atomic<T*>* slots;
    Buffer* prev;  // retired predecessor, reclaimed at deque destruction
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Old buffers may still be referenced by in-flight thieves, so chain
    // them for deferred reclamation instead of deleting here.
    bigger->prev = old;
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_;
  alignas(64) std::atomic<std::int64_t> bottom_;
  alignas(64) std::atomic<Buffer*> buffer_;
};

}  // namespace parct::par
