// Capability-annotated concurrency primitives: the one place in src/ that
// is allowed to spell `std::mutex` (enforced by the `raw-mutex` rule of
// tools/lint_parallel.py).
//
// Clang Thread Safety Analysis (-Werror=thread-safety, the `thread-safety`
// CI job — docs/STATIC_ANALYSIS.md §3) checks lock discipline at compile
// time: every member annotated PARCT_GUARDED_BY(mu) may only be touched
// while `mu` is held, every method annotated PARCT_REQUIRES(mu) may only
// be called with `mu` held, and the RAII MutexLock proves acquisition to
// the analysis. On compilers without the attributes (GCC) the macros
// expand to nothing and the wrappers degrade to exactly the std types
// they hold — zero overhead, zero behavior change.
//
// Discipline conventions for this codebase:
//   * state and its mutex live side by side; the declaration order is
//     mutex first, then the members it guards, each PARCT_GUARDED_BY;
//   * condition waits are explicit `while (!cond()) cv.wait(lk);` loops
//     over PARCT_REQUIRES-annotated predicate methods — never predicate
//     lambdas, which the analysis treats as unannotated functions and
//     would flag for touching guarded state;
//   * public entry points that take a lock internally are annotated
//     PARCT_EXCLUDES(mu) so a re-entrant call from a REQUIRES(mu) context
//     becomes a compile error (self-deadlock caught statically);
//   * deliberately unchecked accesses (quiescent single-threaded phases)
//     carry PARCT_NO_THREAD_SAFETY_ANALYSIS *on the narrowest function
//     possible*, with a comment giving the argument.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only: GCC's __attribute__ namespace does not
// implement the thread-safety attributes (it warns "attribute ignored"),
// so everything is compiled away there and the analysis runs in the
// dedicated Clang CI job.
#if defined(__clang__)
#define PARCT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PARCT_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable). Applied to class
/// declarations: `class PARCT_CAPABILITY("mutex") Mutex { ... };`.
#define PARCT_CAPABILITY(x) PARCT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PARCT_SCOPED_CAPABILITY PARCT_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding the named capability.
#define PARCT_GUARDED_BY(x) PARCT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be dereferenced while holding
/// the named capability (the pointer itself is unguarded).
#define PARCT_PT_GUARDED_BY(x) PARCT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capabilities to be held on entry (and does not
/// release them).
#define PARCT_REQUIRES(...) \
  PARCT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define PARCT_ACQUIRE(...) \
  PARCT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities (which must be held on entry).
#define PARCT_RELEASE(...) \
  PARCT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (the function acquires them
/// itself — catches self-deadlock at compile time).
#define PARCT_EXCLUDES(...) PARCT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents (and, under -Wthread-safety-beta, checks) a global
/// acquisition order between two capabilities.
#define PARCT_ACQUIRED_BEFORE(...) \
  PARCT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PARCT_ACQUIRED_AFTER(...) \
  PARCT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define PARCT_RETURN_CAPABILITY(x) PARCT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's accesses are deliberately not analyzed.
/// Every use carries a comment explaining why the unchecked access is
/// sound (typically: a quiescent phase where no other thread can hold a
/// reference, e.g. post-join accessors).
#define PARCT_NO_THREAD_SAFETY_ANALYSIS \
  PARCT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace parct {

class CondVar;

/// std::mutex with the capability attribute: the analysis can now track
/// which members are guarded by which instance.
class PARCT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARCT_ACQUIRE() { mu_.lock(); }
  void unlock() PARCT_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped acquisition of a parct::Mutex — the annotated replacement
/// for both std::lock_guard and std::unique_lock in this codebase. Holds
/// the lock for its full scope (no early unlock: every current user
/// releases by scope exit, and a narrower contract keeps the analysis
/// exact). Condition waits go through parct::CondVar, which releases and
/// reacquires internally — the capability is held again whenever control
/// is back in the caller, so the static picture stays truthful.
class PARCT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PARCT_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() PARCT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over parct::Mutex. Waits take the open
/// MutexLock; use explicit re-check loops over PARCT_REQUIRES-annotated
/// predicates (see the header comment) rather than predicate lambdas.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases lk's mutex, blocks, reacquires before returning.
  void wait(MutexLock& lk) { cv_.wait(lk.lk_); }

  /// wait(), but returns std::cv_status::timeout if `deadline` passes
  /// first. The mutex is reacquired before returning either way.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lk, const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lk.lk_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace parct
