#include "parallel/adaptive.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "parallel/fork_join.hpp"

namespace parct::par {

namespace {

// Fallback when neither an override, the environment, nor calibration has
// decided: small enough that genuinely parallel-profitable frontiers stay
// parallel on any plausible machine, large enough to cover the tail rounds
// of small-batch propagation.
constexpr std::size_t kDefaultSerialCutover = 1024;

// Calibration clamp: below kMinCalibrated the fast path would miss the
// very rounds it exists for; above kMaxCalibrated a noisy fork measurement
// (e.g. a descheduled worker) would serialize work that scales.
constexpr std::size_t kMinCalibrated = 64;
constexpr std::size_t kMaxCalibrated = std::size_t{1} << 15;

std::atomic<bool> g_has_override{false};
std::atomic<std::size_t> g_override{0};
std::atomic<std::size_t> g_calibrated{0};  // 0 = calibration has not run

struct EnvCutover {
  bool set = false;
  std::size_t value = 0;
};

// Strict parse (strtoull, reject sign/trailing garbage/range errors), same
// policy as PARCT_NUM_THREADS: a malformed value is ignored, not truncated.
EnvCutover read_env_cutover() {
  EnvCutover e;
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("PARCT_SERIAL_CUTOVER");
  if (env == nullptr || *env == '\0' || *env == '-' || *env == '+') return e;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') return e;
  e.set = true;
  e.value = static_cast<std::size_t>(
      std::min<unsigned long long>(v, SIZE_MAX));
  return e;
}

const EnvCutover& env_cutover() {
  static const EnvCutover e = read_env_cutover();
  return e;
}

// Keeps the compiler from folding the calibration loop to a closed form.
// The `volatile` here is the asm qualifier (do-not-elide), not
// volatile-as-synchronization on shared state.
// parct-lint: allow(volatile-sync) reason: asm qualifier, no shared state
inline void opaque_sink(std::uint64_t& v) { asm volatile("" : "+r"(v)); }

}  // namespace

std::size_t serial_cutover() {
  if (g_has_override.load(std::memory_order_acquire)) {
    return g_override.load(std::memory_order_relaxed);
  }
  const EnvCutover& env = env_cutover();
  if (env.set) return env.value;
  const std::size_t cal = g_calibrated.load(std::memory_order_relaxed);
  return cal != 0 ? cal : kDefaultSerialCutover;
}

void set_serial_cutover(std::size_t cutover) {
  g_override.store(cutover, std::memory_order_relaxed);
  g_has_override.store(true, std::memory_order_release);
}

void clear_serial_cutover() {
  g_has_override.store(false, std::memory_order_release);
}

namespace adaptive_detail {

std::size_t calibrated_serial_cutover() {
  return g_calibrated.load(std::memory_order_relaxed);
}

void recalibrate_serial_cutover(unsigned num_workers) {
  // 1-worker pools run everything serially anyway, and an active detection
  // session would measure the serialized fork shape — both cases keep the
  // built-in default.
  if (num_workers <= 1 || race_detect_forced()) {
    g_calibrated.store(0, std::memory_order_relaxed);
    return;
  }
  using Clock = std::chrono::steady_clock;

  // Per-iteration cost of a trivial loop body (the unit the cutover is
  // denominated in).
  constexpr std::size_t kIters = std::size_t{1} << 15;
  std::uint64_t acc = 0x9E3779B97F4A7C15ull;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    acc += i ^ (acc >> 7);
    opaque_sink(acc);
  }
  const auto t1 = Clock::now();

  // Amortized fork2join overhead, including the push/pop/wake traffic a
  // real sub-cutover parallel_for would pay.
  constexpr std::size_t kForks = 256;
  for (std::size_t k = 0; k < kForks; ++k) {
    fork2join([] {}, [] {});
  }
  const auto t2 = Clock::now();

  const double per_iter =
      std::chrono::duration<double>(t1 - t0).count() / kIters;
  const double per_fork =
      std::chrono::duration<double>(t2 - t1).count() / kForks;
  if (per_iter <= 0.0 || per_fork <= 0.0) {
    g_calibrated.store(0, std::memory_order_relaxed);
    return;
  }
  // Break-even model: a grain-balanced parallel_for over n spawns ~8P
  // forks (default_grain), so serial wins while
  //   n * per_iter < 8P * per_fork + (n / P) * per_iter.
  // Solving for n and clamping gives the cutover. Real phase bodies are
  // heavier than the trivial iteration, which biases the estimate high —
  // acceptable, since serializing a medium frontier costs little span
  // while forking a tiny one costs a lot of latency.
  const double p = static_cast<double>(num_workers);
  const double n_star = 8.0 * p * per_fork / (per_iter * (1.0 - 1.0 / p));
  const std::size_t cut = static_cast<std::size_t>(
      std::clamp(n_star, static_cast<double>(kMinCalibrated),
                 static_cast<double>(kMaxCalibrated)));
  g_calibrated.store(cut, std::memory_order_relaxed);
}

}  // namespace adaptive_detail

}  // namespace parct::par
