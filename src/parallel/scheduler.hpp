// Fork-join work-stealing scheduler: the substrate the paper's algorithms
// run on (a stand-in for PASL [Acar et al.]).
//
// Design: one Chase-Lev deque per worker. `fork2join(f1, f2)` pushes a
// handle for f2, runs f1 inline, and then either pops f2 back (fast path,
// never stolen) or helps by stealing until f2 completes. Idle workers park
// on a condition variable after a bounded number of failed steals, so a
// quiescent pool burns no CPU.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>

namespace parct {
class Workspace;  // primitives/workspace.hpp
}  // namespace parct

namespace parct::par {

/// A unit of stealable work. Stack-allocated inside fork2join; the deque
/// stores raw pointers to these.
class Task {
 public:
  virtual ~Task() = default;

  /// Runs the task body, records any exception, and publishes completion.
  void run() noexcept {
    try {
      execute();
    } catch (...) {
      exception_ = std::current_exception();
    }
    finished_.store(true, std::memory_order_release);
  }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Rethrows the exception captured during `run`, if any. Join-side only.
  void rethrow_if_failed() {
    if (exception_) std::rethrow_exception(exception_);
  }

 protected:
  virtual void execute() = 0;

 private:
  std::atomic<bool> finished_{false};
  std::exception_ptr exception_;
};

template <typename F>
class ClosureTask final : public Task {
 public:
  explicit ClosureTask(F& f) : f_(f) {}

 protected:
  void execute() override { f_(); }

 private:
  F& f_;
};

namespace scheduler {

/// Starts (or restarts) the pool with `num_workers` total workers, counting
/// the calling thread as worker 0. `num_workers == 0` means "use
/// PARCT_NUM_THREADS if set, else hardware_concurrency". `steal_seed`
/// perturbs the per-worker victim-selection RNGs so differential tests can
/// explore different steal orders from a single seed; 0 means the default
/// deterministic scheme. Idempotent when (count, steal_seed) is unchanged;
/// restarting with a *different* configuration from inside a parallel
/// region throws std::logic_error (tasks may be in flight on the deques
/// about to be destroyed).
void initialize(unsigned num_workers = 0, std::uint64_t steal_seed = 0);

/// Tears the pool down (joins helper threads). Called automatically at
/// exit. Throws std::logic_error from inside a parallel region.
void shutdown();

/// Number of workers in the active pool (>= 1). Starts the pool on first use.
unsigned num_workers();

/// Number of workers the pool has — or *would* have, if not started yet
/// (PARCT_NUM_THREADS / hardware_concurrency). Never starts the pool, so
/// grain heuristics can be computed before initialization without the
/// side effect of spinning up a default-sized pool.
unsigned configured_workers();

/// True if the pool is currently running (initialize() was called, or some
/// first-use path started it, and shutdown() has not torn it down).
bool initialized();

/// Steal-order seed of the active pool (0 = default scheme). Starts the
/// pool on first use.
std::uint64_t steal_seed();

/// Index of the calling worker in [0, num_workers()), or 0 for the main
/// thread outside any pool.
unsigned worker_id();

/// True if the calling thread is inside a task or an open fork-join region
/// (i.e. stack-allocated tasks of this thread may be live on the deques).
bool in_parallel_region();

/// True while the calling thread has an open SerialScope: every fork-join
/// construct degenerates to a plain sequential call on this thread and
/// never touches the pool (no task pushes, no pool start).
bool serial_forced();

/// RAII: forces all parallel constructs opened by the calling thread to run
/// serially, without interacting with the work-stealing pool at all.
///
/// This is what lets a *second* external thread run pool-free work (e.g.
/// the serving layer's update thread executing DynamicUpdater::apply while
/// worker 0 fans out queries): the scheduler maps every non-pool thread
/// onto worker 0's deque, so two external threads forking concurrently
/// would race on that deque — under a SerialScope the thread never forks.
/// Nestable; an active SP-bags detection session takes precedence (the
/// detector needs the logical fork tree, which it executes serially
/// anyway).
class SerialScope {
 public:
  SerialScope();
  ~SerialScope();
  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;
};

/// The calling worker's scratch pool (primitives/workspace.hpp). One
/// Workspace per pool thread (thread-local, so the main thread outside any
/// pool gets one too): parallel phases that need scratch on their own
/// slice lease from their worker's pool and never contend on a shared
/// allocator. The allocating primitive shims (prim::pack & co.) draw their
/// block-offset scratch from here, which is what makes repeated calls
/// allocation-free in steady state. Blocks leased from one worker's pool
/// must be released on the same worker (the Lease must not be moved across
/// tasks).
Workspace& worker_workspace();

// --- internal API used by fork_join.hpp / adaptive.hpp ---
namespace detail {
/// Raw serial-mode entry/exit: what SerialScope does, minus the
/// kSerialHandoff fault site. Used by par::AdaptivePhase, which may open
/// one per sub-cutover propagation round on the *calling* thread — there
/// is no cross-thread handoff to perturb, and a chaos stall per tiny round
/// would be noise, not coverage. Must be balanced (RAII callers only).
void enter_serial() noexcept;
void exit_serial() noexcept;

/// RAII marker: the calling thread has stack-allocated tasks in flight, so
/// in_parallel_region() holds for the scope and pool re-initialization is
/// refused. fork_join.hpp opens one per multi-worker fork2join.
struct RegionScope {
  RegionScope();
  ~RegionScope();
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;
};

/// All of the functions below start the pool on first use.
void push_task(Task* t);
/// Tries to pop the owner's most recent task; returns nullptr if it was
/// stolen (or the deque is empty).
Task* pop_task();
/// Steals and runs at most one task from some victim; returns true if a
/// task was executed.
bool steal_and_run_one();
/// Busy-helps until `t` is finished: steals and runs other tasks, yielding
/// between failed attempts.
void wait_for(Task* t);
}  // namespace detail

}  // namespace scheduler
}  // namespace parct::par
