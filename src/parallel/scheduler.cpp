#include "parallel/scheduler.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_injection.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/capability.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/chase_lev_deque.hpp"
#include "primitives/workspace.hpp"
#include "parallel/stats.hpp"
#include "parallel/tsan.hpp"

namespace parct::par::scheduler {
namespace {

struct alignas(64) WorkerState {
  ChaseLevDeque<Task> deque;
  std::uint64_t rng_state = 0;  // victim-selection RNG, owner thread only
  // Runtime counters (parct::par::stats). Owner-incremented with relaxed
  // atomics so concurrent snapshot reads are race-free.
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> parks{0};
};

struct Pool {
  Pool(unsigned n, std::uint64_t seed) : steal_seed(seed), workers(n) {
    for (unsigned i = 0; i < n; ++i) {
      workers[i] = std::make_unique<WorkerState>();
      // seed == 0 keeps the historical deterministic scheme; a nonzero
      // steal seed reshuffles every worker's victim order (the xorshift
      // state must stay nonzero).
      std::uint64_t s =
          seed == 0 ? 0x9E3779B97F4A7C15ull * (i + 1) + 1
                    : hashing::mix64(seed + 0x9E3779B97F4A7C15ull * (i + 1));
      if (s == 0) s = i + 1;
      workers[i]->rng_state = s;
    }
  }

  const std::uint64_t steal_seed;
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<std::thread> threads;  // helpers for workers 1..n-1

  std::atomic<bool> shutting_down{false};
  std::atomic<std::uint64_t> work_signal{0};
  std::atomic<int> sleepers{0};
  std::atomic<std::uint64_t> wakeups{0};
  // mu guards no data: it exists only for cv's wait protocol. The wake
  // condition is carried by the atomics above (work_signal/shutting_down),
  // re-checked in worker_loop's explicit wait loop.
  Mutex mu;
  CondVar cv;

  unsigned size() const { return static_cast<unsigned>(workers.size()); }
};

// Lifecycle: g_pool is an atomic pointer so lazy first-use initialization
// from any thread is race-free; g_lifecycle_mu serializes
// initialize/shutdown themselves.
std::atomic<Pool*> g_pool{nullptr};
Mutex g_lifecycle_mu;

// tl_pool tags which pool tl_worker_id belongs to: after a re-initialize,
// surviving threads carry ids from the old pool, and self_id() must not
// use them to index the new (possibly smaller) worker array.
thread_local unsigned tl_worker_id = 0;
thread_local const Pool* tl_pool = nullptr;
thread_local bool tl_in_task = false;
thread_local int tl_region_depth = 0;
thread_local int tl_serial_depth = 0;

unsigned self_id(const Pool& pool) {
  return tl_pool == &pool ? tl_worker_id : 0;
}

std::uint64_t next_random(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Attempts one steal sweep over all other workers in random order.
// Returns the stolen task or nullptr.
Task* try_steal(Pool& pool, unsigned self) {
  // Fault site: a slow/descheduled thief. Stalling here delays work
  // redistribution without changing what gets executed — the degradation
  // the serving layer's unhealthy-pool fallback is built for.
  PARCT_FAULT_STALL(fault::Site::kSchedulerSteal);
  const unsigned n = pool.size();
  if (n <= 1) return nullptr;
  std::uint64_t& rng = pool.workers[self]->rng_state;
  const unsigned start = static_cast<unsigned>(next_random(rng) % n);
  for (unsigned k = 0; k < n; ++k) {
    unsigned victim = start + k;
    if (victim >= n) victim -= n;
    if (victim == self) continue;
    if (Task* t = pool.workers[victim]->deque.steal_top()) {
      pool.workers[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void run_task(WorkerState& ws, Task* t) {
  ws.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  bool saved = tl_in_task;
  tl_in_task = true;
  t->run();
  tl_in_task = saved;
}

// Main loop of helper workers (ids 1..n-1).
void worker_loop(Pool* pool, unsigned id) {
  tl_worker_id = id;
  tl_pool = pool;
  WorkerState& self = *pool->workers[id];
  constexpr int kSpinAttempts = 64;
  while (!pool->shutting_down.load(std::memory_order_acquire)) {
    if (Task* t = try_steal(*pool, id)) {
      run_task(self, t);
      // Drain our own deque: stolen tasks may have forked children.
      while (Task* own = self.deque.pop_bottom()) run_task(self, own);
      continue;
    }
    // Back off: spin a bit, then park until new work is signalled.
    bool found = false;
    for (int i = 0; i < kSpinAttempts; ++i) {
      std::this_thread::yield();
      if (Task* t = try_steal(*pool, id)) {
        run_task(self, t);
        while (Task* own = self.deque.pop_bottom()) run_task(self, own);
        found = true;
        break;
      }
    }
    if (found) continue;

    std::uint64_t sig = pool->work_signal.load(std::memory_order_seq_cst);
    pool->sleepers.fetch_add(1, std::memory_order_seq_cst);
    par::detail::fence(std::memory_order_seq_cst);
    // Final sweep after registering as a sleeper (pairs with the fence in
    // push_task) so a concurrent push cannot be missed.
    if (Task* t = try_steal(*pool, id)) {
      pool->sleepers.fetch_sub(1, std::memory_order_seq_cst);
      run_task(self, t);
      while (Task* own = self.deque.pop_bottom()) run_task(self, own);
      continue;
    }
    self.parks.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lk(pool->mu);
      while (!(pool->shutting_down.load(std::memory_order_acquire) ||
               pool->work_signal.load(std::memory_order_seq_cst) != sig)) {
        pool->cv.wait(lk);
      }
    }
    pool->sleepers.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void wake_sleepers(Pool& pool) {
  pool.work_signal.fetch_add(1, std::memory_order_seq_cst);
  par::detail::fence(std::memory_order_seq_cst);
  if (pool.sleepers.load(std::memory_order_seq_cst) > 0) {
    pool.wakeups.fetch_add(1, std::memory_order_relaxed);
    MutexLock lk(pool.mu);
    pool.cv.notify_all();
  }
}

void destroy_pool(Pool* pool) {
  if (pool == nullptr) return;
  pool->shutting_down.store(true, std::memory_order_release);
  {
    MutexLock lk(pool->mu);
    pool->cv.notify_all();
  }
  for (auto& t : pool->threads) t.join();
  delete pool;
}

// Sanity cap on PARCT_NUM_THREADS: well above any real machine, low
// enough that a typo cannot ask for millions of threads.
constexpr long kMaxWorkerCount = 1024;

unsigned default_worker_count() {
  // getenv is called once, before any workers exist, and nothing in this
  // process calls setenv — the concurrency-mt-unsafe hit does not apply.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PARCT_NUM_THREADS")) {
    // strtol (not atoi): trailing garbage and out-of-range values must be
    // rejected, not silently truncated — "4x" or "99999999999" falling
    // back to the hardware count beats running with a nonsense pool size.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (errno == 0 && end != env && *end == '\0' && v >= 1 &&
        v <= kMaxWorkerCount) {
      return static_cast<unsigned>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct PoolGuard {
  ~PoolGuard() {
    MutexLock lk(g_lifecycle_mu);
    destroy_pool(g_pool.exchange(nullptr, std::memory_order_acq_rel));
  }
} g_pool_guard;

/// The active pool, started on first use (lazy init from any thread).
Pool& ensure_pool() {
  Pool* p = g_pool.load(std::memory_order_acquire);
  if (p == nullptr) {
    initialize();
    p = g_pool.load(std::memory_order_acquire);
  }
  return *p;
}

}  // namespace

void initialize(unsigned num_workers, std::uint64_t steal_seed) {
  if (num_workers == 0) num_workers = default_worker_count();
  auto matches = [&](const Pool* p) {
    return p != nullptr && p->size() == num_workers &&
           p->steal_seed == steal_seed;
  };
  if (matches(g_pool.load(std::memory_order_acquire))) return;  // idempotent
  if (in_parallel_region()) {
    // Tearing down the pool here would destroy deques that may still hold
    // live stack-allocated tasks of enclosing fork-join regions.
    throw std::logic_error(
        "parct: scheduler::initialize(n) with a new configuration called "
        "from inside a parallel region");
  }
  MutexLock lk(g_lifecycle_mu);
  if (matches(g_pool.load(std::memory_order_acquire))) return;
  destroy_pool(g_pool.exchange(nullptr, std::memory_order_acq_rel));
  Pool* next = new Pool(num_workers, steal_seed);
  tl_worker_id = 0;  // calling thread is worker 0
  tl_pool = next;
  for (unsigned i = 1; i < num_workers; ++i) {
    next->threads.emplace_back(worker_loop, next, i);
  }
  g_pool.store(next, std::memory_order_release);
  // Re-derive the adaptive serial cutover against this pool's real
  // fork2join overhead (~100 µs microbenchmark; no-op for 1-worker pools).
  // Runs after the store so the fork2joins below find the pool, and still
  // under g_lifecycle_mu so no concurrent initialize/shutdown can destroy
  // it mid-measurement.
  adaptive_detail::recalibrate_serial_cutover(num_workers);
}

void shutdown() {
  if (in_parallel_region()) {
    throw std::logic_error(
        "parct: scheduler::shutdown() called from inside a parallel region");
  }
  MutexLock lk(g_lifecycle_mu);
  destroy_pool(g_pool.exchange(nullptr, std::memory_order_acq_rel));
}

unsigned num_workers() { return ensure_pool().size(); }

unsigned configured_workers() {
  const Pool* p = g_pool.load(std::memory_order_acquire);
  return p != nullptr ? p->size() : default_worker_count();
}

bool initialized() {
  return g_pool.load(std::memory_order_acquire) != nullptr;
}

std::uint64_t steal_seed() { return ensure_pool().steal_seed; }

unsigned worker_id() {
  const Pool* p = g_pool.load(std::memory_order_acquire);
  return p != nullptr && tl_pool == p ? tl_worker_id : 0;
}

bool in_parallel_region() { return tl_in_task || tl_region_depth > 0; }

bool serial_forced() { return tl_serial_depth > 0; }

SerialScope::SerialScope() {
  // Fault site: a delayed handoff to the pool-free serial path (e.g. the
  // serving layer's overlapped update thread starting late).
  PARCT_FAULT_STALL(fault::Site::kSerialHandoff);
  ++tl_serial_depth;
}
SerialScope::~SerialScope() { --tl_serial_depth; }

Workspace& worker_workspace() {
  // One pool per thread: pool threads (the workers) each get their own,
  // and so does any plain thread calling the allocating primitive shims.
  // Freed with the thread, i.e. at pool shutdown for workers.
  static thread_local Workspace ws;
  return ws;
}

namespace detail {

RegionScope::RegionScope() { ++tl_region_depth; }
RegionScope::~RegionScope() { --tl_region_depth; }

void enter_serial() noexcept { ++tl_serial_depth; }
void exit_serial() noexcept { --tl_serial_depth; }

void push_task(Task* t) {
  Pool& pool = ensure_pool();
  pool.workers[self_id(pool)]->deque.push_bottom(t);
  wake_sleepers(pool);
}

Task* pop_task() {
  Pool& pool = ensure_pool();
  return pool.workers[self_id(pool)]->deque.pop_bottom();
}

bool steal_and_run_one() {
  Pool& pool = ensure_pool();
  const unsigned self = self_id(pool);
  if (Task* t = try_steal(pool, self)) {
    run_task(*pool.workers[self], t);
    return true;
  }
  return false;
}

void wait_for(Task* t) {
  Pool& pool = ensure_pool();
  const unsigned self = self_id(pool);
  WorkerState& ws = *pool.workers[self];
  while (!t->finished()) {
    // Help: run anything forked locally by tasks we ran while waiting,
    // then try to steal from others.
    if (Task* own = ws.deque.pop_bottom()) {
      run_task(ws, own);
      continue;
    }
    if (Task* stolen = try_steal(pool, self)) {
      run_task(ws, stolen);
      continue;
    }
    std::this_thread::yield();
  }
}

}  // namespace detail
}  // namespace parct::par::scheduler

namespace parct::par::stats {

PoolCounters snapshot() {
  scheduler::Pool& pool = scheduler::ensure_pool();
  PoolCounters out;
  out.num_workers = pool.size();
  out.wakeups = pool.wakeups.load(std::memory_order_relaxed);
  out.workers.resize(pool.size());
  for (unsigned i = 0; i < pool.size(); ++i) {
    const scheduler::WorkerState& ws = *pool.workers[i];
    WorkerCounters& w = out.workers[i];
    w.steals = ws.steals.load(std::memory_order_relaxed);
    w.tasks_executed = ws.tasks_executed.load(std::memory_order_relaxed);
    w.parks = ws.parks.load(std::memory_order_relaxed);
    out.steals += w.steals;
    out.tasks_executed += w.tasks_executed;
    out.parks += w.parks;
  }
  return out;
}

void reset() {
  scheduler::Pool& pool = scheduler::ensure_pool();
  pool.wakeups.store(0, std::memory_order_relaxed);
  for (unsigned i = 0; i < pool.size(); ++i) {
    scheduler::WorkerState& ws = *pool.workers[i];
    ws.steals.store(0, std::memory_order_relaxed);
    ws.tasks_executed.store(0, std::memory_order_relaxed);
    ws.parks.store(0, std::memory_order_relaxed);
  }
}

}  // namespace parct::par::stats
