#include "parallel/scheduler.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "parallel/chase_lev_deque.hpp"

namespace parct::par::scheduler {
namespace {

struct alignas(64) WorkerState {
  ChaseLevDeque<Task> deque;
  std::uint64_t rng_state = 0;  // victim-selection RNG, owner thread only
};

struct Pool {
  explicit Pool(unsigned n) : workers(n) {
    for (unsigned i = 0; i < n; ++i) {
      workers[i] = std::make_unique<WorkerState>();
      workers[i]->rng_state = 0x9E3779B97F4A7C15ull * (i + 1) + 1;
    }
  }

  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<std::thread> threads;  // helpers for workers 1..n-1

  std::atomic<bool> shutting_down{false};
  std::atomic<std::uint64_t> work_signal{0};
  std::atomic<int> sleepers{0};
  std::atomic<std::uint64_t> steals{0};
  std::mutex mu;
  std::condition_variable cv;

  unsigned size() const { return static_cast<unsigned>(workers.size()); }
};

Pool* g_pool = nullptr;
thread_local unsigned tl_worker_id = 0;
thread_local bool tl_in_task = false;

std::uint64_t next_random(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Attempts one steal sweep over all other workers in random order.
// Returns the stolen task or nullptr.
Task* try_steal(Pool& pool, unsigned self) {
  const unsigned n = pool.size();
  if (n <= 1) return nullptr;
  std::uint64_t& rng = pool.workers[self]->rng_state;
  const unsigned start = static_cast<unsigned>(next_random(rng) % n);
  for (unsigned k = 0; k < n; ++k) {
    unsigned victim = start + k;
    if (victim >= n) victim -= n;
    if (victim == self) continue;
    if (Task* t = pool.workers[victim]->deque.steal_top()) {
      pool.steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void run_task(Task* t) {
  bool saved = tl_in_task;
  tl_in_task = true;
  t->run();
  tl_in_task = saved;
}

// Main loop of helper workers (ids 1..n-1).
void worker_loop(Pool* pool, unsigned id) {
  tl_worker_id = id;
  constexpr int kSpinAttempts = 64;
  while (!pool->shutting_down.load(std::memory_order_acquire)) {
    if (Task* t = try_steal(*pool, id)) {
      run_task(t);
      // Drain our own deque: stolen tasks may have forked children.
      while (Task* own = pool->workers[id]->deque.pop_bottom()) run_task(own);
      continue;
    }
    // Back off: spin a bit, then park until new work is signalled.
    bool found = false;
    for (int i = 0; i < kSpinAttempts; ++i) {
      std::this_thread::yield();
      if (Task* t = try_steal(*pool, id)) {
        run_task(t);
        while (Task* own = pool->workers[id]->deque.pop_bottom())
          run_task(own);
        found = true;
        break;
      }
    }
    if (found) continue;

    std::uint64_t sig = pool->work_signal.load(std::memory_order_seq_cst);
    pool->sleepers.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Final sweep after registering as a sleeper (pairs with the fence in
    // push_task) so a concurrent push cannot be missed.
    if (Task* t = try_steal(*pool, id)) {
      pool->sleepers.fetch_sub(1, std::memory_order_seq_cst);
      run_task(t);
      while (Task* own = pool->workers[id]->deque.pop_bottom()) run_task(own);
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(pool->mu);
      pool->cv.wait(lk, [&] {
        return pool->shutting_down.load(std::memory_order_acquire) ||
               pool->work_signal.load(std::memory_order_seq_cst) != sig;
      });
    }
    pool->sleepers.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void wake_sleepers(Pool& pool) {
  pool.work_signal.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (pool.sleepers.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(pool.mu);
    pool.cv.notify_all();
  }
}

void destroy_pool(Pool* pool) {
  if (pool == nullptr) return;
  pool->shutting_down.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(pool->mu);
    pool->cv.notify_all();
  }
  for (auto& t : pool->threads) t.join();
  delete pool;
}

unsigned default_worker_count() {
  if (const char* env = std::getenv("PARCT_NUM_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct PoolGuard {
  ~PoolGuard() {
    destroy_pool(g_pool);
    g_pool = nullptr;
  }
} g_pool_guard;

}  // namespace

void initialize(unsigned num_workers) {
  if (num_workers == 0) num_workers = default_worker_count();
  if (g_pool != nullptr && g_pool->size() == num_workers) return;
  destroy_pool(g_pool);
  g_pool = new Pool(num_workers);
  tl_worker_id = 0;  // calling thread is worker 0
  for (unsigned i = 1; i < num_workers; ++i) {
    g_pool->threads.emplace_back(worker_loop, g_pool, i);
  }
}

void shutdown() {
  destroy_pool(g_pool);
  g_pool = nullptr;
}

unsigned num_workers() {
  if (g_pool == nullptr) initialize();
  return g_pool->size();
}

unsigned worker_id() { return tl_worker_id; }

bool in_parallel_region() { return tl_in_task; }

namespace detail {

void push_task(Task* t) {
  Pool& pool = *g_pool;
  pool.workers[tl_worker_id]->deque.push_bottom(t);
  wake_sleepers(pool);
}

Task* pop_task() { return g_pool->workers[tl_worker_id]->deque.pop_bottom(); }

bool steal_and_run_one() {
  if (Task* t = try_steal(*g_pool, tl_worker_id)) {
    run_task(t);
    return true;
  }
  return false;
}

void wait_for(Task* t) {
  Pool& pool = *g_pool;
  const unsigned self = tl_worker_id;
  while (!t->finished()) {
    // Help: run anything forked locally by tasks we ran while waiting,
    // then try to steal from others.
    if (Task* own = pool.workers[self]->deque.pop_bottom()) {
      run_task(own);
      continue;
    }
    if (Task* stolen = try_steal(pool, self)) {
      run_task(stolen);
      continue;
    }
    std::this_thread::yield();
  }
}

}  // namespace detail
}  // namespace parct::par::scheduler
