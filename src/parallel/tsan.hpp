// Sanitizer-awareness helpers for the lock-free runtime.
//
// ThreadSanitizer does not model standalone std::atomic_thread_fence (GCC
// even warns via -Wtsan), so fence-based algorithms like the Chase-Lev
// deque produce false positives under TSAN. Under TSAN we therefore
// strengthen the atomic operations adjacent to each fence to seq_cst and
// compile the fence itself out; everywhere else the original (weaker,
// faster) orderings are kept.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define PARCT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARCT_TSAN 1
#endif
#endif
#ifndef PARCT_TSAN
#define PARCT_TSAN 0
#endif

namespace parct::par::detail {

/// Memory order selector: `normal` in regular builds, `tsan` under TSAN.
constexpr std::memory_order mo(std::memory_order normal,
                               std::memory_order tsan) {
  return PARCT_TSAN ? tsan : normal;
}

/// A fence that TSAN builds elide (the neighbouring operations are
/// strengthened to seq_cst instead, via `mo`).
///
/// Soundness (reviewed under the concurrency-* static-analysis pass): the
/// elision only ever happens together with `mo` upgrading the adjacent
/// atomics to seq_cst, and a seq_cst operation on the same object is at
/// least as strong as the fence it replaces in every fence-based proof the
/// deque relies on (Lê et al., "Correct and Efficient Work-Stealing for
/// Weak Memory Models"). Regular builds keep the fence and the weaker
/// orderings — no behaviour change was needed.
inline void fence(std::memory_order order) {
#if PARCT_TSAN
  (void)order;
#else
  std::atomic_thread_fence(order);
#endif
}

}  // namespace parct::par::detail
