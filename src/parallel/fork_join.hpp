// Binary fork-join on top of the work-stealing scheduler.
#pragma once

#include <utility>

#include "analysis/sp_bags.hpp"
#include "parallel/scheduler.hpp"

namespace parct::par {

namespace detail {

// Joins `t`: fast path pops it back off our own deque and runs it inline;
// otherwise it was stolen (or executed early by a nested join) and we help
// until it completes. A popped task that is not `t` belongs to an outer
// fork on this worker's stack and has not started; executing it early is
// safe and implies `t` is already gone from our deque.
inline void join(Task& t) {
  Task* popped = scheduler::detail::pop_task();
  if (popped == &t) {
    t.run();
  } else {
    if (popped != nullptr) popped->run();
    scheduler::detail::wait_for(&t);
  }
  t.rethrow_if_failed();
}

}  // namespace detail

/// Runs f1 and f2, potentially in parallel; returns when both complete.
/// Exceptions from either branch are rethrown (f2's wins if both throw).
template <typename F1, typename F2>
void fork2join(F1&& f1, F2&& f2) {
#if PARCT_RACE_DETECT
  // Under an SP-bags detection session the fork runs serially on the
  // session thread: each branch is a procedure (BranchScope) and the
  // enclosing ForkScope's destructor is the sync. See analysis/sp_bags.hpp.
  if (analysis::spbags::active()) {
    analysis::spbags::ForkScope fork;
    {
      analysis::spbags::BranchScope left;
      f1();
    }
    {
      analysis::spbags::BranchScope right;
      f2();
    }
    return;
  }
#endif
  // serial_forced() first: a SerialScope thread must not touch the pool
  // (num_workers() starts it), let alone push tasks onto worker 0's deque.
  if (scheduler::serial_forced() || scheduler::num_workers() == 1) {
    f1();
    f2();
    return;
  }
  scheduler::detail::RegionScope region;  // blocks pool re-init while t2 lives
  ClosureTask<F2> t2(f2);
  scheduler::detail::push_task(&t2);
  try {
    f1();
  } catch (...) {
    detail::join(t2);  // t2 references our stack; must complete before unwind
    throw;
  }
  detail::join(t2);
}

/// N-ary parallel invocation, balanced binary tree of forks.
template <typename F1>
void parallel_invoke(F1&& f1) {
  f1();
}

template <typename F1, typename F2, typename... Fs>
void parallel_invoke(F1&& f1, F2&& f2, Fs&&... fs) {
  if constexpr (sizeof...(fs) == 0) {
    fork2join(std::forward<F1>(f1), std::forward<F2>(f2));
  } else {
    fork2join([&] { parallel_invoke(std::forward<F1>(f1),
                                    std::forward<F2>(f2)); },
              [&] { parallel_invoke(std::forward<Fs>(fs)...); });
  }
}

}  // namespace parct::par
