// Scheduler observability: a snapshot API over the pool's runtime counters
// (steals, parks, wake-ups, tasks executed per worker). Counters live on
// the scheduler's slow paths (steal sweeps, parking) plus one relaxed
// increment per executed task, so they are always compiled in; the
// heavier per-phase algorithm telemetry is gated separately by the
// PARCT_STATS build flag (see contraction/telemetry.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace parct::par::stats {

struct WorkerCounters {
  /// Tasks this worker stole from some victim's deque.
  std::uint64_t steals = 0;
  /// Tasks this worker executed (stolen, popped, or joined inline).
  std::uint64_t tasks_executed = 0;
  /// Times this worker gave up spinning and parked on the pool's
  /// condition variable.
  std::uint64_t parks = 0;
};

struct PoolCounters {
  unsigned num_workers = 0;
  /// Pool-wide sums of the per-worker counters.
  std::uint64_t steals = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t parks = 0;
  /// Times a task push found sleepers and signalled the condition
  /// variable (park/wake cycles = parks + wakeups).
  std::uint64_t wakeups = 0;
  std::vector<WorkerCounters> workers;
};

/// Snapshot of the active pool's counters, monotone since pool creation or
/// the last reset(). Starts the pool on first use. Safe to call while work
/// is running; per-worker values are then approximate (relaxed reads).
///
/// Concurrency contract (reviewed under clang-tidy's concurrency-* pass):
/// every counter is a std::atomic incremented only by its owning worker
/// and read with relaxed loads here, so individual values never tear; a
/// snapshot taken mid-run is NOT a consistent cross-counter cut, though —
/// totals can lag per-worker values by in-flight increments. Callers that
/// need exact totals snapshot at quiescence (after the joining call
/// returns), which is what the tests do.
PoolCounters snapshot();

/// Zeroes all counters of the active pool. Call between measurement
/// windows, not concurrently with running work.
void reset();

}  // namespace parct::par::stats
