// Worker-local reducers: race-free accumulation from inside parallel
// loops without atomics on the hot path. Each worker owns a cache-line
// padded slot; `reduce()` combines the slots after the parallel region.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/scheduler.hpp"

namespace parct::par {

template <typename T, typename Combine>
class Reducer {
 public:
  explicit Reducer(T identity, Combine combine = Combine{})
      : identity_(identity),
        combine_(combine),
        slots_(scheduler::num_workers(), Slot{identity}) {}

  /// The calling worker's accumulator. Only touch from inside tasks run by
  /// the pool this reducer was created under (same worker count).
  ///
  /// Deliberately *not* shadow-instrumented for the SP-bags detector:
  /// slots are worker-private by construction (indexing by worker_id), so
  /// two logically parallel tasks touching the same slot never run
  /// concurrently — they are serialized on the worker that owns it, and
  /// reduce() runs after the join. Under a detector session the whole
  /// program executes on one worker anyway, collapsing every access to
  /// slot 0 with no logical conflict.
  T& local() { return slots_[scheduler::worker_id()].value; }

  /// Combines all worker slots. Call after the parallel region completes.
  T reduce() const {
    T acc = identity_;
    for (const Slot& s : slots_) acc = combine_(acc, s.value);
    return acc;
  }

  void reset() {
    for (Slot& s : slots_) s.value = identity_;
  }

 private:
  struct alignas(64) Slot {
    T value;
  };
  T identity_;
  Combine combine_;
  std::vector<Slot> slots_;
};

struct PlusCombine {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct MaxCombine {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a > b ? a : b;
  }
};

template <typename T>
using SumReducer = Reducer<T, PlusCombine>;
template <typename T>
using MaxReducer = Reducer<T, MaxCombine>;

}  // namespace parct::par
