// parallel_for / parallel_reduce by recursive range splitting — the
// "parallel for" of the paper's work-time framework, realized as a balanced
// binary tree of forks (paper §2.2.1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "parallel/fork_join.hpp"

namespace parct::par {

/// Automatic grain: ~8 leaves per worker, at least 1. Uses
/// configured_workers(), which reports the worker count the pool would be
/// started with even before initialization — so the grain is well-defined
/// (and free of the pool-starting side effect) when computed before the
/// pool is up.
inline std::size_t default_grain(std::size_t n) {
  const std::size_t leaves = 8 * static_cast<std::size_t>(
      scheduler::configured_workers());
  return std::max<std::size_t>(1, n / std::max<std::size_t>(1, leaves));
}

/// True while an SP-bags detection session drives this thread: loops and
/// primitives must then take their *parallel* code paths (serially, at the
/// finest grain) so the detector models the full logical fork tree.
/// Constant false when PARCT_RACE_DETECT is off — the optimizer deletes
/// the checks.
inline bool race_detect_forced() {
#if PARCT_RACE_DETECT
  return analysis::spbags::active();
#else
  return false;
#endif
}

/// The canonical "degenerate to a plain sequential loop" test for the
/// primitives: true on a 1-worker pool or under a scheduler::SerialScope,
/// unless a detection session forces the parallel shape.
inline bool sequential_mode() {
  return !race_detect_forced() &&
         (scheduler::serial_forced() || scheduler::num_workers() == 1);
}

namespace detail {

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, std::size_t grain,
                      const F& f) {
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  fork2join([&] { parallel_for_rec(lo, mid, grain, f); },
            [&] { parallel_for_rec(mid, hi, grain, f); });
}

template <typename T, typename Map, typename Combine>
T parallel_reduce_rec(std::size_t lo, std::size_t hi, std::size_t grain,
                      const T& identity, const Map& map,
                      const Combine& combine) {
  if (hi - lo <= grain) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  // Seed from `identity`, not T{}: T need not be default-constructible.
  T left = identity;
  T right = identity;
  fork2join(
      [&] {
        left = parallel_reduce_rec(lo, mid, grain, identity, map, combine);
      },
      [&] {
        right = parallel_reduce_rec(mid, hi, grain, identity, map, combine);
      });
  return combine(left, right);
}

}  // namespace detail

/// Calls `f(i)` for every i in [lo, hi), in parallel. When the pool has a
/// single worker this degenerates to a plain loop (no task overhead), which
/// keeps 1-thread timings an honest sequential baseline.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t grain = 0) {
  if (hi <= lo) return;
  if (race_detect_forced()) {
    // Grain is a performance hint, not a semantic boundary: every
    // iteration may run in parallel with every other, so the detector
    // models the loop at grain 1.
    detail::parallel_for_rec(lo, hi, 1, f);
    return;
  }
  const std::size_t n = hi - lo;
  if (scheduler::serial_forced() || scheduler::num_workers() == 1 ||
      n == 1) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  if (grain == 0) grain = default_grain(n);
  detail::parallel_for_rec(lo, hi, grain, f);
}

/// Block-wise parallel loop: calls `body(lo, hi)` on disjoint sub-ranges
/// covering [lo, hi). Prefer this over per-index parallel_for when the
/// body benefits from a tight sequential inner loop (vectorization,
/// cached state).
template <typename Body>
void parallel_for_blocked(std::size_t lo, std::size_t hi, const Body& body,
                          std::size_t grain = 0) {
  if (hi <= lo) return;
  if (!race_detect_forced() &&
      (scheduler::serial_forced() || scheduler::num_workers() == 1)) {
    body(lo, hi);
    return;
  }
  if (grain == 0) grain = default_grain(hi - lo);
  if (race_detect_forced()) grain = 1;  // blocks may be any partition
  struct Rec {
    static void run(std::size_t lo, std::size_t hi, std::size_t grain,
                    const Body& body) {
      if (hi - lo <= grain) {
        body(lo, hi);
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      fork2join([&] { run(lo, mid, grain, body); },
                [&] { run(mid, hi, grain, body); });
    }
  };
  Rec::run(lo, hi, grain, body);
}

/// Tree reduction: combine(identity, map(lo), ..., map(hi-1)).
/// `combine` must be associative; `identity` its unit.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t lo, std::size_t hi, T identity, const Map& map,
                  const Combine& combine, std::size_t grain = 0) {
  if (hi <= lo) return identity;
  if (race_detect_forced()) {
    return detail::parallel_reduce_rec(lo, hi, 1, identity, map, combine);
  }
  const std::size_t n = hi - lo;
  if (scheduler::serial_forced() || scheduler::num_workers() == 1) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  if (grain == 0) grain = default_grain(n);
  return detail::parallel_reduce_rec(lo, hi, grain, identity, map, combine);
}

}  // namespace parct::par
