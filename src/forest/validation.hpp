// Structural validation of Forest instances (used by tests, generators and
// the ChangeSet checker).
#pragma once

#include <optional>
#include <string>

#include "forest/forest.hpp"

namespace parct::forest {

/// Verifies: parent/child-slot cross-consistency, degree bound, only
/// present endpoints, and acyclicity of parent chains. Returns an error
/// description, or nullopt if `f` is a valid rooted forest.
std::optional<std::string> check_forest(const Forest& f);

/// Depth of v (root has depth 0). Requires valid forest.
std::size_t depth(const Forest& f, VertexId v);

/// Root of v's tree.
VertexId root_of(const Forest& f, VertexId v);

/// Height of the whole forest (max depth over present vertices; 0 if empty).
std::size_t height(const Forest& f);

}  // namespace parct::forest
