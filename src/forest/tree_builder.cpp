#include "forest/tree_builder.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "hashing/splitmix64.hpp"

namespace parct::forest {

Forest build_balanced(std::size_t n, int t, std::size_t extra_capacity) {
  Forest f(n + extra_capacity, t, n);
  // Vertex i's parent is (i-1)/t: level order, so all but possibly one
  // internal node has exactly t children.
  for (VertexId v = 1; v < n; ++v) {
    f.link(v, static_cast<VertexId>((v - 1) / static_cast<std::size_t>(t)));
  }
  return f;
}

Forest build_chain(std::size_t n, std::size_t extra_capacity) {
  Forest f(n + extra_capacity, 4, n);
  for (VertexId v = 1; v < n; ++v) f.link(v, v - 1);
  return f;
}

Forest build_perfect_binary(std::size_t n, std::size_t extra_capacity) {
  if (((n + 1) & n) != 0 || n == 0) {
    throw std::invalid_argument(
        "perfect binary tree needs n = 2^k - 1 vertices");
  }
  Forest f(n + extra_capacity, 2, n);
  for (VertexId v = 1; v < n; ++v) f.link(v, (v - 1) / 2);
  return f;
}

Forest build_tree(std::size_t n, int t, double chain_factor,
                  std::uint64_t seed, std::size_t extra_capacity) {
  if (n < 2) throw std::invalid_argument("build_tree needs n >= 2");
  if (chain_factor < 0.0 || chain_factor > 1.0) {
    throw std::invalid_argument("chain_factor must be in [0, 1]");
  }
  const std::size_t split_target =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) *
                                         chain_factor));
  const std::size_t r = std::max<std::size_t>(
      n >= split_target ? n - split_target : 0, 2);

  Forest f(n + extra_capacity, t, n);
  for (VertexId v = 1; v < r; ++v) {
    f.link(v, static_cast<VertexId>((v - 1) / static_cast<std::size_t>(t)));
  }

  // Phase 2: each new vertex w splits a uniformly random existing edge.
  // Edges are in bijection with non-root vertices, so picking a random
  // vertex in [1, current) picks a random edge (that vertex's parent edge).
  hashing::SplitMix64 rng(seed);
  for (std::size_t w = r; w < n; ++w) {
    const VertexId u =
        static_cast<VertexId>(1 + rng.next_below(w - 1));  // child endpoint
    const VertexId v = f.parent(u);
    f.cut(u);
    f.link(static_cast<VertexId>(w), v);
    f.link(u, static_cast<VertexId>(w));
  }
  return f;
}

}  // namespace parct::forest
