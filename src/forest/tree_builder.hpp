// The paper's input generators (§4 "Input Generation"):
//
//  * `build_tree(n, t, chain_factor, seed)` — the two-phase tree builder.
//    Phase 1 builds a balanced t-ary tree with r = max(n - ceil(n*f), 2)
//    vertices (all but possibly one internal node has t children); phase 2
//    adds the remaining n - r vertices by repeatedly picking a random edge
//    (u, v) and splitting it into (u, w), (w, v). The chain factor f in
//    [0, 1] is (approximately) the fraction of degree-two vertices: f = 0
//    gives a balanced tree, f = 1 a single chain.
//
//  * `build_perfect_binary(n)` — perfect binary trees (special case in the
//    paper's experiments), n = 2^k - 1.
#pragma once

#include <cstdint>

#include "forest/forest.hpp"

namespace parct::forest {

/// Two-phase chain-factor tree builder (see header comment). The tree's
/// root is vertex 0. `extra_capacity` reserves additional absent vertex ids
/// above n for later ChangeSet additions.
Forest build_tree(std::size_t n, int t, double chain_factor,
                  std::uint64_t seed, std::size_t extra_capacity = 0);

/// Perfect binary tree; `n` must be 2^k - 1. Root is vertex 0, children of
/// i are 2i+1 and 2i+2.
Forest build_perfect_binary(std::size_t n, std::size_t extra_capacity = 0);

/// Balanced t-ary tree with n vertices (phase 1 of the builder alone).
Forest build_balanced(std::size_t n, int t, std::size_t extra_capacity = 0);

/// Single chain 0 <- 1 <- ... <- n-1 (vertex 0 is the root).
Forest build_chain(std::size_t n, std::size_t extra_capacity = 0);

}  // namespace parct::forest
