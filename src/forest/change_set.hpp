// ChangeSet: a batch of modifications ((V-, E-), (V+, E+)) as in the
// paper's ModifyContraction (§2.5): delete vertices V- and edges E-, then
// add vertices V+ and edges E+.
//
// Preconditions (paper §2.5): V- ⊆ V, V+ ∩ V = ∅, E- ⊆ E, E+ new edges
// (an edge of E- may reappear in E+: deletions apply first, so within one
// batch delete-then-reinsert of the same edge is legal), and the edited
// graph is again a bounded-degree forest. Every edge incident to a vertex
// of V- must appear in E-.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "forest/forest.hpp"
#include "forest/types.hpp"

namespace parct::forest {

struct ChangeSet {
  std::vector<VertexId> remove_vertices;  // V-
  std::vector<Edge> remove_edges;         // E-
  std::vector<VertexId> add_vertices;     // V+
  std::vector<Edge> add_edges;            // E+

  std::size_t size() const {
    return remove_vertices.size() + remove_edges.size() +
           add_vertices.size() + add_edges.size();
  }
  bool empty() const { return size() == 0; }

  /// Fluent builders, handy in tests and examples.
  ChangeSet& del_edge(VertexId child, VertexId parent) {
    remove_edges.push_back({child, parent});
    return *this;
  }
  ChangeSet& ins_edge(VertexId child, VertexId parent) {
    add_edges.push_back({child, parent});
    return *this;
  }
  ChangeSet& del_vertex(VertexId v) {
    remove_vertices.push_back(v);
    return *this;
  }
  ChangeSet& ins_vertex(VertexId v) {
    add_vertices.push_back(v);
    return *this;
  }
};

/// Checks all ChangeSet preconditions against `f`, including that applying
/// the batch yields an acyclic bounded-degree forest. Returns an error
/// description, or nullopt if valid.
std::optional<std::string> check_change_set(const Forest& f,
                                            const ChangeSet& m);

/// Applies `m` to a copy of `f` and returns the edited forest. Asserts the
/// preconditions in debug builds (use check_change_set for full checking).
Forest apply_change_set(const Forest& f, const ChangeSet& m);

/// Binary encoding of a ChangeSet (little-endian hosts): four u64 element
/// counts (V-, E-, V+, E+) followed by the element payloads. This is the
/// record body of the durability write-ahead log (docs/DURABILITY.md).
/// Throws std::runtime_error if the stream reports a write failure.
void save_change_set(const ChangeSet& m, std::ostream& out);

/// Inverse of save_change_set. Element storage grows only as elements
/// actually arrive from the stream, so corrupt counts cannot drive a huge
/// up-front allocation. Throws std::runtime_error on truncation or on
/// counts beyond a sane bound.
ChangeSet load_change_set(std::istream& in);

}  // namespace parct::forest
