#include "forest/validation.hpp"

#include <vector>

namespace parct::forest {

std::optional<std::string> check_forest(const Forest& f) {
  const std::size_t cap = f.capacity();
  std::size_t edges = 0;
  for (VertexId v = 0; v < cap; ++v) {
    if (!f.present(v)) {
      continue;
    }
    if (f.degree(v) > f.degree_bound()) {
      return "degree bound exceeded at vertex " + std::to_string(v);
    }
    if (!f.is_root(v)) {
      const VertexId p = f.parent(v);
      if (p >= cap || !f.present(p)) {
        return "parent of " + std::to_string(v) + " not present";
      }
      if (f.children(p)[f.parent_slot(v)] != v) {
        return "parent slot of " + std::to_string(v) + " inconsistent";
      }
      ++edges;
    }
    for (int s = 0; s < kMaxDegree; ++s) {
      const VertexId u = f.children(v)[s];
      if (u == kNoVertex) continue;
      if (u >= cap || !f.present(u)) {
        return "child slot of " + std::to_string(v) + " holds absent vertex";
      }
      if (f.parent(u) != v || f.parent_slot(u) != s) {
        return "child " + std::to_string(u) + " does not point back to " +
               std::to_string(v);
      }
    }
  }
  if (edges != f.num_edges()) return "edge count mismatch";

  // Acyclicity: colour vertices along parent chains.
  // 0 = unvisited, 1 = on current path, 2 = done.
  std::vector<std::uint8_t> colour(cap, 0);
  std::vector<VertexId> path;
  for (VertexId v = 0; v < cap; ++v) {
    if (!f.present(v) || colour[v] != 0) continue;
    path.clear();
    VertexId u = v;
    while (colour[u] == 0) {
      colour[u] = 1;
      path.push_back(u);
      if (f.is_root(u)) break;
      u = f.parent(u);
    }
    if (colour[u] == 1 && !f.is_root(u)) {
      return "cycle through vertex " + std::to_string(u);
    }
    for (VertexId w : path) colour[w] = 2;
  }
  return std::nullopt;
}

std::size_t depth(const Forest& f, VertexId v) {
  std::size_t d = 0;
  while (!f.is_root(v)) {
    v = f.parent(v);
    ++d;
  }
  return d;
}

VertexId root_of(const Forest& f, VertexId v) {
  while (!f.is_root(v)) v = f.parent(v);
  return v;
}

std::size_t height(const Forest& f) {
  // Memoized depth over all present vertices.
  std::vector<std::uint32_t> memo(f.capacity(), UINT32_MAX);
  std::size_t best = 0;
  std::vector<VertexId> path;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v)) continue;
    path.clear();
    VertexId u = v;
    while (memo[u] == UINT32_MAX && !f.is_root(u)) {
      path.push_back(u);
      u = f.parent(u);
    }
    std::uint32_t d = f.is_root(u) && memo[u] == UINT32_MAX ? 0 : memo[u];
    memo[u] = d;
    while (!path.empty()) {
      ++d;
      memo[path.back()] = d;
      path.pop_back();
    }
    best = std::max<std::size_t>(best, memo[v]);
  }
  return best;
}

}  // namespace parct::forest
