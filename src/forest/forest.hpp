// Mutable bounded-degree rooted forest over a fixed vertex universe.
//
// This is the algorithms' input representation (paper §2.2): directed edges
// point child -> parent; every vertex has at most `degree_bound` children,
// stored in a fixed slotted array so that "insert child" is a write to a
// free slot and each child records which slot of its parent it owns.
#pragma once

#include <cstddef>
#include <vector>

#include "forest/types.hpp"

namespace parct::forest {

class Forest {
 public:
  /// Universe of `capacity` vertex ids; initially all `n_present` lowest ids
  /// are present and isolated.
  explicit Forest(std::size_t capacity, int degree_bound = 4,
                  std::size_t n_present = SIZE_MAX);

  std::size_t capacity() const { return parent_.size(); }
  int degree_bound() const { return degree_bound_; }
  std::size_t num_present() const { return num_present_; }
  std::size_t num_edges() const { return num_edges_; }

  bool present(VertexId v) const { return present_[v] != 0; }
  bool is_root(VertexId v) const { return parent_[v] == v; }

  /// Parent of v (== v for roots).
  VertexId parent(VertexId v) const { return parent_[v]; }
  /// Slot of v in its parent's child array (meaningless for roots).
  int parent_slot(VertexId v) const { return parent_slot_[v]; }
  const ChildArray& children(VertexId v) const { return children_[v]; }
  int degree(VertexId v) const { return child_count(children_[v]); }
  bool is_leaf(VertexId v) const { return children_empty(children_[v]); }
  bool is_isolated(VertexId v) const { return is_root(v) && is_leaf(v); }

  /// Makes an absent vertex present (isolated).
  void add_vertex(VertexId v);
  /// Removes a present, isolated vertex.
  void remove_vertex(VertexId v);

  /// Adds edge child -> parent. `child` must currently be a root; `parent`
  /// must have a free child slot. Does NOT check acyclicity (callers that
  /// need it use validation.hpp).
  void link(VertexId child, VertexId parent);
  /// Removes child's parent edge; `child` must not be a root.
  void cut(VertexId child);

  bool has_edge(VertexId child, VertexId parent) const {
    return present(child) && parent_[child] == parent && child != parent;
  }

  /// All edges, ordered by child id.
  std::vector<Edge> edges() const;
  /// All present vertex ids, increasing.
  std::vector<VertexId> vertices() const;
  /// All present roots, increasing.
  std::vector<VertexId> roots() const;

  friend bool operator==(const Forest& a, const Forest& b);

 private:
  int degree_bound_;
  std::size_t num_present_ = 0;
  std::size_t num_edges_ = 0;
  std::vector<std::uint8_t> present_;
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> parent_slot_;
  std::vector<ChildArray> children_;
};

}  // namespace parct::forest
