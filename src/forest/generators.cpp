#include "forest/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"

namespace parct::forest {

Forest random_forest(std::size_t n, std::size_t num_trees, int t,
                     double chain_factor, std::uint64_t seed) {
  if (num_trees == 0 || n < 2 * num_trees) {
    throw std::invalid_argument("random_forest: need n >= 2 * num_trees");
  }
  Forest f(n, t, n);
  hashing::SplitMix64 rng(seed);
  // Partition [0, n) into num_trees contiguous ranges and build a
  // chain-factor tree inside each.
  const std::size_t base = n / num_trees;
  std::size_t lo = 0;
  for (std::size_t k = 0; k < num_trees; ++k) {
    const std::size_t size = (k + 1 == num_trees) ? n - lo : base;
    Forest sub = build_tree(size, t, chain_factor, rng.next());
    for (const Edge& e : sub.edges()) {
      f.link(static_cast<VertexId>(lo + e.child),
             static_cast<VertexId>(lo + e.parent));
    }
    lo += size;
  }
  return f;
}

std::vector<Edge> select_random_edges(const Forest& f, std::size_t k,
                                      std::uint64_t seed) {
  if (k > f.num_edges()) {
    throw std::invalid_argument("select_random_edges: k exceeds edge count");
  }
  // Edges <-> non-root present vertices (the child endpoint).
  std::vector<VertexId> children;
  children.reserve(f.num_edges());
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v) && !f.is_root(v)) children.push_back(v);
  }
  // Partial Fisher-Yates for k distinct picks.
  hashing::SplitMix64 rng(seed);
  std::vector<Edge> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.next_below(children.size() - i);
    std::swap(children[i], children[j]);
    out.push_back({children[i], f.parent(children[i])});
  }
  return out;
}

ChangeSet make_delete_batch(const Forest& f, std::size_t k,
                            std::uint64_t seed) {
  ChangeSet m;
  m.remove_edges = select_random_edges(f, k, seed);
  return m;
}

std::pair<Forest, ChangeSet> make_insert_batch(const Forest& full,
                                               std::size_t k,
                                               std::uint64_t seed) {
  ChangeSet m;
  m.add_edges = select_random_edges(full, k, seed);
  Forest initial = full;
  for (const Edge& e : m.add_edges) initial.cut(e.child);
  return {std::move(initial), std::move(m)};
}

std::pair<Forest, ChangeSet> make_mixed_batch(const Forest& full,
                                              std::size_t k_ins,
                                              std::size_t k_del,
                                              std::uint64_t seed) {
  if (k_ins + k_del > full.num_edges()) {
    throw std::invalid_argument("make_mixed_batch: batch exceeds edge count");
  }
  // One distinct draw of k_ins + k_del edges: the first k_ins are cut
  // upfront and re-inserted by the batch, the rest are deleted by it.
  std::vector<Edge> picked =
      select_random_edges(full, k_ins + k_del, seed);
  ChangeSet m;
  m.add_edges.assign(picked.begin(), picked.begin() + k_ins);
  m.remove_edges.assign(picked.begin() + k_ins, picked.end());
  Forest initial = full;
  for (const Edge& e : m.add_edges) initial.cut(e.child);
  return {std::move(initial), std::move(m)};
}

ChangeSet make_vertex_batch(const Forest& f, std::size_t k_add,
                            std::size_t k_del, std::uint64_t seed) {
  hashing::SplitMix64 rng(seed);
  ChangeSet m;

  // Delete k_del random leaves together with their parent edges.
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v) && f.is_leaf(v) && !f.is_root(v)) leaves.push_back(v);
  }
  if (k_del > leaves.size()) {
    throw std::invalid_argument("make_vertex_batch: not enough leaves");
  }
  for (std::size_t i = 0; i < k_del; ++i) {
    const std::size_t j = i + rng.next_below(leaves.size() - i);
    std::swap(leaves[i], leaves[j]);
    m.del_vertex(leaves[i]).del_edge(leaves[i], f.parent(leaves[i]));
  }
  std::unordered_set<VertexId> deleted(m.remove_vertices.begin(),
                                       m.remove_vertices.end());

  // Attach k_add new vertices (fresh ids above the present maximum) as
  // leaves under random parents that keep a free slot.
  VertexId next_id = 0;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v)) next_id = v + 1;
  }
  if (static_cast<std::size_t>(next_id) + k_add > f.capacity()) {
    throw std::invalid_argument("make_vertex_batch: no spare capacity");
  }
  std::vector<int> extra_load(f.capacity(), 0);
  for (std::size_t i = 0; i < k_add; ++i) {
    const VertexId w = next_id++;
    for (int attempts = 0; ; ++attempts) {
      if (attempts > 1 << 20) {
        throw std::runtime_error("make_vertex_batch: no parent slot found");
      }
      const VertexId p =
          static_cast<VertexId>(rng.next_below(f.capacity()));
      if (!f.present(p) || deleted.count(p)) continue;
      if (f.degree(p) + extra_load[p] >= f.degree_bound()) continue;
      ++extra_load[p];
      m.ins_vertex(w).ins_edge(w, p);
      break;
    }
  }
  return m;
}

}  // namespace parct::forest
