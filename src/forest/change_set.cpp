#include "forest/change_set.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

#include "forest/validation.hpp"

namespace parct::forest {

namespace {

struct EdgeHash {
  std::size_t operator()(const Edge& e) const {
    return (static_cast<std::size_t>(e.child) << 32) ^ e.parent;
  }
};

}  // namespace

std::optional<std::string> check_change_set(const Forest& f,
                                            const ChangeSet& m) {
  std::unordered_set<VertexId> vminus(m.remove_vertices.begin(),
                                      m.remove_vertices.end());
  std::unordered_set<VertexId> vplus(m.add_vertices.begin(),
                                     m.add_vertices.end());
  std::unordered_set<Edge, EdgeHash> eminus(m.remove_edges.begin(),
                                            m.remove_edges.end());
  std::unordered_set<Edge, EdgeHash> eplus(m.add_edges.begin(),
                                           m.add_edges.end());
  if (vminus.size() != m.remove_vertices.size()) {
    return "duplicate vertex in V-";
  }
  if (vplus.size() != m.add_vertices.size()) return "duplicate vertex in V+";
  if (eminus.size() != m.remove_edges.size()) return "duplicate edge in E-";
  if (eplus.size() != m.add_edges.size()) return "duplicate edge in E+";

  for (VertexId v : vminus) {
    if (v >= f.capacity() || !f.present(v)) return "V- vertex not in forest";
    if (vplus.count(v)) return "vertex in both V- and V+";
    // Every incident edge must be explicitly deleted.
    if (!f.is_root(v) && !eminus.count({v, f.parent(v)})) {
      return "V- vertex keeps its parent edge (must be in E-)";
    }
    for (VertexId u : f.children(v)) {
      if (u != kNoVertex && !eminus.count({u, v})) {
        return "V- vertex keeps a child edge (must be in E-)";
      }
    }
  }
  for (VertexId v : vplus) {
    if (v < f.capacity() && f.present(v)) return "V+ vertex already present";
  }
  for (const Edge& e : eminus) {
    if (!f.has_edge(e.child, e.parent)) return "E- edge not in forest";
  }
  auto endpoint_exists = [&](VertexId v) {
    return vplus.count(v) != 0 ||
           (v < f.capacity() && f.present(v) && vminus.count(v) == 0);
  };
  std::unordered_set<VertexId> eplus_children;
  for (const Edge& e : eplus) {
    if (e.child == e.parent) return "E+ self-loop";
    // An edge may be deleted and re-inserted within one batch (E- ∩ E+):
    // the deletion happens first, so the insertion sees it absent.
    if (f.has_edge(e.child, e.parent) && !eminus.count(e)) {
      return "E+ edge already in forest";
    }
    if (!endpoint_exists(e.child) || !endpoint_exists(e.parent)) {
      return "E+ edge endpoint absent after edit";
    }
    if (!eplus_children.insert(e.child).second) {
      return "E+ gives a vertex two parents";
    }
    // The child must be parentless once E- is applied.
    if (e.child < f.capacity() && f.present(e.child) &&
        !f.is_root(e.child) && !eminus.count({e.child, f.parent(e.child)})) {
      return "E+ child already has a parent not deleted by E-";
    }
  }
  // Structural check: apply and validate the result. Degree-bound
  // violations surface as exceptions from Forest::link.
  try {
    Forest g = apply_change_set(f, m);
    if (auto err = check_forest(g)) return "edited graph invalid: " + *err;
  } catch (const std::exception& e) {
    return std::string("edited graph invalid: ") + e.what();
  }
  return std::nullopt;
}

Forest apply_change_set(const Forest& f, const ChangeSet& m) {
  // Grow the universe if V+ introduces larger ids.
  std::size_t cap = f.capacity();
  for (VertexId v : m.add_vertices) {
    cap = std::max<std::size_t>(cap, static_cast<std::size_t>(v) + 1);
  }
  Forest g(cap, f.degree_bound(), 0);
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (f.present(v)) g.add_vertex(v);
  }
  for (const Edge& e : f.edges()) g.link(e.child, e.parent);

  for (const Edge& e : m.remove_edges) g.cut(e.child);
  for (VertexId v : m.remove_vertices) g.remove_vertex(v);
  for (VertexId v : m.add_vertices) g.add_vertex(v);
  for (const Edge& e : m.add_edges) g.link(e.child, e.parent);
  return g;
}

namespace {

// Guard against corrupt counts: no real batch approaches this, and the
// durability WAL frames each record with a length + CRC, so anything
// larger is stream corruption, not data.
constexpr std::uint64_t kMaxChangeSetElems = 1ull << 32;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("parct::load_change_set: truncated");
  return value;
}

void read_vertices(std::istream& in, std::uint64_t n,
                   std::vector<VertexId>& out) {
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get<VertexId>(in));
}

void read_edges(std::istream& in, std::uint64_t n, std::vector<Edge>& out) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const VertexId child = get<VertexId>(in);
    const VertexId parent = get<VertexId>(in);
    out.push_back({child, parent});
  }
}

}  // namespace

void save_change_set(const ChangeSet& m, std::ostream& out) {
  put(out, static_cast<std::uint64_t>(m.remove_vertices.size()));
  put(out, static_cast<std::uint64_t>(m.remove_edges.size()));
  put(out, static_cast<std::uint64_t>(m.add_vertices.size()));
  put(out, static_cast<std::uint64_t>(m.add_edges.size()));
  for (VertexId v : m.remove_vertices) put(out, v);
  for (const Edge& e : m.remove_edges) {
    put(out, e.child);
    put(out, e.parent);
  }
  for (VertexId v : m.add_vertices) put(out, v);
  for (const Edge& e : m.add_edges) {
    put(out, e.child);
    put(out, e.parent);
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("parct::save_change_set: stream write failed");
  }
}

ChangeSet load_change_set(std::istream& in) {
  const std::uint64_t nvm = get<std::uint64_t>(in);
  const std::uint64_t nem = get<std::uint64_t>(in);
  const std::uint64_t nvp = get<std::uint64_t>(in);
  const std::uint64_t nep = get<std::uint64_t>(in);
  if (nvm > kMaxChangeSetElems || nem > kMaxChangeSetElems ||
      nvp > kMaxChangeSetElems || nep > kMaxChangeSetElems) {
    throw std::runtime_error("parct::load_change_set: count exceeds bound");
  }
  // push_back-grown (geometric capacity), never reserved from the
  // untrusted counts: truncation surfaces before memory is committed.
  ChangeSet m;
  read_vertices(in, nvm, m.remove_vertices);
  read_edges(in, nem, m.remove_edges);
  read_vertices(in, nvp, m.add_vertices);
  read_edges(in, nep, m.add_edges);
  return m;
}

}  // namespace parct::forest
