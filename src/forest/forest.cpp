#include "forest/forest.hpp"

#include <cassert>
#include <stdexcept>

namespace parct::forest {

Forest::Forest(std::size_t capacity, int degree_bound, std::size_t n_present)
    : degree_bound_(degree_bound),
      present_(capacity, 0),
      parent_(capacity, kNoVertex),
      parent_slot_(capacity, 0),
      children_(capacity, kEmptyChildren) {
  if (degree_bound < 1 || degree_bound > kMaxDegree) {
    throw std::invalid_argument("degree_bound must be in [1, kMaxDegree]");
  }
  if (n_present == SIZE_MAX) n_present = capacity;
  if (n_present > capacity) {
    throw std::invalid_argument("n_present exceeds capacity");
  }
  for (std::size_t v = 0; v < n_present; ++v) {
    present_[v] = 1;
    parent_[v] = static_cast<VertexId>(v);
  }
  num_present_ = n_present;
}

void Forest::add_vertex(VertexId v) {
  assert(v < capacity() && !present(v));
  present_[v] = 1;
  parent_[v] = v;
  parent_slot_[v] = 0;
  children_[v] = kEmptyChildren;
  ++num_present_;
}

void Forest::remove_vertex(VertexId v) {
  assert(present(v) && is_isolated(v));
  present_[v] = 0;
  parent_[v] = kNoVertex;
  --num_present_;
}

void Forest::link(VertexId child, VertexId parent) {
  assert(present(child) && present(parent) && child != parent);
  assert(is_root(child) && "link requires the child to be a root");
  const int slot = find_free_slot(children_[parent], degree_bound_);
  if (slot < 0) {
    throw std::runtime_error("Forest::link: parent has no free child slot");
  }
  children_[parent][slot] = child;
  parent_[child] = parent;
  parent_slot_[child] = static_cast<std::uint8_t>(slot);
  ++num_edges_;
}

void Forest::cut(VertexId child) {
  assert(present(child) && !is_root(child));
  const VertexId p = parent_[child];
  assert(children_[p][parent_slot_[child]] == child);
  children_[p][parent_slot_[child]] = kNoVertex;
  parent_[child] = child;
  parent_slot_[child] = 0;
  --num_edges_;
}

std::vector<Edge> Forest::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (VertexId v = 0; v < capacity(); ++v) {
    if (present(v) && !is_root(v)) out.push_back({v, parent_[v]});
  }
  return out;
}

std::vector<VertexId> Forest::vertices() const {
  std::vector<VertexId> out;
  out.reserve(num_present_);
  for (VertexId v = 0; v < capacity(); ++v) {
    if (present(v)) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> Forest::roots() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < capacity(); ++v) {
    if (present(v) && is_root(v)) out.push_back(v);
  }
  return out;
}

bool operator==(const Forest& a, const Forest& b) {
  if (a.capacity() != b.capacity() || a.num_present_ != b.num_present_ ||
      a.num_edges_ != b.num_edges_) {
    return false;
  }
  for (VertexId v = 0; v < a.capacity(); ++v) {
    if (a.present(v) != b.present(v)) return false;
    if (a.present(v) && a.parent_[v] != b.parent_[v]) return false;
  }
  return true;
}

}  // namespace parct::forest
