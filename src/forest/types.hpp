// Common vocabulary types for forests and contraction structures.
#pragma once

#include <array>
#include <cstdint>

namespace parct {

/// Dense vertex identifier. Vertices live in a fixed universe
/// [0, capacity); forests and contraction structures share it.
using VertexId = std::uint32_t;

/// Sentinel "no vertex" (empty child slot, absent parent, ...).
inline constexpr VertexId kNoVertex = 0xFFFFFFFFu;

/// Compile-time cap on the per-vertex degree bound `t` (the paper assumes
/// bounded degree; its experiments use t = 4). Child sets are fixed slotted
/// arrays of this capacity.
inline constexpr int kMaxDegree = 8;

using ChildArray = std::array<VertexId, kMaxDegree>;

inline constexpr ChildArray kEmptyChildren = {
    kNoVertex, kNoVertex, kNoVertex, kNoVertex,
    kNoVertex, kNoVertex, kNoVertex, kNoVertex};

/// Directed edge: `child`'s parent is `parent` (edges point child -> parent,
/// paper §2.2).
struct Edge {
  VertexId child = kNoVertex;
  VertexId parent = kNoVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Number of occupied slots.
inline int child_count(const ChildArray& c) {
  int n = 0;
  for (int s = 0; s < kMaxDegree; ++s) n += (c[s] != kNoVertex) ? 1 : 0;
  return n;
}

inline bool children_empty(const ChildArray& c) {
  for (int s = 0; s < kMaxDegree; ++s) {
    if (c[s] != kNoVertex) return false;
  }
  return true;
}

/// If exactly one slot is occupied returns that vertex, else kNoVertex.
inline VertexId only_child(const ChildArray& c) {
  VertexId found = kNoVertex;
  for (int s = 0; s < kMaxDegree; ++s) {
    if (c[s] != kNoVertex) {
      if (found != kNoVertex) return kNoVertex;
      found = c[s];
    }
  }
  return found;
}

/// Slot of `u` in `c`, or -1.
inline int find_child_slot(const ChildArray& c, VertexId u) {
  for (int s = 0; s < kMaxDegree; ++s) {
    if (c[s] == u) return s;
  }
  return -1;
}

/// First free slot with index < limit, or -1.
inline int find_free_slot(const ChildArray& c, int limit = kMaxDegree) {
  for (int s = 0; s < limit; ++s) {
    if (c[s] == kNoVertex) return s;
  }
  return -1;
}

}  // namespace parct
