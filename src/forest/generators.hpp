// Workload generators for the dynamic-update experiments (paper §4,
// "Dynamic-Update Algorithm"): random batches of edge insertions/deletions
// and vertex additions/removals that keep the input a valid forest.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "forest/change_set.hpp"
#include "forest/forest.hpp"

namespace parct::forest {

/// Forest of `num_trees` independent chain-factor trees over one universe.
Forest random_forest(std::size_t n, std::size_t num_trees, int t,
                     double chain_factor, std::uint64_t seed);

/// k distinct random edges of `f` (children chosen uniformly among
/// non-root present vertices). k must not exceed the number of edges.
std::vector<Edge> select_random_edges(const Forest& f, std::size_t k,
                                      std::uint64_t seed);

/// Batch-delete test workload: E- = k random edges of `f`.
ChangeSet make_delete_batch(const Forest& f, std::size_t k,
                            std::uint64_t seed);

/// Batch-insert test workload (paper: "choose k random edges E' and insert
/// them"). Cuts k random edges out of `full`, returning the reduced initial
/// forest and the ChangeSet that re-inserts them.
std::pair<Forest, ChangeSet> make_insert_batch(const Forest& full,
                                               std::size_t k,
                                               std::uint64_t seed);

/// Mixed batch: deletes k_del random edges and re-inserts k_ins edges that
/// were cut from `full` beforehand.
std::pair<Forest, ChangeSet> make_mixed_batch(const Forest& full,
                                              std::size_t k_ins,
                                              std::size_t k_del,
                                              std::uint64_t seed);

/// Vertex-churn batch: removes k_del random leaves (vertex + its parent
/// edge) and attaches k_add brand-new leaf vertices (ids above the current
/// maximum; the forest must have spare capacity) at random parents with a
/// free child slot.
ChangeSet make_vertex_batch(const Forest& f, std::size_t k_add,
                            std::size_t k_del, std::uint64_t seed);

}  // namespace parct::forest
