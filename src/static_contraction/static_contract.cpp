#include "static_contraction/static_contract.hpp"

#include "forest/types.hpp"
#include "parallel/parallel_for.hpp"
#include "primitives/pack.hpp"
#include "primitives/workspace.hpp"

namespace parct::static_contraction {

namespace {

// Flat, double-buffered forest state: one side is round i, the other is
// built for round i+1, then the roles swap.
struct Side {
  std::vector<VertexId> parent;
  std::vector<std::uint8_t> parent_slot;
  std::vector<ChildArray> children;

  explicit Side(std::size_t cap)
      : parent(cap), parent_slot(cap), children(cap) {}
};

enum class K : std::uint8_t { kSurvive, kFinalize, kRake, kCompress };

K classify(const Side& s, const hashing::CoinSchedule& coins,
           std::uint32_t i, VertexId v) {
  if (children_empty(s.children[v])) {
    return s.parent[v] == v ? K::kFinalize : K::kRake;
  }
  const VertexId u = only_child(s.children[v]);
  if (u != kNoVertex && !children_empty(s.children[u]) &&
      !coins.heads(i, s.parent[v]) && coins.heads(i, v)) {
    return K::kCompress;
  }
  return K::kSurvive;
}

template <bool Parallel>
StaticStats run(const forest::Forest& f, hashing::CoinSchedule& coins,
                contract::EventHooks* hooks) {
  const std::size_t cap = f.capacity();
  Side a(cap), b(cap);
  std::vector<VertexId> live;
  live.reserve(f.num_present());
  for (VertexId v = 0; v < cap; ++v) {
    if (!f.present(v)) continue;
    a.parent[v] = f.parent(v);
    a.parent_slot[v] = static_cast<std::uint8_t>(f.parent_slot(v));
    a.children[v] = f.children(v);
    live.push_back(v);
  }
  std::vector<K> status(cap);
  std::vector<VertexId> next_live;
  Workspace ws;
  if constexpr (Parallel) {
    next_live.reserve(live.capacity());
  }

  auto loop = [&](std::size_t n, auto&& body) {
    if constexpr (Parallel) {
      par::parallel_for(0, n, body);
    } else {
      for (std::size_t k = 0; k < n; ++k) body(k);
    }
  };

  StaticStats stats;
  Side* cur = &a;
  Side* next = &b;
  std::uint32_t i = 0;
  while (!live.empty()) {
    stats.total_live += live.size();
    coins.ensure_rounds(i + 1);
    const std::size_t n = live.size();

    loop(n, [&](std::size_t k) {
      status[live[k]] = classify(*cur, coins, i, live[k]);
    });
    // Blank next-round state of survivors.
    loop(n, [&](std::size_t k) {
      const VertexId v = live[k];
      if (status[v] != K::kSurvive) return;
      next->parent[v] = v;
      next->parent_slot[v] = 0;
      next->children[v] = kEmptyChildren;
    });
    // Promote edges.
    loop(n, [&](std::size_t k) {
      const VertexId v = live[k];
      switch (status[v]) {
        case K::kSurvive: {
          const VertexId p = cur->parent[v];
          if (p != v && status[p] == K::kSurvive) {
            next->children[p][cur->parent_slot[v]] = v;
          }
          for (int s = 0; s < kMaxDegree; ++s) {
            const VertexId u = cur->children[v][s];
            if (u == kNoVertex || status[u] != K::kSurvive) continue;
            next->parent[u] = v;
            next->parent_slot[u] = static_cast<std::uint8_t>(s);
          }
          break;
        }
        case K::kFinalize:
          if (hooks) hooks->on_finalize(i, v);
          break;
        case K::kRake:
          if (hooks) hooks->on_rake(i, v, cur->parent[v]);
          break;
        case K::kCompress: {
          const VertexId u = only_child(cur->children[v]);
          const VertexId p = cur->parent[v];
          next->children[p][cur->parent_slot[v]] = u;
          next->parent[u] = p;
          next->parent_slot[u] = cur->parent_slot[v];
          if (hooks) hooks->on_compress(i, v, u, p);
          break;
        }
      }
    });
    if constexpr (Parallel) {
      ws.epoch_reset();
      prim::pack_into(
          live,
          [&](std::size_t k) { return status[live[k]] == K::kSurvive; },
          next_live, ws);
      std::swap(live, next_live);
    } else {
      std::size_t w = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (status[live[k]] == K::kSurvive) live[w++] = live[k];
      }
      live.resize(w);
    }
    std::swap(cur, next);
    ++i;
  }
  stats.rounds = i;
  return stats;
}

}  // namespace

StaticStats static_contract(const forest::Forest& f,
                            hashing::CoinSchedule& coins,
                            contract::EventHooks* hooks) {
  return run<true>(f, coins, hooks);
}

StaticStats static_contract_sequential(const forest::Forest& f,
                                       hashing::CoinSchedule& coins,
                                       contract::EventHooks* hooks) {
  return run<false>(f, coins, hooks);
}

}  // namespace parct::static_contraction
