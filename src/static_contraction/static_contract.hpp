// Optimized static Miller-Reif randomized tree contraction — contracts the
// forest without recording the contraction data structure. This is the
// "static" baseline of the paper's evaluation (§4, "Algorithms compared"):
// the comparator for construction overhead (Figs. 10-13) and, in its
// sequential form, the numerator of the dynamic-vs-static ratios (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/hooks.hpp"
#include "forest/forest.hpp"
#include "hashing/coin_flips.hpp"

namespace parct::static_contraction {

struct StaticStats {
  std::uint32_t rounds = 0;
  std::uint64_t total_live = 0;  // sum over rounds of |V^i|
};

/// Parallel static contraction: double-buffered flat arrays, one
/// rake/compress round per iteration, live-set compaction between rounds.
/// Deterministic in (f, coins) and produces the same round-by-round forests
/// as `contract::construct` under the same schedule.
StaticStats static_contract(const forest::Forest& f,
                            hashing::CoinSchedule& coins,
                            contract::EventHooks* hooks = nullptr);

/// Sequential static contraction: identical round structure, plain loops,
/// no scheduler involvement at all.
StaticStats static_contract_sequential(const forest::Forest& f,
                                       hashing::CoinSchedule& coins,
                                       contract::EventHooks* hooks = nullptr);

}  // namespace parct::static_contraction
