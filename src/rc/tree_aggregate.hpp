// Per-tree (connected component) aggregation over the contraction
// structure: each vertex carries a weight from a commutative group, and
// TreeAggregate maintains, at every tree's root, the total weight of the
// tree. This answers "weight/size of the component containing v" in
// O(log n) expected time, and supports O(log n) single-vertex weight
// updates by pushing a delta up the representative chain.
//
// Structural updates: after a DynamicUpdater::apply, the accumulators are
// repaired *incrementally* via prepare_update/apply_update with the set of
// touched vertices (collected through the contraction event hooks) — work
// proportional to the affected region times O(log n), not O(n). The full
// rebuild() remains as the from-scratch oracle and is what the
// incremental path is tested against.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "primitives/counting.hpp"
#include "rc/rc_forest.hpp"

namespace parct::rc {

/// `T` must form a commutative group under `+`/`-` with `T{}` as identity
/// (e.g. integers, doubles, vectors of counters).
///
/// Invariant: acc[v] = weight[v] + sum of acc[u] over all u that merged
/// (raked/compressed) into v; additionally acc[v] == weight[v] for every
/// absent vertex, so ids can leave and re-enter the forest across updates.
template <typename T>
class TreeAggregate {
 public:
  /// Weights default to T{}; set them with set_weight before use or pass a
  /// full vector.
  explicit TreeAggregate(const RCForest& rc) : rc_(rc) {
    weight_.assign(rc.structure().capacity(), T{});
    rebuild();
  }
  TreeAggregate(const RCForest& rc, std::vector<T> weights)
      : rc_(rc), weight_(std::move(weights)) {
    weight_.resize(rc.structure().capacity());
    rebuild();
  }

  /// The forest the aggregate is bound to — lets query entry points check
  /// they were handed a matching (forest, aggregate) pair.
  const RCForest& forest() const { return rc_; }

  const T& weight(VertexId v) const { return weight_[v]; }

  /// The full weight / accumulator tables — what the serving layer copies
  /// into an immutable snapshot (service/snapshot.hpp). acc[root(v)] is
  /// the total weight of v's tree.
  const std::vector<T>& weights() const { return weight_; }
  const std::vector<T>& accumulators() const { return acc_; }

  /// Total weight of the tree containing v. O(log n) expected.
  T tree_weight(VertexId v) const { return acc_[rc_.root(v)]; }

  /// Changes v's weight and repairs all aggregates on its representative
  /// chain. O(log n) expected. Not between prepare_update and
  /// apply_update.
  void set_weight(VertexId v, const T& w) {
    assert(!prepared_ && "set_weight during a structural update window");
    const T delta = w - weight_[v];
    weight_[v] = w;
    acc_[v] = acc_[v] + delta;
    VertexId u = rc_.present(v) ? rc_.representative(v) : kNoVertex;
    while (u != kNoVertex) {
      acc_[u] = acc_[u] + delta;
      u = rc_.representative(u);
    }
  }

  // --- structural updates ----------------------------------------------

  /// First half of an incremental repair. Call with the touched-vertex set
  /// of a DynamicUpdater::apply (event-fired vertices plus the batch's V-)
  /// BEFORE RCForest::refresh overwrites the events: the old
  /// representatives of the touched vertices are the seeds whose
  /// accumulators lose contributions.
  void prepare_update(const std::vector<VertexId>& touched) {
    const std::size_t cap = rc_.structure().capacity();
    if (touched_mark_.size() < cap) {
      touched_mark_.resize(cap, 0);
      old_rep_.resize(cap, kNoVertex);
    }
    ++touched_epoch_;
    seeds_.clear();
    for (VertexId t : touched) {
      if (t >= cap || touched_mark_[t] == touched_epoch_) continue;
      touched_mark_[t] = touched_epoch_;
      old_rep_[t] = rc_.present(t) ? rc_.representative(t) : kNoVertex;
      seeds_.push_back(t);
    }
    prepared_ = true;
  }

  /// Second half: call AFTER RCForest::refresh. Recomputes accumulators
  /// over the affected region only — the upward closure, under the new
  /// representative chains, of the touched vertices and their old
  /// representatives. Expected O(|touched| log n) work; equivalent to a
  /// full rebuild() (asserted in tests/tree_aggregate_test.cpp).
  void apply_update() {
    assert(prepared_ && "apply_update without a matching prepare_update");
    prepared_ = false;
    const auto& c = rc_.structure();
    const std::size_t cap = c.capacity();
    if (weight_.size() < cap) weight_.resize(cap);
    if (acc_.size() < cap) acc_.resize(cap);  // new ids: acc == weight == T{}
    if (region_mark_.size() < cap) region_mark_.resize(cap, 0);
    if (keep_.size() < cap) keep_.resize(cap);
    ++region_epoch_;
    region_.clear();

    // The affected region S: new-forest representative chains from every
    // seed. Chains are functional, so stopping at an already-marked vertex
    // still leaves S upward-closed under the new representatives.
    auto add_chain = [&](VertexId v) {
      while (v != kNoVertex && region_mark_[v] != region_epoch_) {
        region_mark_[v] = region_epoch_;
        region_.push_back(v);
        v = rc_.present(v) ? rc_.representative(v) : kNoVertex;
      }
    };
    for (VertexId s : seeds_) {
      add_chain(s);
      add_chain(old_rep_[s]);
    }

    // keep[v]: the contribution of v's merge-children *outside* S — their
    // accumulators and targets are unchanged (any child whose value or
    // target changed would force its target into S), so their share of
    // acc[v] carries over verbatim: old acc minus v's own weight minus the
    // old contributions of the in-S children.
    for (VertexId v : region_) keep_[v] = acc_[v] - weight_[v];
    for (VertexId u : region_) {
      const VertexId p = touched_mark_[u] == touched_epoch_
                             ? old_rep_[u]
                             : (rc_.present(u) ? rc_.representative(u)
                                               : kNoVertex);
      if (p != kNoVertex && region_mark_[p] == region_epoch_) {
        keep_[p] = keep_[p] - acc_[u];
      }
    }

    // Fold bottom-up in new-death-round order (merge targets die strictly
    // later, so every acc[u] is final before it lands in its target). The
    // region is O(|touched| log n) expected — a serial sort is fine.
    std::sort(region_.begin(), region_.end(), [&](VertexId a, VertexId b) {
      return c.duration(a) < c.duration(b);
    });
    for (VertexId v : region_) acc_[v] = weight_[v] + keep_[v];
    for (VertexId u : region_) {
      const VertexId p =
          rc_.present(u) ? rc_.representative(u) : kNoVertex;
      if (p != kNoVertex) acc_[p] = acc_[p] + acc_[u];  // p in S by closure
    }
  }

  /// Vertices whose accumulators the last apply_update recomputed —
  /// exposed for tests and affected-region telemetry.
  const std::vector<VertexId>& last_region() const { return region_; }

  /// Recomputes all accumulators from scratch. O(n + R) where R is the
  /// number of rounds — the oracle for the incremental path, and the
  /// fallback when no touched set is available.
  ///
  /// Invariant rebuilt: acc[v] = weight[v] + sum of acc[u] over all u that
  /// merged (raked/compressed) into v. Processing vertices in increasing
  /// death round makes every acc[u] final before it is folded into its
  /// target (merge targets die strictly later).
  void rebuild() {
    const auto& c = rc_.structure();
    const std::size_t cap = c.capacity();
    weight_.resize(cap);
    acc_ = weight_;

    // Stable counting sort of all vertices by death round (absent vertices
    // land in bucket 0 and are skipped during folding).
    std::uint32_t max_d = 0;
    for (VertexId v = 0; v < cap; ++v) {
      max_d = std::max(max_d, c.duration(v));
    }
    std::vector<std::uint32_t> order = prim::counting_sort_indices(
        cap, [&](std::size_t v) { return c.duration(
                                      static_cast<VertexId>(v)); },
        max_d + 1);
    for (std::uint32_t v : order) {
      if (c.duration(v) == 0) continue;
      const VertexId target = rc_.representative(v);
      if (target != kNoVertex) acc_[target] = acc_[target] + acc_[v];
    }
  }

 private:
  const RCForest& rc_;
  std::vector<T> weight_;
  std::vector<T> acc_;

  // Incremental-repair scratch (epoch-stamped marks; capacity persists
  // across updates so the steady state allocates nothing).
  std::vector<std::uint64_t> touched_mark_;
  std::vector<std::uint64_t> region_mark_;
  std::vector<VertexId> old_rep_;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> region_;
  std::vector<T> keep_;
  std::uint64_t touched_epoch_ = 0;
  std::uint64_t region_epoch_ = 0;
  bool prepared_ = false;
};

// --- (de)serialization --------------------------------------------------
//
// Only the weight table is stored: the accumulators are a pure function of
// (weights, structure), so load_aggregate rebuilds them against the forest
// it is bound to. This pairs with contraction::save/load — persist the
// structure, persist its bound aggregate, and a reloaded (structure,
// aggregate) pair serves queries and dynamic updates exactly like the
// original (tests/serialize_test.cpp round-trips this end to end).

namespace detail {
inline constexpr std::uint64_t kAggregateMagic =
    0x50415243'54414731ull;  // "PARCTAG1"
inline constexpr std::uint32_t kAggregateVersion = 1;
}  // namespace detail

/// Writes a raw weight table to `out` (little-endian hosts). T must be
/// trivially copyable — raw-byte image, like contraction::save. Throws
/// std::runtime_error if the stream reports a write failure, so a full
/// disk cannot silently truncate a checkpoint.
template <typename T>
void save_weight_table(const std::vector<T>& w, std::ostream& out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "save_weight_table stores raw weight bytes");
  auto put = [&out](const auto& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof value);
  };
  put(detail::kAggregateMagic);
  put(detail::kAggregateVersion);
  put(static_cast<std::uint32_t>(sizeof(T)));
  put(static_cast<std::uint64_t>(w.size()));
  for (const T& x : w) put(x);
  out.flush();
  if (!out) {
    throw std::runtime_error("parct::save_weight_table: stream write failed");
  }
}

/// Reads a weight table written by save_weight_table. `expected_size`
/// bounds the allocation: a stream declaring a different size is rejected
/// before any weight bytes are read, so a corrupt header cannot drive a
/// huge allocation. Throws std::runtime_error on any mismatch/truncation.
template <typename T>
std::vector<T> load_weight_table(std::istream& in,
                                 std::uint64_t expected_size) {
  static_assert(std::is_trivially_copyable_v<T>,
                "load_weight_table reads raw weight bytes");
  auto get = [&in](auto& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!in) throw std::runtime_error("parct::load_aggregate: truncated");
  };
  std::uint64_t magic = 0;
  get(magic);
  if (magic != detail::kAggregateMagic) {
    throw std::runtime_error("parct::load_aggregate: bad magic");
  }
  std::uint32_t version = 0;
  get(version);
  if (version != detail::kAggregateVersion) {
    throw std::runtime_error("parct::load_aggregate: unsupported version");
  }
  std::uint32_t elem = 0;
  get(elem);
  if (elem != sizeof(T)) {
    throw std::runtime_error("parct::load_aggregate: weight type mismatch");
  }
  std::uint64_t n = 0;
  get(n);
  if (n != expected_size) {
    throw std::runtime_error(
        "parct::load_aggregate: capacity does not match the bound forest");
  }
  std::vector<T> w(static_cast<std::size_t>(n));
  for (T& x : w) get(x);
  return w;
}

/// Writes `agg`'s weight table to `out`; see save_weight_table.
template <typename T>
void save_aggregate(const TreeAggregate<T>& agg, std::ostream& out) {
  save_weight_table(agg.weights(), out);
}

/// Reads a weight table written by save_aggregate and binds it to `rc`,
/// rebuilding the accumulators. Throws std::runtime_error on a malformed
/// stream or a capacity/type mismatch with `rc`.
template <typename T>
TreeAggregate<T> load_aggregate(const RCForest& rc, std::istream& in) {
  std::vector<T> w = load_weight_table<T>(in, rc.structure().capacity());
  return TreeAggregate<T>(rc, std::move(w));
}

}  // namespace parct::rc
