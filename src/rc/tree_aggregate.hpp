// Per-tree (connected component) aggregation over the contraction
// structure: each vertex carries a weight from a commutative group, and
// TreeAggregate maintains, at every tree's root, the total weight of the
// tree. This answers "weight/size of the component containing v" in
// O(log n) expected time, and supports O(log n) single-vertex weight
// updates by pushing a delta up the representative chain.
#pragma once

#include <cstdint>
#include <vector>

#include "primitives/counting.hpp"
#include "rc/rc_forest.hpp"

namespace parct::rc {

/// `T` must form a commutative group under `+`/`-` with `T{}` as identity
/// (e.g. integers, doubles, vectors of counters).
template <typename T>
class TreeAggregate {
 public:
  /// Weights default to T{}; set them with set_weight before use or pass a
  /// full vector.
  explicit TreeAggregate(const RCForest& rc) : rc_(rc) {
    weight_.assign(rc.structure().capacity(), T{});
    rebuild();
  }
  TreeAggregate(const RCForest& rc, std::vector<T> weights)
      : rc_(rc), weight_(std::move(weights)) {
    weight_.resize(rc.structure().capacity());
    rebuild();
  }

  const T& weight(VertexId v) const { return weight_[v]; }

  /// Total weight of the tree containing v. O(log n) expected.
  T tree_weight(VertexId v) const { return acc_[rc_.root(v)]; }

  /// Changes v's weight and repairs all aggregates on its representative
  /// chain. O(log n) expected.
  void set_weight(VertexId v, const T& w) {
    const T delta = w - weight_[v];
    weight_[v] = w;
    acc_[v] = acc_[v] + delta;
    VertexId u = rc_.representative(v);
    while (u != kNoVertex) {
      acc_[u] = acc_[u] + delta;
      u = rc_.representative(u);
    }
  }

  /// Recomputes all accumulators from scratch — required after a
  /// structural update (edge/vertex changes), since merge targets may have
  /// changed. O(n + R) where R is the number of rounds.
  ///
  /// Invariant rebuilt: acc[v] = weight[v] + sum of acc[u] over all u that
  /// merged (raked/compressed) into v. Processing vertices in increasing
  /// death round makes every acc[u] final before it is folded into its
  /// target (merge targets die strictly later).
  void rebuild() {
    const auto& c = rc_.structure();
    const std::size_t cap = c.capacity();
    weight_.resize(cap);
    acc_ = weight_;

    // Stable counting sort of all vertices by death round (absent vertices
    // land in bucket 0 and are skipped during folding).
    std::uint32_t max_d = 0;
    for (VertexId v = 0; v < cap; ++v) {
      max_d = std::max(max_d, c.duration(v));
    }
    std::vector<std::uint32_t> order = prim::counting_sort_indices(
        cap, [&](std::size_t v) { return c.duration(
                                      static_cast<VertexId>(v)); },
        max_d + 1);
    for (std::uint32_t v : order) {
      if (c.duration(v) == 0) continue;
      const VertexId target = rc_.representative(v);
      if (target != kNoVertex) acc_[target] = acc_[target] + acc_[v];
    }
  }

 private:
  const RCForest& rc_;
  std::vector<T> weight_;
  std::vector<T> acc_;
};

}  // namespace parct::rc
