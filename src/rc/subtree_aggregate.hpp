// Dynamic subtree aggregates over the contraction structure — the
// signature RC-tree query [2, 4]: every vertex carries a weight from a
// commutative monoid, and subtree_sum(v) returns the combined weight of
// v and all its descendants in O(log n) expected time, staying correct
// under batched structural updates.
//
// Two value histories are maintained per vertex through the rounds:
//   S[v][i]  — the weight absorbed into v by round i: v's own weight plus
//              every subtree raked into v (with its carry) so far;
//   C[v][i]  — the carry on v's parent edge: the accumulated weight of
//              vertices that compressed away strictly between v and its
//              current round-i parent.
// Maintenance (driven by the contraction event hooks):
//   survivor v:        S[v][i+1] = S[v][i] (+) sum over children c that
//                      rake this round of (S[c][i] (+) C[c][i])
//   edge persists:     C[v][i+1] = C[v][i]
//   m compresses(u,p): C[u][i+1] = C[u][i] (+) S[m][i] (+) C[m][i]
// Query: walk v's death chain; a rake/finalize death means everything
// below was absorbed (add S); a compress death adds S plus the carry of
// the remaining child's edge and recurses into that child (which dies
// strictly later, so the chain has O(log n) expected length).
//
// Stage weights with stage_vertex_weight() before construction (and for
// V+ vertices before the update that adds them). Changing the weight of
// an existing vertex requires rebuild() (vertex weights, unlike edge
// re-insertions, have no structural event to ride on).
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "parallel/parallel_for.hpp"

namespace parct::rc {

template <typename T, typename Combine>
class SubtreeAggregate final : public contract::EventHooks {
 public:
  SubtreeAggregate(const contract::ContractionForest& c, T identity,
                   Combine combine = Combine{})
      : c_(c), identity_(identity), combine_(combine),
        s_(c.capacity()), carry_(c.capacity()) {}

  /// Sets v's round-0 weight. Call before construct / the update adding v.
  void stage_vertex_weight(VertexId v, const T& w) {
    if (s_.size() <= v) {
      s_.resize(static_cast<std::size_t>(v) + 1);
      carry_.resize(static_cast<std::size_t>(v) + 1);
    }
    if (s_[v].empty()) s_[v].resize(1, identity_);
    s_[v][0] = w;
  }

  /// Combined weight of v and all its descendants. O(log n) expected.
  T subtree_sum(VertexId v) const {
    T acc = identity_;
    VertexId x = v;
    for (;;) {
      const std::uint32_t d = c_.duration(x);
      const contract::RoundRecord& last = c_.record(d - 1, x);
      if (children_empty(last.children)) {
        // Rake or finalize: everything below x has been absorbed.
        return combine_(acc, at(s_[x], d - 1));
      }
      // Compress: count x's accumulator plus the vertices compressed away
      // between its remaining child and x, then continue below the child.
      const VertexId u = only_child(last.children);
      acc = combine_(combine_(acc, at(s_[x], d - 1)), at(carry_[u], d - 1));
      x = u;
    }
  }

  /// Total weight of v's whole tree (subtree of its root).
  T tree_sum(VertexId v) const {
    VertexId x = v;
    for (;;) {
      const std::uint32_t d = c_.duration(x);
      const contract::RoundRecord& last = c_.record(d - 1, x);
      if (last.parent == x && children_empty(last.children)) {
        return at(s_[x], d - 1);  // the finalizer absorbed the whole tree
      }
      x = last.parent;
    }
  }

  /// Recomputes both value histories from the round-0 weights by
  /// replaying the recorded rounds. O(total records).
  void rebuild() {
    const std::size_t cap = c_.capacity();
    s_.resize(cap);
    carry_.resize(cap);
    std::uint32_t max_d = 0;
    for (VertexId v = 0; v < cap; ++v) {
      const std::uint32_t d = c_.duration(v);
      max_d = std::max(max_d, d);
      if (d == 0) continue;
      const T base = s_[v].empty() ? identity_ : s_[v][0];
      s_[v].assign(d, identity_);
      s_[v][0] = base;
      carry_[v].assign(d, identity_);
    }
    if (max_d == 0) return;
    std::vector<std::vector<VertexId>> alive_at(max_d);
    for (VertexId v = 0; v < cap; ++v) {
      for (std::uint32_t i = 1; i < c_.duration(v); ++i) {
        alive_at[i].push_back(v);
      }
    }
    for (std::uint32_t i = 1; i < max_d; ++i) {
      // Within a round, vertices only read round-(i-1) values and write
      // their own round-i slot: parallel-safe.
      par::parallel_for(0, alive_at[i].size(), [&](std::size_t k) {
        const VertexId v = alive_at[i][k];
        // S: fold children that raked in round i-1.
        T acc = s_[v][i - 1];
        for (VertexId ch : c_.record(i - 1, v).children) {
          if (ch == kNoVertex) continue;
          if (children_empty(c_.record(i - 1, ch).children) &&
              c_.duration(ch) == i) {
            acc = combine_(acc, combine_(s_[ch][i - 1],
                                         carry_[ch][i - 1]));
          }
        }
        s_[v][i] = acc;
        // C: copy, or fold a compressed parent in.
        const VertexId p_now = c_.record(i, v).parent;
        if (p_now == v) return;
        const VertexId p_before = c_.record(i - 1, v).parent;
        if (p_before == p_now) {
          carry_[v][i] = carry_[v][i - 1];
        } else {
          carry_[v][i] =
              combine_(carry_[v][i - 1],
                       combine_(s_[p_before][i - 1],
                                carry_[p_before][i - 1]));
        }
      });
    }
  }

  // --- EventHooks -------------------------------------------------------

  void on_begin(std::size_t capacity) override {
    if (s_.size() < capacity) {
      s_.resize(capacity);
      carry_.resize(capacity);
    }
  }

  void on_vertex_persist(std::uint32_t round, VertexId v) override {
    const contract::RoundRecord& r = c_.record(round, v);
    T acc = at(s_[v], round);
    for (VertexId ch : r.children) {
      if (ch == kNoVertex) continue;
      // A non-root leaf child rakes this round (deterministically).
      if (children_empty(c_.record(round, ch).children)) {
        acc = combine_(acc,
                       combine_(at(s_[ch], round), at(carry_[ch], round)));
      }
    }
    ensure(s_[v], round + 1);
    s_[v][round + 1] = acc;
  }

  void on_edge_persist(std::uint32_t round, VertexId v,
                       VertexId /*parent*/) override {
    ensure(carry_[v], round + 1);
    carry_[v][round + 1] = at(carry_[v], round);
  }

  void on_compress(std::uint32_t round, VertexId m, VertexId child,
                   VertexId /*parent*/) override {
    ensure(carry_[child], round + 1);
    carry_[child][round + 1] =
        combine_(at(carry_[child], round),
                 combine_(at(s_[m], round), at(carry_[m], round)));
  }

 private:
  // Histories grow lazily; a missing slot reads as identity (e.g. the
  // round-0 carry, or weights never staged).
  const T& at(const std::vector<T>& h, std::uint32_t i) const {
    return i < h.size() ? h[i] : identity_;
  }
  void ensure(std::vector<T>& h, std::uint32_t round) {
    if (h.size() <= round) h.resize(round + 1, identity_);
  }

  const contract::ContractionForest& c_;
  T identity_;
  Combine combine_;
  std::vector<std::vector<T>> s_;      // S[v][i]
  std::vector<std::vector<T>> carry_;  // C[v][i]
};

}  // namespace parct::rc
