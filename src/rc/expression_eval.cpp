#include "rc/expression_eval.hpp"

#include <cassert>
#include <stdexcept>

namespace parct::rc {

namespace {

// Linear form L(x) = a*x + b carried by each pending (compressed-over)
// edge towards the current parent.
struct Linear {
  double a = 1.0;
  double b = 0.0;
  double operator()(double x) const { return a * x + b; }
};

double op_identity(Op op) { return op == Op::kMul ? 1.0 : 0.0; }

double fold(Op op, double acc, double x) {
  switch (op) {
    case Op::kAdd: return acc + x;
    case Op::kMul: return acc * x;
    case Op::kLeaf: break;
  }
  throw std::logic_error("fold on a leaf node");
}

}  // namespace

ExpressionEvaluator::ExpressionEvaluator(
    const contract::ContractionForest& c, std::vector<ExprNode> nodes)
    : c_(c), nodes_(std::move(nodes)) {
  nodes_.resize(c_.capacity());
  evaluate();
}

void ExpressionEvaluator::evaluate() {
  const std::size_t cap = c_.capacity();
  value_.assign(cap, 0.0);
  std::vector<double> acc(cap);
  std::vector<Linear> lin(cap);
  std::uint32_t max_d = 0;
  for (VertexId v = 0; v < cap; ++v) {
    acc[v] = op_identity(nodes_[v].op);
    lin[v] = Linear{};
    max_d = std::max(max_d, c_.duration(v));
  }

  // Bucket present vertices by death round and replay rounds in order.
  std::vector<std::vector<VertexId>> by_round(max_d);
  for (VertexId v = 0; v < cap; ++v) {
    if (c_.duration(v) > 0) by_round[c_.duration(v) - 1].push_back(v);
  }

  auto value_of = [&](VertexId v) {
    // Only called when v has no remaining children, so every child has
    // been folded into acc already.
    return nodes_[v].op == Op::kLeaf ? nodes_[v].value : acc[v];
  };

  for (std::uint32_t round = 0; round < max_d; ++round) {
    for (VertexId v : by_round[round]) {
      const contract::RoundRecord& r = c_.record(round, v);
      if (children_empty(r.children)) {
        if (r.parent == v) {
          value_[v] = value_of(v);  // finalize: whole tree evaluated
        } else {
          // Rake: deliver L_v(value(v)) to the parent's fold.
          const VertexId p = r.parent;
          acc[p] = fold(nodes_[p].op, acc[p], lin[v](value_of(v)));
        }
      } else {
        // Compress: v's value as a function of its remaining child u's
        // delivered value x is acc_v (+|*) L_u(x); compose with v's own
        // pending edge form so u now reports directly to v's parent.
        const VertexId u = only_child(r.children);
        assert(u != kNoVertex);
        if (nodes_[v].op == Op::kLeaf) {
          throw std::logic_error("leaf node has a child in the forest");
        }
        Linear lu = lin[u];
        Linear composed;
        if (nodes_[v].op == Op::kAdd) {
          composed.a = lin[v].a * lu.a;
          composed.b = lin[v].a * (lu.b + acc[v]) + lin[v].b;
        } else {  // kMul
          composed.a = lin[v].a * acc[v] * lu.a;
          composed.b = lin[v].a * acc[v] * lu.b + lin[v].b;
        }
        lin[u] = composed;
      }
    }
  }
}

}  // namespace parct::rc
