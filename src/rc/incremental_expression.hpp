// Self-adjusting expression evaluation: the incremental counterpart of
// rc::ExpressionEvaluator. Instead of replaying the whole contraction
// (O(n)) after every change, this value layer rides the dynamic update's
// re-execution hooks, so a structural edit to the expression forest
// (grafting/pruning subexpressions) re-evaluates only the affected region
// — O(m log((n+m)/m)) expected, like the structural update itself.
//
// Node model (same as expression_eval.hpp): internal vertices are n-ary
// sums or products, leaves carry constants. Per vertex and round we keep
//   acc[v][i]  — partial fold of children already raked into v;
//   lin[v][i]  — the linear form a*x + b pending on v's parent edge
//                (compresses compose these, exactly as in the replay
//                evaluator).
// Changing a leaf *constant* has no structural event to ride on: use
// rebuild(), or delete+re-insert the leaf's edge in a batch.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "parallel/parallel_for.hpp"
#include "rc/expression_eval.hpp"  // Op, ExprNode

namespace parct::rc {

class IncrementalExpression final : public contract::EventHooks {
 public:
  explicit IncrementalExpression(const contract::ContractionForest& c)
      : c_(c), nodes_(c.capacity()), acc_(c.capacity()),
        lin_(c.capacity()) {}

  /// Declares vertex v's operator / leaf constant. Call before the
  /// construction (or the update that adds v).
  void stage_node(VertexId v, const ExprNode& node) {
    grow(static_cast<std::size_t>(v) + 1);
    nodes_[v] = node;
  }

  const ExprNode& node(VertexId v) const { return nodes_[v]; }

  /// Value of the whole expression tree containing v: walks to the
  /// finalizing vertex (O(log n) expected) and reads its final value.
  double value(VertexId v) const {
    VertexId x = v;
    for (;;) {
      const std::uint32_t d = c_.duration(x);
      const contract::RoundRecord& last = c_.record(d - 1, x);
      if (last.parent == x && children_empty(last.children)) {
        return value_of(x, d - 1);
      }
      x = last.parent;
    }
  }

  /// Full recomputation from the staged nodes (O(total records)); needed
  /// after changing a leaf constant in place.
  void rebuild() {
    grow(c_.capacity());
    std::uint32_t max_d = 0;
    for (VertexId v = 0; v < c_.capacity(); ++v) {
      const std::uint32_t d = c_.duration(v);
      max_d = std::max(max_d, d);
      if (d == 0) continue;
      acc_[v].assign(d, op_identity(nodes_[v].op));
      lin_[v].assign(d, Lin{});
    }
    if (max_d == 0) return;
    std::vector<std::vector<VertexId>> alive_at(max_d);
    for (VertexId v = 0; v < c_.capacity(); ++v) {
      for (std::uint32_t i = 1; i < c_.duration(v); ++i) {
        alive_at[i].push_back(v);
      }
    }
    for (std::uint32_t i = 1; i < max_d; ++i) {
      // Within a round, vertices only read round-(i-1) values and write
      // their own round-i slot: parallel-safe.
      par::parallel_for(0, alive_at[i].size(), [&](std::size_t k) {
        const VertexId v = alive_at[i][k];
        recompute_acc(i - 1, v);
        const VertexId p_now = c_.record(i, v).parent;
        if (p_now == v) return;
        const VertexId p_before = c_.record(i - 1, v).parent;
        if (p_before == p_now) {
          lin_[v][i] = at_lin(v, i - 1);
        } else {
          lin_[v][i] = composed(p_before, v, i - 1);
        }
      });
    }
  }

  // --- EventHooks -------------------------------------------------------

  void on_begin(std::size_t capacity) override { grow(capacity); }

  void on_vertex_persist(std::uint32_t round, VertexId v) override {
    recompute_acc(round, v);
  }

  void on_edge_persist(std::uint32_t round, VertexId v,
                       VertexId /*parent*/) override {
    ensure(lin_[v], round + 1, Lin{});
    lin_[v][round + 1] = at_lin(v, round);
  }

  void on_compress(std::uint32_t round, VertexId m, VertexId child,
                   VertexId /*parent*/) override {
    ensure(lin_[child], round + 1, Lin{});
    lin_[child][round + 1] = composed(m, child, round);
  }

 private:
  struct Lin {
    double a = 1.0;
    double b = 0.0;
    double operator()(double x) const { return a * x + b; }
  };

  static double op_identity(Op op) { return op == Op::kMul ? 1.0 : 0.0; }

  double at_acc(VertexId v, std::uint32_t i) const {
    return i < acc_[v].size() ? acc_[v][i] : op_identity(nodes_[v].op);
  }
  Lin at_lin(VertexId v, std::uint32_t i) const {
    return i < lin_[v].size() ? lin_[v][i] : Lin{};
  }

  // Value v delivers once childless (all children folded).
  double value_of(VertexId v, std::uint32_t i) const {
    return nodes_[v].op == Op::kLeaf ? nodes_[v].value : at_acc(v, i);
  }

  // acc at round+1: fold children raking this round into the running acc.
  void recompute_acc(std::uint32_t round, VertexId v) {
    double acc = at_acc(v, round);
    const contract::RoundRecord& r = c_.record(round, v);
    for (VertexId ch : r.children) {
      if (ch == kNoVertex) continue;
      if (!children_empty(c_.record(round, ch).children)) continue;
      const double x = at_lin(ch, round)(value_of(ch, round));
      switch (nodes_[v].op) {
        case Op::kAdd: acc += x; break;
        case Op::kMul: acc *= x; break;
        case Op::kLeaf:
          throw std::logic_error("leaf vertex has a child in the forest");
      }
    }
    ensure(acc_[v], round + 1, op_identity(nodes_[v].op));
    acc_[v][round + 1] = acc;
  }

  // New linear form for `child` when `m` (its parent) compresses at
  // `round`: x -> lin_m( acc_m op_m lin_child(x) ).
  Lin composed(VertexId m, VertexId child, std::uint32_t round) const {
    const Lin lm = at_lin(m, round);
    const Lin lu = at_lin(child, round);
    const double am = at_acc(m, round);
    Lin out;
    if (nodes_[m].op == Op::kAdd) {
      out.a = lm.a * lu.a;
      out.b = lm.a * (lu.b + am) + lm.b;
    } else if (nodes_[m].op == Op::kMul) {
      out.a = lm.a * am * lu.a;
      out.b = lm.a * am * lu.b + lm.b;
    } else {
      throw std::logic_error("leaf vertex compressed over a child");
    }
    return out;
  }

  template <typename T>
  static void ensure(std::vector<T>& h, std::uint32_t round,
                     const T& fill) {
    if (h.size() <= round) h.resize(round + 1, fill);
  }

  void grow(std::size_t capacity) {
    if (nodes_.size() < capacity) {
      nodes_.resize(capacity);
      acc_.resize(capacity);
      lin_.resize(capacity);
    }
  }

  const contract::ContractionForest& c_;
  std::vector<ExprNode> nodes_;
  std::vector<std::vector<double>> acc_;
  std::vector<std::vector<Lin>> lin_;
};

}  // namespace parct::rc
