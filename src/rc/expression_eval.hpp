// Expression-tree evaluation by replaying a recorded contraction — the
// classic Miller-Reif tree-contraction application. Internal nodes are
// n-ary sums or products, leaves hold constants; the replay folds raked
// children into their parent's partial result and composes linear forms
// a*x + b across compresses, so every tree's value is available at its
// root after O(n) replay work.
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "forest/types.hpp"

namespace parct::rc {

enum class Op : std::uint8_t { kLeaf, kAdd, kMul };

struct ExprNode {
  Op op = Op::kLeaf;
  double value = 0.0;  // leaves only
};

class ExpressionEvaluator {
 public:
  /// `nodes[v]` describes vertex v of the (already constructed) structure.
  /// Leaves must actually be childless in the round-0 forest; internal
  /// nodes must not be.
  ExpressionEvaluator(const contract::ContractionForest& c,
                      std::vector<ExprNode> nodes);

  /// Replays the contraction and computes every tree's value. Call again
  /// after a dynamic update to the structure. O(total records).
  void evaluate();

  /// Value of the (sub)expression tree whose *root* is the finalizing
  /// vertex r — i.e. the whole tree containing r. Precondition: r
  /// finalized (is a root of the round-0 forest).
  double value_at_root(VertexId r) const { return value_[r]; }

  /// Updates a leaf's constant; re-evaluation is required afterwards.
  void set_leaf(VertexId v, double value) { nodes_[v].value = value; }

 private:
  const contract::ContractionForest& c_;
  std::vector<ExprNode> nodes_;
  std::vector<double> value_;  // final value at finalizing vertices
};

}  // namespace parct::rc
