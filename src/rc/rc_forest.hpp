// RC-forest application layer: queries answered from the contraction data
// structure, in the style of RC-trees (paper refs [2, 4], the application
// the paper motivates).
//
// Key derived notion: every vertex dies by finalizing, raking or
// compressing (paper §2.2); rakes and compresses merge the vertex into its
// current *parent*, which dies strictly later. Following these
// "representative" links therefore climbs a chain of strictly increasing
// death rounds and ends, in O(log n) expected steps, at the unique
// finalizing vertex of the tree — its root. This gives O(log n) root
// finding and connectivity on the dynamically maintained forest.
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "forest/types.hpp"

namespace parct::rc {

enum class EventKind : std::uint8_t {
  kAbsent = 0,  // vertex not in the forest
  kFinalize,
  kRake,
  kCompress,
};

struct Event {
  EventKind kind = EventKind::kAbsent;
  std::uint32_t round = 0;        // contraction round the vertex dies in
  VertexId into = kNoVertex;      // merge target (parent); kNoVertex if none
  VertexId over = kNoVertex;      // compress only: the child handed over
};

class RCForest {
 public:
  /// Derives all events from `c` (which must be fully constructed). Keeps
  /// a reference to `c`; call `rebuild` (or `refresh`) after updates.
  explicit RCForest(const contract::ContractionForest& c);

  /// Re-derives every vertex's event. O(capacity).
  void rebuild();

  /// Re-derives events of `vertices` only — pass the vertices touched by a
  /// dynamic update (collected via EventHooks contraction events) plus any
  /// vertices removed by the batch (V-; they fire no event), for work
  /// proportional to the affected region.
  void refresh(const std::vector<VertexId>& vertices);

  const contract::ContractionForest& structure() const { return c_; }

  /// Number of vertex slots with derived events (== the structure's
  /// capacity at the last rebuild/refresh) — the bound for valid ids.
  std::size_t size() const { return events_.size(); }

  bool present(VertexId v) const {
    return v < events_.size() && events_[v].kind != EventKind::kAbsent;
  }
  const Event& event(VertexId v) const { return events_[v]; }

  /// The derived event table itself — what the serving layer copies into
  /// an immutable snapshot (service/snapshot.hpp).
  const std::vector<Event>& events() const { return events_; }

  /// The vertex v merges into at death (kNoVertex for finalizers).
  VertexId representative(VertexId v) const { return events_[v].into; }

  /// Root of v's tree: climbs the representative chain, O(log n) expected.
  VertexId root(VertexId v) const;

  /// Same-tree query via root(), O(log n) expected.
  bool connected(VertexId u, VertexId v) const {
    return root(u) == root(v);
  }

  /// Steps taken by root(v) — exposed for the O(log n) property tests.
  std::size_t chain_length(VertexId v) const;

 private:
  void derive(VertexId v);

  const contract::ContractionForest& c_;
  std::vector<Event> events_;
};

}  // namespace parct::rc
