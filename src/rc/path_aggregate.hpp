// Dynamic path-to-root aggregates over the contraction structure — the
// RC-tree capability of Acar et al. [2, 4] realized on the paper's
// parallel-dynamic structure.
//
// Every edge (v -> parent) carries a value from a monoid (T, combine,
// identity); `path_to_root(v)` returns the bottom-to-top combination of
// the edge values on the path from v to its tree root, in O(log n)
// expected time. Typical instantiations: + for total length/latency, max
// for bottleneck edges, min for capacities.
//
// How it works: vals[v][i] is the aggregate of the *original* edges
// covered by the round-i contracted edge (v -> P[i][v]). Rounds maintain
// it with two rules, driven by the contraction event hooks:
//   * the edge persists:            vals[v][i+1] = vals[v][i]
//   * parent m compresses (u-m-p):  vals[u][i+1] = vals[u][i] (+) vals[m][i]
// At v's death, vals[v][D-1] therefore aggregates the whole original path
// from v to the vertex it merges into — so climbing the representative
// chain (O(log n) hops) and combining those values yields the full path
// to the root. The same hooks fire during dynamic updates for exactly the
// re-executed region, so the value layer stays consistent under batched
// edge/vertex changes at no extra asymptotic cost.
//
// Weight changes: a weight belongs to a round-0 edge. Stage weights for
// edges *inserted by a batch* with stage_edge_weight() BEFORE apply().
// To change the weight of an existing edge, delete and re-insert it in a
// batch (the re-execution repropagates values), or call rebuild().
#pragma once

#include <cstdint>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/hooks.hpp"
#include "parallel/parallel_for.hpp"

namespace parct::rc {

template <typename T, typename Combine>
class PathAggregate final : public contract::EventHooks {
 public:
  /// Binds to `c` (not yet constructed or already constructed — call
  /// rebuild() in the latter case after staging weights). Pass `*this` as
  /// the hooks argument of contract::construct and DynamicUpdater::apply.
  PathAggregate(const contract::ContractionForest& c, T identity,
                Combine combine = Combine{})
      : c_(c), identity_(identity), combine_(combine),
        vals_(c.capacity()) {}

  /// Sets the round-0 weight of v's parent edge. Call before the
  /// construction / the update that creates the edge.
  void stage_edge_weight(VertexId v, const T& w) {
    if (vals_.size() <= v) vals_.resize(static_cast<std::size_t>(v) + 1);
    auto& h = vals_[v];
    if (h.empty()) h.resize(1, identity_);
    h[0] = w;
  }

  const T& edge_weight(VertexId v) const { return vals_[v][0]; }

  /// The structure the aggregate is bound to (validity checks in the batch
  /// query layer) and the monoid identity (the defined result for invalid
  /// ids there).
  const contract::ContractionForest& structure() const { return c_; }
  const T& identity() const { return identity_; }

  /// Aggregate of edge values from v up to its tree root (identity for
  /// roots). O(log n) expected.
  T path_to_root(VertexId v) const {
    T acc = identity_;
    VertexId x = v;
    for (;;) {
      const std::uint32_t d = c_.duration(x);
      const contract::RoundRecord& last = c_.record(d - 1, x);
      if (last.parent == x) break;  // finalize: reached the root
      acc = combine_(acc, vals_[x][d - 1]);
      x = last.parent;
    }
    return acc;
  }

  /// Recomputes every per-round value from the round-0 weights by
  /// replaying the recorded rounds. O(total records).
  void rebuild() {
    const std::size_t cap = c_.capacity();
    vals_.resize(cap);
    std::uint32_t max_d = 0;
    for (VertexId v = 0; v < cap; ++v) {
      const std::uint32_t d = c_.duration(v);
      max_d = std::max(max_d, d);
      auto& h = vals_[v];
      if (d == 0) continue;
      const T base = h.empty() ? identity_ : h[0];
      h.assign(d, identity_);
      h[0] = base;
    }
    if (max_d == 0) return;
    // Per-round lists of vertices alive in that round (O(total records)).
    std::vector<std::vector<VertexId>> alive_at(max_d);
    for (VertexId v = 0; v < cap; ++v) {
      for (std::uint32_t i = 1; i < c_.duration(v); ++i) {
        alive_at[i].push_back(v);
      }
    }
    for (std::uint32_t i = 1; i < max_d; ++i) {
      // Within a round, vertices only read round-(i-1) values and write
      // their own round-i slot: parallel-safe.
      par::parallel_for(0, alive_at[i].size(), [&](std::size_t k) {
        const VertexId v = alive_at[i][k];
        const VertexId p_now = c_.record(i, v).parent;
        if (p_now == v) return;  // root: no edge value
        const VertexId p_before = c_.record(i - 1, v).parent;
        if (p_before == p_now) {
          vals_[v][i] = vals_[v][i - 1];
        } else {
          // p_before compressed between v and p_now in round i-1.
          vals_[v][i] =
              combine_(vals_[v][i - 1], vals_[p_before][i - 1]);
        }
      });
    }
  }

  // --- EventHooks (called by construct / DynamicUpdater) ---------------

  void on_begin(std::size_t capacity) override {
    if (vals_.size() < capacity) vals_.resize(capacity);
  }

  void on_edge_persist(std::uint32_t round, VertexId v,
                       VertexId /*parent*/) override {
    ensure(v, round + 1);
    vals_[v][round + 1] = vals_[v][round];
  }

  void on_compress(std::uint32_t round, VertexId m, VertexId child,
                   VertexId /*parent*/) override {
    ensure(child, round + 1);
    vals_[child][round + 1] =
        combine_(vals_[child][round], vals_[m][round]);
  }

 private:
  void ensure(VertexId v, std::uint32_t round) {
    // The outer vector was sized by on_begin; growing the per-vertex
    // history here is single-writer (see the hook contract).
    auto& h = vals_[v];
    if (h.size() <= round) h.resize(round + 1, identity_);
  }

  const contract::ContractionForest& c_;
  T identity_;
  Combine combine_;
  std::vector<std::vector<T>> vals_;
};

struct PathPlus {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct PathMax {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a > b ? a : b;
  }
};

}  // namespace parct::rc
