// Batched, parallel query entry points: answer many independent queries
// over the maintained structure with one parallel_for. Queries are
// read-only pointer chases over the contraction records, so they scale
// embarrassingly — this is where a parallel dynamic structure pays off on
// the query side too.
//
// The root/connectivity entry points are templated on a *view*: any type
// exposing `size()`, `present(v)` and `root(v)` (called only on present
// ids). Both the live rc::RCForest and the serving layer's immutable
// service::Snapshot satisfy the concept, so the same batch code answers
// ad-hoc queries against the live structure and epoch-pinned queries
// against a snapshot.
//
// Out-of-range / stale vertex ids: every entry point debug-asserts that
// each queried id is in range and present. In release builds an invalid id
// has a *defined* result instead of walking garbage pointer chains:
// kNoVertex from batch_roots, 0 (not connected) from batch_connected, T{}
// from batch_tree_weights, and the aggregate's identity from
// batch_paths_to_root.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/annotations.hpp"
#include "analysis/shadow_keys.hpp"
#include "parallel/parallel_for.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::rc {

namespace detail {

/// In range and present in the view — the precondition of every
/// per-vertex query.
template <typename View>
bool valid_query(const View& view, VertexId v) {
  return v < view.size() && view.present(v);
}

}  // namespace detail

/// roots[i] = root of queries[i]'s tree (kNoVertex for invalid ids).
template <typename View>
std::vector<VertexId> batch_roots(const View& view,
                                  const std::vector<VertexId>& queries) {
  std::vector<VertexId> out(queries.size());
  PARCT_SHADOW_BUFFER(out_buf);
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(out_buf, i));
    const VertexId v = queries[i];
    assert(detail::valid_query(view, v) &&
           "batch_roots: out-of-range or absent vertex id");
    out[i] = detail::valid_query(view, v) ? view.root(v) : kNoVertex;
  });
  return out;
}

/// result[i] = whether the i-th pair is in the same tree (0 if either id
/// is invalid).
template <typename View>
std::vector<std::uint8_t> batch_connected(
    const View& view,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  std::vector<std::uint8_t> out(pairs.size());
  PARCT_SHADOW_BUFFER(out_buf);
  par::parallel_for(0, pairs.size(), [&](std::size_t i) {
    const VertexId u = pairs[i].first;
    const VertexId v = pairs[i].second;
    assert(detail::valid_query(view, u) && detail::valid_query(view, v) &&
           "batch_connected: out-of-range or absent vertex id");
    PARCT_SHADOW_WRITE(analysis::buffer_cell(out_buf, i));
    out[i] = detail::valid_query(view, u) && detail::valid_query(view, v) &&
                     view.root(u) == view.root(v)
                 ? 1
                 : 0;
  });
  return out;
}

/// result[i] = total weight of queries[i]'s tree (T{} for invalid ids).
/// `agg` must be the aggregate maintained over `rcf` (debug-asserted); the
/// forest argument is what supplies the per-id validity check.
template <typename T>
std::vector<T> batch_tree_weights(const RCForest& rcf,
                                  const TreeAggregate<T>& agg,
                                  const std::vector<VertexId>& queries) {
  assert(&agg.forest() == &rcf &&
         "batch_tree_weights: aggregate is bound to a different RCForest");
  std::vector<T> out(queries.size());
  PARCT_SHADOW_BUFFER(out_buf);
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(out_buf, i));
    const VertexId v = queries[i];
    assert(detail::valid_query(rcf, v) &&
           "batch_tree_weights: out-of-range or absent vertex id");
    out[i] = detail::valid_query(rcf, v) ? agg.tree_weight(v) : T{};
  });
  return out;
}

/// result[i] = path-to-root aggregate of queries[i] (the aggregate's
/// identity for invalid ids).
template <typename T, typename Combine>
std::vector<T> batch_paths_to_root(const PathAggregate<T, Combine>& agg,
                                   const std::vector<VertexId>& queries) {
  const contract::ContractionForest& c = agg.structure();
  std::vector<T> out(queries.size());
  PARCT_SHADOW_BUFFER(out_buf);
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(out_buf, i));
    const VertexId v = queries[i];
    const bool valid = v < c.capacity() && c.duration(v) > 0;
    assert(valid && "batch_paths_to_root: out-of-range or absent vertex id");
    out[i] = valid ? agg.path_to_root(v) : agg.identity();
  });
  return out;
}

}  // namespace parct::rc
