// Batched, parallel query entry points: answer many independent queries
// over the maintained structure with one parallel_for. Queries are
// read-only pointer chases over the contraction records, so they scale
// embarrassingly — this is where a parallel dynamic structure pays off on
// the query side too.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::rc {

/// roots[i] = root of queries[i]'s tree.
inline std::vector<VertexId> batch_roots(
    const RCForest& rcf, const std::vector<VertexId>& queries) {
  std::vector<VertexId> out(queries.size());
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    out[i] = rcf.root(queries[i]);
  });
  return out;
}

/// result[i] = whether the i-th pair is in the same tree.
inline std::vector<std::uint8_t> batch_connected(
    const RCForest& rcf,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  std::vector<std::uint8_t> out(pairs.size());
  par::parallel_for(0, pairs.size(), [&](std::size_t i) {
    out[i] = rcf.connected(pairs[i].first, pairs[i].second) ? 1 : 0;
  });
  return out;
}

/// result[i] = total weight of queries[i]'s tree.
template <typename T>
std::vector<T> batch_tree_weights(const RCForest& rcf,
                                  const TreeAggregate<T>& agg,
                                  const std::vector<VertexId>& queries) {
  (void)rcf;
  std::vector<T> out(queries.size());
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    out[i] = agg.tree_weight(queries[i]);
  });
  return out;
}

/// result[i] = path-to-root aggregate of queries[i].
template <typename T, typename Combine>
std::vector<T> batch_paths_to_root(const PathAggregate<T, Combine>& agg,
                                   const std::vector<VertexId>& queries) {
  std::vector<T> out(queries.size());
  par::parallel_for(0, queries.size(), [&](std::size_t i) {
    out[i] = agg.path_to_root(queries[i]);
  });
  return out;
}

}  // namespace parct::rc
