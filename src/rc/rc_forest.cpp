#include "rc/rc_forest.hpp"

#include <cassert>

#include "analysis/annotations.hpp"
#include "analysis/shadow_keys.hpp"
#include "parallel/parallel_for.hpp"

namespace parct::rc {

RCForest::RCForest(const contract::ContractionForest& c) : c_(c) {
  rebuild();
}

void RCForest::derive(VertexId v) {
  const std::uint32_t d = c_.duration(v);
  if (d == 0) {
    events_[v] = Event{};
    return;
  }
  const std::uint32_t round = d - 1;
  const contract::RoundRecord& r = c_.record(round, v);
  Event e;
  e.round = round;
  if (children_empty(r.children)) {
    if (r.parent == v) {
      e.kind = EventKind::kFinalize;
      e.into = kNoVertex;
    } else {
      e.kind = EventKind::kRake;
      e.into = r.parent;
    }
  } else {
    e.kind = EventKind::kCompress;
    e.into = r.parent;
    e.over = only_child(r.children);
    assert(e.over != kNoVertex && "compress event requires a single child");
  }
  events_[v] = e;
}

void RCForest::rebuild() {
  events_.assign(c_.capacity(), Event{});
  par::parallel_for(0, c_.capacity(), [&](std::size_t v) {
    // derive() writes exactly events_[v]; v is distinct per iteration, so
    // the detector proves the fan-out disjoint.
    PARCT_SHADOW_WRITE(
        analysis::scratch_cell(analysis::ShadowArray::kRCEvents, v));
    derive(static_cast<VertexId>(v));
  });
}

// refresh() is deliberately NOT shadow-annotated (see
// tools/shadow_coverage_allowlist.txt): touched-vertex lists may repeat a
// vertex across rounds of one update, so two iterations can write the
// same events_[v] cell. The writes are idempotent (derive is a pure
// function of the current records), but the SP-bags detector has no
// idempotence notion and would report the duplicate as a race.

void RCForest::refresh(const std::vector<VertexId>& vertices) {
  if (c_.capacity() > events_.size()) {
    events_.resize(c_.capacity());
  }
  par::parallel_for(0, vertices.size(), [&](std::size_t k) {
    derive(vertices[k]);
  });
}

VertexId RCForest::root(VertexId v) const {
  assert(present(v));
  while (events_[v].into != kNoVertex) v = events_[v].into;
  return v;
}

std::size_t RCForest::chain_length(VertexId v) const {
  std::size_t steps = 0;
  while (events_[v].into != kNoVertex) {
    v = events_[v].into;
    ++steps;
  }
  return steps;
}

}  // namespace parct::rc
