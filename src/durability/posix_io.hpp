// Internal POSIX file-descriptor helpers for the durability layer: RAII
// fd ownership, full-buffer writes, and the durable-sync points where the
// `durability-fsync` fault site is armed. The durability layer writes
// through raw fds (not std::ofstream) so that fsync and O_APPEND are
// available and write errors are never swallowed by stream state — the
// `durability-io` lint rule keeps other service/durability code off ad-hoc
// file output entirely.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fault/fault_injection.hpp"

namespace parct::durability::detail {

/// Move-only owner of a POSIX file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

inline std::runtime_error io_error(const std::string& what,
                                   const std::string& path) {
  return std::runtime_error("parct::durability: " + what + " '" + path +
                            "': " + std::strerror(errno));
}

/// O_WRONLY|O_CREAT|O_TRUNC — a fresh file (WAL segment, checkpoint tmp).
inline Fd open_trunc(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw io_error("cannot create", path);
  return Fd(fd);
}

/// Writes all `n` bytes (retrying short writes); throws on any error.
inline void write_fully(const Fd& fd, const char* data, std::size_t n,
                        const std::string& path) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd.get(), data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw io_error("write failed on", path);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// fsync with the `durability-fsync` fault site armed in front of it: a
/// firing hit throws InjectedFault *before* the data is forced to disk,
/// modelling a crash with the bytes still in the page cache.
inline void durable_sync(const Fd& fd, const std::string& path) {
  if (PARCT_FAULT_POINT(fault::Site::kDurabilityFsync)) {
    throw fault::InjectedFault(fault::Site::kDurabilityFsync);
  }
  if (::fsync(fd.get()) != 0) throw io_error("fsync failed on", path);
}

/// fsyncs a directory so a freshly created/renamed entry is durable.
inline void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw io_error("cannot open directory", dir);
  Fd d(fd);
  durable_sync(d, dir);
}

}  // namespace parct::durability::detail
