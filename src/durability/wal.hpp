// Write-ahead log for the BatchServer's admitted updates. One *segment*
// file (`wal-<base>.log`) holds the updates applied after service version
// <base>: the k-th record in the segment carries version base+k. Each
// record is length-prefixed and CRC32-trailed, and every append is
// fsync'd before the producing epoch publishes — an acknowledged update
// is durable. A torn final record (crash mid-append) is detected at
// recovery and dropped, never fatal. Formats in docs/DURABILITY.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "durability/posix_io.hpp"
#include "forest/change_set.hpp"
#include "forest/types.hpp"

namespace parct::durability {

/// Weight type persisted in WAL records and checkpoints. Must match
/// service::Weight (static_asserted in batch_server.cpp).
using Weight = long;

inline constexpr std::uint64_t kWalMagic = 0x50415243'5457414Cull;  // PARCTWAL
inline constexpr std::uint32_t kWalFormatVersion = 1;

/// One logged update: the version it produced, the change set, and the
/// post-repair vertex weight assignments — exactly the inputs
/// DynamicUpdater::apply and TreeAggregate::set_weight need at replay.
struct WalRecord {
  std::uint64_t version = 0;
  forest::ChangeSet batch;
  std::vector<std::pair<VertexId, Weight>> vertex_weights;
};

/// Appender over one WAL segment. Created fresh (truncating) — segments
/// are never re-opened for append; a recovered server starts a new
/// segment based at its recovered version.
class WalWriter {
 public:
  /// Creates `dir/wal-<base>.log` and durably writes the segment header.
  WalWriter(const std::string& dir, std::uint64_t base_version);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and fsyncs it. Throws (std::runtime_error or
  /// fault::InjectedFault) on failure — the segment tail may then be torn,
  /// which recovery detects and drops.
  void append(const WalRecord& rec);

  std::uint64_t base_version() const { return base_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  detail::Fd fd_;
  std::uint64_t base_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// What a segment scan yields: the longest intact record prefix. `clean`
/// is false when a torn or CRC-corrupt tail was dropped (including a
/// torn segment header, which yields zero records).
struct SegmentContents {
  std::uint64_t base_version = 0;
  std::vector<WalRecord> records;
  bool clean = true;
};

/// Reads one segment file. Corruption never throws past the first bad
/// byte — the scan stops and returns the intact prefix. Throws only if
/// the file cannot be opened at all.
SegmentContents read_wal_segment(const std::string& path);

/// `wal-<base>.log` naming: base version of a segment file name, or
/// nullopt if `filename` is not a WAL segment name.
std::optional<std::uint64_t> wal_base_of(const std::string& filename);
std::string wal_filename(std::uint64_t base_version);

}  // namespace parct::durability
