#include "durability/wal.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "durability/crc32.hpp"

namespace parct::durability {

namespace {

constexpr std::uint64_t kMaxWeightPairs = 1ull << 32;

template <typename T>
void put(std::string& out, const T& value) {
  const char* p = reinterpret_cast<const char*>(&value);
  out.append(p, sizeof value);
}

// Cursor-based reads over an in-memory segment image. Returns false on
// exhaustion instead of throwing: a short read *is* the torn-tail signal.
template <typename T>
bool get(const std::string& buf, std::size_t& pos, T& value) {
  if (pos > buf.size() || buf.size() - pos < sizeof value) return false;
  std::memcpy(&value, buf.data() + pos, sizeof value);
  pos += sizeof value;
  return true;
}

// Record payload: format version (u16), service version (u64), the
// ChangeSet binary encoding, then the (vertex, weight) assignments.
std::string encode_payload(const WalRecord& rec) {
  std::ostringstream body;
  forest::save_change_set(rec.batch, body);
  std::string out;
  put(out, static_cast<std::uint16_t>(kWalFormatVersion));
  put(out, rec.version);
  out += body.str();
  put(out, static_cast<std::uint64_t>(rec.vertex_weights.size()));
  for (const auto& [v, w] : rec.vertex_weights) {
    put(out, v);
    put(out, static_cast<std::int64_t>(w));
  }
  return out;
}

bool decode_payload(const std::string& payload, WalRecord& rec) {
  std::size_t pos = 0;
  std::uint16_t fmt = 0;
  if (!get(payload, pos, fmt) || fmt != kWalFormatVersion) return false;
  if (!get(payload, pos, rec.version)) return false;
  // The ChangeSet decoder is stream-based; hand it the rest of the
  // payload and pick the cursor back up from the stream position.
  std::istringstream body(payload.substr(pos));
  try {
    rec.batch = forest::load_change_set(body);
  } catch (const std::runtime_error&) {
    return false;
  }
  const std::streampos consumed = body.tellg();
  if (consumed < 0) return false;
  pos += static_cast<std::size_t>(consumed);
  std::uint64_t n = 0;
  if (!get(payload, pos, n) || n > kMaxWeightPairs) return false;
  rec.vertex_weights.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    VertexId v = 0;
    std::int64_t w = 0;
    if (!get(payload, pos, v) || !get(payload, pos, w)) return false;
    rec.vertex_weights.emplace_back(v, static_cast<Weight>(w));
  }
  return pos == payload.size();
}

}  // namespace

std::string wal_filename(std::uint64_t base_version) {
  return "wal-" + std::to_string(base_version) + ".log";
}

std::optional<std::uint64_t> wal_base_of(const std::string& filename) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".log";
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const std::string_view digits(filename.data() + prefix.size(),
                                filename.size() - prefix.size() -
                                    suffix.size());
  std::uint64_t base = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), base);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return base;
}

WalWriter::WalWriter(const std::string& dir, std::uint64_t base_version)
    : path_(dir + "/" + wal_filename(base_version)), base_(base_version) {
  fd_ = detail::open_trunc(path_);
  std::string header;
  put(header, kWalMagic);
  put(header, kWalFormatVersion);
  put(header, base_);
  detail::write_fully(fd_, header.data(), header.size(), path_);
  detail::durable_sync(fd_, path_);
  bytes_ = header.size();
}

void WalWriter::append(const WalRecord& rec) {
  const std::string payload = encode_payload(rec);
  std::string frame;
  put(frame, static_cast<std::uint32_t>(payload.size()));
  put(frame, crc32(payload));
  frame += payload;
  // Fault site: a crash mid-append. A firing hit writes only a prefix of
  // the frame — a genuinely torn tail record for recovery to detect.
  if (PARCT_FAULT_POINT(fault::Site::kWalAppend)) {
    detail::write_fully(fd_, frame.data(), frame.size() / 2, path_);
    throw fault::InjectedFault(fault::Site::kWalAppend);
  }
  detail::write_fully(fd_, frame.data(), frame.size(), path_);
  detail::durable_sync(fd_, path_);
  ++records_;
  bytes_ += frame.size();
}

SegmentContents read_wal_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("parct::durability: cannot open WAL segment '" +
                             path + "'");
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string buf = raw.str();

  SegmentContents seg;
  std::size_t pos = 0;
  std::uint64_t magic = 0;
  std::uint32_t fmt = 0;
  if (!get(buf, pos, magic) || magic != kWalMagic || !get(buf, pos, fmt) ||
      fmt != kWalFormatVersion || !get(buf, pos, seg.base_version)) {
    // Torn or foreign header: the segment contributes nothing.
    seg.clean = false;
    return seg;
  }
  for (;;) {
    if (pos == buf.size()) break;  // clean end
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!get(buf, pos, len) || !get(buf, pos, crc) ||
        buf.size() - pos < len) {
      seg.clean = false;  // torn tail: frame header or payload cut short
      break;
    }
    const std::string payload = buf.substr(pos, len);
    pos += len;
    WalRecord rec;
    if (crc32(payload) != crc || !decode_payload(payload, rec)) {
      seg.clean = false;  // corrupt record: stop at the intact prefix
      break;
    }
    seg.records.push_back(std::move(rec));
  }
  return seg;
}

}  // namespace parct::durability
