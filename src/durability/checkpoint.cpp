#include "durability/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "contraction/serialize.hpp"
#include "durability/crc32.hpp"
#include "durability/posix_io.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::durability {

namespace {

constexpr std::uint32_t kSectionForest = 1;
constexpr std::uint32_t kSectionWeights = 2;
constexpr std::uint32_t kSectionCount = 2;
// A section larger than this is header corruption, not data: it bounds
// the substr allocation while parsing an untrusted file.
constexpr std::uint64_t kMaxSectionBytes = 1ull << 40;

template <typename T>
void put(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool get(const std::string& buf, std::size_t& pos, T& value) {
  if (pos > buf.size() || buf.size() - pos < sizeof value) return false;
  std::memcpy(&value, buf.data() + pos, sizeof value);
  pos += sizeof value;
  return true;
}

void append_section(std::string& out, std::uint32_t id,
                    const std::string& payload) {
  put(out, id);
  put(out, static_cast<std::uint64_t>(payload.size()));
  out += payload;
  put(out, crc32(payload));
}

[[noreturn]] void corrupt(const std::string& path, const char* what) {
  throw std::runtime_error("parct::durability: checkpoint '" + path +
                           "': " + what);
}

}  // namespace

std::string checkpoint_filename(std::uint64_t version) {
  return "checkpoint-" + std::to_string(version) + ".ckpt";
}

std::optional<std::uint64_t> checkpoint_version_of(
    const std::string& filename) {
  constexpr std::string_view prefix = "checkpoint-";
  constexpr std::string_view suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const std::string_view digits(filename.data() + prefix.size(),
                                filename.size() - prefix.size() -
                                    suffix.size());
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return v;
}

std::string write_checkpoint(const std::string& dir, std::uint64_t version,
                             const contract::ContractionForest& c,
                             const std::vector<Weight>& weights) {
  // Serialize both sections in memory first: the hardened save paths
  // throw on stream failure, and nothing touches the directory until the
  // full image is ready.
  std::ostringstream forest_bytes;
  contract::save(c, forest_bytes);
  std::ostringstream weight_bytes;
  rc::save_weight_table(weights, weight_bytes);

  std::string image;
  put(image, kCheckpointMagic);
  put(image, kCheckpointFormatVersion);
  put(image, version);
  put(image, kSectionCount);
  append_section(image, kSectionForest, forest_bytes.str());
  append_section(image, kSectionWeights, weight_bytes.str());

  const std::string final_path = dir + "/" + checkpoint_filename(version);
  const std::string tmp_path = final_path + ".tmp";
  {
    detail::Fd fd = detail::open_trunc(tmp_path);
    detail::write_fully(fd, image.data(), image.size(), tmp_path);
    detail::durable_sync(fd, tmp_path);
  }
  // Fault site: a crash between writing the temp file and publishing it.
  // A firing hit leaves only the .tmp, which recovery ignores.
  if (PARCT_FAULT_POINT(fault::Site::kDurabilityRename)) {
    throw fault::InjectedFault(fault::Site::kDurabilityRename);
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw detail::io_error("rename failed for", final_path);
  }
  detail::sync_dir(dir);
  return final_path;
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) corrupt(path, "cannot open");
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string buf = raw.str();

  std::size_t pos = 0;
  std::uint64_t magic = 0;
  std::uint32_t fmt = 0;
  std::uint64_t version = 0;
  std::uint32_t sections = 0;
  if (!get(buf, pos, magic) || magic != kCheckpointMagic) {
    corrupt(path, "bad magic");
  }
  if (!get(buf, pos, fmt) || fmt != kCheckpointFormatVersion) {
    corrupt(path, "unsupported container version");
  }
  if (!get(buf, pos, version)) corrupt(path, "truncated header");
  if (!get(buf, pos, sections) || sections != kSectionCount) {
    corrupt(path, "unexpected section count");
  }

  std::string forest_payload;
  std::string weight_payload;
  for (std::uint32_t s = 0; s < sections; ++s) {
    std::uint32_t id = 0;
    std::uint64_t len = 0;
    if (!get(buf, pos, id) || !get(buf, pos, len)) {
      corrupt(path, "truncated section header");
    }
    if (len > kMaxSectionBytes || buf.size() - pos < len) {
      corrupt(path, "truncated section payload");
    }
    std::string payload = buf.substr(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    std::uint32_t crc = 0;
    if (!get(buf, pos, crc)) corrupt(path, "truncated section trailer");
    if (crc32(payload) != crc) corrupt(path, "section CRC mismatch");
    if (id == kSectionForest) {
      forest_payload = std::move(payload);
    } else if (id == kSectionWeights) {
      weight_payload = std::move(payload);
    } else {
      corrupt(path, "unknown section id");
    }
  }
  if (pos != buf.size()) corrupt(path, "trailing bytes");
  if (forest_payload.empty() || weight_payload.empty()) {
    corrupt(path, "missing section");
  }

  std::istringstream forest_in(forest_payload);
  contract::ContractionForest forest = contract::load(forest_in);
  std::istringstream weight_in(weight_payload);
  std::vector<Weight> weights =
      rc::load_weight_table<Weight>(weight_in, forest.capacity());
  return Checkpoint{version, std::move(forest), std::move(weights)};
}

}  // namespace parct::durability
