// Durability manager: owns one durability directory — the newest
// checkpoints plus the WAL segment currently being appended — and the
// recovery procedure that turns that directory back into serving state.
//
// Single-writer: append/checkpoint/open_log are called from the server's
// engine (or step()) thread only. The counters are atomics because
// BatchServer::stats() reads them from arbitrary threads.
//
// Recovery invariants (docs/DURABILITY.md):
//   - the newest checkpoint that parses and CRC-checks wins; corrupt or
//     half-written (.tmp) files are skipped, never fatal;
//   - WAL segments replay in base-version order, and replay demands
//     contiguous versions from the checkpoint forward — a torn tail or a
//     gap ends replay at the last durable prefix;
//   - a later segment's base version fences earlier segments: records
//     beyond it were never acknowledged by the incarnation that wrote the
//     later segment, so they are discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/checkpoint.hpp"
#include "durability/wal.hpp"

namespace parct::durability {

/// What recover() hands back: the replayed structure, its weight table,
/// the version it represents, and how many WAL records were replayed on
/// top of the checkpoint.
struct RecoveredState {
  std::unique_ptr<contract::ContractionForest> forest;
  std::vector<Weight> weights;
  std::uint64_t version = 0;
  std::uint64_t replayed = 0;
};

class Manager {
 public:
  /// Binds to `dir`, creating the directory if it does not exist.
  explicit Manager(std::string dir);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  const std::string& dir() const { return dir_; }

  /// Opens a fresh WAL segment based at `version`, superseding any open
  /// one. Truncation of an existing same-named segment is safe: recovery
  /// only resumes at a version past every acknowledged record, so a
  /// same-based leftover holds only records recovery already discarded.
  void open_log(std::uint64_t version);

  /// Appends one admitted update (producing `version`) and fsyncs it.
  /// Requires open_log. Throws on failure — the caller must then treat
  /// in-memory state as ahead of durable state (fail-stop for updates).
  void append(std::uint64_t version, const forest::ChangeSet& batch,
              const std::vector<std::pair<VertexId, Weight>>& vertex_weights);

  /// Writes a checkpoint at `version`, rotates the WAL onto a segment
  /// based at `version`, and prunes files superseded by the kept
  /// checkpoints. Throws on failure with the previous checkpoint (and the
  /// current WAL segment) intact — the rename is the commit point.
  void checkpoint(const contract::ContractionForest& c,
                  const std::vector<Weight>& weights, std::uint64_t version);

  /// Loads the newest valid checkpoint in `dir` and replays the WAL tail
  /// through contract::DynamicUpdater. Throws std::runtime_error if no
  /// valid checkpoint exists.
  static RecoveredState recover(const std::string& dir);

  std::uint64_t wal_records() const {
    return wal_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t wal_bytes() const {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints_written() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// Checkpoints retained by pruning (plus every WAL segment the oldest
  /// kept checkpoint may still need).
  static constexpr std::size_t kKeepCheckpoints = 2;

 private:
  void prune();

  std::string dir_;
  std::unique_ptr<WalWriter> writer_;  // engine/step thread only
  std::atomic<std::uint64_t> wal_records_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

}  // namespace parct::durability
