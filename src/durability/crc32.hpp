// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges —
// the integrity check trailing every checkpoint section and WAL record
// (docs/DURABILITY.md). Table is computed at compile time; no state, no
// dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace parct::durability {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC32 of `n` bytes at `data`; chainable via `seed` (pass a previous
/// result to continue a running checksum).
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace parct::durability
