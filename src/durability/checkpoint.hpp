// Checkpoint container: one versioned file holding the contraction
// structure (contract::save) and the aggregate weight table
// (rc::save_weight_table) as CRC32-trailed sections. Written via temp
// file + fsync + atomic rename + directory fsync — the rename is the
// commit point, so a reader never observes a half-written checkpoint and
// a crashed writer leaves only an ignorable `.tmp`. Formats in
// docs/DURABILITY.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "durability/wal.hpp"

namespace parct::durability {

inline constexpr std::uint64_t kCheckpointMagic =
    0x50415243'54434B50ull;  // "PARCTCKP"
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

struct Checkpoint {
  std::uint64_t version = 0;
  contract::ContractionForest forest;
  std::vector<Weight> weights;
};

/// Writes `checkpoint-<version>.ckpt` into `dir` atomically; returns the
/// final path. Throws std::runtime_error (or fault::InjectedFault from
/// the `durability-fsync` / `durability-rename` sites) on failure — the
/// previous checkpoint is then still the newest valid one.
std::string write_checkpoint(const std::string& dir, std::uint64_t version,
                             const contract::ContractionForest& c,
                             const std::vector<Weight>& weights);

/// Parses and fully validates one checkpoint file (magic, per-section
/// CRC32, and the hardened contract::load / rc::load_weight_table
/// decoders). Throws std::runtime_error on any corruption or truncation.
Checkpoint read_checkpoint(const std::string& path);

/// `checkpoint-<version>.ckpt` naming: the version encoded in a file
/// name, or nullopt if `filename` is not a (final, non-tmp) checkpoint.
std::optional<std::uint64_t> checkpoint_version_of(
    const std::string& filename);
std::string checkpoint_filename(std::uint64_t version);

}  // namespace parct::durability
