#include "durability/manager.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "contraction/dynamic_update.hpp"

namespace parct::durability {

namespace fs = std::filesystem;

Manager::Manager(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("parct::durability: cannot create directory '" +
                             dir_ + "': " + ec.message());
  }
}

void Manager::open_log(std::uint64_t version) {
  writer_ = std::make_unique<WalWriter>(dir_, version);
}

void Manager::append(
    std::uint64_t version, const forest::ChangeSet& batch,
    const std::vector<std::pair<VertexId, Weight>>& vertex_weights) {
  if (!writer_) {
    throw std::runtime_error("parct::durability: append without open_log");
  }
  WalRecord rec;
  rec.version = version;
  rec.batch = batch;
  rec.vertex_weights = vertex_weights;
  writer_->append(rec);
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.store(writer_->bytes(), std::memory_order_relaxed);
}

void Manager::checkpoint(const contract::ContractionForest& c,
                         const std::vector<Weight>& weights,
                         std::uint64_t version) {
  write_checkpoint(dir_, version, c, weights);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  // Rotate only after the checkpoint committed: an exception above leaves
  // the current segment (which the previous checkpoint still needs) open.
  open_log(version);
  prune();
}

void Manager::prune() {
  std::vector<std::pair<std::uint64_t, fs::path>> ckpts;
  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto v = checkpoint_version_of(name)) {
      ckpts.emplace_back(*v, entry.path());
    } else if (const auto b = wal_base_of(name)) {
      segments.emplace_back(*b, entry.path());
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);  // crashed checkpoint write; best-effort
    }
  }
  if (ckpts.size() <= kKeepCheckpoints) {
    // Nothing superseded yet; leave every segment in place.
    return;
  }
  std::sort(ckpts.begin(), ckpts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::uint64_t oldest_kept = ckpts[kKeepCheckpoints - 1].first;
  for (std::size_t i = kKeepCheckpoints; i < ckpts.size(); ++i) {
    fs::remove(ckpts[i].second, ec);
  }
  // The oldest kept checkpoint (version V) replays records > V, which
  // live in the segment with the largest base <= V and everything after
  // it; segments entirely before that are superseded.
  std::uint64_t needed_base = 0;
  for (const auto& [base, path] : segments) {
    if (base <= oldest_kept) needed_base = std::max(needed_base, base);
  }
  for (const auto& [base, path] : segments) {
    if (base < needed_base) fs::remove(path, ec);
  }
}

RecoveredState Manager::recover(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> ckpts;
  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto v = checkpoint_version_of(name)) {
      ckpts.emplace_back(*v, entry.path());
    } else if (const auto b = wal_base_of(name)) {
      segments.emplace_back(*b, entry.path());
    }
    // Anything else (.tmp leftovers, foreign files) is ignored.
  }
  if (ec) {
    throw std::runtime_error("parct::durability: cannot scan directory '" +
                             dir + "': " + ec.message());
  }

  // Newest checkpoint that fully validates wins; corrupt ones are skipped.
  std::sort(ckpts.begin(), ckpts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::unique_ptr<contract::ContractionForest> forest;
  std::vector<Weight> weights;
  std::uint64_t version = 0;
  for (const auto& [v, path] : ckpts) {
    try {
      Checkpoint ckpt = read_checkpoint(path.string());
      forest = std::make_unique<contract::ContractionForest>(
          std::move(ckpt.forest));
      weights = std::move(ckpt.weights);
      version = ckpt.version;
      break;
    } catch (const std::runtime_error&) {
      continue;  // corrupt/truncated: fall back to the next-newest
    }
  }
  if (!forest) {
    throw std::runtime_error(
        "parct::durability: no valid checkpoint in directory '" + dir + "'");
  }

  // Replay the WAL tail: segments in base order, versions contiguous from
  // the checkpoint forward. A later segment's base fences earlier
  // segments — records beyond it were never acknowledged (the incarnation
  // that opened the later segment recovered to exactly its base).
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  contract::DynamicUpdater updater(*forest);
  std::uint64_t replayed = 0;
  std::uint64_t expected = version + 1;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::uint64_t fence = i + 1 < segments.size()
                                    ? segments[i + 1].first
                                    : std::uint64_t(-1);
    SegmentContents seg;
    try {
      seg = read_wal_segment(segments[i].second.string());
    } catch (const std::runtime_error&) {
      break;  // unreadable segment: stop at the durable prefix
    }
    bool gap = false;
    for (WalRecord& rec : seg.records) {
      if (rec.version < expected) continue;  // already in the checkpoint
      if (rec.version > fence || rec.version != expected) {
        gap = true;  // fenced or non-contiguous: end of the durable chain
        break;
      }
      updater.apply(rec.batch);
      if (weights.size() < forest->capacity()) {
        weights.resize(forest->capacity());
      }
      for (const auto& [v, w] : rec.vertex_weights) {
        // Mirror the serving path: weight assignments only land on
        // vertices the batch left present.
        if (v < forest->capacity() && forest->duration(v) > 0) {
          weights[v] = w;
        }
      }
      ++replayed;
      ++expected;
    }
    if (gap) break;
  }
  weights.resize(forest->capacity());

  RecoveredState out;
  out.forest = std::move(forest);
  out.weights = std::move(weights);
  out.version = expected - 1;
  out.replayed = replayed;
  return out;
}

}  // namespace parct::durability
