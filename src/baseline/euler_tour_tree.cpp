#include "baseline/euler_tour_tree.hpp"

#include <cassert>

#include "hashing/splitmix64.hpp"

namespace parct::baseline {

EulerTourTree::EulerTourTree(std::size_t n, std::uint64_t seed)
    : n_(n), nodes_(3 * n), linked_(n, 0) {
  hashing::SplitMix64 rng(seed);
  for (Node& node : nodes_) node.priority = rng.next();
}

void EulerTourTree::pull(NodeId x) {
  Node& nx = nodes_[x];
  nx.count = 1;
  nx.sum = nx.weight;
  if (nx.left != kNil) {
    nx.count += nodes_[nx.left].count;
    nx.sum += nodes_[nx.left].sum;
  }
  if (nx.right != kNil) {
    nx.count += nodes_[nx.right].count;
    nx.sum += nodes_[nx.right].sum;
  }
}

EulerTourTree::NodeId EulerTourTree::tree_root(NodeId x) const {
  while (nodes_[x].parent != kNil) x = nodes_[x].parent;
  return x;
}

EulerTourTree::NodeId EulerTourTree::merge(NodeId a, NodeId b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].priority >= nodes_[b].priority) {
    const NodeId r = merge(nodes_[a].right, b);
    nodes_[a].right = r;
    nodes_[r].parent = a;
    pull(a);
    return a;
  }
  const NodeId l = merge(a, nodes_[b].left);
  nodes_[b].left = l;
  nodes_[l].parent = b;
  pull(b);
  return b;
}

std::pair<EulerTourTree::NodeId, EulerTourTree::NodeId>
EulerTourTree::split_before(NodeId x) {
  // Finger split: detach x's left subtree (it precedes x), then walk to
  // the treap root folding each ancestor (and its other subtree) into the
  // correct side.
  NodeId l = nodes_[x].left;
  if (l != kNil) nodes_[l].parent = kNil;
  nodes_[x].left = kNil;
  pull(x);
  NodeId r = x;

  NodeId child = x;
  NodeId par = nodes_[x].parent;
  nodes_[x].parent = kNil;
  while (par != kNil) {
    const NodeId grand = nodes_[par].parent;
    const bool child_was_left = nodes_[par].left == child;
    nodes_[par].parent = kNil;
    if (child_was_left) {
      // par and its right subtree come after x: fold into the right part.
      nodes_[par].left = r;
      if (r != kNil) nodes_[r].parent = par;
      pull(par);
      r = par;
    } else {
      // par and its left subtree come before x: fold into the left part.
      nodes_[par].right = l;
      if (l != kNil) nodes_[l].parent = par;
      pull(par);
      l = par;
    }
    child = par;
    par = grand;
  }
  return {l, r};
}

std::pair<EulerTourTree::NodeId, EulerTourTree::NodeId>
EulerTourTree::split_after(NodeId x) {
  NodeId r = nodes_[x].right;
  if (r != kNil) nodes_[r].parent = kNil;
  nodes_[x].right = kNil;
  pull(x);
  NodeId l = x;

  NodeId child = x;
  NodeId par = nodes_[x].parent;
  nodes_[x].parent = kNil;
  while (par != kNil) {
    const NodeId grand = nodes_[par].parent;
    const bool child_was_left = nodes_[par].left == child;
    nodes_[par].parent = kNil;
    if (child_was_left) {
      nodes_[par].left = r;
      if (r != kNil) nodes_[r].parent = par;
      pull(par);
      r = par;
    } else {
      nodes_[par].right = l;
      if (l != kNil) nodes_[l].parent = par;
      pull(par);
      l = par;
    }
    child = par;
    par = grand;
  }
  return {l, r};
}

void EulerTourTree::link(VertexId child, VertexId parent) {
  assert(!linked_[child] && "link requires the child to be a root");
  assert(!connected(child, parent) && "link would create a cycle");
  const NodeId tc = tree_root(loop(child));
  auto [a, b] = split_after(loop(parent));
  // a ends at loop(parent); insert down(child) + tour(child) + up(child).
  NodeId seq = merge(a, down(child));
  seq = merge(seq, tc);
  seq = merge(seq, up(child));
  merge(seq, b);
  linked_[child] = 1;
}

void EulerTourTree::cut(VertexId child) {
  assert(linked_[child] && "cut requires a non-root vertex");
  auto [a, rest] = split_before(down(child));
  auto [mid, b] = split_after(up(child));
  // mid = down(child) tour(child) up(child); strip the two arc nodes.
  auto [d, inner_with_up] = split_after(down(child));
  (void)d;  // single node [down(child)], now detached
  auto [inner, u] = split_before(up(child));
  (void)u;  // single node [up(child)], now detached
  (void)inner;  // child's tour is now its own treap
  (void)mid;
  merge(a, b);
  linked_[child] = 0;
}

bool EulerTourTree::connected(VertexId u, VertexId v) const {
  return tree_root(loop(u)) == tree_root(loop(v));
}

void EulerTourTree::set_weight(VertexId v, long w) {
  NodeId x = loop(v);
  nodes_[x].weight = w;
  while (x != kNil) {
    pull(x);
    x = nodes_[x].parent;
  }
}

long EulerTourTree::component_sum(VertexId v) const {
  return nodes_[tree_root(loop(v))].sum;
}

std::size_t EulerTourTree::component_size(VertexId v) const {
  // count = loops + 2 * (edges) and every non-root vertex contributes
  // exactly one down/up pair: count = k + 2(k-1) for a k-vertex tree.
  const std::uint32_t c = nodes_[tree_root(loop(v))].count;
  return (c + 2) / 3;
}

long EulerTourTree::subtree_sum(VertexId v) {
  if (!linked_[v]) return component_sum(v);
  // Carve out [down(v) .. up(v)], read its sum, and stitch it back.
  auto [a, rest] = split_before(down(v));
  auto [mid, b] = split_after(up(v));
  const long result = nodes_[tree_root(down(v))].sum;
  merge(merge(a, mid), b);
  (void)rest;
  return result;
}

}  // namespace parct::baseline
