// Sequential Link-Cut Trees (Sleator & Tarjan [35] — the paper's first
// dynamic-trees citation): the classic comparison point for batched
// updates. A batch of m changes is applied by iterating the m single-edge
// operations — the approach the paper's introduction argues is neither
// parallel nor work-efficient. bench_baseline_lct quantifies the contrast.
//
// This implementation targets *rooted* forests (matching forest::Forest):
// link(child, parent) requires `child` to be a tree root, so no evert/flip
// machinery is needed. Supported: link, cut, find_root, connected, depth —
// all O(log n) amortized via splay trees over preferred paths.
#pragma once

#include <cstdint>
#include <vector>

#include "forest/types.hpp"

namespace parct::baseline {

class LinkCutTree {
 public:
  explicit LinkCutTree(std::size_t n);

  std::size_t size() const { return nodes_.size(); }

  /// Attaches root `child` under `parent`. Precondition: child is the root
  /// of its tree and the two vertices are in different trees.
  void link(VertexId child, VertexId parent);

  /// Detaches `child` from its parent. Precondition: child is not a root.
  void cut(VertexId child);

  /// Root of v's tree. O(log n) amortized.
  VertexId find_root(VertexId v);

  bool connected(VertexId u, VertexId v) {
    return find_root(u) == find_root(v);
  }

  /// Number of edges on the path from v to its root. O(log n) amortized.
  std::size_t depth(VertexId v);

  /// True if v has no represented parent edge.
  bool is_root(VertexId v) { return find_root(v) == v; }

 private:
  struct Node {
    VertexId left = kNoVertex;
    VertexId right = kNoVertex;
    // Parent in the splay tree, or (for a splay root) the path-parent
    // pointer into the next preferred path up; kNoVertex at the top.
    VertexId parent = kNoVertex;
    std::uint32_t size = 1;  // splay subtree size (for depth queries)
  };

  bool is_splay_root(VertexId v) const;
  void pull(VertexId v);
  void rotate(VertexId v);
  void splay(VertexId v);
  /// Makes the path from v to its tree root preferred and splays v to the
  /// top of its path tree. Returns the last path-top encountered.
  VertexId access(VertexId v);

  std::vector<Node> nodes_;
};

}  // namespace parct::baseline
