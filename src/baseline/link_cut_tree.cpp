#include "baseline/link_cut_tree.hpp"

#include <cassert>

namespace parct::baseline {

LinkCutTree::LinkCutTree(std::size_t n) : nodes_(n) {}

bool LinkCutTree::is_splay_root(VertexId v) const {
  const VertexId p = nodes_[v].parent;
  return p == kNoVertex ||
         (nodes_[p].left != v && nodes_[p].right != v);
}

void LinkCutTree::pull(VertexId v) {
  std::uint32_t s = 1;
  if (nodes_[v].left != kNoVertex) s += nodes_[nodes_[v].left].size;
  if (nodes_[v].right != kNoVertex) s += nodes_[nodes_[v].right].size;
  nodes_[v].size = s;
}

void LinkCutTree::rotate(VertexId v) {
  const VertexId p = nodes_[v].parent;
  const VertexId g = nodes_[p].parent;
  const bool v_is_left = nodes_[p].left == v;

  // v's inner child moves to p.
  const VertexId b = v_is_left ? nodes_[v].right : nodes_[v].left;
  if (v_is_left) {
    nodes_[v].right = p;
    nodes_[p].left = b;
  } else {
    nodes_[v].left = p;
    nodes_[p].right = b;
  }
  if (b != kNoVertex) nodes_[b].parent = p;

  nodes_[v].parent = g;
  if (g != kNoVertex) {
    if (nodes_[g].left == p) {
      nodes_[g].left = v;
    } else if (nodes_[g].right == p) {
      nodes_[g].right = v;
    }
    // else: p was a splay root; v inherits its path-parent pointer.
  }
  nodes_[p].parent = v;
  pull(p);
  pull(v);
}

void LinkCutTree::splay(VertexId v) {
  while (!is_splay_root(v)) {
    const VertexId p = nodes_[v].parent;
    if (!is_splay_root(p)) {
      const VertexId g = nodes_[p].parent;
      const bool zig_zig =
          (nodes_[g].left == p) == (nodes_[p].left == v);
      rotate(zig_zig ? p : v);
    }
    rotate(v);
  }
}

VertexId LinkCutTree::access(VertexId v) {
  splay(v);
  if (nodes_[v].right != kNoVertex) {
    // The deeper part of v's preferred path becomes unpreferred; it keeps
    // its parent pointer to v as a path-parent.
    nodes_[v].right = kNoVertex;
    pull(v);
  }
  VertexId last = v;
  while (nodes_[v].parent != kNoVertex) {
    const VertexId w = nodes_[v].parent;
    last = w;
    splay(w);
    if (nodes_[w].right != kNoVertex) {
      nodes_[w].right = kNoVertex;
      pull(w);
    }
    nodes_[w].right = v;  // v.parent == w already (path-parent becomes child)
    pull(w);
    splay(v);
  }
  return last;
}

void LinkCutTree::link(VertexId child, VertexId parent) {
  assert(find_root(child) == child && "link requires child to be a root");
  assert(find_root(parent) != child && "link would create a cycle");
  access(child);   // child alone on its preferred-path tree (depth 0)
  access(parent);  // parent at the top of its path tree
  nodes_[child].parent = parent;
  nodes_[parent].right = child;
  pull(parent);
}

void LinkCutTree::cut(VertexId child) {
  access(child);
  const VertexId l = nodes_[child].left;
  assert(l != kNoVertex && "cut requires a non-root vertex");
  nodes_[l].parent = kNoVertex;
  nodes_[child].left = kNoVertex;
  pull(child);
}

VertexId LinkCutTree::find_root(VertexId v) {
  access(v);
  VertexId x = v;
  while (nodes_[x].left != kNoVertex) x = nodes_[x].left;
  splay(x);  // amortization
  return x;
}

std::size_t LinkCutTree::depth(VertexId v) {
  access(v);
  return nodes_[v].left == kNoVertex ? 0 : nodes_[nodes_[v].left].size;
}

}  // namespace parct::baseline
