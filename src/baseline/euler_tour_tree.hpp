// Sequential Euler-Tour Trees (Henzinger-King / Tarjan — the paper's
// citations [21, 39]): the second classic sequential dynamic-trees
// baseline. Maintains the Euler tour of every tree in a treap (randomized
// balanced BST) keyed by implicit position, giving O(log n) expected
// link / cut / connectivity plus weighted component and *subtree* sums.
//
// Encoding: three sequence nodes per vertex — a "loop" visit carrying the
// vertex weight, and (when the parent edge exists) "down" and "up" arc
// visits bracketing the vertex's subtree in the tour. A tree's tour is
//   loop(r) [down(c1) tour(c1) up(c1)] [down(c2) tour(c2) up(c2)] ...
// so the segment [down(v) .. up(v)] spans exactly v's subtree.
#pragma once

#include <cstdint>
#include <vector>

#include "forest/types.hpp"

namespace parct::baseline {

class EulerTourTree {
 public:
  /// n vertices, all initially isolated with weight 0.
  explicit EulerTourTree(std::size_t n, std::uint64_t seed = 0xE77ull);

  std::size_t size() const { return n_; }

  /// Attaches root `child` under `parent` (child's subtree is spliced into
  /// the tour right after loop(parent)). Precondition: child is a tree
  /// root, different trees. O(log n) expected.
  void link(VertexId child, VertexId parent);

  /// Detaches `child` (and its subtree) from its parent. Precondition:
  /// child is not a root. O(log n) expected.
  void cut(VertexId child);

  bool is_root(VertexId v) const { return !linked_[v]; }
  bool connected(VertexId u, VertexId v) const;

  void set_weight(VertexId v, long w);
  long weight(VertexId v) const { return nodes_[v].weight; }

  /// Total weight of v's tree. O(log n) expected.
  long component_sum(VertexId v) const;
  /// Number of vertices in v's tree. O(log n) expected.
  std::size_t component_size(VertexId v) const;

  /// Total weight of v's subtree (v included). O(log n) expected.
  long subtree_sum(VertexId v);

 private:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNil = 0xFFFFFFFFu;

  struct Node {
    NodeId left = kNil;
    NodeId right = kNil;
    NodeId parent = kNil;
    std::uint64_t priority = 0;
    std::uint32_t count = 1;  // sequence nodes in subtree
    long weight = 0;          // loop nodes only
    long sum = 0;             // subtree weight sum
  };

  NodeId loop(VertexId v) const { return v; }
  NodeId down(VertexId v) const { return static_cast<NodeId>(n_ + v); }
  NodeId up(VertexId v) const { return static_cast<NodeId>(2 * n_ + v); }

  void pull(NodeId x);
  NodeId tree_root(NodeId x) const;
  /// Merges two treaps (all of a's positions precede b's).
  NodeId merge(NodeId a, NodeId b);
  /// Splits so that `x` is the first node of the right part.
  std::pair<NodeId, NodeId> split_before(NodeId x);
  /// Splits so that `x` is the last node of the left part.
  std::pair<NodeId, NodeId> split_after(NodeId x);

  std::size_t n_;
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> linked_;  // parent edge present?
};

}  // namespace parct::baseline
