#include "service/batch_server.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "analysis/annotations.hpp"
#include "analysis/shadow_keys.hpp"
#include "contraction/telemetry.hpp"
#include "durability/manager.hpp"
#include "fault/fault_injection.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

namespace parct::service {

static_assert(std::is_same_v<Weight, durability::Weight>,
              "the WAL/checkpoint weight encoding must match the serving "
              "weight type");

BatchServer::BatchServer(contract::ContractionForest& c, ServiceConfig config,
                         std::vector<Weight> weights,
                         std::uint64_t initial_version)
    : c_(c),
      updater_(c),
      rcf_(c),
      agg_(rcf_, std::move(weights)),
      mirror_(config.validate_updates ? c.extract_forest()
                                      : forest::Forest(0)),
      cfg_(config),
      version_(initial_version) {
  // A durable server always appends to a segment based at its own initial
  // version; any same-named leftover holds only records recovery already
  // discarded (see durability::Manager::open_log).
  if (cfg_.durability) cfg_.durability->open_log(version_);
  publish_version(version_);
}

BatchServer::~BatchServer() { stop(); }

void BatchServer::publish_version(std::uint64_t version) {
  auto buf = store_.begin_build();
  buf->assign_from(rcf_, &agg_, version);
  store_.publish(std::move(buf));
}

std::future<QueryResult> BatchServer::submit_queries(QueryBatch q) {
  return enqueue_queries(std::move(q), std::nullopt);
}

std::future<QueryResult> BatchServer::submit_queries_for(
    QueryBatch q, std::chrono::steady_clock::duration timeout) {
  return enqueue_queries(std::move(q),
                         std::chrono::steady_clock::now() + timeout);
}

std::future<UpdateResult> BatchServer::submit_update(UpdateRequest u) {
  return enqueue_update(std::move(u), std::nullopt);
}

std::future<UpdateResult> BatchServer::submit_update_for(
    UpdateRequest u, std::chrono::steady_clock::duration timeout) {
  return enqueue_update(std::move(u),
                        std::chrono::steady_clock::now() + timeout);
}

std::future<QueryResult> BatchServer::enqueue_queries(QueryBatch q,
                                                      Deadline deadline) {
  std::promise<QueryResult> p;
  std::future<QueryResult> fut = p.get_future();
  {
    MutexLock lk(mu_);
    if (stopping_) {
      throw ServerStopped("BatchServer: submit_queries after stop()");
    }
    if (!query_space_free()) {
      note_backpressure_wait();
      while (!stopping_ && !query_space_free()) {
        if (deadline) {
          if (cv_space_.wait_until(lk, *deadline) == std::cv_status::timeout &&
              !stopping_ && !query_space_free()) {
            note_deadline_rejection();
            p.set_exception(std::make_exception_ptr(DeadlineExceeded(
                "BatchServer: admission deadline expired (query queue "
                "full)")));
            return fut;
          }
        } else {
          cv_space_.wait(lk);
        }
      }
      if (stopping_) {
        p.set_exception(std::make_exception_ptr(ServerStopped(
            "BatchServer: stopped while the batch awaited admission")));
        return fut;
      }
    }
    // Fault site: admission-control drop. The future rejects cleanly; the
    // request never enters the queue.
    if (PARCT_FAULT_POINT(fault::Site::kQueueAdmission)) {
      note_admission_drop();
      p.set_exception(std::make_exception_ptr(AdmissionDropped(
          "BatchServer: query batch dropped at queue admission")));
      return fut;
    }
    query_queue_.emplace_back(std::move(q), std::move(p), deadline);
    note_query_depth(query_queue_.size());
  }
  cv_work_.notify_all();
  return fut;
}

std::future<UpdateResult> BatchServer::enqueue_update(UpdateRequest u,
                                                      Deadline deadline) {
  std::promise<UpdateResult> p;
  std::future<UpdateResult> fut = p.get_future();
  {
    MutexLock lk(mu_);
    if (stopping_) {
      throw ServerStopped("BatchServer: submit_update after stop()");
    }
    if (!update_space_free()) {
      note_backpressure_wait();
      while (!stopping_ && !update_space_free()) {
        if (deadline) {
          if (cv_space_.wait_until(lk, *deadline) == std::cv_status::timeout &&
              !stopping_ && !update_space_free()) {
            note_deadline_rejection();
            p.set_exception(std::make_exception_ptr(DeadlineExceeded(
                "BatchServer: admission deadline expired (update queue "
                "full)")));
            return fut;
          }
        } else {
          cv_space_.wait(lk);
        }
      }
      if (stopping_) {
        p.set_exception(std::make_exception_ptr(ServerStopped(
            "BatchServer: stopped while the update awaited admission")));
        return fut;
      }
    }
    if (PARCT_FAULT_POINT(fault::Site::kQueueAdmission)) {
      note_admission_drop();
      p.set_exception(std::make_exception_ptr(AdmissionDropped(
          "BatchServer: update dropped at queue admission")));
      return fut;
    }
    update_queue_.emplace_back(std::move(u), std::move(p), deadline);
    note_update_depth(update_queue_.size());
  }
  cv_work_.notify_all();
  return fut;
}

void BatchServer::note_backpressure_wait() {
  MutexLock slk(stats_mu_);
  ++stats_.backpressure_waits;
}

void BatchServer::note_deadline_rejection() {
  MutexLock slk(stats_mu_);
  ++stats_.deadline_rejections;
}

void BatchServer::note_admission_drop() {
  MutexLock slk(stats_mu_);
  ++stats_.admission_drops;
}

void BatchServer::note_query_depth(std::size_t depth) {
  MutexLock slk(stats_mu_);
  stats_.max_query_queue_depth =
      std::max<std::uint64_t>(stats_.max_query_queue_depth, depth);
}

void BatchServer::note_update_depth(std::size_t depth) {
  MutexLock slk(stats_mu_);
  stats_.max_update_queue_depth =
      std::max<std::uint64_t>(stats_.max_update_queue_depth, depth);
}

void BatchServer::start() {
  MutexLock lk(mu_);
  if (started_) return;
  if (stopping_) {
    throw std::runtime_error("BatchServer: start() after stop()");
  }
  started_ = true;
  // The engine is a long-lived service thread, not a parallel-loop worker;
  // parallel work inside epochs still goes through parallel_for on the pool.
  // parct-lint: allow(raw-thread) reason: service engine thread
  engine_ = std::thread([this] { engine_loop(); });
}

void BatchServer::stop() {
  // Take the engine handle out under the lock, join outside it. engine_ is
  // written by start() under mu_, so the old unguarded joinable()/join()
  // here raced a concurrent start() — and two concurrent stop()s could
  // both pass the joinable() check and double-join. Moving the handle
  // gives exactly one caller ownership of the join.
  // parct-lint: allow(raw-thread) reason: joining the engine thread handle
  std::thread engine;
  {
    MutexLock lk(mu_);
    stopping_ = true;
    engine = std::move(engine_);
  }
  // Wake the engine (to drain and exit) and every submitter parked on a
  // full admission queue (their futures reject with ServerStopped).
  cv_work_.notify_all();
  cv_space_.notify_all();
  if (engine.joinable()) engine.join();
  // A started engine drained both queues before exiting; in step() mode
  // (no engine) admitted requests may still be queued. Reject them with a
  // documented error instead of letting their promises break on
  // destruction.
  std::deque<PendingQuery> qs;
  std::deque<PendingUpdate> us;
  {
    MutexLock lk(mu_);
    qs.swap(query_queue_);
    us.swap(update_queue_);
  }
  for (PendingQuery& pq : qs) {
    pq.promise.set_exception(std::make_exception_ptr(
        ServerStopped("BatchServer: stopped before the batch was served")));
  }
  for (PendingUpdate& pu : us) {
    pu.promise.set_exception(std::make_exception_ptr(
        ServerStopped("BatchServer: stopped before the update was applied")));
  }
}

void BatchServer::take_epoch(std::vector<PendingQuery>& queries,
                             std::optional<PendingUpdate>& update,
                             std::size_t& qdepth, std::size_t& udepth) {
  qdepth = query_queue_.size();
  udepth = update_queue_.size();
  queries.reserve(qdepth);
  while (!query_queue_.empty()) {
    queries.push_back(std::move(query_queue_.front()));
    query_queue_.pop_front();
  }
  if (!update_queue_.empty()) {
    update.emplace(std::move(update_queue_.front()));
    update_queue_.pop_front();
  }
}

void BatchServer::engine_loop() {
  for (;;) {
    std::vector<PendingQuery> queries;
    std::optional<PendingUpdate> update;
    std::size_t qdepth = 0;
    std::size_t udepth = 0;
    {
      MutexLock lk(mu_);
      while (!stopping_ && !work_pending()) cv_work_.wait(lk);
      // stop() drains: keep processing admitted work, exit once empty.
      if (!work_pending()) break;
      take_epoch(queries, update, qdepth, udepth);
    }
    cv_space_.notify_all();
    process_epoch(std::move(queries), std::move(update), qdepth, udepth,
                  cfg_.overlap_updates);
  }
}

bool BatchServer::step() {
  std::vector<PendingQuery> queries;
  std::optional<PendingUpdate> update;
  std::size_t qdepth = 0;
  std::size_t udepth = 0;
  {
    MutexLock lk(mu_);
    if (!work_pending()) return false;
    take_epoch(queries, update, qdepth, udepth);
  }
  cv_space_.notify_all();
  return process_epoch(std::move(queries), std::move(update), qdepth, udepth,
                       /*allow_overlap=*/false);
}

QueryResult BatchServer::answer(const QueryBatch& q,
                                const Snapshot& snap) const {
  // Queries read only the pinned snapshot — never the live
  // ContractionForest/RCForest, which the overlapped apply() may be
  // mutating (tools/lint_parallel.py enforces this for service sources).
  QueryResult r;
  r.version = snap.version;
  // Each fan-out writes result cell i exactly once; the per-call nonces
  // keep the three result vectors (and reuses across calls) distinct in
  // the SP-bags shadow map, so the race detector proves the disjointness.
  PARCT_SHADOW_BUFFER(roots_buf);
  PARCT_SHADOW_BUFFER(connected_buf);
  PARCT_SHADOW_BUFFER(weights_buf);
  r.roots.resize(q.roots.size());
  par::parallel_for(0, q.roots.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(roots_buf, i));
    r.roots[i] = snap.root(q.roots[i]);
  });
  r.connected.resize(q.connected.size());
  par::parallel_for(0, q.connected.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(connected_buf, i));
    r.connected[i] =
        snap.connected(q.connected[i].first, q.connected[i].second) ? 1 : 0;
  });
  r.tree_weights.resize(q.tree_weights.size());
  par::parallel_for(0, q.tree_weights.size(), [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(weights_buf, i));
    r.tree_weights[i] = snap.tree_weight(q.tree_weights[i]);
  });
  return r;
}

bool BatchServer::process_epoch(std::vector<PendingQuery> queries,
                                std::optional<PendingUpdate> update,
                                std::size_t qdepth, std::size_t udepth,
                                bool allow_overlap) {
  if (queries.empty() && !update) return false;
  const auto t_epoch = contract::stats_now();

  // Degraded serial fallback: while the pool is marked unhealthy the whole
  // epoch runs under a SerialScope on this thread — queries answer
  // sequentially, the update runs inline, and the work-stealing pool is
  // never touched.
  const bool degraded = !pool_healthy_.load(std::memory_order_relaxed);
  std::optional<par::scheduler::SerialScope> serial;
  if (degraded) serial.emplace();

  const SnapshotHandle pinned = store_.acquire();
  const auto now = std::chrono::steady_clock::now();

  // Overload shedding: reject the oldest (stalest) query batches beyond
  // the high-water mark before doing any work for them.
  std::uint64_t shed_items = 0;
  if (cfg_.query_shed_high_water != 0 &&
      queries.size() > cfg_.query_shed_high_water) {
    const std::size_t drop = queries.size() - cfg_.query_shed_high_water;
    for (std::size_t i = 0; i < drop; ++i) {
      shed_items += queries[i].batch.size();
      queries[i].promise.set_exception(std::make_exception_ptr(QueryShed(
          "BatchServer: stale query batch shed under overload")));
    }
    queries.erase(queries.begin(),
                  queries.begin() + static_cast<std::ptrdiff_t>(drop));
  }

  // Deadline expiry: a request that out-waited its deadline in the queue
  // is rejected, not served stale.
  std::uint64_t deadline_rejected = 0;
  {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].deadline && *queries[i].deadline < now) {
        ++deadline_rejected;
        queries[i].promise.set_exception(std::make_exception_ptr(
            DeadlineExceeded("BatchServer: query deadline expired before "
                             "its epoch started")));
      } else {
        if (keep != i) queries[keep] = std::move(queries[i]);
        ++keep;
      }
    }
    queries.resize(keep);
  }
  if (update && update->deadline && *update->deadline < now) {
    ++deadline_rejected;
    update->promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "BatchServer: update deadline expired before its epoch started")));
    update.reset();
  }

  // Admission control for the update: reject invalid batches (and any
  // batch after a failed apply) before touching the structure.
  std::uint64_t rejected = 0;
  if (update && failed_) {
    update->promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "BatchServer: an earlier update failed; updates halted")));
    update.reset();
    ++rejected;
  }
  if (update && cfg_.validate_updates) {
    if (auto err = forest::check_change_set(mirror_, update->request.batch)) {
      update->promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("BatchServer: rejected update batch: " +
                                *err)));
      update.reset();
      ++rejected;
    }
  }
  const std::uint64_t update_ops =
      update ? update->request.batch.size() : 0;

  contract::UpdateStats ustats;
  contract::TouchedRecorder touched;
  std::exception_ptr update_error;
  bool abort_exhausted = false;  // injected abort survived all retries
  std::uint64_t retries = 0;
  double update_secs = 0;
  auto run_update = [&] {
    const auto t0 = contract::stats_now();
    for (unsigned attempt = 0;; ++attempt) {
      try {
        // Fault site: abort at the apply boundary. An InjectedFault is
        // raised before DynamicUpdater::apply mutates anything, so the
        // live structure still equals the published version and the batch
        // can simply be re-applied — epochs are idempotent up to publish.
        if (PARCT_FAULT_POINT(fault::Site::kEpochApply)) {
          throw fault::InjectedFault(fault::Site::kEpochApply);
        }
        ustats = updater_.apply(update->request.batch, &touched);
        update_error = nullptr;
        break;
      } catch (const fault::InjectedFault&) {
        update_error = std::current_exception();
        if (attempt >= cfg_.max_epoch_retries) {
          abort_exhausted = true;
          break;
        }
        ++retries;
        std::this_thread::sleep_for(cfg_.retry_backoff *
                                    (1u << std::min(attempt, 10u)));
      } catch (...) {
        update_error = std::current_exception();
        break;
      }
    }
    update_secs = contract::stats_since(t0);
  };

  std::uint64_t queries_answered = 0;
  auto answer_all = [&] {
    for (PendingQuery& pq : queries) {
      try {
        QueryResult qr = answer(pq.batch, *pinned);
        queries_answered += pq.batch.size();
        pq.promise.set_value(std::move(qr));
      } catch (...) {
        // A failed fan-out (e.g. an injected allocation failure surfacing
        // through a parallel task) rejects this batch only; the epoch and
        // the remaining batches proceed.
        pq.promise.set_exception(std::current_exception());
      }
    }
  };

  const auto t_q = contract::stats_now();
  bool overlapped = false;
  if (update && allow_overlap && !degraded && !queries.empty()) {
    overlapped = true;
    // The pipelining overlap itself: the update propagates toward version
    // v+1 under a SerialScope (off the pool) while this thread fans the
    // epoch's queries out on the pool against the pinned version-v snapshot.
    // parct-lint: allow(raw-thread) reason: epoch overlap thread
    std::thread ut([&] {
      par::scheduler::SerialScope serial_update;
      run_update();
    });
    answer_all();
    ut.join();
  } else {
    answer_all();
    if (update) run_update();  // full pool available, no overlap thread
  }
  const double query_secs = contract::stats_since(t_q);

  double publish_secs = 0;
  bool applied = false;
  std::uint64_t checkpoint_failed = 0;
  if (update) {
    if (update_error) {
      if (abort_exhausted) {
        // Clean rejection: every attempt aborted at the boundary, the
        // structure is untouched, and the server stays healthy for
        // subsequent updates.
        update->promise.set_exception(std::make_exception_ptr(EpochAborted(
            "BatchServer: update epoch aborted at the apply boundary "
            "after " +
            std::to_string(cfg_.max_epoch_retries) + " retr" +
            (cfg_.max_epoch_retries == 1 ? "y" : "ies"))));
      } else {
        failed_ = true;
        update->promise.set_exception(update_error);
      }
    } else {
      // Write-ahead: the applied batch must be durable before the version
      // publishes and the submitter's future resolves. Logging *after* a
      // successful apply keeps the WAL equal to the exactly-applied
      // history (an EpochAborted batch never reaches the log); logging
      // *before* publish keeps every acknowledged update durable.
      bool durable = true;
      if (cfg_.durability) {
        try {
          cfg_.durability->append(version_ + 1, update->request.batch,
                                  update->request.vertex_weights);
        } catch (...) {
          // The in-memory structure now leads the durable state (the
          // segment tail may even be torn). Fail-stop for updates: this
          // future rejects (the update was NOT acknowledged), the version
          // is not published, and later updates are refused — while
          // queries keep serving the last published (fully durable)
          // snapshot. Recovery from disk restores exactly the
          // acknowledged history.
          durable = false;
          failed_ = true;
          update->promise.set_exception(std::make_exception_ptr(
              DurabilityLost("BatchServer: WAL append failed; the update "
                             "was applied in memory but is not durable")));
        }
      }
      if (durable) {
        const auto t_p = contract::stats_now();
        // Repair the derived layers over the affected region: the touched
        // set is the event-fired vertices plus the batch's V- (which fires
        // no event). prepare_update must see the pre-refresh events (old
        // representatives), so it runs before refresh.
        std::vector<VertexId>& tv = touched.vertices();
        tv.insert(tv.end(), update->request.batch.remove_vertices.begin(),
                  update->request.batch.remove_vertices.end());
        agg_.prepare_update(tv);
        rcf_.refresh(tv);
        agg_.apply_update();
        for (const auto& [v, w] : update->request.vertex_weights) {
          if (v < rcf_.size() && rcf_.present(v)) agg_.set_weight(v, w);
        }
        if (cfg_.validate_updates) {
          mirror_ = forest::apply_change_set(mirror_, update->request.batch);
        }
        ++version_;
        publish_version(version_);
        publish_secs = contract::stats_since(t_p);
        // Fulfilled only after publication: a waiter that then calls
        // snapshot() observes its own write — including after a retried
        // epoch (read-your-writes holds across retries).
        update->promise.set_value(UpdateResult{version_, ustats});
        applied = true;
        // Background checkpointing: roll the WAL up into a fresh
        // checkpoint every checkpoint_every updates. Failure here is
        // degradation, not an error: the rename is the commit point, so
        // the previous checkpoint (plus the still-growing WAL) remains a
        // complete recovery image, and the next interval retries.
        if (cfg_.durability && cfg_.checkpoint_every != 0 &&
            version_ % cfg_.checkpoint_every == 0) {
          try {
            cfg_.durability->checkpoint(c_, agg_.weights(), version_);
          } catch (...) {
            ++checkpoint_failed;
          }
        }
      }
    }
  }
  const double epoch_secs = contract::stats_since(t_epoch);

  {
    MutexLock slk(stats_mu_);
    ++stats_.epochs;
    if (overlapped) ++stats_.overlapped_epochs;
    if (degraded) ++stats_.degraded_epochs;
    stats_.query_batches += queries.size();
    stats_.queries_served += queries_answered;
    stats_.updates_rejected += rejected;
    stats_.queries_shed += shed_items;
    stats_.deadline_rejections += deadline_rejected;
    stats_.epoch_retries += retries;
    stats_.checkpoint_failures += checkpoint_failed;
    if (applied) {
      ++stats_.updates_applied;
      stats_.update_ops += update_ops;
    }
    stats_.epoch_seconds += epoch_secs;
    stats_.query_seconds += query_secs;
    stats_.update_seconds += update_secs;
    stats_.publish_seconds += publish_secs;
    if constexpr (contract::kStatsEnabled) {
      if (stats_.epoch_log.size() < cfg_.max_epoch_log) {
        EpochRecord rec;
        rec.version = pinned.version();
        rec.query_batches = static_cast<std::uint32_t>(queries.size());
        rec.queries = static_cast<std::uint32_t>(queries_answered);
        rec.update_ops = static_cast<std::uint32_t>(update_ops);
        rec.query_queue_depth = static_cast<std::uint32_t>(qdepth);
        rec.update_queue_depth = static_cast<std::uint32_t>(udepth);
        rec.overlapped = overlapped;
        rec.epoch_seconds = epoch_secs;
        rec.query_seconds = query_secs;
        rec.update_seconds = update_secs;
        rec.publish_seconds = publish_secs;
        stats_.epoch_log.push_back(rec);
      } else {
        ++stats_.dropped_epoch_records;
      }
    }
  }
  return true;
}

ServiceStats BatchServer::stats() const {
  ServiceStats s;
  {
    MutexLock slk(stats_mu_);
    s = stats_;
  }
  s.snapshots_published = store_.published();
  s.snapshot_buffers_reused = store_.buffers_reused();
  s.snapshot_buffers_allocated = store_.buffers_allocated();
  if (cfg_.durability) {
    s.wal_records = cfg_.durability->wal_records();
    s.wal_bytes = cfg_.durability->wal_bytes();
    s.checkpoints_written = cfg_.durability->checkpoints_written();
  }
  return s;
}

RecoveredServer BatchServer::recover(const std::string& dir,
                                     ServiceConfig config) {
  durability::RecoveredState st = durability::Manager::recover(dir);
  RecoveredServer out;
  out.forest = std::move(st.forest);
  out.manager = std::make_shared<durability::Manager>(dir);
  out.version = st.version;
  out.replayed = st.replayed;
  config.durability = out.manager.get();
  out.server = std::make_unique<BatchServer>(*out.forest, config,
                                             std::move(st.weights), st.version);
  {
    MutexLock slk(out.server->stats_mu_);
    out.server->stats_.recovery_replayed = st.replayed;
  }
  return out;
}

}  // namespace parct::service
