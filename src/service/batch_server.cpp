#include "service/batch_server.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>

#include "contraction/telemetry.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

namespace parct::service {

BatchServer::BatchServer(contract::ContractionForest& c, ServiceConfig config,
                         std::vector<Weight> weights)
    : c_(c),
      updater_(c),
      rcf_(c),
      agg_(rcf_, std::move(weights)),
      mirror_(config.validate_updates ? c.extract_forest()
                                      : forest::Forest(0)),
      cfg_(config) {
  publish_version(0);
}

BatchServer::~BatchServer() { stop(); }

void BatchServer::publish_version(std::uint64_t version) {
  auto buf = store_.begin_build();
  buf->assign_from(rcf_, &agg_, version);
  store_.publish(std::move(buf));
}

std::future<QueryResult> BatchServer::submit_queries(QueryBatch q) {
  std::promise<QueryResult> p;
  std::future<QueryResult> fut = p.get_future();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) {
      throw std::runtime_error("BatchServer: submit_queries after stop()");
    }
    if (query_queue_.size() >= cfg_.max_pending_query_batches) {
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.backpressure_waits;
      }
      cv_space_.wait(lk, [&] {
        return stopping_ ||
               query_queue_.size() < cfg_.max_pending_query_batches;
      });
      if (stopping_) {
        throw std::runtime_error("BatchServer: submit_queries after stop()");
      }
    }
    query_queue_.push_back(PendingQuery{std::move(q), std::move(p)});
    std::lock_guard<std::mutex> slk(stats_mu_);
    stats_.max_query_queue_depth = std::max<std::uint64_t>(
        stats_.max_query_queue_depth, query_queue_.size());
  }
  cv_work_.notify_all();
  return fut;
}

std::future<UpdateResult> BatchServer::submit_update(UpdateRequest u) {
  std::promise<UpdateResult> p;
  std::future<UpdateResult> fut = p.get_future();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) {
      throw std::runtime_error("BatchServer: submit_update after stop()");
    }
    if (update_queue_.size() >= cfg_.max_pending_updates) {
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.backpressure_waits;
      }
      cv_space_.wait(lk, [&] {
        return stopping_ || update_queue_.size() < cfg_.max_pending_updates;
      });
      if (stopping_) {
        throw std::runtime_error("BatchServer: submit_update after stop()");
      }
    }
    update_queue_.push_back(PendingUpdate{std::move(u), std::move(p)});
    std::lock_guard<std::mutex> slk(stats_mu_);
    stats_.max_update_queue_depth = std::max<std::uint64_t>(
        stats_.max_update_queue_depth, update_queue_.size());
  }
  cv_work_.notify_all();
  return fut;
}

void BatchServer::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return;
  if (stopping_) {
    throw std::runtime_error("BatchServer: start() after stop()");
  }
  started_ = true;
  // The engine is a long-lived service thread, not a parallel-loop worker;
  // parallel work inside epochs still goes through parallel_for on the pool.
  // parct-lint: allow(raw-thread) reason: service engine thread
  engine_ = std::thread([this] { engine_loop(); });
}

void BatchServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  if (engine_.joinable()) engine_.join();
}

void BatchServer::engine_loop() {
  for (;;) {
    std::vector<PendingQuery> queries;
    std::optional<PendingUpdate> update;
    std::size_t qdepth = 0;
    std::size_t udepth = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return stopping_ || !query_queue_.empty() || !update_queue_.empty();
      });
      // stop() drains: keep processing admitted work, exit once empty.
      if (query_queue_.empty() && update_queue_.empty()) break;
      qdepth = query_queue_.size();
      udepth = update_queue_.size();
      queries.reserve(qdepth);
      while (!query_queue_.empty()) {
        queries.push_back(std::move(query_queue_.front()));
        query_queue_.pop_front();
      }
      if (!update_queue_.empty()) {
        update.emplace(std::move(update_queue_.front()));
        update_queue_.pop_front();
      }
    }
    cv_space_.notify_all();
    process_epoch(std::move(queries), std::move(update), qdepth, udepth,
                  cfg_.overlap_updates);
  }
}

bool BatchServer::step() {
  std::vector<PendingQuery> queries;
  std::optional<PendingUpdate> update;
  std::size_t qdepth = 0;
  std::size_t udepth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    qdepth = query_queue_.size();
    udepth = update_queue_.size();
    if (qdepth == 0 && udepth == 0) return false;
    queries.reserve(qdepth);
    while (!query_queue_.empty()) {
      queries.push_back(std::move(query_queue_.front()));
      query_queue_.pop_front();
    }
    if (!update_queue_.empty()) {
      update.emplace(std::move(update_queue_.front()));
      update_queue_.pop_front();
    }
  }
  cv_space_.notify_all();
  return process_epoch(std::move(queries), std::move(update), qdepth, udepth,
                       /*allow_overlap=*/false);
}

QueryResult BatchServer::answer(const QueryBatch& q,
                                const Snapshot& snap) const {
  // Queries read only the pinned snapshot — never the live
  // ContractionForest/RCForest, which the overlapped apply() may be
  // mutating (tools/lint_parallel.py enforces this for service sources).
  QueryResult r;
  r.version = snap.version;
  r.roots.resize(q.roots.size());
  par::parallel_for(0, q.roots.size(), [&](std::size_t i) {
    r.roots[i] = snap.root(q.roots[i]);
  });
  r.connected.resize(q.connected.size());
  par::parallel_for(0, q.connected.size(), [&](std::size_t i) {
    r.connected[i] =
        snap.connected(q.connected[i].first, q.connected[i].second) ? 1 : 0;
  });
  r.tree_weights.resize(q.tree_weights.size());
  par::parallel_for(0, q.tree_weights.size(), [&](std::size_t i) {
    r.tree_weights[i] = snap.tree_weight(q.tree_weights[i]);
  });
  return r;
}

bool BatchServer::process_epoch(std::vector<PendingQuery> queries,
                                std::optional<PendingUpdate> update,
                                std::size_t qdepth, std::size_t udepth,
                                bool allow_overlap) {
  if (queries.empty() && !update) return false;
  const auto t_epoch = contract::stats_now();
  const SnapshotHandle pinned = store_.acquire();

  // Admission control for the update: reject invalid batches (and any
  // batch after a failed apply) before touching the structure.
  std::uint64_t rejected = 0;
  if (update && failed_) {
    update->promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "BatchServer: an earlier update failed; updates halted")));
    update.reset();
    ++rejected;
  }
  if (update && cfg_.validate_updates) {
    if (auto err = forest::check_change_set(mirror_, update->request.batch)) {
      update->promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("BatchServer: rejected update batch: " +
                                *err)));
      update.reset();
      ++rejected;
    }
  }
  const std::uint64_t update_ops =
      update ? update->request.batch.size() : 0;

  contract::UpdateStats ustats;
  contract::TouchedRecorder touched;
  std::exception_ptr update_error;
  double update_secs = 0;
  auto run_update = [&] {
    const auto t0 = contract::stats_now();
    try {
      ustats = updater_.apply(update->request.batch, &touched);
    } catch (...) {
      update_error = std::current_exception();
    }
    update_secs = contract::stats_since(t0);
  };

  std::uint64_t queries_answered = 0;
  const auto t_q = contract::stats_now();
  bool overlapped = false;
  if (update && allow_overlap && !queries.empty()) {
    overlapped = true;
    // The pipelining overlap itself: the update propagates toward version
    // v+1 under a SerialScope (off the pool) while this thread fans the
    // epoch's queries out on the pool against the pinned version-v snapshot.
    // parct-lint: allow(raw-thread) reason: epoch overlap thread
    std::thread ut([&] {
      par::scheduler::SerialScope serial;
      run_update();
    });
    for (PendingQuery& pq : queries) {
      queries_answered += pq.batch.size();
      pq.promise.set_value(answer(pq.batch, *pinned));
    }
    ut.join();
  } else {
    for (PendingQuery& pq : queries) {
      queries_answered += pq.batch.size();
      pq.promise.set_value(answer(pq.batch, *pinned));
    }
    if (update) run_update();  // full pool available, no overlap thread
  }
  const double query_secs = contract::stats_since(t_q);

  double publish_secs = 0;
  bool applied = false;
  if (update) {
    if (update_error) {
      failed_ = true;
      update->promise.set_exception(update_error);
    } else {
      const auto t_p = contract::stats_now();
      // Repair the derived layers over the affected region: the touched
      // set is the event-fired vertices plus the batch's V- (which fires
      // no event). prepare_update must see the pre-refresh events (old
      // representatives), so it runs before refresh.
      std::vector<VertexId>& tv = touched.vertices();
      tv.insert(tv.end(), update->request.batch.remove_vertices.begin(),
                update->request.batch.remove_vertices.end());
      agg_.prepare_update(tv);
      rcf_.refresh(tv);
      agg_.apply_update();
      for (const auto& [v, w] : update->request.vertex_weights) {
        if (v < rcf_.size() && rcf_.present(v)) agg_.set_weight(v, w);
      }
      if (cfg_.validate_updates) {
        mirror_ = forest::apply_change_set(mirror_, update->request.batch);
      }
      ++version_;
      publish_version(version_);
      publish_secs = contract::stats_since(t_p);
      // Fulfilled only after publication: a waiter that then calls
      // snapshot() observes its own write.
      update->promise.set_value(UpdateResult{version_, ustats});
      applied = true;
    }
  }
  const double epoch_secs = contract::stats_since(t_epoch);

  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.epochs;
    if (overlapped) ++stats_.overlapped_epochs;
    stats_.query_batches += queries.size();
    stats_.queries_served += queries_answered;
    stats_.updates_rejected += rejected;
    if (applied) {
      ++stats_.updates_applied;
      stats_.update_ops += update_ops;
    }
    stats_.epoch_seconds += epoch_secs;
    stats_.query_seconds += query_secs;
    stats_.update_seconds += update_secs;
    stats_.publish_seconds += publish_secs;
    if constexpr (contract::kStatsEnabled) {
      if (stats_.epoch_log.size() < cfg_.max_epoch_log) {
        EpochRecord rec;
        rec.version = pinned.version();
        rec.query_batches = static_cast<std::uint32_t>(queries.size());
        rec.queries = static_cast<std::uint32_t>(queries_answered);
        rec.update_ops = static_cast<std::uint32_t>(update_ops);
        rec.query_queue_depth = static_cast<std::uint32_t>(qdepth);
        rec.update_queue_depth = static_cast<std::uint32_t>(udepth);
        rec.overlapped = overlapped;
        rec.epoch_seconds = epoch_secs;
        rec.query_seconds = query_secs;
        rec.update_seconds = update_secs;
        rec.publish_seconds = publish_secs;
        stats_.epoch_log.push_back(rec);
      } else {
        ++stats_.dropped_epoch_records;
      }
    }
  }
  return true;
}

ServiceStats BatchServer::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    s = stats_;
  }
  s.snapshots_published = store_.published();
  s.snapshot_buffers_reused = store_.buffers_reused();
  s.snapshot_buffers_allocated = store_.buffers_allocated();
  return s;
}

}  // namespace parct::service
