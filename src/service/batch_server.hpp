// BatchServer: epoch-based concurrent serving on top of the contraction
// structure — the "dynamic AND parallel" shape the paper motivates, turned
// into a query/update pipeline.
//
// Requests are admitted into bounded queues (submitters block when full:
// backpressure, not unbounded memory). The epoch engine repeatedly:
//
//   1. coalesces every pending query batch plus at most one update batch
//      into an epoch,
//   2. pins the current Snapshot (version v) and fans the queries out with
//      parallel_for on the work-stealing pool against that immutable view,
//      while — overlapped on a second thread under a
//      scheduler::SerialScope — DynamicUpdater::apply propagates the
//      update batch toward version v+1 on the live structure,
//   3. repairs the derived layers incrementally (RCForest::refresh +
//      TreeAggregate::prepare_update/apply_update over the touched set),
//      builds version v+1 into a recycled snapshot buffer, and publishes
//      it for the next epoch's queries.
//
// Readers never observe a half-propagated round: they only ever see
// published snapshots, and a snapshot is only published after apply() and
// the derived-layer repair complete. Every QueryResult carries the version
// it was answered at, which is what lets the tests cross-check concurrent
// histories against a serialized oracle.
//
// Pool ownership: while the server is start()ed, its engine thread is the
// only external thread driving the fork-join pool (the scheduler maps all
// non-pool threads onto worker 0's deque, so a second forking thread
// would race on it). Do not run parct parallel operations from other
// threads, and do not re-initialize the scheduler, between start() and
// stop(). The update thread is exempt by design: it runs under a
// SerialScope and never touches the pool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "contraction/contraction_forest.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/hooks.hpp"
#include "forest/change_set.hpp"
#include "forest/forest.hpp"
#include "parallel/capability.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"
#include "service/snapshot.hpp"

namespace parct::durability {
class Manager;
}  // namespace parct::durability

namespace parct::service {

// --- failure semantics ------------------------------------------------
//
// Every admitted request's future resolves — with a value, or with one of
// the error types below. The server never wedges a future: stop() rejects
// everything still parked or queued, deadlines reject late requests, the
// shedder rejects stale ones, and an aborted update epoch either retries
// to success or rejects its batch. All errors derive from ServiceError
// (itself a std::runtime_error), so callers can catch coarsely or
// per-cause.

/// Base class of every rejection the serving layer reports.
struct ServiceError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// The server stopped before (or while) the request could be served.
struct ServerStopped : ServiceError {
  using ServiceError::ServiceError;
};
/// A submit_*_for deadline expired — either awaiting admission on a full
/// queue, or in the queue before the request's epoch started.
struct DeadlineExceeded : ServiceError {
  using ServiceError::ServiceError;
};
/// A stale query batch was shed under overload (queue depth crossed
/// ServiceConfig::query_shed_high_water at epoch admission).
struct QueryShed : ServiceError {
  using ServiceError::ServiceError;
};
/// The request was dropped at queue admission (fault-injection site
/// `queue-admission`; models an admission-control drop).
struct AdmissionDropped : ServiceError {
  using ServiceError::ServiceError;
};
/// An update epoch aborted at the apply boundary and exhausted its
/// retries; the batch was NOT applied and the structure is unchanged.
struct EpochAborted : ServiceError {
  using ServiceError::ServiceError;
};
/// The WAL append for an applied update failed: the update is NOT durable
/// and its future rejects. In-memory state now leads durable state, so
/// the server fail-stops further updates (queries keep serving the last
/// published — durable — version); recovery from disk restores exactly
/// the acknowledged history.
struct DurabilityLost : ServiceError {
  using ServiceError::ServiceError;
};

struct ServiceConfig {
  /// Bounded admission queues; submit_* blocks (backpressure) while full.
  std::size_t max_pending_updates = 16;
  std::size_t max_pending_query_batches = 256;

  /// Overlap apply() (on a SerialScope thread) with the epoch's query
  /// fan-out. Off: the epoch runs queries first, then the update with the
  /// full pool — same observable results (queries are answered against
  /// the pinned snapshot either way), no extra thread. step() always
  /// behaves as if this were off.
  bool overlap_updates = true;

  /// Check every batch with forest::check_change_set against a mirrored
  /// forest before applying; invalid batches reject their future with
  /// std::invalid_argument instead of corrupting the structure. Costs
  /// O(n) per update — serving default on, benches turn it off.
  bool validate_updates = true;

  /// Cap on the per-epoch telemetry log (PARCT_STATS builds).
  std::size_t max_epoch_log = 4096;

  /// Re-attempts of an update epoch whose apply aborted at the boundary
  /// (fault::InjectedFault — raised before any mutation, so re-applying
  /// the batch against the still-published version is sound). 0 disables
  /// retry; retries beyond the cap reject the batch with EpochAborted.
  unsigned max_epoch_retries = 2;
  /// Backoff before retry k is retry_backoff << (k-1). Kept small so
  /// stepped tests stay fast; a real deployment would raise it.
  std::chrono::microseconds retry_backoff{200};
  /// Load shedding: when more query batches than this are pending at
  /// epoch admission, the *oldest* batches beyond the mark are rejected
  /// with QueryShed (they have waited longest and are the most stale).
  /// 0 disables shedding.
  std::size_t query_shed_high_water = 0;

  /// Durability (docs/DURABILITY.md). When set, every applied update's
  /// ChangeSet is appended to the manager's WAL and fsync'd *before* the
  /// epoch publishes and the update's future resolves — an acknowledged
  /// update survives a crash. The manager must outlive the server; the
  /// server opens a fresh WAL segment at its initial version on
  /// construction. nullptr = in-memory only (the previous behavior).
  durability::Manager* durability = nullptr;
  /// Write a checkpoint (and truncate the WAL onto a fresh segment) every
  /// N applied updates. 0 disables background checkpointing — the WAL
  /// then grows until Manager::checkpoint is called out-of-band. A failed
  /// checkpoint write degrades gracefully: it is counted
  /// (ServiceStats::checkpoint_failures) and retried at the next
  /// interval, with the previous checkpoint still valid on disk.
  std::uint64_t checkpoint_every = 0;
};

/// One batch of independent read-only queries, answered together against
/// one pinned snapshot. Invalid (out-of-range / absent) ids are served
/// with defined sentinels: kNoVertex roots, 0 connectivity, 0 weights.
struct QueryBatch {
  std::vector<VertexId> roots;
  std::vector<std::pair<VertexId, VertexId>> connected;
  std::vector<VertexId> tree_weights;

  std::size_t size() const {
    return roots.size() + connected.size() + tree_weights.size();
  }
  bool empty() const { return size() == 0; }
};

struct QueryResult {
  /// Version the batch was answered at (snapshot pinned for the epoch).
  std::uint64_t version = 0;
  std::vector<VertexId> roots;
  std::vector<std::uint8_t> connected;
  std::vector<Weight> tree_weights;
};

struct UpdateRequest {
  forest::ChangeSet batch;
  /// Weights assigned (after the structural repair) to vertices the batch
  /// makes present — or re-assigned to existing vertices.
  std::vector<std::pair<VertexId, Weight>> vertex_weights;
};

struct UpdateResult {
  /// Version this update produced; snapshots at >= this version include it.
  std::uint64_t version = 0;
  contract::UpdateStats stats;
};

/// Per-epoch telemetry record (populated in PARCT_STATS builds).
struct EpochRecord {
  std::uint64_t version = 0;       // version queries were answered at
  std::uint32_t query_batches = 0;
  std::uint32_t queries = 0;
  std::uint32_t update_ops = 0;
  std::uint32_t query_queue_depth = 0;   // at epoch admission
  std::uint32_t update_queue_depth = 0;
  bool overlapped = false;
  double epoch_seconds = 0;
  double query_seconds = 0;
  double update_seconds = 0;
  double publish_seconds = 0;
};

struct ServiceStats {
  std::uint64_t epochs = 0;
  std::uint64_t overlapped_epochs = 0;
  std::uint64_t query_batches = 0;
  std::uint64_t queries_served = 0;  // individual query items
  std::uint64_t updates_applied = 0;
  std::uint64_t update_ops = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t snapshots_published = 0;
  std::uint64_t snapshot_buffers_reused = 0;
  std::uint64_t snapshot_buffers_allocated = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t max_query_queue_depth = 0;
  std::uint64_t max_update_queue_depth = 0;
  std::uint64_t dropped_epoch_records = 0;

  // Graceful-degradation counters (docs/OBSERVABILITY.md §3a).
  std::uint64_t queries_shed = 0;        ///< query items shed under overload
  std::uint64_t epoch_retries = 0;       ///< re-attempts of aborted epochs
  std::uint64_t deadline_rejections = 0; ///< requests rejected past deadline
  std::uint64_t degraded_epochs = 0;     ///< epochs run in serial fallback
  std::uint64_t admission_drops = 0;     ///< fault-injected admission drops

  // Durability counters (docs/DURABILITY.md; 0 without a manager).
  std::uint64_t wal_records = 0;         ///< records appended to the WAL
  std::uint64_t wal_bytes = 0;           ///< bytes in the current segment
  std::uint64_t checkpoints_written = 0; ///< checkpoints committed
  std::uint64_t checkpoint_failures = 0; ///< checkpoint writes that failed
  std::uint64_t recovery_replayed = 0;   ///< WAL records replayed by recover()

  // Wall-clock accumulations (0 unless built with PARCT_STATS).
  double epoch_seconds = 0;
  double query_seconds = 0;
  double update_seconds = 0;
  double publish_seconds = 0;

  std::vector<EpochRecord> epoch_log;  // PARCT_STATS builds only
};

struct RecoveredServer;

class BatchServer {
 public:
  /// Binds to a fully constructed structure. `weights` seeds the tree
  /// aggregate (missing entries default to 0). The server owns a
  /// DynamicUpdater on `c`; nothing else may mutate `c` while the server
  /// is alive. `initial_version` is the version the bound structure
  /// already represents (0 for a fresh structure; the recovered version
  /// when resuming from a durability directory) — the first applied
  /// update publishes initial_version + 1.
  explicit BatchServer(contract::ContractionForest& c,
                       ServiceConfig config = {},
                       std::vector<Weight> weights = {},
                       std::uint64_t initial_version = 0);
  ~BatchServer();

  /// Crash recovery (docs/DURABILITY.md): loads the newest valid
  /// checkpoint in `dir`, replays the WAL tail through
  /// DynamicUpdater::apply, and returns a server resuming at the
  /// recovered version with durability re-attached (`config.durability`
  /// is overwritten to point at the returned manager). Throws
  /// std::runtime_error if `dir` holds no valid checkpoint.
  static RecoveredServer recover(const std::string& dir,
                                 ServiceConfig config = {});

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Thread-safe. Blocks while the query queue is full; throws
  /// ServerStopped if called after stop(). The future resolves with the
  /// epoch that serves the batch — or with ServerStopped if stop() arrives
  /// while the submitter is parked on a full queue (the future is
  /// rejected, never left dangling).
  std::future<QueryResult> submit_queries(QueryBatch q)
      PARCT_EXCLUDES(mu_, stats_mu_);

  /// Thread-safe. Blocks while the update queue is full. Updates are
  /// applied in submission order; the future resolves after the produced
  /// version is published (read-your-writes: snapshot() then observes it).
  /// Rejected with ServerStopped if stop() arrives while parked.
  std::future<UpdateResult> submit_update(UpdateRequest u)
      PARCT_EXCLUDES(mu_, stats_mu_);

  /// Deadline-carrying variants: wait at most `timeout` for admission
  /// (rejecting the future with DeadlineExceeded on expiry), and carry the
  /// deadline into the queue — a request whose deadline has passed when
  /// its epoch starts is rejected with DeadlineExceeded instead of being
  /// served stale. Thread-safe; never blocks past the deadline.
  std::future<QueryResult> submit_queries_for(
      QueryBatch q, std::chrono::steady_clock::duration timeout)
      PARCT_EXCLUDES(mu_, stats_mu_);
  std::future<UpdateResult> submit_update_for(
      UpdateRequest u, std::chrono::steady_clock::duration timeout)
      PARCT_EXCLUDES(mu_, stats_mu_);

  /// Spawns the epoch engine thread. stop() drains both queues, processes
  /// everything still admitted, then joins; the destructor calls stop().
  /// stop() additionally unblocks every submitter parked on a full
  /// admission queue (their futures reject with ServerStopped) and, when
  /// no engine is running to drain them (step() mode), rejects all
  /// still-queued requests with ServerStopped — no future survives stop()
  /// unresolved.
  void start() PARCT_EXCLUDES(mu_);
  void stop() PARCT_EXCLUDES(mu_);

  /// Processes one epoch inline on the calling thread (all pending query
  /// batches + at most one update), without the engine thread and without
  /// overlap — deterministic, single-threaded epoch semantics for tests
  /// (including SP-bags race-detector sessions). Returns false if there
  /// was nothing to do. Never mix with a start()ed engine.
  bool step() PARCT_EXCLUDES(mu_, stats_mu_);

  /// Degraded serial-fallback mode (any thread). Marking the pool
  /// unhealthy makes every subsequent epoch run under a
  /// scheduler::SerialScope on the engine thread: queries answer
  /// sequentially, updates never overlap, and the work-stealing pool is
  /// not touched at all — correct (slower) service while the pool is
  /// stalled, wedged, or being debugged. Counted in
  /// ServiceStats::degraded_epochs.
  void set_pool_healthy(bool healthy) {
    pool_healthy_.store(healthy, std::memory_order_relaxed);
  }
  bool pool_healthy() const {
    return pool_healthy_.load(std::memory_order_relaxed);
  }

  /// Pin of the currently published version (any thread).
  SnapshotHandle snapshot() const { return store_.acquire(); }

  /// Version produced by the most recently published update epoch.
  std::uint64_t version() const { return store_.version(); }

  ServiceStats stats() const PARCT_EXCLUDES(stats_mu_);

 private:
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  struct PendingQuery {
    QueryBatch batch;
    std::promise<QueryResult> promise;
    Deadline deadline;
  };
  struct PendingUpdate {
    UpdateRequest request;
    std::promise<UpdateResult> promise;
    Deadline deadline;
  };

  std::future<QueryResult> enqueue_queries(QueryBatch q, Deadline deadline)
      PARCT_EXCLUDES(mu_, stats_mu_);
  std::future<UpdateResult> enqueue_update(UpdateRequest u, Deadline deadline)
      PARCT_EXCLUDES(mu_, stats_mu_);

  // Wait predicates for the admission backpressure loops — explicit
  // REQUIRES(mu_) methods, never predicate lambdas (the analysis treats a
  // lambda as an unannotated function and would flag its guarded reads).
  bool query_space_free() const PARCT_REQUIRES(mu_) {
    return query_queue_.size() < cfg_.max_pending_query_batches;
  }
  bool update_space_free() const PARCT_REQUIRES(mu_) {
    return update_queue_.size() < cfg_.max_pending_updates;
  }
  bool work_pending() const PARCT_REQUIRES(mu_) {
    return !query_queue_.empty() || !update_queue_.empty();
  }

  /// Drains every pending query batch plus at most one update into an
  /// epoch (shared by engine_loop and step; both record the pre-drain
  /// queue depths for telemetry).
  void take_epoch(std::vector<PendingQuery>& queries,
                  std::optional<PendingUpdate>& update, std::size_t& qdepth,
                  std::size_t& udepth) PARCT_REQUIRES(mu_);

  // Admission-path stats bumps. stats_mu_ nests inside mu_ here (the
  // documented mu_ -> stats_mu_ order); keeping the inner acquisition in
  // these helpers keeps every stats_mu_ critical section tiny and visibly
  // leaf-level.
  void note_backpressure_wait() PARCT_EXCLUDES(stats_mu_);
  void note_deadline_rejection() PARCT_EXCLUDES(stats_mu_);
  void note_admission_drop() PARCT_EXCLUDES(stats_mu_);
  void note_query_depth(std::size_t depth) PARCT_EXCLUDES(stats_mu_);
  void note_update_depth(std::size_t depth) PARCT_EXCLUDES(stats_mu_);

  void engine_loop() PARCT_EXCLUDES(mu_, stats_mu_);
  bool process_epoch(std::vector<PendingQuery> queries,
                     std::optional<PendingUpdate> update,
                     std::size_t query_depth, std::size_t update_depth,
                     bool allow_overlap) PARCT_EXCLUDES(mu_, stats_mu_);
  QueryResult answer(const QueryBatch& q, const Snapshot& snap) const;
  void publish_version(std::uint64_t version);

  contract::ContractionForest& c_;
  contract::DynamicUpdater updater_;
  rc::RCForest rcf_;
  rc::TreeAggregate<Weight> agg_;
  forest::Forest mirror_;  // maintained only when validate_updates
  SnapshotStore store_;
  ServiceConfig cfg_;
  std::uint64_t version_ = 0;  // engine/step thread only
  bool failed_ = false;        // an apply() threw mid-flight; updates halted
  std::atomic<bool> pool_healthy_{true};

  Mutex mu_;
  CondVar cv_work_;   // engine parks here; signaled on admission and stop
  CondVar cv_space_;  // submitters park here; signaled on drain and stop
  std::deque<PendingQuery> query_queue_ PARCT_GUARDED_BY(mu_);
  std::deque<PendingUpdate> update_queue_ PARCT_GUARDED_BY(mu_);
  bool stopping_ PARCT_GUARDED_BY(mu_) = false;
  bool started_ PARCT_GUARDED_BY(mu_) = false;
  // Guarded: start() writes the handle while a concurrent stop() must read
  // it — stop() moves it out under mu_ and joins outside the lock.
  // parct-lint: allow(raw-thread) reason: service engine thread handle
  std::thread engine_ PARCT_GUARDED_BY(mu_);

  // Leaf lock for the stats block; acquired inside mu_ on the admission
  // paths, never the other way around.
  mutable Mutex stats_mu_ PARCT_ACQUIRED_AFTER(mu_);
  ServiceStats stats_ PARCT_GUARDED_BY(stats_mu_);
};

/// Everything BatchServer::recover hands back. The server borrows the
/// forest and the manager, so keep all three alive together (and destroy
/// the server first — member order here does that).
struct RecoveredServer {
  std::unique_ptr<contract::ContractionForest> forest;
  std::shared_ptr<durability::Manager> manager;
  std::unique_ptr<BatchServer> server;
  std::uint64_t version = 0;   ///< version serving resumed at
  std::uint64_t replayed = 0;  ///< WAL records replayed past the checkpoint
};

}  // namespace parct::service
