// Epoch-pinned snapshots of the query-relevant derived state.
//
// A Snapshot is an *immutable* copy of everything the read side needs —
// the RC event table (representative links for root/connectivity) and the
// tree-aggregate tables — stamped with a version number. Queries fan out
// over a snapshot with plain parallel_for and never look at the live
// ContractionForest, so a DynamicUpdater::apply mutating the live
// structure on another thread can never expose a half-propagated round to
// readers: snapshot isolation by construction, not by locking.
//
// SnapshotStore is the RCU-style publication point: writers build the
// successor version into a recycled buffer (double-buffering — a retired
// buffer is reused once the last reader handle drops it, so the steady
// state allocates nothing beyond the two O(n) buffers) and publish() it
// atomically; readers acquire() a SnapshotHandle that pins one version
// for as long as they hold it.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "forest/types.hpp"
#include "parallel/capability.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

namespace parct::service {

/// Weight type served by the snapshot/serving layer (the core
/// TreeAggregate stays generic; the service fixes one concrete group).
using Weight = long;

struct Snapshot {
  /// Monotonic structure version: 0 for the initial construction, +1 per
  /// applied update batch.
  std::uint64_t version = 0;

  /// Copy of RCForest::events() at this version.
  std::vector<rc::Event> events;
  /// Copies of TreeAggregate weights()/accumulators() at this version
  /// (empty when the server runs without weights).
  std::vector<Weight> weights;
  std::vector<Weight> accumulators;

  // --- the batch-query View concept (rc/batch_queries.hpp) -------------
  // All entry points are total: an out-of-range or absent id yields the
  // defined sentinel instead of UB, so snapshots can serve untrusted ids.

  std::size_t size() const { return events.size(); }

  bool present(VertexId v) const {
    return v < events.size() &&
           events[v].kind != rc::EventKind::kAbsent;
  }

  VertexId representative(VertexId v) const { return events[v].into; }

  /// Root of v's tree at this version; kNoVertex for invalid ids.
  /// O(log n) expected (climbs the representative chain).
  VertexId root(VertexId v) const {
    if (!present(v)) return kNoVertex;
    while (events[v].into != kNoVertex) v = events[v].into;
    return v;
  }

  bool connected(VertexId u, VertexId v) const {
    if (!present(u) || !present(v)) return false;
    return root(u) == root(v);
  }

  /// Total weight of v's tree at this version; Weight{} for invalid ids
  /// or when the snapshot carries no weights.
  Weight tree_weight(VertexId v) const {
    const VertexId r = root(v);
    return r != kNoVertex && r < accumulators.size() ? accumulators[r]
                                                     : Weight{};
  }

  /// Fills this buffer from the live derived state. O(n) vector copies
  /// (memcpy-speed; capacity is reused on recycled buffers).
  void assign_from(const rc::RCForest& rcf,
                   const rc::TreeAggregate<Weight>* agg,
                   std::uint64_t new_version) {
    version = new_version;
    events = rcf.events();
    if (agg != nullptr) {
      weights = agg->weights();
      accumulators = agg->accumulators();
    } else {
      weights.clear();
      accumulators.clear();
    }
  }
};

/// A pinned, read-only view of one published version. Copyable; the
/// snapshot stays alive (and its buffer out of the recycle pool) until
/// the last handle drops.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(std::shared_ptr<const Snapshot> s)
      : s_(std::move(s)) {}

  explicit operator bool() const { return s_ != nullptr; }
  const Snapshot& operator*() const { return *s_; }
  const Snapshot* operator->() const { return s_.get(); }
  const Snapshot* get() const { return s_.get(); }
  std::uint64_t version() const { return s_ ? s_->version : 0; }

 private:
  std::shared_ptr<const Snapshot> s_;
};

class SnapshotStore {
 public:
  /// Current front version pin. Never blocks publication; the handle keeps
  /// observing its version while successors are published.
  SnapshotHandle acquire() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return SnapshotHandle(front_);
  }

  std::uint64_t version() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return front_ ? front_->version : 0;
  }

  /// A mutable buffer to build the next version into: a retired
  /// double-buffer slot if no reader still pins it, else a fresh
  /// allocation (counted, so tests/benches can assert steady-state reuse).
  std::shared_ptr<Snapshot> begin_build() PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    for (auto& slot : ring_) {
      // use_count == 1: only the ring references it — no front_ alias, no
      // reader handles. Safe to mutate in place.
      if (slot && slot != building_ && slot.use_count() == 1) {
        ++buffers_reused_;
        building_ = slot;
        return slot;
      }
    }
    ++buffers_allocated_;
    auto fresh = std::make_shared<Snapshot>();
    for (auto& slot : ring_) {
      if (slot == nullptr || (slot != building_ && slot.use_count() == 1)) {
        slot = fresh;
        break;
      }
    }
    building_ = fresh;
    return fresh;
  }

  /// Publishes `next` as the front version. Readers that already hold a
  /// handle keep their pinned version; new acquires see `next`.
  void publish(std::shared_ptr<Snapshot> next) PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    if (building_ == next) building_ = nullptr;
    front_ = std::shared_ptr<const Snapshot>(std::move(next));
    ++published_;
  }

  std::uint64_t published() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return published_;
  }
  std::uint64_t buffers_reused() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return buffers_reused_;
  }
  std::uint64_t buffers_allocated() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return buffers_allocated_;
  }

 private:
  mutable Mutex mu_;
  // The *pointers* below are guarded; the pointees deliberately are not:
  // front_'s Snapshot is immutable once published, and building_'s is
  // mutated lock-free by the single builder thread that begin_build()
  // handed it to (the free-list scan above proves no reader aliases it).
  std::shared_ptr<const Snapshot> front_ PARCT_GUARDED_BY(mu_);
  // Double buffer: publish() aliases one slot as front_; the other slot
  // becomes recyclable as soon as the previous front's readers drain.
  std::shared_ptr<Snapshot> ring_[2] PARCT_GUARDED_BY(mu_);
  // Handed out, not yet published.
  std::shared_ptr<Snapshot> building_ PARCT_GUARDED_BY(mu_);
  std::uint64_t published_ PARCT_GUARDED_BY(mu_) = 0;
  std::uint64_t buffers_reused_ PARCT_GUARDED_BY(mu_) = 0;
  std::uint64_t buffers_allocated_ PARCT_GUARDED_BY(mu_) = 0;
};

}  // namespace parct::service
