// Shadow-access annotation macros for the SP-bags detector.
//
// Instrumented code marks its reads/writes of shared logical state with
// these macros. With PARCT_RACE_DETECT=OFF every macro expands to
// ((void)0) — the key expressions are not even evaluated, so the hot path
// is byte-for-byte unaffected. With ON, each access first checks
// spbags::active() (a relaxed load; false outside detection sessions) and
// only then evaluates the key and updates the shadow cell.
//
// Conventions:
//   PARCT_SHADOW_READ(key) / PARCT_SHADOW_WRITE(key)
//       one logical cell (see analysis/shadow_keys.hpp for key builders);
//   PARCT_SHADOW_READ_REC / WRITE_REC (sid, v, round)
//       a whole RoundRecord: the parent cell plus every child slot;
//   PARCT_SHADOW_READ_CHILDREN(sid, v, round)
//       just the child slots;
//   PARCT_SHADOW_BUFFER(name)
//       declares `name`, a fresh per-call nonce for buffer_cell() keys, so
//       reused scratch allocations never alias across calls.
#pragma once

#include <cstdint>

#include "analysis/sp_bags.hpp"

#if PARCT_RACE_DETECT

#define PARCT_SHADOW_READ(...)                                              \
  (::parct::analysis::spbags::active()                                      \
       ? ::parct::analysis::spbags::on_read((__VA_ARGS__), __FILE__,        \
                                            __LINE__)                       \
       : (void)0)

#define PARCT_SHADOW_WRITE(...)                                             \
  (::parct::analysis::spbags::active()                                      \
       ? ::parct::analysis::spbags::on_write((__VA_ARGS__), __FILE__,       \
                                             __LINE__)                      \
       : (void)0)

#define PARCT_SHADOW_READ_REC(sid, v, round)                                \
  (::parct::analysis::spbags::active()                                      \
       ? ::parct::analysis::spbags::read_record((sid), (v), (round),        \
                                                __FILE__, __LINE__)         \
       : (void)0)

#define PARCT_SHADOW_WRITE_REC(sid, v, round)                               \
  (::parct::analysis::spbags::active()                                      \
       ? ::parct::analysis::spbags::write_record((sid), (v), (round),       \
                                                 __FILE__, __LINE__)        \
       : (void)0)

#define PARCT_SHADOW_READ_CHILDREN(sid, v, round)                           \
  (::parct::analysis::spbags::active()                                      \
       ? ::parct::analysis::spbags::read_children((sid), (v), (round),      \
                                                  __FILE__, __LINE__)       \
       : (void)0)

#define PARCT_SHADOW_BUFFER(name)                                           \
  const std::uint64_t name = ::parct::analysis::spbags::new_buffer_id()

#else  // !PARCT_RACE_DETECT

#define PARCT_SHADOW_READ(...) ((void)0)
#define PARCT_SHADOW_WRITE(...) ((void)0)
#define PARCT_SHADOW_READ_REC(sid, v, round) ((void)0)
#define PARCT_SHADOW_WRITE_REC(sid, v, round) ((void)0)
#define PARCT_SHADOW_READ_CHILDREN(sid, v, round) ((void)0)
#define PARCT_SHADOW_BUFFER(name) \
  [[maybe_unused]] const std::uint64_t name = 0

#endif  // PARCT_RACE_DETECT
