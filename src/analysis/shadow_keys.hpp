// Logical shadow-cell keys for the SP-bags determinacy-race detector.
//
// The detector tracks *logical* locations, not raw addresses: a 64-bit key
// names a cell of the contraction structure ((P, C, D) entries per vertex
// and round), a slot of a named scratch array, or an element of a per-call
// primitive buffer. Logical keys make the shadow map immune to allocator
// address reuse (a freed-and-reallocated vector would alias raw addresses
// across unrelated objects) and make race reports readable.
//
// This header is dependency-free on purpose: it is included from the
// annotation macros, which appear in headers across src/.
#pragma once

#include <cstdint>

namespace parct::analysis {

// One instrumented logical location. The value is an opaque packed id;
// spbags::describe() (sp_bags.cpp) decodes it for race reports.
struct ShadowKey {
  std::uint64_t value;
};

// Key spaces, packed into the top 4 bits.
enum class ShadowSpace : std::uint64_t {
  kRecordParent = 1,  // (sid, v, round): RoundRecord::parent + parent_slot
  kRecordChild = 2,   // (sid, v, round, slot): RoundRecord::children[slot]
  kRecordRounds = 3,  // (sid, v): the rounds vector itself (size/growth)
  kDuration = 4,      // (sid, v): the duration entry D[v]
  kScratch = 5,       // (array, index): a named long-lived scratch array
  kBuffer = 6,        // (nonce, index): a per-call primitive buffer
};

// Named scratch arrays (construct's status vector, DynamicUpdater's
// epoch-stamped marks and claim-then-pack staging arrays).
enum class ShadowArray : std::uint64_t {
  kConstructStatus = 0,  // construct.cpp: per-round classification
  kMarkL = 1,            // dynamic_update: epoch marks for L
  kMarkLX = 2,           // dynamic_update: epoch marks for L ∪ X
  kStatusG = 3,          // dynamic_update: kind in the old contraction G
  kOldLeaf = 4,          // dynamic_update: leaf-in-G flags
  kNewLeaf = 5,          // dynamic_update: leaf-in-F flags
  kCand = 6,             // dynamic_update: claim-then-pack candidate slots
  kRCEvents = 7,         // rc_forest: the derived per-vertex event table
};

namespace detail {

// Layouts (top 4 bits are always the space tag):
//   structure cells:  tag(4) | sid(10) | v(32) | round(15) | slot(3)
//   scratch cells:    tag(4) | array(6) | 0(22) | index(32)
//   buffer cells:     tag(4) | nonce(28) | index(32)
constexpr std::uint64_t tag(ShadowSpace s) {
  return static_cast<std::uint64_t>(s) << 60;
}

constexpr std::uint64_t structure_key(ShadowSpace s, std::uint64_t sid,
                                      std::uint64_t v, std::uint64_t round,
                                      std::uint64_t slot) {
  return tag(s) | ((sid & 0x3FFu) << 50) | ((v & 0xFFFFFFFFu) << 18) |
         ((round & 0x7FFFu) << 3) | (slot & 0x7u);
}

}  // namespace detail

// RoundRecord::parent / parent_slot of vertex v at `round` (one cell: the
// two fields are always written together by the same writer).
constexpr ShadowKey record_parent_cell(std::uint32_t sid, std::uint32_t v,
                                       std::uint32_t round) {
  return {detail::structure_key(ShadowSpace::kRecordParent, sid, v, round, 0)};
}

// RoundRecord::children[slot] of vertex v at `round`.
constexpr ShadowKey record_child_cell(std::uint32_t sid, std::uint32_t v,
                                      std::uint32_t round,
                                      std::uint32_t slot) {
  return {
      detail::structure_key(ShadowSpace::kRecordChild, sid, v, round, slot)};
}

// The per-vertex rounds vector as a whole: growing it (ensure_round) is a
// write; indexing into it (record/record_mut) is a read. This catches
// resize-during-access races that per-field cells cannot see.
constexpr ShadowKey record_rounds_cell(std::uint32_t sid, std::uint32_t v) {
  return {detail::structure_key(ShadowSpace::kRecordRounds, sid, v, 0, 0)};
}

// The duration entry D[v].
constexpr ShadowKey duration_cell(std::uint32_t sid, std::uint32_t v) {
  return {detail::structure_key(ShadowSpace::kDuration, sid, v, 0, 0)};
}

// Element `index` of a named scratch array.
constexpr ShadowKey scratch_cell(ShadowArray array, std::uint64_t index) {
  return {detail::tag(ShadowSpace::kScratch) |
          ((static_cast<std::uint64_t>(array) & 0x3Fu) << 32) |
          (index & 0xFFFFFFFFu)};
}

// Element `index` of the per-call buffer identified by `nonce` (obtained
// from PARCT_SHADOW_BUFFER, or from Workspace::Lease::shadow_nonce() for
// pooled scratch blocks — the arena mints a fresh nonce on every acquire).
// Fresh nonces per call/lease keep reused scratch allocations from
// aliasing across calls, so block recycling is never misreported as a
// race.
constexpr ShadowKey buffer_cell(std::uint64_t nonce, std::uint64_t index) {
  return {detail::tag(ShadowSpace::kBuffer) | ((nonce & 0x0FFFFFFFu) << 32) |
          (index & 0xFFFFFFFFu)};
}

}  // namespace parct::analysis
