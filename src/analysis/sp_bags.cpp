#include "analysis/sp_bags.hpp"

#if PARCT_RACE_DETECT

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "forest/types.hpp"

namespace parct::analysis::spbags {

namespace detail {

constexpr std::uint32_t kNone = 0xFFFFFFFFu;

// One disjoint-set node. is_p is meaningful only at set roots: it says
// whether the set is currently some procedure's P-bag (parallel with the
// running instruction) or an S-bag (serial with it).
struct Bag {
  std::uint32_t parent;
  std::uint8_t rank;
  bool is_p;
};

// One procedure = one BranchScope body (plus the root). fork_index/which
// reconstruct the logical fork path for race reports.
struct Proc {
  std::uint32_t sbag;
  std::uint32_t pbag;  // kNone when empty
  std::uint32_t parent_proc;
  std::uint32_t fork_index;    // which fork2join of the parent spawned us
  std::uint8_t which;          // 0 = left branch, 1 = right branch
  std::uint32_t forks_started = 0;
  std::uint8_t cur_branch = 0;
};

// Last recorded accessors of one logical location.
struct Cell {
  std::uint32_t writer = kNone;  // proc ids
  std::uint32_t reader = kNone;
  const char* w_file = nullptr;
  int w_line = 0;
  const char* r_file = nullptr;
  int r_line = 0;
};

struct State {
  std::vector<Bag> bags;
  std::vector<Proc> procs;
  std::vector<std::uint32_t> stack;  // proc ids; back() is current
  std::unordered_map<std::uint64_t, Cell> cells;
  std::uint64_t races = 0;
  std::uint64_t next_buffer = 0;
  OnRace on_race = OnRace::kAbort;
  std::thread::id owner;
};

namespace {

// The session singleton. Atomic so that pool worker threads running in an
// ON build *without* a session can evaluate active() concurrently with a
// session starting/ending on the main thread.
std::atomic<State*> g_state{nullptr};

std::atomic<std::uint32_t> g_next_structure{1};

State& state() { return *g_state.load(std::memory_order_relaxed); }

std::uint32_t current_proc(State& st) { return st.stack.back(); }

std::uint32_t make_bag(State& st, bool is_p) {
  const auto id = static_cast<std::uint32_t>(st.bags.size());
  st.bags.push_back({id, 0, is_p});
  return id;
}

// Find with path halving.
std::uint32_t find(State& st, std::uint32_t x) {
  while (st.bags[x].parent != x) {
    st.bags[x].parent = st.bags[st.bags[x].parent].parent;
    x = st.bags[x].parent;
  }
  return x;
}

// Union by rank of two roots; the surviving root is labelled `is_p`.
std::uint32_t unite(State& st, std::uint32_t a, std::uint32_t b, bool is_p) {
  if (a == b) {
    st.bags[a].is_p = is_p;
    return a;
  }
  if (st.bags[a].rank < st.bags[b].rank) std::swap(a, b);
  st.bags[b].parent = a;
  if (st.bags[a].rank == st.bags[b].rank) ++st.bags[a].rank;
  st.bags[a].is_p = is_p;
  return a;
}

// True iff the recorded accessor's bag is currently a P-bag, i.e. the
// recorded access runs logically in parallel with the current instruction.
bool in_p_bag(State& st, std::uint32_t proc) {
  return st.bags[find(st, st.procs[proc].sbag)].is_p;
}

// sync: S(F) ∪= P(F), P(F) := ∅. Everything the procedure has joined so
// far becomes serial with its continuation.
void sync_proc(State& st, std::uint32_t p) {
  Proc& proc = st.procs[p];
  if (proc.pbag == kNone) return;
  const std::uint32_t s = find(st, proc.sbag);
  const std::uint32_t pb = find(st, proc.pbag);
  unite(st, s, pb, /*is_p=*/false);
  proc.pbag = kNone;
}

// "main → f0.L → f2.R" — the chain of (fork index within parent, branch)
// pairs from the root to `proc`.
std::string fork_path(State& st, std::uint32_t proc) {
  std::vector<const Proc*> chain;
  for (std::uint32_t p = proc; p != 0; p = st.procs[p].parent_proc) {
    chain.push_back(&st.procs[p]);
  }
  std::ostringstream out;
  out << "main";
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out << " -> f" << (*it)->fork_index << ((*it)->which == 0 ? ".L" : ".R");
  }
  return out.str();
}

[[noreturn]] void report_race(State& st, const char* kind, ShadowKey key,
                              std::uint32_t prior_proc, const char* prior_file,
                              int prior_line, const char* prior_what,
                              const char* file, int line,
                              const char* cur_what) {
  ++st.races;
  std::ostringstream out;
  out << "parct determinacy race (" << kind << ") on " << describe(key)
      << "\n  prior " << prior_what << ": "
      << (prior_file != nullptr ? prior_file : "<unknown>") << ":" << prior_line
      << "  [" << fork_path(st, prior_proc) << "]"
      << "\n  now   " << cur_what << ": " << (file != nullptr ? file : "?")
      << ":" << line << "  [" << fork_path(st, current_proc(st)) << "]"
      << "\n  the two accesses are logically parallel (the prior accessor is"
      << "\n  in a P-bag) and at least one is a write: the program's result"
      << "\n  can depend on the schedule.\n";
  if (st.on_race == OnRace::kThrow) throw DeterminacyRace(out.str());
  std::fputs(out.str().c_str(), stderr);
  std::abort();
}

}  // namespace
}  // namespace detail

using detail::g_next_structure;
using detail::g_state;
using detail::kNone;
using detail::State;

bool active() noexcept {
  State* st = g_state.load(std::memory_order_relaxed);
  return st != nullptr && st->owner == std::this_thread::get_id();
}

Session::Session(OnRace on_race) : st_(nullptr) {
  if (g_state.load(std::memory_order_relaxed) != nullptr) {
    throw std::logic_error(
        "spbags::Session: sessions do not nest (one detector run at a time)");
  }
  st_ = new State;
  st_->on_race = on_race;
  st_->owner = std::this_thread::get_id();
  // The root procedure: its S-bag is bag 0 and stays an S-bag forever, so
  // top-level sequential code (oracle re-runs, the updater's sequential
  // phases) is serial with everything by construction.
  detail::make_bag(*st_, /*is_p=*/false);
  st_->procs.push_back({0, kNone, kNone, 0, 0});
  st_->stack.push_back(0);
  g_state.store(st_, std::memory_order_release);
}

Session::~Session() {
  g_state.store(nullptr, std::memory_order_release);
  delete st_;
}

std::uint64_t Session::races_detected() const noexcept { return st_->races; }

std::uint64_t Session::cells_tracked() const noexcept {
  return st_->cells.size();
}

std::uint64_t Session::procs_created() const noexcept {
  return st_->procs.size();
}

ForkScope::ForkScope() : live_(active()) {
  if (!live_) return;
  State& st = detail::state();
  detail::Proc& cur = st.procs[detail::current_proc(st)];
  ++cur.forks_started;
  cur.cur_branch = 0;
}

ForkScope::~ForkScope() {
  if (!live_ || !active()) return;
  State& st = detail::state();
  detail::sync_proc(st, detail::current_proc(st));
}

BranchScope::BranchScope() : live_(active()) {
  if (!live_) return;
  State& st = detail::state();
  const std::uint32_t parent = detail::current_proc(st);
  const std::uint32_t fork_index = st.procs[parent].forks_started - 1;
  const std::uint8_t which = st.procs[parent].cur_branch++;
  const std::uint32_t sbag = detail::make_bag(st, /*is_p=*/false);
  const auto id = static_cast<std::uint32_t>(st.procs.size());
  st.procs.push_back({sbag, kNone, parent, fork_index, which});
  st.stack.push_back(id);
}

BranchScope::~BranchScope() {
  if (!live_ || !active()) return;
  State& st = detail::state();
  const std::uint32_t child = detail::current_proc(st);
  st.stack.pop_back();
  // A well-formed branch has already synced all its forks; fold in any
  // pending P-bag (exception unwind) before returning the child's bag.
  detail::sync_proc(st, child);
  detail::Proc& parent = st.procs[detail::current_proc(st)];
  const std::uint32_t child_s = detail::find(st, st.procs[child].sbag);
  if (parent.pbag == kNone) {
    st.bags[child_s].is_p = true;
    parent.pbag = child_s;
  } else {
    parent.pbag =
        detail::unite(st, detail::find(st, parent.pbag), child_s,
                      /*is_p=*/true);
  }
}

void on_read(ShadowKey key, const char* file, int line) {
  State& st = detail::state();
  detail::Cell& c = st.cells[key.value];
  if (c.writer != kNone && detail::in_p_bag(st, c.writer)) {
    detail::report_race(st, "write-read", key, c.writer, c.w_file, c.w_line,
                        "write", file, line, "read");
  }
  // Keep a P-bag reader in place (it still races with future writes);
  // otherwise the current, serial reader becomes the recorded one.
  if (c.reader == kNone || !detail::in_p_bag(st, c.reader)) {
    c.reader = detail::current_proc(st);
    c.r_file = file;
    c.r_line = line;
  }
}

void on_write(ShadowKey key, const char* file, int line) {
  State& st = detail::state();
  detail::Cell& c = st.cells[key.value];
  if (c.reader != kNone && detail::in_p_bag(st, c.reader)) {
    detail::report_race(st, "read-write", key, c.reader, c.r_file, c.r_line,
                        "read", file, line, "write");
  }
  if (c.writer != kNone && detail::in_p_bag(st, c.writer)) {
    detail::report_race(st, "write-write", key, c.writer, c.w_file, c.w_line,
                        "write", file, line, "write");
  }
  c.writer = detail::current_proc(st);
  c.w_file = file;
  c.w_line = line;
}

void read_record(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                 const char* file, int line) {
  on_read(record_parent_cell(sid, v, round), file, line);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(kMaxDegree); ++s) {
    on_read(record_child_cell(sid, v, round, s), file, line);
  }
}

void write_record(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                  const char* file, int line) {
  on_write(record_parent_cell(sid, v, round), file, line);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(kMaxDegree); ++s) {
    on_write(record_child_cell(sid, v, round, s), file, line);
  }
}

void read_children(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                   const char* file, int line) {
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(kMaxDegree); ++s) {
    on_read(record_child_cell(sid, v, round, s), file, line);
  }
}

std::uint64_t new_buffer_id() noexcept {
  if (!active()) return 0;
  return ++detail::state().next_buffer;
}

std::uint32_t new_structure_id() noexcept {
  return g_next_structure.fetch_add(1, std::memory_order_relaxed);
}

std::string describe(ShadowKey key) {
  const auto space = static_cast<ShadowSpace>(key.value >> 60);
  const auto sid = static_cast<std::uint32_t>((key.value >> 50) & 0x3FFu);
  const auto v = static_cast<std::uint32_t>((key.value >> 18) & 0xFFFFFFFFu);
  const auto round = static_cast<std::uint32_t>((key.value >> 3) & 0x7FFFu);
  const auto slot = static_cast<std::uint32_t>(key.value & 0x7u);
  const auto low32 = static_cast<std::uint32_t>(key.value & 0xFFFFFFFFu);
  std::ostringstream out;
  switch (space) {
    case ShadowSpace::kRecordParent:
      out << "P/parent_slot of v=" << v << " round=" << round << " (structure "
          << sid << ")";
      break;
    case ShadowSpace::kRecordChild:
      out << "C[slot " << slot << "] of v=" << v << " round=" << round
          << " (structure " << sid << ")";
      break;
    case ShadowSpace::kRecordRounds:
      out << "round-record vector of v=" << v << " (structure " << sid << ")";
      break;
    case ShadowSpace::kDuration:
      out << "D of v=" << v << " (structure " << sid << ")";
      break;
    case ShadowSpace::kScratch: {
      static constexpr const char* kNames[] = {
          "construct.status", "update.mark_l",   "update.mark_lx",
          "update.status_g",  "update.old_leaf", "update.new_leaf",
          "update.cand",      "rc.events"};
      const auto array = (key.value >> 32) & 0x3Fu;
      const char* name =
          array < sizeof(kNames) / sizeof(kNames[0]) ? kNames[array] : "?";
      out << "scratch " << name << "[" << low32 << "]";
      break;
    }
    case ShadowSpace::kBuffer:
      out << "buffer #" << ((key.value >> 32) & 0x0FFFFFFFu) << " cell "
          << low32;
      break;
    default:
      out << "key 0x" << std::hex << key.value;
      break;
  }
  return out.str();
}

}  // namespace parct::analysis::spbags

#endif  // PARCT_RACE_DETECT
