// SP-bags determinacy-race detector (Feng & Leiserson, SPAA 1997), adapted
// to this library's binary fork2join runtime.
//
// When a Session is active the fork-join primitives run the program
// *serially* in depth-first order while maintaining, per procedure, an
// S-bag (descendants that logically precede the current instruction) and a
// P-bag (completed sub-computations that logically run in parallel with
// it), both as disjoint sets. Every instrumented read/write (see
// annotations.hpp) consults the shadow cell of its logical location: an
// access whose previous conflicting accessor sits in a P-bag is a
// determinacy race — two logically parallel accesses to the same location,
// at least one a write — and is reported with both sites and the logical
// fork path, then aborts (or throws, for tests).
//
// Because every fork2join in this runtime fully joins its branches before
// returning, the procedure tree is exactly the nest of ForkScope/
// BranchScope pairs that fork_join.hpp establishes on the serial path; a
// procedure's P-bag empties at each sync, and bags merged into the root's
// S-bag stay serial forever. Total overhead is near-linear: one
// inverse-Ackermann disjoint-set operation per instrumented access.
//
// Everything here compiles away when PARCT_RACE_DETECT is off: the stubs
// below keep call sites valid while active() folds to constant false.
#pragma once

#include <cstdint>

#include "analysis/shadow_keys.hpp"

#ifndef PARCT_RACE_DETECT
#define PARCT_RACE_DETECT 0
#endif

#if PARCT_RACE_DETECT
#include <stdexcept>
#include <string>
#endif

namespace parct::analysis::spbags {

// Whether the detector is compiled into this build (-DPARCT_RACE_DETECT=ON).
constexpr bool compiled_in() { return PARCT_RACE_DETECT != 0; }

// What to do when a race is found. kAbort prints the report to stderr and
// calls std::abort() (the production/CLI behaviour); kThrow raises
// DeterminacyRace so tests can assert on planted races.
enum class OnRace { kAbort, kThrow };

#if PARCT_RACE_DETECT

namespace detail {
struct State;
}  // namespace detail

// Thrown on a detected race under OnRace::kThrow; what() is the full
// report (both access sites, the logical location, both fork paths).
class DeterminacyRace : public std::runtime_error {
 public:
  explicit DeterminacyRace(const std::string& report)
      : std::runtime_error(report) {}
};

// True while a Session exists *and* the caller is the session's owning
// thread. Annotation macros and the fork-join hooks gate on this, so an
// ON build without a live session runs the normal parallel code paths
// with only a relaxed load + thread-id compare of overhead per hook.
bool active() noexcept;

// A detection session. Construct on the thread that will run the program
// (outside any parallel region); all fork-join work on that thread is
// then executed serially under SP-bags until destruction. Sessions do not
// nest and are single-threaded by construction.
class Session {
 public:
  explicit Session(OnRace on_race = OnRace::kAbort);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint64_t races_detected() const noexcept;
  std::uint64_t cells_tracked() const noexcept;
  std::uint64_t procs_created() const noexcept;

 private:
  detail::State* st_;
};

// RAII for one fork2join on the serial path: ForkScope brackets the whole
// fork (its destructor is the sync: S(F) ∪= P(F), P(F) := ∅); each branch
// body runs inside a BranchScope (its destructor returns the child's
// S-bag into the parent's P-bag). Exception-safe: unwinding through the
// scopes keeps the bags consistent.
class ForkScope {
 public:
  ForkScope();
  ~ForkScope();
  ForkScope(const ForkScope&) = delete;
  ForkScope& operator=(const ForkScope&) = delete;

 private:
  bool live_;
};

class BranchScope {
 public:
  BranchScope();
  ~BranchScope();
  BranchScope(const BranchScope&) = delete;
  BranchScope& operator=(const BranchScope&) = delete;

 private:
  bool live_;
};

// Shadow-cell hooks (call sites use the PARCT_SHADOW_* macros, which gate
// on active() before evaluating the key expression).
void on_read(ShadowKey key, const char* file, int line);
void on_write(ShadowKey key, const char* file, int line);

// Whole-RoundRecord convenience hooks: parent cell + every child slot.
void read_record(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                 const char* file, int line);
void write_record(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                  const char* file, int line);
void read_children(std::uint32_t sid, std::uint32_t v, std::uint32_t round,
                   const char* file, int line);

// Fresh nonce for a per-call primitive buffer (0 when no session is
// active — the cells are never consulted then).
std::uint64_t new_buffer_id() noexcept;

// Process-unique shadow id for a ContractionForest instance.
std::uint32_t new_structure_id() noexcept;

// Human-readable decoding of a key, e.g. "C[slot 2] of v=17 round=3
// (structure 1)". Used in race reports and available to tests.
std::string describe(ShadowKey key);

#else  // !PARCT_RACE_DETECT — inert stubs, everything folds to nothing.

inline constexpr bool active() noexcept { return false; }

class Session {
 public:
  explicit Session(OnRace = OnRace::kAbort) {}
  static constexpr std::uint64_t races_detected() noexcept { return 0; }
  static constexpr std::uint64_t cells_tracked() noexcept { return 0; }
  static constexpr std::uint64_t procs_created() noexcept { return 0; }
};

class ForkScope {};
class BranchScope {};

inline constexpr std::uint64_t new_buffer_id() noexcept { return 0; }
inline constexpr std::uint32_t new_structure_id() noexcept { return 0; }

#endif  // PARCT_RACE_DETECT

}  // namespace parct::analysis::spbags
