// Parallel compaction ("pack"): keep the elements satisfying a predicate,
// preserving order. This is the C(n) subroutine of the paper's analysis;
// ours is the work-efficient prefix-sums version: O(n) work, O(log n) span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/annotations.hpp"
#include "parallel/parallel_for.hpp"
#include "primitives/scan.hpp"

namespace parct::prim {

/// Indices i in [0, n) with pred(i) true, in increasing order.
template <typename Pred>
std::vector<std::uint32_t> pack_index(std::size_t n, const Pred& pred) {
  if (n == 0) return {};
  if (par::sequential_mode()) {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(static_cast<std::uint32_t>(i));
    }
    return out;
  }
  PARCT_SHADOW_BUFFER(shadow_offsets);
  PARCT_SHADOW_BUFFER(shadow_out);
  std::vector<std::uint32_t> offsets(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_offsets, i));
    offsets[i] = pred(i) ? 1u : 0u;
  });
  const std::uint32_t total = exclusive_scan_inplace(offsets);
  std::vector<std::uint32_t> out(total);
  par::parallel_for(0, n, [&](std::size_t i) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_offsets, i));
    if (i + 1 < n) PARCT_SHADOW_READ(analysis::buffer_cell(shadow_offsets, i + 1));
    const bool keep = (i + 1 < n) ? offsets[i + 1] != offsets[i]
                                  : offsets[i] != total;
    // The write below proves the scatter is a permutation: two iterations
    // landing on the same output slot would be a write-write race.
    if (keep) {
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_out, offsets[i]));
      out[offsets[i]] = static_cast<std::uint32_t>(i);
    }
  });
  return out;
}

/// Elements of `in` whose index satisfies `pred`, in order.
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& in, const Pred& pred) {
  const std::size_t n = in.size();
  if (n == 0) return {};
  if (par::sequential_mode()) {
    std::vector<T> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(in[i]);
    }
    return out;
  }
  PARCT_SHADOW_BUFFER(shadow_offsets);
  PARCT_SHADOW_BUFFER(shadow_out);
  std::vector<std::uint32_t> offsets(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_offsets, i));
    offsets[i] = pred(i) ? 1u : 0u;
  });
  const std::uint32_t total = exclusive_scan_inplace(offsets);
  std::vector<T> out(total);
  par::parallel_for(0, n, [&](std::size_t i) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_offsets, i));
    if (i + 1 < n) PARCT_SHADOW_READ(analysis::buffer_cell(shadow_offsets, i + 1));
    const bool keep = (i + 1 < n) ? offsets[i + 1] != offsets[i]
                                  : offsets[i] != total;
    if (keep) {
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_out, offsets[i]));
      out[offsets[i]] = in[i];
    }
  });
  return out;
}

/// Elements of `in` satisfying the value predicate, in order.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& in, const Pred& pred) {
  return pack(in, [&](std::size_t i) { return pred(in[i]); });
}

}  // namespace parct::prim
