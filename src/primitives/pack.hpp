// Parallel compaction ("pack"): keep the elements satisfying a predicate,
// preserving order. This is the C(n) subroutine of the paper's analysis;
// ours is the work-efficient prefix-sums version: O(n) work, O(log n) span.
//
// The *_into variants are destination-passing and run a FUSED scan+pack:
// one sweep counts the predicate hits per block, a serial scan over the
// per-block counts (leased from the Workspace — num_blocks entries, not n)
// places each block, and a second sweep writes each block's survivors at
// its offset. Compared to the classic flags/offsets formulation this never
// materializes an n-sized offsets vector and performs zero heap
// allocations in steady state (the destination reuses its capacity; growth
// is tracked in the workspace stats). The predicate is evaluated at most
// twice per index and must be pure.
//
// The classic allocating signatures remain as thin shims over the fused
// kernel, drawing scratch from the calling worker's pool.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/annotations.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/scan.hpp"
#include "primitives/workspace.hpp"

namespace parct::prim {

namespace detail {

inline constexpr std::size_t kPackBlock = 4096;

/// Fused scan+pack over [0, n): `emit(i, slot)` is called once for every i
/// with pred(i), where `slot` is i's rank among the kept indices. The
/// caller sizes the destination via `resize_out(total)` between the count
/// and the write sweeps. Returns the number kept.
template <typename Pred, typename ResizeOut, typename Emit>
std::size_t fused_pack(std::size_t n, const Pred& pred, Workspace& ws,
                       const ResizeOut& resize_out, const Emit& emit) {
  const std::size_t num_blocks = (n + kPackBlock - 1) / kPackBlock;
  auto offsets = ws.acquire<std::uint32_t>(num_blocks);
  const std::uint64_t shadow_offsets = offsets.shadow_nonce();
  (void)shadow_offsets;
  // Sweep 1: per-block predicate counts.
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kPackBlock;
    const std::size_t hi = std::min(lo + kPackBlock, n);
    std::uint32_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) ++count;
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_offsets, b));
    offsets[b] = count;
  }, 1);
  // Serial exclusive scan of the block counts (num_blocks ≤ n/4096 + 1).
  // The total is accumulated wide and checked against the 32-bit offset
  // width before the narrowing cast (see offsets_fit_uint32).
  std::uint64_t total64 = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::uint32_t v = offsets[b];
    offsets[b] = static_cast<std::uint32_t>(total64);
    total64 += v;
  }
  assert(offsets_fit_uint32(total64) && "pack: 32-bit offset overflow");
  const std::size_t total = static_cast<std::size_t>(total64);
  resize_out(total);
  // Sweep 2: each block writes its survivors at its offset. Blocks own
  // disjoint destination ranges [offsets[b], offsets[b] + count_b), which
  // the shadow writes below prove (an overlap would be a write-write race).
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kPackBlock;
    const std::size_t hi = std::min(lo + kPackBlock, n);
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_offsets, b));
    std::uint32_t slot = offsets[b];
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) emit(i, slot++);
    }
  }, 1);
  return total;
}

}  // namespace detail

/// Number of i in [0, n) with pred(i) true. No allocation, O(n) work,
/// O(log n) span.
template <typename Pred>
std::size_t filter_count(std::size_t n, const Pred& pred) {
  return par::parallel_reduce(
      0, n, std::size_t{0},
      [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; },
      [](std::size_t a, std::size_t b) { return a + b; });
}

/// Indices i in [0, n) with pred(i) true, in increasing order, written
/// into `out` (resized; capacity reuse makes steady-state calls
/// allocation-free). Returns the number kept.
template <typename Pred>
std::size_t pack_index_into(std::size_t n, const Pred& pred,
                            std::vector<std::uint32_t>& out, Workspace& ws) {
  assert(offsets_fit_uint32(n) && "pack_index_into: n exceeds 32-bit offsets");
  if (n == 0) {
    out.clear();
    return 0;
  }
  if (par::sequential_mode()) {
    const std::size_t cap = out.capacity();
    out.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(static_cast<std::uint32_t>(i));
    }
    if (out.capacity() != cap) {
      ws.note_container_growth((out.capacity() - cap) *
                               sizeof(std::uint32_t));
    }
    return out.size();
  }
  PARCT_SHADOW_BUFFER(shadow_out);
  return detail::fused_pack(
      n, pred, ws, [&](std::size_t total) { ws.resize_tracked(out, total); },
      [&](std::size_t i, std::uint32_t slot) {
        PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_out, slot));
        out[slot] = static_cast<std::uint32_t>(i);
      });
}

/// Elements `in[i]` whose index satisfies `pred`, in order, written into
/// `out` (resized; steady-state calls are allocation-free). Returns the
/// number kept. `out` must not alias `in`.
template <typename T, typename Pred>
std::size_t pack_into(const T* in, std::size_t n, const Pred& pred,
                      std::vector<T>& out, Workspace& ws) {
  assert(offsets_fit_uint32(n) && "pack_into: n exceeds 32-bit offsets");
  if (n == 0) {
    out.clear();
    return 0;
  }
  if (par::sequential_mode()) {
    const std::size_t cap = out.capacity();
    out.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(in[i]);
    }
    if (out.capacity() != cap) {
      ws.note_container_growth((out.capacity() - cap) * sizeof(T));
    }
    return out.size();
  }
  PARCT_SHADOW_BUFFER(shadow_out);
  return detail::fused_pack(
      n, pred, ws, [&](std::size_t total) { ws.resize_tracked(out, total); },
      [&](std::size_t i, std::uint32_t slot) {
        PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_out, slot));
        out[slot] = in[i];
      });
}

template <typename T, typename Pred>
std::size_t pack_into(const std::vector<T>& in, const Pred& pred,
                      std::vector<T>& out, Workspace& ws) {
  return pack_into(in.data(), in.size(), pred, out, ws);
}

/// Indices i in [0, n) with pred(i) true, in increasing order.
/// (Allocating shim over pack_index_into; scratch from the calling
/// worker's pool.)
template <typename Pred>
std::vector<std::uint32_t> pack_index(std::size_t n, const Pred& pred) {
  std::vector<std::uint32_t> out;
  pack_index_into(n, pred, out, par::scheduler::worker_workspace());
  return out;
}

/// Elements of `in` whose index satisfies `pred`, in order. (Allocating
/// shim over pack_into.)
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& in, const Pred& pred) {
  std::vector<T> out;
  pack_into(in.data(), in.size(), pred, out, par::scheduler::worker_workspace());
  return out;
}

/// Elements of `in` satisfying the value predicate, in order.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& in, const Pred& pred) {
  return pack(in, [&](std::size_t i) { return pred(in[i]); });
}

}  // namespace parct::prim
