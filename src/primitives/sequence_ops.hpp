// Small parallel sequence utilities used across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace parct::prim {

/// vector {f(0), f(1), ..., f(n-1)} built in parallel.
template <typename F>
auto tabulate(std::size_t n, const F& f) {
  using T = decltype(f(std::size_t{0}));
  std::vector<T> out(n);
  par::parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

template <typename T>
void fill(std::vector<T>& v, const T& value) {
  par::parallel_for(0, v.size(), [&](std::size_t i) { v[i] = value; });
}

/// {0, 1, ..., n-1}.
inline std::vector<std::uint32_t> iota(std::size_t n) {
  return tabulate(n, [](std::size_t i) {
    return static_cast<std::uint32_t>(i);
  });
}

template <typename T>
T sum(const std::vector<T>& v) {
  return par::parallel_reduce(
      0, v.size(), T{}, [&](std::size_t i) { return v[i]; },
      [](T a, T b) { return a + b; });
}

template <typename Pred>
std::size_t count_if_index(std::size_t n, const Pred& pred) {
  return par::parallel_reduce(
      0, n, std::size_t{0},
      [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; },
      [](std::size_t a, std::size_t b) { return a + b; });
}

template <typename T>
T max_value(const std::vector<T>& v, T lowest = std::numeric_limits<T>::lowest()) {
  return par::parallel_reduce(
      0, v.size(), lowest, [&](std::size_t i) { return v[i]; },
      [](T a, T b) { return a > b ? a : b; });
}

template <typename Pred>
bool all_of_index(std::size_t n, const Pred& pred) {
  return par::parallel_reduce(
      0, n, true, [&](std::size_t i) { return pred(i); },
      [](bool a, bool b) { return a && b; });
}

}  // namespace parct::prim
