// Work-efficient parallel prefix sums: O(n) work, O(log n) span.
// Two-pass blocked algorithm (per-block sums, scan the block sums, then
// per-block local scans) — the compaction building block the paper's
// implementation uses (§4 "Implementation").
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/annotations.hpp"
#include "parallel/parallel_for.hpp"

namespace parct::prim {

/// Exclusive prefix sum of `in[0..n)` into `out[0..n)` (aliasing allowed);
/// returns the total. `T` must be an additive monoid under `+` with
/// zero-initialization as identity.
template <typename T>
T exclusive_scan(const T* in, T* out, std::size_t n) {
  if (n == 0) return T{};
  const std::size_t kBlock = 4096;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = acc;
      acc = acc + v;
    }
    return acc;
  }
  // Shadow cells: in/out share one logical array per call (aliasing is
  // allowed and the read of in[i] always precedes the write of out[i]).
  PARCT_SHADOW_BUFFER(shadow_io);
  PARCT_SHADOW_BUFFER(shadow_sums);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<T> block_sums(num_blocks);
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = acc;
  }, 1);
  T total{};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T v = block_sums[b];
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = total;
    total = total + v;
  }
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T acc = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      T v = in[i];
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_io, i));
      out[i] = acc;
      acc = acc + v;
    }
  }, 1);
  return total;
}

template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  return exclusive_scan(in.data(), out.data(), in.size());
}

/// In-place exclusive scan; returns the total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  return exclusive_scan(v.data(), v.data(), v.size());
}

/// Inclusive prefix sum; returns the total.
template <typename T>
T inclusive_scan(const T* in, T* out, std::size_t n) {
  if (n == 0) return T{};
  // Exclusive scan shifted by one, folding the element back in.
  const std::size_t kBlock = 4096;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      acc = acc + in[i];
      out[i] = acc;
    }
    return acc;
  }
  PARCT_SHADOW_BUFFER(shadow_io);
  PARCT_SHADOW_BUFFER(shadow_sums);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<T> block_sums(num_blocks);
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = acc;
  }, 1);
  T total{};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T v = block_sums[b];
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = total;
    total = total + v;
  }
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T acc = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_io, i));
      out[i] = acc;
    }
  }, 1);
  return total;
}

}  // namespace parct::prim
