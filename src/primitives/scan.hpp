// Work-efficient parallel prefix sums: O(n) work, O(log n) span.
// Two-pass blocked algorithm (per-block sums, scan the block sums, then
// per-block local scans) — the compaction building block the paper's
// implementation uses (§4 "Implementation").
//
// The *_into variants are destination-passing: they take a Workspace for
// the per-block scratch, so repeated calls are allocation-free in steady
// state. The classic signatures remain as thin shims over them, drawing
// scratch from the calling worker's pool.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/annotations.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/workspace.hpp"

namespace parct::prim {

/// True iff a prefix-sum total is representable in the 32-bit offset type
/// used by pack / counting sort. Precondition of every scan whose element
/// type is std::uint32_t (notably exclusive_scan_inplace on offset
/// vectors): the *total* must fit in 32 bits, or offsets silently wrap.
/// The parallel paths debug-assert this by mirroring the total in 64 bits;
/// see the 2^32-boundary unit test in scan_pack_test.cpp.
constexpr bool offsets_fit_uint32(std::uint64_t total) {
  return total <= 0xFFFFFFFFull;
}

namespace detail {

/// The 64-bit total of per-block counts, as the overflow guard computes it
/// (summed wide *before* any narrowing cast). Factored out so the
/// 2^32-boundary test can drive it with synthetic counts instead of a
/// 4 GiB input.
inline std::uint64_t wide_block_total(const std::uint32_t* counts,
                                      std::size_t num_blocks) {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) total += counts[b];
  return total;
}

}  // namespace detail

/// Exclusive prefix sum of `in[0..n)` into `out[0..n)` (aliasing allowed);
/// returns the total. `T` must be an additive monoid under `+` with
/// zero-initialization as identity. Per-block scratch comes from `ws`, so
/// steady-state calls do not allocate.
template <typename T>
T exclusive_scan_into(const T* in, T* out, std::size_t n, Workspace& ws) {
  if (n == 0) return T{};
  const std::size_t kBlock = 4096;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    T acc{};
#ifndef NDEBUG
    std::uint64_t total64 = 0;  // overflow mirror for 32-bit offset scans
#endif
    for (std::size_t i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = acc;
      acc = acc + v;
#ifndef NDEBUG
      if constexpr (std::is_same_v<T, std::uint32_t>) {
        total64 += v;
        assert(offsets_fit_uint32(total64) &&
               "exclusive_scan: 32-bit offset overflow");
      }
#endif
    }
    return acc;
  }
  // Shadow cells: in/out share one logical array per call (aliasing is
  // allowed and the read of in[i] always precedes the write of out[i]).
  PARCT_SHADOW_BUFFER(shadow_io);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  auto block_sums = ws.acquire<T>(num_blocks);
  const std::uint64_t shadow_sums = block_sums.shadow_nonce();
  (void)shadow_sums;
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = acc;
  }, 1);
  T total{};
  [[maybe_unused]] std::uint64_t total64 = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T v = block_sums[b];
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = total;
    total = total + v;
    if constexpr (std::is_same_v<T, std::uint32_t>) {
      total64 += v;
      assert(offsets_fit_uint32(total64) &&
             "exclusive_scan: 32-bit offset overflow");
    }
  }
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T acc = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      T v = in[i];
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_io, i));
      out[i] = acc;
      acc = acc + v;
    }
  }, 1);
  return total;
}

/// Destination-passing vector form: resizes `out` (growth is tracked in
/// the workspace stats) and scans into it.
template <typename T>
T exclusive_scan_into(const std::vector<T>& in, std::vector<T>& out,
                      Workspace& ws) {
  ws.resize_tracked(out, in.size());
  return exclusive_scan_into(in.data(), out.data(), in.size(), ws);
}

/// Allocating shim (scratch from the calling worker's pool).
template <typename T>
T exclusive_scan(const T* in, T* out, std::size_t n) {
  return exclusive_scan_into(in, out, n, par::scheduler::worker_workspace());
}

template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  return exclusive_scan(in.data(), out.data(), in.size());
}

/// In-place exclusive scan; returns the total. Precondition for
/// T = std::uint32_t: the total fits 32 bits (offsets_fit_uint32) — the
/// debug builds assert it, release builds would wrap.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  return exclusive_scan(v.data(), v.data(), v.size());
}

/// Inclusive prefix sum; returns the total. Per-block scratch from `ws`.
template <typename T>
T inclusive_scan_into(const T* in, T* out, std::size_t n, Workspace& ws) {
  if (n == 0) return T{};
  // Exclusive scan shifted by one, folding the element back in.
  const std::size_t kBlock = 4096;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      acc = acc + in[i];
      out[i] = acc;
    }
    return acc;
  }
  PARCT_SHADOW_BUFFER(shadow_io);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  auto block_sums = ws.acquire<T>(num_blocks);
  const std::uint64_t shadow_sums = block_sums.shadow_nonce();
  (void)shadow_sums;
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = acc;
  }, 1);
  T total{};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T v = block_sums[b];
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_sums, b));
    block_sums[b] = total;
    total = total + v;
  }
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    PARCT_SHADOW_READ(analysis::buffer_cell(shadow_sums, b));
    T acc = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_io, i));
      acc = acc + in[i];
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_io, i));
      out[i] = acc;
    }
  }, 1);
  return total;
}

/// Allocating shim (scratch from the calling worker's pool).
template <typename T>
T inclusive_scan(const T* in, T* out, std::size_t n) {
  return inclusive_scan_into(in, out, n, par::scheduler::worker_workspace());
}

}  // namespace parct::prim
