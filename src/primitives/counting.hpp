// Parallel histogram and stable counting sort for small integer keys
// (e.g. bucketing vertices by death round: K = O(log n) buckets).
// Blocked two-pass structure like scan.hpp: per-block local histograms,
// a column-major scan over the block histograms, then a per-block scatter.
// O(n + K * n/B) work, O(log n + K) span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/annotations.hpp"
#include "parallel/parallel_for.hpp"

namespace parct::prim {

/// counts[k] = |{ i in [0, n) : key(i) == k }|. `key(i)` must be < K.
template <typename KeyFn>
std::vector<std::uint32_t> histogram(std::size_t n, const KeyFn& key,
                                     std::size_t num_keys) {
  std::vector<std::uint32_t> counts(num_keys, 0);
  if (n == 0) return counts;
  const std::size_t kBlock = 8192;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    for (std::size_t i = 0; i < n; ++i) ++counts[key(i)];
    return counts;
  }
  PARCT_SHADOW_BUFFER(shadow_local);
  PARCT_SHADOW_BUFFER(shadow_counts);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<std::uint32_t> local(num_blocks * num_keys, 0);
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    std::uint32_t* mine = local.data() + b * num_keys;
    const std::size_t hi = std::min((b + 1) * kBlock, n);
    for (std::size_t i = b * kBlock; i < hi; ++i) {
      PARCT_SHADOW_WRITE(
          analysis::buffer_cell(shadow_local, b * num_keys + key(i)));
      ++mine[key(i)];
    }
  }, 1);
  par::parallel_for(0, num_keys, [&](std::size_t k) {
    std::uint32_t total = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      PARCT_SHADOW_READ(
          analysis::buffer_cell(shadow_local, b * num_keys + k));
      total += local[b * num_keys + k];
    }
    PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_counts, k));
    counts[k] = total;
  });
  return counts;
}

/// Indices 0..n-1 stably ordered by key(i) (all key-0 indices first, in
/// increasing order, then key-1, ...). `key(i)` must be < K.
template <typename KeyFn>
std::vector<std::uint32_t> counting_sort_indices(std::size_t n,
                                                 const KeyFn& key,
                                                 std::size_t num_keys) {
  std::vector<std::uint32_t> out(n);
  if (n == 0) return out;
  const std::size_t kBlock = 8192;
  if (!par::race_detect_forced() &&
      (n <= kBlock || par::scheduler::num_workers() == 1)) {
    std::vector<std::uint32_t> cursor(num_keys + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cursor[key(i) + 1];
    for (std::size_t k = 1; k <= num_keys; ++k) cursor[k] += cursor[k - 1];
    for (std::size_t i = 0; i < n; ++i) {
      out[cursor[key(i)]++] = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  PARCT_SHADOW_BUFFER(shadow_local);
  PARCT_SHADOW_BUFFER(shadow_offsets);
  PARCT_SHADOW_BUFFER(shadow_out);
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<std::uint32_t> local(num_blocks * num_keys, 0);
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    std::uint32_t* mine = local.data() + b * num_keys;
    const std::size_t hi = std::min((b + 1) * kBlock, n);
    for (std::size_t i = b * kBlock; i < hi; ++i) {
      PARCT_SHADOW_WRITE(
          analysis::buffer_cell(shadow_local, b * num_keys + key(i)));
      ++mine[key(i)];
    }
  }, 1);
  // Column-major exclusive scan over (key, block) in stable order:
  // offset(k, b) = sum over keys < k plus blocks < b within key k.
  std::vector<std::uint32_t> offsets(num_blocks * num_keys);
  std::uint32_t running = 0;
  for (std::size_t k = 0; k < num_keys; ++k) {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_offsets,
                                               b * num_keys + k));
      offsets[b * num_keys + k] = running;
      PARCT_SHADOW_READ(analysis::buffer_cell(shadow_local,
                                              b * num_keys + k));
      running += local[b * num_keys + k];
    }
  }
  par::parallel_for(0, num_blocks, [&](std::size_t b) {
    std::uint32_t* cursor = offsets.data() + b * num_keys;
    const std::size_t hi = std::min((b + 1) * kBlock, n);
    for (std::size_t i = b * kBlock; i < hi; ++i) {
      PARCT_SHADOW_WRITE(
          analysis::buffer_cell(shadow_offsets, b * num_keys + key(i)));
      // The scatter target proves stability/disjointness: two blocks
      // writing the same out slot would be a write-write race.
      PARCT_SHADOW_WRITE(analysis::buffer_cell(shadow_out, cursor[key(i)]));
      out[cursor[key(i)]++] = static_cast<std::uint32_t>(i);
    }
  }, 1);
  return out;
}

}  // namespace parct::prim
