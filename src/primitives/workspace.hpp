// Workspace: a size-classed scratch arena for the hot round pipelines.
//
// The paper's update bound O(m log((n+m)/m)) is dominated in practice by
// the compaction subroutine C(n) and per-round bookkeeping; re-allocating
// scratch on every call buries the algorithmic win under allocator traffic.
// A Workspace owns a pool of raw blocks grouped into power-of-two size
// classes. acquire<T>(n) leases a block (reusing a cached one when the
// class has a free block — a *hit* — and allocating otherwise — a *miss*);
// the lease returns its block to the pool on destruction, so in steady
// state every acquire is a hit and the round pipelines run allocation-free.
//
// Ownership and epoch rules (see docs/PERFORMANCE.md):
//   * A Workspace is single-owner scratch: exactly one logical thread
//     acquires from it at a time. Parallel phases lease *before* forking
//     and only read/write the leased memory inside the region; per-worker
//     pools (par::scheduler::worker_workspace) cover code that needs
//     scratch on a worker's own slice.
//   * Leases must not outlive their Workspace.
//   * epoch_reset() marks a round boundary: it asserts that no lease is
//     outstanding and bumps the epoch counter. Capacity is retained.
//   * Every acquire mints a fresh shadow-buffer nonce (when the SP-bags
//     detector is active), so a recycled block never aliases the logical
//     cells of its previous lease — reuse is not misreported as a race.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "analysis/sp_bags.hpp"
#include "fault/fault_injection.hpp"

namespace parct {

/// Allocation counters of one Workspace. Plain (non-atomic) fields: a
/// Workspace is single-owner, and the counters are bumped only on the
/// acquire/release paths — a handful of increments per phase, never per
/// element — so they stay on unconditionally (like the scheduler counters;
/// see docs/OBSERVABILITY.md "Memory discipline").
struct WorkspaceStats {
  std::uint64_t acquires = 0;   ///< acquire() calls
  std::uint64_t hits = 0;       ///< served from a cached block
  std::uint64_t misses = 0;     ///< had to heap-allocate a block
  std::uint64_t bytes_allocated = 0;  ///< cumulative fresh-block bytes
  std::uint64_t bytes_held = 0;       ///< current arena footprint
  std::uint64_t epochs = 0;           ///< epoch_reset() calls
  /// Capacity growths of caller-owned destination vectors, as recorded by
  /// the *_into primitives via note_container_growth(): count and bytes.
  std::uint64_t container_growths = 0;
  std::uint64_t container_bytes = 0;
};

class Workspace {
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

 public:
  /// A leased block viewed as `T[size]`, returned to the pool when the
  /// lease is destroyed. Contents are uninitialized. Move-only.
  template <typename T>
  class Lease {
   public:
    Lease(Lease&& o) noexcept
        : ws_(o.ws_), block_(std::move(o.block_)), size_(o.size_),
          nonce_(o.nonce_) {
      o.ws_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (ws_ != nullptr) ws_->release(std::move(block_));
    }

    T* data() { return reinterpret_cast<T*>(block_.data.get()); }
    const T* data() const {
      return reinterpret_cast<const T*>(block_.data.get());
    }
    std::size_t size() const { return size_; }
    T& operator[](std::size_t i) { return data()[i]; }

    /// Shadow-buffer nonce of this lease (fresh per acquire; 0 when the
    /// race detector is inactive). Use with analysis::buffer_cell.
    std::uint64_t shadow_nonce() const { return nonce_; }

   private:
    friend class Workspace;
    Lease(Workspace* ws, Block block, std::size_t size, std::uint64_t nonce)
        : ws_(ws), block_(std::move(block)), size_(size), nonce_(nonce) {}

    Workspace* ws_;
    Block block_;
    std::size_t size_;
    std::uint64_t nonce_;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Leases a block holding at least `n` objects of trivially-destructible
  /// type T. O(1) amortized; allocation only on a size-class miss.
  template <typename T>
  Lease<T> acquire(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Workspace blocks are raw storage");
    // Fault site: a lease request behaves like an allocator under memory
    // pressure. Thrown before any counter or pool state moves, so a caller
    // that catches and retries sees a consistent arena.
    if (PARCT_FAULT_POINT(fault::Site::kWorkspaceAcquire)) {
      throw std::bad_alloc{};
    }
    const std::size_t bytes = size_class_bytes(n * sizeof(T));
    const unsigned cls = size_class(bytes);
    ++stats_.acquires;
    ++outstanding_;
    Block b;
    if (!free_[cls].empty()) {
      ++stats_.hits;
      b = std::move(free_[cls].back());
      free_[cls].pop_back();
    } else {
      ++stats_.misses;
      stats_.bytes_allocated += bytes;
      stats_.bytes_held += bytes;
      b.data = std::make_unique<std::byte[]>(bytes);
      b.bytes = bytes;
    }
    return Lease<T>(this, std::move(b), n, analysis::spbags::active()
                                               ? analysis::spbags::new_buffer_id()
                                               : 0);
  }

  /// Resizes a caller-owned destination vector, recording any capacity
  /// growth in the stats. This is how the *_into primitives size their
  /// outputs: in steady state the capacity is already there and the call
  /// is a plain (allocation-free) resize.
  template <typename T>
  void resize_tracked(std::vector<T>& v, std::size_t n) {
    if (n > v.capacity()) {
      note_container_growth((n - v.capacity()) * sizeof(T));
    }
    v.resize(n);
  }

  /// Records a destination-buffer capacity growth of `bytes` (used by the
  /// sequential fallbacks of the *_into primitives, where growth happens
  /// inside push_back).
  void note_container_growth(std::size_t bytes) {
    ++stats_.container_growths;
    stats_.container_bytes += bytes;
  }

  /// Round boundary: no leases may be outstanding. Capacity is retained;
  /// only the epoch counter moves (shadow nonces are already fresh per
  /// acquire).
  void epoch_reset() {
    assert(outstanding_ == 0 && "Workspace::epoch_reset with live leases");
    ++stats_.epochs;
  }

  /// Releases every cached block back to the heap (leases stay valid).
  void trim() {
    for (auto& cls : free_) {
      for (Block& b : cls) stats_.bytes_held -= b.bytes;
      cls.clear();
    }
  }

  const WorkspaceStats& stats() const { return stats_; }
  std::size_t outstanding() const { return outstanding_; }

 private:
  // (Lease is a nested class, so it reaches release() without a friend
  // declaration.)
  void release(Block b) {
    assert(outstanding_ > 0);
    --outstanding_;
    free_[size_class(b.bytes)].push_back(std::move(b));
  }

  // Size classes are powers of two from 64 B up; class index = bit width
  // of (bytes - 1), so every block in free_[c] holds exactly 1 << c bytes.
  static std::size_t size_class_bytes(std::size_t bytes) {
    std::size_t b = 64;
    while (b < bytes) b <<= 1;
    return b;
  }
  static unsigned size_class(std::size_t bytes) {
    unsigned c = 0;
    while ((std::size_t{1} << c) < bytes) ++c;
    return c;
  }

  static constexpr unsigned kNumClasses = 48;
  std::vector<Block> free_[kNumClasses];
  std::size_t outstanding_ = 0;
  WorkspaceStats stats_;
};

/// Delta of two WorkspaceStats snapshots (end - begin), for per-call
/// attribution in UpdateStats / ConstructStats.
inline WorkspaceStats workspace_stats_delta(const WorkspaceStats& begin,
                                            const WorkspaceStats& end) {
  WorkspaceStats d;
  d.acquires = end.acquires - begin.acquires;
  d.hits = end.hits - begin.hits;
  d.misses = end.misses - begin.misses;
  d.bytes_allocated = end.bytes_allocated - begin.bytes_allocated;
  d.bytes_held = end.bytes_held;  // a level, not a rate
  d.epochs = end.epochs - begin.epochs;
  d.container_growths = end.container_growths - begin.container_growths;
  d.container_bytes = end.container_bytes - begin.container_bytes;
  return d;
}

}  // namespace parct
