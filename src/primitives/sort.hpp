// Parallel stable merge sort: O(n log n) work, polylog span (parallel
// recursive sorting with a sequential merge per node; merges at the top
// levels dominate span but stay well below the sort's cost in practice).
// Used for grouping workloads by key (e.g. batch insertions by parent).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "parallel/fork_join.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/workspace.hpp"

namespace parct::prim {

namespace detail {

template <typename T, typename Less>
void merge_sort_rec(T* data, T* buffer, std::size_t n, const Less& less,
                    std::size_t grain) {
  if (n <= grain) {
    std::stable_sort(data, data + n, less);
    return;
  }
  const std::size_t mid = n / 2;
  par::fork2join(
      [&] { merge_sort_rec(data, buffer, mid, less, grain); },
      [&] { merge_sort_rec(data + mid, buffer + mid, n - mid, less, grain); });
  std::merge(data, data + mid, data + mid, data + n, buffer, less);
  std::copy(buffer, buffer + n, data);
}

}  // namespace detail

/// Stable in-place sort of `v` by `less`, parallel over sub-ranges. The
/// merge buffer is leased from `ws`, so steady-state calls do not
/// allocate.
template <typename T, typename Less = std::less<T>>
void parallel_sort_into(std::vector<T>& v, Less less, Workspace& ws) {
  const std::size_t n = v.size();
  if (n < 2) return;
  if (!par::race_detect_forced() &&
      (par::scheduler::num_workers() == 1 || n <= 4096)) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  // Under race detection take the parallel shape even for small inputs so
  // the detector sees the real fork tree (the sort's own ranges are
  // disjoint by construction; annotated accesses in user comparators get
  // the proper bags).
  const std::size_t grain =
      par::race_detect_forced()
          ? std::size_t{32}
          : std::max<std::size_t>(4096,
                                  n / (8 * par::scheduler::num_workers()));
  if constexpr (std::is_trivially_copyable_v<T>) {
    auto buffer = ws.acquire<T>(n);
    detail::merge_sort_rec(v.data(), buffer.data(), n, less, grain);
  } else {
    // Raw workspace storage would need placement construction for
    // non-trivial T; fall back to a real vector for those.
    std::vector<T> buffer(n);
    detail::merge_sort_rec(v.data(), buffer.data(), n, less, grain);
  }
}

/// Allocating shim (merge buffer from the calling worker's pool).
template <typename T, typename Less = std::less<T>>
void parallel_sort(std::vector<T>& v, Less less = Less{}) {
  parallel_sort_into(v, less, par::scheduler::worker_workspace());
}

/// Indices 0..n-1 sorted stably by `less(i, j)` on index pairs.
template <typename LessIdx>
std::vector<std::uint32_t> sorted_indices(std::size_t n,
                                          const LessIdx& less) {
  std::vector<std::uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
  parallel_sort(idx, less);
  return idx;
}

}  // namespace parct::prim
