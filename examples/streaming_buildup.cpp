// Streaming construction: a forest arrives as a stream of edge batches
// (think: a crawler discovering a hierarchy, or a log of attach events).
// Two strategies maintain the contraction structure after every batch:
//
//   (a) re-run the static construction from scratch (O(n) per batch);
//   (b) absorb the batch with the dynamic update (O(m log(n/m)) expected).
//
// This is the paper's core value proposition measured end-to-end on one
// realistic usage pattern; it also shows save/load for checkpointing.
//
//   $ ./examples/streaming_buildup
#include <chrono>
#include <cstdio>
#include <sstream>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/serialize.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/rc_forest.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = 100000;
  const std::size_t kBatch = 1000;

  // The final forest, whose edges we stream in a random order.
  forest::Forest final_forest = forest::build_tree(n, 4, 0.5, 7);
  std::vector<Edge> stream = final_forest.edges();
  hashing::SplitMix64 rng(123);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.next_below(i)]);
  }

  // Strategy (b): one structure maintained dynamically.
  contract::ContractionForest dyn(n, 4, 77);
  {
    forest::Forest empty(n, 4, n);
    contract::construct(dyn, empty);
  }
  contract::DynamicUpdater updater(dyn);

  double dyn_total = 0, scratch_total = 0;
  forest::Forest cur(n, 4, n);
  std::size_t pos = 0;
  int batch_no = 0;
  while (pos < stream.size()) {
    forest::ChangeSet m;
    const std::size_t hi = std::min(pos + kBatch, stream.size());
    for (; pos < hi; ++pos) m.add_edges.push_back(stream[pos]);
    for (const Edge& e : m.add_edges) cur.link(e.child, e.parent);

    auto t0 = std::chrono::steady_clock::now();
    updater.apply(m);
    auto t1 = std::chrono::steady_clock::now();
    dyn_total += std::chrono::duration<double>(t1 - t0).count();

    // Strategy (a): from-scratch reconstruction on the same prefix.
    t0 = std::chrono::steady_clock::now();
    contract::ContractionForest scratch(n, 4, 77);
    contract::construct(scratch, cur);
    t1 = std::chrono::steady_clock::now();
    scratch_total += std::chrono::duration<double>(t1 - t0).count();

    if (++batch_no % 25 == 0) {
      std::printf(
          "after %6zu edges: dynamic %.3fs cumulative, from-scratch %.3fs "
          "cumulative (%.1fx)\n",
          pos, dyn_total, scratch_total, scratch_total / dyn_total);
    }
  }
  std::printf("stream done: dynamic %.3fs vs from-scratch %.3fs (%.1fx)\n",
              dyn_total, scratch_total, scratch_total / dyn_total);

  // Checkpoint the maintained structure and prove the copy answers queries.
  std::stringstream checkpoint;
  contract::save(dyn, checkpoint);
  contract::ContractionForest restored = contract::load(checkpoint);
  rc::RCForest rcf(restored);
  std::printf("checkpoint restored; root(%u) = %u, connected(1, %zu) = %s\n",
              42u, rcf.root(42), n - 1,
              rcf.connected(1, static_cast<VertexId>(n - 1)) ? "yes" : "no");
  return 0;
}
