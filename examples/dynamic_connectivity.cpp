// Dynamic connectivity on an evolving spanning forest — the classic
// dynamic-trees workload the paper's introduction motivates: edges of a
// network come and go in batches (link-ups and failures), and we answer
// "are u and v connected?" between batches.
//
// The contraction structure absorbs each batch in O(m log(n/m)) expected
// work; connectivity queries then run in O(log n) expected time.
//
//   $ ./examples/dynamic_connectivity
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/validation.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/rc_forest.hpp"

using namespace parct;

int main() {
  const std::size_t n = 50000;
  const std::size_t kBatches = 10;
  const std::size_t kBatchSize = 200;
  const std::size_t kQueries = 2000;

  // A spanning forest of 8 "data centers" (independent trees).
  forest::Forest network = forest::random_forest(n, 8, 4, 0.4, 1);
  contract::ContractionForest structure(network.capacity(), 4, 7);
  contract::construct(structure, network);
  contract::DynamicUpdater updater(structure);

  hashing::SplitMix64 rng(99);
  std::uint64_t checksum = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    // Fail kBatchSize random links...
    forest::ChangeSet failures =
        forest::make_delete_batch(network, kBatchSize, rng.next());
    contract::UpdateStats st = updater.apply(failures);
    network = forest::apply_change_set(network, failures);

    // ...then repair half of them.
    forest::ChangeSet repairs;
    for (std::size_t i = 0; i < failures.remove_edges.size(); i += 2) {
      repairs.add_edges.push_back(failures.remove_edges[i]);
    }
    st = updater.apply(repairs);
    network = forest::apply_change_set(network, repairs);

    // Query connectivity between random endpoint pairs.
    rc::RCForest rcf(structure);
    std::size_t connected = 0;
    for (std::size_t q = 0; q < kQueries; ++q) {
      const VertexId u = static_cast<VertexId>(rng.next_below(n));
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      const bool conn = rcf.connected(u, v);
      // Spot-check against the slow pointer-chasing answer.
      if (q < 20 &&
          conn != (forest::root_of(network, u) ==
                   forest::root_of(network, v))) {
        std::printf("MISMATCH at batch %zu query %zu\n", b, q);
        return 1;
      }
      connected += conn ? 1 : 0;
    }
    checksum = checksum * 31 + connected;
    std::printf(
        "batch %2zu: -%zu links +%zu links | %4u propagation rounds, "
        "%6llu affected | %4zu/%zu query pairs connected\n",
        b, failures.size(), repairs.size(), st.rounds,
        static_cast<unsigned long long>(st.total_affected), connected,
        kQueries);
  }
  std::printf("done (checksum %llu)\n",
              static_cast<unsigned long long>(checksum));
  return 0;
}
