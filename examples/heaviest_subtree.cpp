// Heaviest-component tracking on a weighted, changing forest — the
// paper's opening example ("an algorithm may compute the heaviest subtree
// in an edge-weighted tree and may be required to update the result as the
// tree undergoes changes").
//
// Vertices carry weights; TreeAggregate maintains each tree's total weight
// at its root. After every batch of structural changes (or O(log n)-time
// single-weight updates) we report the heaviest tree.
//
//   $ ./examples/heaviest_subtree
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/rc_forest.hpp"
#include "rc/tree_aggregate.hpp"

using namespace parct;

namespace {

// Scans the current roots for the heaviest tree. (Roots are O(#trees).)
std::pair<VertexId, long> heaviest(const forest::Forest& f,
                                   const rc::TreeAggregate<long>& agg) {
  VertexId best = kNoVertex;
  long best_w = -1;
  for (VertexId v = 0; v < f.capacity(); ++v) {
    if (!f.present(v) || !f.is_root(v)) continue;
    const long w = agg.tree_weight(v);
    if (w > best_w) {
      best_w = w;
      best = v;
    }
  }
  return {best, best_w};
}

}  // namespace

int main() {
  const std::size_t n = 30000;
  forest::Forest f = forest::random_forest(n, 5, 4, 0.5, 3);

  hashing::SplitMix64 rng(17);
  std::vector<long> weights(n);
  for (auto& w : weights) w = 1 + static_cast<long>(rng.next_below(100));

  contract::ContractionForest structure(f.capacity(), 4, 11);
  contract::construct(structure, f);
  contract::DynamicUpdater updater(structure);

  rc::RCForest rcf(structure);
  rc::TreeAggregate<long> agg(rcf, weights);

  auto [root0, w0] = heaviest(f, agg);
  std::printf("initially: heaviest tree rooted at %u, weight %ld\n", root0,
              w0);

  for (int step = 0; step < 8; ++step) {
    if (step % 2 == 0) {
      // Structural change: split off subtrees by deleting random edges.
      forest::ChangeSet m = forest::make_delete_batch(f, 50, rng.next());
      updater.apply(m);
      f = forest::apply_change_set(f, m);
      rcf.rebuild();   // merge targets changed for the affected region
      agg.rebuild();   // re-aggregate (O(n); see README for the trade-off)
      std::printf("step %d: deleted 50 edges -> %zu trees. ", step,
                  f.roots().size());
    } else {
      // Pure weight churn: O(log n) per update, no rebuilds needed.
      for (int k = 0; k < 100; ++k) {
        const VertexId v = static_cast<VertexId>(rng.next_below(n));
        agg.set_weight(v, 1 + static_cast<long>(rng.next_below(1000)));
      }
      std::printf("step %d: updated 100 weights. ", step);
    }
    auto [root, w] = heaviest(f, agg);
    std::printf("heaviest tree: root %u, weight %ld\n", root, w);
  }
  return 0;
}
