// Self-adjusting formula engine: a big aggregation sheet — cells that sum
// or multiply other cells, forming an expression forest — is edited by
// re-grafting whole sub-formulas. Two engines keep the results current:
//
//   (a) rc::ExpressionEvaluator — full O(n) replay per edit;
//   (b) rc::IncrementalExpression — self-adjusting: rides the dynamic
//       update and re-evaluates only the affected region.
//
// This is "self-adjusting computation" (the paper's technique) applied to
// the values themselves, not just the structure.
//
//   $ ./examples/spreadsheet_formulas
#include <chrono>
#include <cmath>
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/expression_eval.hpp"
#include "rc/incremental_expression.hpp"

using namespace parct;
using rc::ExprNode;
using rc::Op;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = 200000;
  const int kEdits = 60;

  forest::Forest sheet = forest::build_tree(n, 4, 0.3, 99, /*extra=*/128);
  hashing::SplitMix64 rng(7);
  // Sums everywhere; products only just above the leaves (keeps the
  // grand total finite on a 200k-cell sheet).
  std::vector<ExprNode> nodes(sheet.capacity());
  for (VertexId v = 0; v < n; ++v) {
    if (sheet.is_leaf(v)) {
      nodes[v] = {Op::kLeaf, 0.5 + rng.next_double()};
      continue;
    }
    bool all_leaf_children = true;
    for (VertexId u : sheet.children(v)) {
      if (u != kNoVertex && !sheet.is_leaf(u)) all_leaf_children = false;
    }
    nodes[v] = {all_leaf_children && rng.next_bool() ? Op::kMul : Op::kAdd,
                0};
  }

  contract::ContractionForest structure(sheet.capacity(), 4, 11);
  rc::IncrementalExpression inc(structure);
  for (VertexId v = 0; v < n; ++v) inc.stage_node(v, nodes[v]);
  contract::construct(structure, sheet, &inc);
  contract::DynamicUpdater updater(structure);

  std::printf("sheet of %zu cells; initial value of formula 0: %.6g\n", n,
              inc.value(0));

  double inc_total = 0.0, replay_total = 0.0;
  forest::Forest cur = sheet;
  VertexId next_id = static_cast<VertexId>(n);
  for (int edit = 0; edit < kEdits; ++edit) {
    // Edit: pick a random leaf cell and replace it by the sub-formula
    // (new_leaf + old_leaf_value') — grafting two fresh cells.
    VertexId leaf = kNoVertex;
    for (int tries = 0; tries < 10000 && leaf == kNoVertex; ++tries) {
      const VertexId v = static_cast<VertexId>(rng.next_below(n));
      if (cur.present(v) && cur.is_leaf(v) && !cur.is_root(v)) leaf = v;
    }
    const VertexId p = cur.parent(leaf);
    forest::ChangeSet m;
    m.del_vertex(leaf).del_edge(leaf, p);
    const VertexId op_cell = next_id++;
    const VertexId val_cell = next_id++;
    m.ins_vertex(op_cell).ins_vertex(val_cell);
    m.ins_edge(op_cell, p).ins_edge(val_cell, op_cell);
    inc.stage_node(op_cell, {Op::kAdd, 0});
    inc.stage_node(val_cell, {Op::kLeaf, 0.5 + rng.next_double()});

    auto t0 = std::chrono::steady_clock::now();
    updater.apply(m, &inc);
    const double v_inc = inc.value(0);
    auto t1 = std::chrono::steady_clock::now();
    inc_total += std::chrono::duration<double>(t1 - t0).count();
    cur = forest::apply_change_set(cur, m);

    // Replay engine on the already-updated structure (its cost is the
    // full evaluation; the structural update is shared).
    std::vector<ExprNode> all_nodes(cur.capacity());
    for (VertexId v = 0; v < cur.capacity(); ++v) all_nodes[v] = inc.node(v);
    t0 = std::chrono::steady_clock::now();
    rc::ExpressionEvaluator replay(structure, all_nodes);
    const double v_replay = replay.value_at_root(0);
    t1 = std::chrono::steady_clock::now();
    replay_total += std::chrono::duration<double>(t1 - t0).count();

    if (std::abs(v_inc - v_replay) >
        1e-9 * std::max(1.0, std::abs(v_replay))) {
      std::printf("MISMATCH at edit %d: %.12g vs %.12g\n", edit, v_inc,
                  v_replay);
      return 1;
    }
  }
  std::printf(
      "%d formula edits: incremental %.4fs total, full replay %.4fs total "
      "(%.0fx faster)\n",
      kEdits, inc_total, replay_total, replay_total / inc_total);
  std::printf("final value of formula 0: %.6g\n", inc.value(0));
  return 0;
}
