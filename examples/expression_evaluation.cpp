// Incrementally maintained arithmetic expressions — the original
// Miller-Reif tree-contraction application. An expression forest (n-ary
// sums and products over constants) is evaluated by replaying the recorded
// contraction; when the expression's *structure* changes (subexpressions
// grafted or pruned), the contraction structure absorbs the change in
// sublinear work and a replay recomputes all values.
//
//   $ ./examples/expression_evaluation
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/forest.hpp"
#include "rc/expression_eval.hpp"

using namespace parct;
using rc::ExprNode;
using rc::Op;

int main() {
  // Build the expression  ((a + b) * (c + d)) + e  as a rooted tree:
  //          0:+
  //         /    .
  //      1:*      2:e=4
  //     /    .
  //   3:+    4:+
  //   / .    / .
  // 5:a 6:b 7:c 8:d     a=1 b=2 c=3 d=5
  forest::Forest f(12, 4, 9);  // ids 9..11 reserved for grafts
  f.link(1, 0);
  f.link(2, 0);
  f.link(3, 1);
  f.link(4, 1);
  f.link(5, 3);
  f.link(6, 3);
  f.link(7, 4);
  f.link(8, 4);

  std::vector<ExprNode> nodes(12);
  nodes[0] = {Op::kAdd, 0};
  nodes[1] = {Op::kMul, 0};
  nodes[2] = {Op::kLeaf, 4};
  nodes[3] = {Op::kAdd, 0};
  nodes[4] = {Op::kAdd, 0};
  nodes[5] = {Op::kLeaf, 1};
  nodes[6] = {Op::kLeaf, 2};
  nodes[7] = {Op::kLeaf, 3};
  nodes[8] = {Op::kLeaf, 5};

  contract::ContractionForest structure(f.capacity(), 4, 2);
  contract::construct(structure, f);
  rc::ExpressionEvaluator eval(structure, nodes);
  std::printf("((1+2) * (3+5)) + 4 = %g\n", eval.value_at_root(0));  // 28

  // Leaf-value change: b := 10.
  eval.set_leaf(6, 10);
  eval.evaluate();
  std::printf("((1+10) * (3+5)) + 4 = %g\n", eval.value_at_root(0));  // 92

  // Structural change: replace leaf d (id 8) by the subexpression
  // (6 * 7) — prune the leaf, graft a new product node.
  forest::ChangeSet graft;
  graft.del_vertex(8).del_edge(8, 4);
  graft.ins_vertex(9).ins_vertex(10).ins_vertex(11);
  graft.ins_edge(9, 4).ins_edge(10, 9).ins_edge(11, 9);
  contract::modify_contraction(structure, graft);

  std::vector<ExprNode> nodes2(12);
  for (int i = 0; i < 9; ++i) nodes2[i] = nodes[i];
  nodes2[6] = {Op::kLeaf, 10};
  nodes2[9] = {Op::kMul, 0};
  nodes2[10] = {Op::kLeaf, 6};
  nodes2[11] = {Op::kLeaf, 7};
  rc::ExpressionEvaluator eval2(structure, nodes2);
  std::printf("((1+10) * (3+6*7)) + 4 = %g\n",
              eval2.value_at_root(0));  // (11*45)+4 = 499

  // Prune the whole product: the detached subtree keeps its own value.
  forest::ChangeSet prune;
  prune.del_edge(1, 0);
  contract::modify_contraction(structure, prune);
  eval2.evaluate();
  std::printf("after pruning: root value %g, detached product %g\n",
              eval2.value_at_root(0),   // 0 + 4 = 4
              eval2.value_at_root(1));  // 11 * 45 = 495
  return 0;
}
