// Path-to-root aggregates on a changing routing hierarchy: every device
// reports through a tree of aggregation switches toward a core router;
// edges carry latencies. We track, under batched re-cabling:
//   * total latency from a device to its core  (PathAggregate, +)
//   * the bottleneck (max) link on that path    (PathAggregate, max)
//
//   $ ./examples/network_latency
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "rc/path_aggregate.hpp"

using namespace parct;

int main() {
  const std::size_t n = 100000;
  forest::Forest net = forest::build_tree(n, 4, 0.3, 2026);

  contract::ContractionForest structure(n, 4, 9);
  rc::PathAggregate<long, rc::PathPlus> latency(structure, 0);
  rc::PathAggregate<long, rc::PathMax> bottleneck(structure, 0);

  hashing::SplitMix64 rng(55);
  std::vector<long> wire(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (net.is_root(v)) continue;
    wire[v] = 1 + static_cast<long>(rng.next_below(20));  // 1..20 us
    latency.stage_edge_weight(v, wire[v]);
    bottleneck.stage_edge_weight(v, wire[v]);
  }
  // Two value layers maintained over one structure.
  contract::MultiHooks both{&latency, &bottleneck};
  contract::construct(structure, net, &both);

  auto report = [&](VertexId device) {
    std::printf("device %6u: total latency %4ld us, worst link %2ld us\n",
                device, latency.path_to_root(device),
                bottleneck.path_to_root(device));
  };
  std::puts("initial paths:");
  report(99000);
  report(54321);

  // Re-cable: move a whole aggregation subtree under a different switch
  // with a faster uplink.
  contract::DynamicUpdater updater(structure);
  const VertexId moved = 54321;
  // Pick a switch near the core with a free port, outside the moved
  // subtree (linking into it would create a cycle).
  auto inside_moved_subtree = [&](VertexId s) {
    while (!net.is_root(s)) {
      if (s == moved) return true;
      s = net.parent(s);
    }
    return s == moved;
  };
  VertexId target = kNoVertex;
  for (VertexId s = 0; s < n; ++s) {
    if (s != moved && net.degree(s) < net.degree_bound() &&
        !inside_moved_subtree(s)) {
      target = s;
      break;
    }
  }
  forest::ChangeSet recable;
  recable.del_edge(moved, net.parent(moved));
  recable.ins_edge(moved, target);
  latency.stage_edge_weight(moved, 1);
  bottleneck.stage_edge_weight(moved, 1);
  const contract::UpdateStats st = updater.apply(recable, &both);
  std::printf(
      "\nre-cabled device %u under switch %u (1 us uplink): "
      "%u rounds, %llu vertices re-executed\n",
      moved, target, st.rounds,
      static_cast<unsigned long long>(st.total_affected));
  report(moved);
  report(99000);
  return 0;
}
