// Quickstart: build a forest, construct its contraction structure, apply a
// batched dynamic update, and ask application-level queries.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "rc/rc_forest.hpp"

using namespace parct;

int main() {
  // The runtime picks PARCT_NUM_THREADS or the hardware concurrency; pin
  // it explicitly if you like:
  par::scheduler::initialize(0);
  std::printf("workers: %u\n", par::scheduler::num_workers());

  // 1. A random tree of 100k vertices, degree bound 4, chain factor 0.6
  //    (the paper's favourite input), with spare ids for later insertions.
  const std::size_t n = 100000;
  forest::Forest f = forest::build_tree(n, 4, 0.6, /*seed=*/42,
                                        /*extra_capacity=*/16);

  // 2. Construct the contraction data structure (records every rake /
  //    compress round; expected O(n) work and space).
  contract::ContractionForest structure(f.capacity(), f.degree_bound(),
                                        /*seed=*/2017);
  const contract::ConstructStats cs = contract::construct(structure, f);
  std::printf("constructed: %u rounds, %llu total work, %zu records\n",
              cs.rounds, static_cast<unsigned long long>(cs.total_live),
              structure.total_records());

  // 3. A batched dynamic update: cut one edge deep in the tree and hang a
  //    brand-new 3-vertex chain off the detached root. Expected work is
  //    O(m log(n/m)) — a few hundred touched vertices, not 100k.
  forest::ChangeSet batch;
  batch.del_edge(70000, f.parent(70000));
  batch.ins_vertex(n).ins_vertex(n + 1).ins_vertex(n + 2);
  batch.ins_edge(n, 70000).ins_edge(n + 1, n).ins_edge(n + 2, n + 1);

  contract::DynamicUpdater updater(structure);
  const contract::UpdateStats us = updater.apply(batch);
  std::printf(
      "update: %u propagation rounds, %llu affected vertices in total "
      "(batch size %zu)\n",
      us.rounds, static_cast<unsigned long long>(us.total_affected),
      batch.size());

  // 4. Queries from the maintained structure: root finding and
  //    connectivity in O(log n) expected time per query.
  rc::RCForest rcf(structure);
  std::printf("root of 70000 is now %u (tree root of 0 is %u)\n",
              rcf.root(70000), rcf.root(0));
  std::printf("70000 connected to 0? %s\n",
              rcf.connected(70000, 0) ? "yes" : "no");
  std::printf("new vertex %zu connected to 70000? %s\n", n + 2,
              rcf.connected(static_cast<VertexId>(n + 2), 70000) ? "yes"
                                                                 : "no");
  return 0;
}
