#!/usr/bin/env bash
# One-script local runner for the parct static-analysis gate
# (docs/STATIC_ANALYSIS.md): clang-tidy over the exported compile
# commands, cppcheck over src/, the Clang thread-safety gate (capability
# annotations, docs/STATIC_ANALYSIS.md §3), the shadow-annotation
# coverage audit, and the project lint (lint_parallel.py).
#
#   tools/check.sh                 # run what is installed, skip the rest
#   tools/check.sh --require-tools # CI mode: a missing tool is a failure
#
# Environment:
#   PARCT_CHECK_BUILD_DIR  analysis build dir (default: ./build-analysis)
#   PARCT_CHECK_JOBS       parallelism for clang-tidy/cppcheck/clang
#                          (default: nproc)
#
# Exit status: 0 all run checks clean, 1 findings, 2 missing tools under
# --require-tools. A per-check summary table prints either way.
set -u -o pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${PARCT_CHECK_BUILD_DIR:-$REPO/build-analysis}"
JOBS="${PARCT_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"
REQUIRE_TOOLS=0
[ "${1:-}" = "--require-tools" ] && REQUIRE_TOOLS=1

failures=0
skipped=0
SUMMARY_NAMES=()
SUMMARY_RESULTS=()

record() {  # record <check-name> <pass|FAIL|skipped>
  SUMMARY_NAMES+=("$1")
  SUMMARY_RESULTS+=("$2")
  case "$2" in
    FAIL) failures=1 ;;
    skipped) skipped=$((skipped + 1)) ;;
  esac
}

have() { command -v "$1" >/dev/null 2>&1; }

missing_tool() {
  if [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "check.sh: REQUIRED tool '$1' not found" >&2
    exit 2
  fi
  echo "check.sh: '$1' not installed locally — skipping (CI runs it)"
  record "$2" skipped
}

# --- compile database (needed by clang-tidy; cheap to regenerate) -------
if have clang-tidy || have cppcheck; then
  cmake -B "$BUILD_DIR" -S "$REPO" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

# --- clang-tidy (profile: .clang-tidy; warnings are errors) -------------
if have clang-tidy; then
  echo "== clang-tidy =="
  mapfile -t TUS < <(find "$REPO/src" "$REPO/tools" -name '*.cpp' | sort)
  tidy_ok=pass
  if have run-clang-tidy; then
    run-clang-tidy -p "$BUILD_DIR" -j "$JOBS" -quiet "${TUS[@]}" \
      || tidy_ok=FAIL
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${TUS[@]}" || tidy_ok=FAIL
  fi
  record clang-tidy "$tidy_ok"
else
  missing_tool clang-tidy clang-tidy
fi

# --- cppcheck -----------------------------------------------------------
if have cppcheck; then
  echo "== cppcheck =="
  # The build dir caches whole-program analysis state across runs; CI
  # restores it from the actions cache keyed on CMakeLists + compiler.
  mkdir -p "$BUILD_DIR/cppcheck"
  cc_ok=pass
  cppcheck --enable=warning,performance,portability \
    --error-exitcode=1 --inline-suppr --quiet -j "$JOBS" \
    --cppcheck-build-dir="$BUILD_DIR/cppcheck" \
    --suppressions-list="$REPO/tools/cppcheck-suppressions.txt" \
    --std=c++20 -I "$REPO/src" \
    -DPARCT_RACE_DETECT=1 \
    "$REPO/src" || cc_ok=FAIL
  record cppcheck "$cc_ok"
else
  missing_tool cppcheck cppcheck
fi

# --- thread-safety (Clang capability analysis; STATIC_ANALYSIS.md §3) ---
if have clang++; then
  echo "== thread-safety (clang++ -Werror=thread-safety) =="
  TS_FLAGS=(-std=c++20 -fsyntax-only -I "$REPO/src"
    -DPARCT_RACE_DETECT=1 -DPARCT_FAULT_INJECT=1 -DPARCT_STATS=1
    -Wthread-safety -Wthread-safety-beta
    -Werror=thread-safety -Werror=thread-safety-beta)
  ts_ok=pass
  find "$REPO/src" -name '*.cpp' -print0 \
    | xargs -0 -P "$JOBS" -n 1 clang++ "${TS_FLAGS[@]}" || ts_ok=FAIL
  # Gate liveness: the probe must compile clean as-is and must FAIL with
  # each deliberate violation enabled — otherwise the gate checks nothing.
  clang++ "${TS_FLAGS[@]}" "$REPO/tools/thread_safety_probe.cpp" \
    || ts_ok=FAIL
  for violation in PARCT_PROBE_UNGUARDED PARCT_PROBE_DOUBLE_ACQUIRE; do
    if clang++ "${TS_FLAGS[@]}" "-D$violation" \
        "$REPO/tools/thread_safety_probe.cpp" 2>/dev/null; then
      echo "check.sh: probe violation $violation COMPILED — gate is dead" >&2
      ts_ok=FAIL
    fi
  done
  record thread-safety "$ts_ok"
else
  missing_tool clang++ thread-safety
fi

# --- shadow-annotation coverage (python3 only; always runs) -------------
echo "== check_shadow_coverage.py =="
shadow_ok=pass
python3 "$REPO/tools/check_shadow_coverage.py" --self-test || shadow_ok=FAIL
python3 "$REPO/tools/check_shadow_coverage.py" || shadow_ok=FAIL
record shadow-coverage "$shadow_ok"

# --- project lint (always available: python3 only) ----------------------
echo "== lint_parallel.py =="
lint_ok=pass
python3 "$REPO/tools/lint_parallel.py" --self-test || lint_ok=FAIL
python3 "$REPO/tools/lint_parallel.py" || lint_ok=FAIL
record lint-parallel "$lint_ok"

# --- durability smoke (mirrors the `durability` CI job's CLI gate) -------
# The full chaos-kill matrix needs a -DPARCT_FAULT_INJECT=ON build and runs
# in CI (ctest -L 'durability|chaos'); locally this row drives the CLI
# checkpoint -> restore round trip against any existing build's parct_cli
# and requires the restored structure to be byte-identical
# (docs/DURABILITY.md).
# Prefer the canonical build dir; older build-* trees may carry a CLI
# from before the checkpoint/restore subcommands existed.
CLI=""
for d in "$REPO"/build/tools/parct_cli "$REPO"/build*/tools/parct_cli; do
  [ -x "$d" ] && CLI="$d" && break
done
if [ -n "$CLI" ]; then
  echo "== durability smoke ($CLI) =="
  dur_ok=pass
  DUR_TMP="$(mktemp -d)"
  { "$CLI" gen 2000 0.5 7 "$DUR_TMP/t.parct" \
      && "$CLI" checkpoint "$DUR_TMP/t.parct" "$DUR_TMP/ckpt" \
      && "$CLI" restore "$DUR_TMP/ckpt" "$DUR_TMP/restored.parct" \
      && cmp "$DUR_TMP/t.parct" "$DUR_TMP/restored.parct"; } || dur_ok=FAIL
  rm -rf "$DUR_TMP"
  record durability-smoke "$dur_ok"
else
  echo "check.sh: no built parct_cli found — skipping durability smoke"
  record durability-smoke skipped
fi

# --- summary ------------------------------------------------------------
echo
echo "check.sh summary:"
for i in "${!SUMMARY_NAMES[@]}"; do
  printf '  %-16s %s\n' "${SUMMARY_NAMES[$i]}" "${SUMMARY_RESULTS[$i]}"
done
echo
if [ "$failures" -ne 0 ]; then
  echo "check.sh: FAILURES (see above)"
  exit 1
fi
if [ "$skipped" -ne 0 ]; then
  echo "check.sh: clean ($skipped tool(s) skipped locally)"
else
  echo "check.sh: clean"
fi
