#!/usr/bin/env bash
# One-script local runner for the parct static-analysis gate
# (docs/STATIC_ANALYSIS.md): clang-tidy over the exported compile
# commands, cppcheck over src/, and the project lint (lint_parallel.py).
#
#   tools/check.sh                 # run what is installed, skip the rest
#   tools/check.sh --require-tools # CI mode: a missing tool is a failure
#
# Exit status: 0 all run checks clean, 1 findings, 2 missing tools under
# --require-tools.
set -u -o pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${PARCT_CHECK_BUILD_DIR:-$REPO/build-analysis}"
REQUIRE_TOOLS=0
[ "${1:-}" = "--require-tools" ] && REQUIRE_TOOLS=1

failures=0
skipped=0

have() { command -v "$1" >/dev/null 2>&1; }

missing_tool() {
  if [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "check.sh: REQUIRED tool '$1' not found" >&2
    exit 2
  fi
  echo "check.sh: '$1' not installed locally — skipping (CI runs it)"
  skipped=$((skipped + 1))
}

# --- compile database (needed by clang-tidy; cheap to regenerate) -------
if have clang-tidy || have cppcheck; then
  cmake -B "$BUILD_DIR" -S "$REPO" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

# --- clang-tidy (profile: .clang-tidy; warnings are errors) -------------
if have clang-tidy; then
  echo "== clang-tidy =="
  mapfile -t TUS < <(find "$REPO/src" "$REPO/tools" -name '*.cpp' | sort)
  if have run-clang-tidy; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${TUS[@]}" || failures=1
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${TUS[@]}" || failures=1
  fi
else
  missing_tool clang-tidy
fi

# --- cppcheck -----------------------------------------------------------
if have cppcheck; then
  echo "== cppcheck =="
  cppcheck --enable=warning,performance,portability \
    --error-exitcode=1 --inline-suppr --quiet \
    --suppressions-list="$REPO/tools/cppcheck-suppressions.txt" \
    --std=c++20 -I "$REPO/src" \
    -DPARCT_RACE_DETECT=1 \
    "$REPO/src" || failures=1
else
  missing_tool cppcheck
fi

# --- project lint (always available: python3 only) ----------------------
echo "== lint_parallel.py =="
python3 "$REPO/tools/lint_parallel.py" --self-test || failures=1
python3 "$REPO/tools/lint_parallel.py" || failures=1

echo
if [ "$failures" -ne 0 ]; then
  echo "check.sh: FAILURES (see above)"
  exit 1
fi
if [ "$skipped" -ne 0 ]; then
  echo "check.sh: clean ($skipped tool(s) skipped locally)"
else
  echo "check.sh: clean"
fi
