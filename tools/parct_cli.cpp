// parct_cli — command-line driver for contraction structures.
//
//   parct_cli gen <n> <chain_factor> <seed> <file>   build + construct + save
//   parct_cli info <file>                            stats and round profile
//   parct_cli update <file> <out> del|ins <k> <seed> apply a random batch
//   parct_cli validate <file>                        full independent check
//   parct_cli dot <file> <round>                     Graphviz of round i
//   parct_cli replay [--race-detect] <trace>         re-run a harness trace
//   parct_cli checkpoint <file> <dir>                seed a durability dir
//   parct_cli restore <dir> <out>                    recover to a file
//
// Structures are stored in the parct binary format (contraction/serialize);
// replay traces are the text files the differential harness dumps on
// failure (see docs/TESTING.md).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "contraction/analysis.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "contraction/serialize.hpp"
#include "contraction/validate.hpp"
#include "durability/manager.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "forest/validation.hpp"
#include "harness/differential.hpp"
#include "harness/trace.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

namespace {

// Strict numeric argument parsing: atoi/atof accept trailing garbage and
// hide overflow (the class of defect the static-analysis gate flags); a
// malformed operand must be a usage error, not a silent zero.
std::uint64_t parse_u64(const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error("not a non-negative integer: " +
                             std::string(s));
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double(const char* s) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error("not a number: " + std::string(s));
  }
  return v;
}

int usage() {
  std::fprintf(stderr,
               "usage: parct_cli [--serial-cutover N] <command> ...\n"
               "  parct_cli gen <n> <chain_factor> <seed> <file>\n"
               "  parct_cli info <file>\n"
               "  parct_cli update <file> <out> del|ins <k> <seed>\n"
               "  parct_cli validate <file>\n"
               "  parct_cli dot <file> <round>\n"
               "  parct_cli replay [--race-detect] <trace>\n"
               "  parct_cli checkpoint <file> <dir>\n"
               "  parct_cli restore <dir> <out>\n"
               "\n"
               "  --serial-cutover N  adaptive serial cutover override: "
               "frontiers of at\n"
               "                      most N run inline (0 = always "
               "parallel, max = always\n"
               "                      serial); overrides "
               "PARCT_SERIAL_CUTOVER and the\n"
               "                      auto-calibrated default\n");
  return 2;
}

contract::ContractionForest load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return contract::load(in);
}

void save_file(const contract::ContractionForest& c,
               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  contract::save(c, out);
}

int cmd_gen(int argc, char** argv) {
  if (argc != 6) return usage();
  const std::size_t n = static_cast<std::size_t>(parse_u64(argv[2]));
  const double cf = parse_double(argv[3]);
  const std::uint64_t seed = parse_u64(argv[4]);
  forest::Forest f = forest::build_tree(n, 4, cf, seed);
  contract::ContractionForest c(f.capacity(), 4, seed ^ 0xC0DE);
  const contract::ConstructStats stats = contract::construct(c, f);
  save_file(c, argv[5]);
  std::printf("built n=%zu cf=%.2f: %u rounds, %llu work -> %s\n", n, cf,
              stats.rounds,
              static_cast<unsigned long long>(stats.total_live), argv[5]);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  contract::ContractionForest c = load_file(argv[2]);
  const contract::ContractionProfile p = contract::profile(c);
  std::size_t present = 0;
  for (VertexId v = 0; v < c.capacity(); ++v) {
    present += c.duration(v) > 0 ? 1 : 0;
  }
  std::printf("capacity       %zu\n", c.capacity());
  std::printf("present        %zu\n", present);
  std::printf("degree bound   %d\n", c.degree_bound());
  std::printf("seed           %llu\n",
              static_cast<unsigned long long>(c.seed()));
  std::printf("rounds         %u\n", p.num_rounds());
  std::printf("total records  %zu\n", c.total_records());
  std::printf("total work     %llu\n",
              static_cast<unsigned long long>(p.total_work()));
  std::printf("round  live     fin    rake    comp\n");
  for (std::size_t i = 0; i < p.rounds.size(); ++i) {
    const auto& r = p.rounds[i];
    std::printf("%5zu %7u %6u %7u %7u\n", i, r.live, r.finalizes, r.rakes,
                r.compresses);
  }
  return 0;
}

int cmd_update(int argc, char** argv) {
  if (argc != 7) return usage();
  contract::ContractionForest c = load_file(argv[2]);
  const bool deletes = std::strcmp(argv[4], "del") == 0;
  if (!deletes && std::strcmp(argv[4], "ins") != 0) return usage();
  const std::size_t k = static_cast<std::size_t>(parse_u64(argv[5]));
  const std::uint64_t seed = parse_u64(argv[6]);

  forest::Forest f = c.extract_forest();
  forest::ChangeSet m;
  if (deletes) {
    m = forest::make_delete_batch(f, k, seed);
  } else {
    // Random re-attachments: cut k random edges first (inside the same
    // batch) and re-insert them under fresh random parents with capacity.
    m = forest::make_delete_batch(f, k, seed);
    hashing::SplitMix64 rng(seed * 3 + 1);
    std::vector<int> extra(f.capacity(), 0);
    for (const Edge& e : m.remove_edges) {
      for (int attempts = 0; attempts < (1 << 16); ++attempts) {
        const VertexId p =
            static_cast<VertexId>(rng.next_below(f.capacity()));
        if (!f.present(p) || p == e.child) continue;
        if (f.degree(p) + extra[p] >= f.degree_bound()) continue;
        // Avoid cycles: p must not be in e.child's subtree. Conservative
        // test via root walk in the *current* forest after the cut: the
        // cut makes e.child a root, so reject p reachable to e.child.
        VertexId w = p;
        while (!f.is_root(w) && w != e.child) w = f.parent(w);
        if (w == e.child) continue;
        ++extra[p];
        m.ins_edge(e.child, p);
        break;
      }
    }
  }
  if (auto err = forest::check_change_set(f, m)) {
    std::fprintf(stderr, "generated batch invalid: %s\n", err->c_str());
    return 1;
  }
  const contract::UpdateStats stats = contract::modify_contraction(c, m);
  save_file(c, argv[3]);
  std::printf(
      "applied %zu changes: %u rounds, %llu affected total -> %s\n",
      m.size(), stats.rounds,
      static_cast<unsigned long long>(stats.total_affected), argv[3]);
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc != 3) return usage();
  contract::ContractionForest c = load_file(argv[2]);
  forest::Forest f = c.extract_forest();
  if (auto err = forest::check_forest(f)) {
    std::printf("INVALID round-0 forest: %s\n", err->c_str());
    return 1;
  }
  if (auto err = contract::check_valid(c, f)) {
    std::printf("INVALID structure: %s\n", err->c_str());
    return 1;
  }
  std::printf("OK: structure is a valid contraction of its round-0 forest "
              "(%zu records, %u rounds)\n",
              c.total_records(), c.num_rounds());
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc != 4) return usage();
  contract::ContractionForest c = load_file(argv[2]);
  const std::uint32_t round = static_cast<std::uint32_t>(parse_u64(argv[3]));
  std::printf("// forest at contraction round %u (alive vertices only)\n",
              round);
  std::printf("digraph round%u {\n  rankdir=BT;\n", round);
  std::size_t alive = 0;
  for (VertexId v = 0; v < c.capacity(); ++v) {
    if (c.duration(v) <= round) continue;
    ++alive;
    const contract::RoundRecord& r = c.record(round, v);
    const bool dies_next = c.duration(v) == round + 1;
    std::printf("  v%u%s;\n", v,
                dies_next ? " [style=dashed]" : "");
    if (r.parent != v) std::printf("  v%u -> v%u;\n", v, r.parent);
  }
  std::printf("}\n// %zu alive vertices (dashed contract this round)\n",
              alive);
  return 0;
}

// Re-executes a harness replay trace. The trace is self-contained (initial
// forest, batches, weights, scheduler configuration, fault injection), so
// this prints the same bytes and exits with the same status on every run.
// With --race-detect the run executes serially under the SP-bags
// determinacy-race detector (requires -DPARCT_RACE_DETECT=ON; see
// docs/STATIC_ANALYSIS.md).
int cmd_replay(int argc, char** argv) {
  harness::RunOptions opts;
  int file_arg = 2;
  if (argc == 4 && std::strcmp(argv[2], "--race-detect") == 0) {
    opts.race_detect = true;
    file_arg = 3;
  } else if (argc != 3) {
    return usage();
  }
  const harness::Trace t = harness::load_trace_file(argv[file_arg]);
  const harness::RunResult r = harness::run_trace(t, opts);
  std::printf("trace seed=%llu workers=%u steps=%zu ops=%llu\n",
              static_cast<unsigned long long>(t.master_seed), t.num_workers,
              t.steps.size(),
              static_cast<unsigned long long>(t.total_ops()));
  std::printf("applied %u steps (%u skipped), %llu ops\n", r.steps_applied,
              r.steps_skipped,
              static_cast<unsigned long long>(r.ops_applied));
  if (r.failed()) {
    std::printf("FAIL at step %d: %s\n", r.failed_step, r.failure.c_str());
    return 1;
  }
  std::printf("OK: all oracle checks passed\n");
  return 0;
}

// checkpoint <file> <dir>: seed (or roll forward) a durability directory
// from a saved structure — writes a checkpoint at version 0 with an
// all-zero weight table, the image BatchServer::recover resumes from.
int cmd_checkpoint(int argc, char** argv) {
  if (argc != 4) return usage();
  contract::ContractionForest c = load_file(argv[2]);
  durability::Manager mgr(argv[3]);
  const std::vector<durability::Weight> weights(c.capacity(), 0);
  mgr.checkpoint(c, weights, /*version=*/0);
  std::printf("checkpointed %s at version 0 into %s\n", argv[2], argv[3]);
  return 0;
}

// restore <dir> <out>: run the full recovery procedure (newest valid
// checkpoint + WAL tail replay) and save the recovered structure.
int cmd_restore(int argc, char** argv) {
  if (argc != 4) return usage();
  durability::RecoveredState st = durability::Manager::recover(argv[2]);
  save_file(*st.forest, argv[3]);
  std::printf("recovered version %llu (%llu WAL records replayed), "
              "capacity %zu -> %s\n",
              static_cast<unsigned long long>(st.version),
              static_cast<unsigned long long>(st.replayed),
              st.forest->capacity(), argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Global option: --serial-cutover N (anywhere before the command).
    // Applied via par::set_serial_cutover, so every subcommand's
    // construct/update work honors it (docs/PERFORMANCE.md "Small-batch
    // fast path").
    while (argc >= 2 && std::strcmp(argv[1], "--serial-cutover") == 0) {
      if (argc < 3) return usage();
      par::set_serial_cutover(
          static_cast<std::size_t>(parse_u64(argv[2])));
      for (int i = 3; i < argc; ++i) argv[i - 2] = argv[i];
      argc -= 2;
    }
    if (argc < 2) return usage();
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "info") == 0) return cmd_info(argc, argv);
    if (std::strcmp(argv[1], "update") == 0) return cmd_update(argc, argv);
    if (std::strcmp(argv[1], "validate") == 0) {
      return cmd_validate(argc, argv);
    }
    if (std::strcmp(argv[1], "dot") == 0) return cmd_dot(argc, argv);
    if (std::strcmp(argv[1], "replay") == 0) return cmd_replay(argc, argv);
    if (std::strcmp(argv[1], "checkpoint") == 0) {
      return cmd_checkpoint(argc, argv);
    }
    if (std::strcmp(argv[1], "restore") == 0) return cmd_restore(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
