#!/usr/bin/env python3
"""Project-specific parallelism lint for the parct codebase.

Rules (see docs/STATIC_ANALYSIS.md):

  raw-thread      std::thread / pthread_create outside src/parallel/ —
                  all parallelism must flow through the fork-join runtime
                  so the SP-bags detector and the scheduler see it.
  raw-mutex       std::mutex / std::condition_variable / std::lock_guard /
                  std::unique_lock / std::scoped_lock in src/ outside
                  src/parallel/capability.hpp — locking must go through
                  the capability-annotated parct::Mutex / parct::CondVar /
                  parct::MutexLock wrappers so the Clang thread-safety
                  gate (docs/STATIC_ANALYSIS.md §3) sees every lock site;
                  a raw primitive is invisible to the analysis.
  mutable-global  namespace-scope mutable globals in src/ that are not
                  std::atomic / mutex / condition_variable / thread_local /
                  const / constexpr — unsynchronized globals are how
                  "works on my machine" races ship.
  volatile-sync   `volatile` used on shared state — volatile is not a
                  synchronization primitive in C++.
  shadow-write    assignments to instrumented shared arrays inside
                  parallel_for bodies of instrumented files without a
                  PARCT_SHADOW_WRITE/WRITE_REC annotation nearby — writes
                  the race detector cannot see defeat the instrumentation.
  vector-in-phase std::vector construction inside a parallel_for lambda or
                  a hot phase body (DynamicUpdater::apply/propagate,
                  randomized_contract) in src/contraction/ — hot-path
                  scratch must come from the Workspace / the *_into
                  primitives so steady-state rounds stay allocation-free
                  (docs/PERFORMANCE.md).
  snapshot-bypass reads of the live structures (c_, rcf_, agg_, updater_,
                  mirror_) inside the query-answering path of src/service/
                  (BatchServer::answer) — queries must only read the pinned
                  immutable Snapshot; a live read would race the update
                  thread that may be propagating the successor version
                  concurrently (docs/OBSERVABILITY.md "Serving epochs").
  adaptive-for    raw par::parallel_for / parallel_for_blocked calls in
                  src/contraction/ — frontier-sized loops must go through
                  par::adaptive_for so sub-cutover frontiers take the
                  inline serial fast path (docs/PERFORMANCE.md "Small-batch
                  fast path"); a raw call pays full fork/join scaffolding
                  on every tiny round.
  fault-macro     direct use of fault::detail::should_fire/stall or a bare
                  `#if PARCT_FAULT_INJECT` in src/ outside src/fault/ —
                  injection sites must go through PARCT_FAULT_POINT /
                  PARCT_FAULT_STALL, which compile to constants in an OFF
                  build; direct calls (or hand-rolled conditionals) leave
                  fault-registry traffic in production binaries
                  (docs/TESTING.md "Fault injection").
  durability-io   std::ofstream/std::fstream file writes in src/service/ or
                  src/durability/ outside the WAL/checkpoint writers
                  (durability/wal.cpp, durability/checkpoint.cpp) — durable
                  state must flow through those writers, which use fd-level
                  I/O with explicit fsync, CRC trailers, and the
                  temp-file-plus-rename commit protocol; a buffered ofstream
                  has no fsync and no atomicity, so a crash can leave a
                  torn file that recovery then trusts (docs/DURABILITY.md).

Suppression: a line (or the line above it) containing
`// parct-lint: allow(<rule>)` suppresses that rule for that line; the
marker doubles as an in-tree justification, so every suppression is
greppable and reviewed.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files whose parallel_for bodies are fully shadow-annotated; the
# shadow-write rule only applies here. Keep in sync with
# docs/STATIC_ANALYSIS.md when instrumenting new files.
INSTRUMENTED = {
    "src/contraction/construct.cpp",
    "src/contraction/dynamic_update.cpp",
    "src/contraction/contraction_forest.cpp",
    "src/primitives/scan.hpp",
    "src/primitives/pack.hpp",
    "src/primitives/counting.hpp",
}

# Instrumented shared arrays: writes to these inside parallel loop bodies
# must carry a shadow annotation within the preceding few lines.
SHARED_ARRAYS = re.compile(
    r"\b(status|mark_l_|mark_lx_|status_g_|old_leaf_|new_leaf_|cand_|"
    r"offsets|sums|counts|local)\s*\[[^\]]+\]\s*(=|\+=|-=)[^=]"
)

SHADOW_ANNOTATION = re.compile(r"PARCT_SHADOW_WRITE(_REC)?\b")

# std::thread::id is plain bookkeeping data, not thread creation.
RAW_THREAD = re.compile(r"\bstd::thread\b(?!::)|\bpthread_create\b")

# Raw locking primitives: only src/parallel/capability.hpp (the annotated
# wrapper layer) may spell these in src/.
RAW_MUTEX = re.compile(
    r"\bstd::(recursive_|shared_|timed_)?mutex\b|"
    r"\bstd::condition_variable(_any)?\b|"
    r"\bstd::(lock_guard|unique_lock|scoped_lock)\b"
)
CAPABILITY_HEADER = "src/parallel/capability.hpp"

VOLATILE = re.compile(r"\bvolatile\b")

# Namespace-scope mutable globals: a declaration at zero brace depth (or
# inside a plain namespace) that is not const/constexpr/atomic/etc.
GLOBAL_DECL = re.compile(
    r"^(static\s+)?(?!const\b|constexpr\b|inline\s+const|using\b|typedef\b|"
    r"namespace\b|class\b|struct\b|enum\b|template\b|extern\b|return\b|"
    r"#|//|/\*)"
    r"(?P<type>[A-Za-z_][A-Za-z0-9_:<>,\s\*&]*?)\s+"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(=|\{|;)"
)

ALLOWED_GLOBAL_TYPES = re.compile(
    r"std::atomic\b|std::mutex\b|std::shared_mutex\b|"
    r"std::condition_variable\b|std::once_flag\b|thread_local\b|"
    r"\b(parct::)?(Mutex|CondVar)\b|"
    r"\bconst\b|\bconstexpr\b"
)

ALLOW_MARKER = re.compile(r"//\s*parct-lint:\s*allow\((?P<rules>[a-z\-,\s]+)\)")

# vector-in-phase: a std::vector declaration/construction (references are
# fine — they don't allocate). Enforced only inside parallel_for lambdas
# and the hot phase bodies of src/contraction/.
VECTOR_CONSTRUCT = re.compile(r"\bstd::vector\s*<[^;()]*>(?!\s*&)\s*\w+\s*[;({=]")

# The hot phase bodies: one Propagate round, one apply, one contraction
# round. A match on a line without ';' is a definition (call sites end the
# statement); the body extends until the brace depth returns to the
# signature's depth.
HOT_PHASE_FN = re.compile(
    r"\b(DynamicUpdater::(apply|propagate)|randomized_contract)\s*\("
)

# The serving layer's query-answering path: everything reachable from
# BatchServer::answer runs concurrently with an overlapped apply() on the
# live structure, so it may only read the pinned Snapshot.
QUERY_PATH_FN = re.compile(r"\b(BatchServer::)?answer\s*\(")

# Live (mutable, update-owned) members of the serving layer. `snap`/pinned
# snapshot reads are the sanctioned alternative.
LIVE_STRUCTURE = re.compile(r"\b(c_|rcf_|agg_|updater_|mirror_|store_)\s*\.")

# fault-macro: the registry entry points and the build-flag conditional.
# Only the PARCT_FAULT_POINT/PARCT_FAULT_STALL macros (and src/fault/
# itself) may reference either — that is what guarantees an OFF build
# contains no trace of the injection sites.
FAULT_DETAIL = re.compile(r"\bfault::detail::(should_fire|stall)\b")
FAULT_IFDEF = re.compile(r"#\s*(el)?if(def)?\b.*\bPARCT_FAULT_INJECT\b")

# adaptive-for: raw parallel_for call sites (not #includes — those carry no
# '(' after the name). src/parallel/ itself implements both spellings.
RAW_PARALLEL_FOR = re.compile(r"\bparallel_for(_blocked)?\s*\(")

# durability-io: write-capable std file streams. std::ostream/istream
# references (the serialization APIs) are fine — only the file-opening
# stream types bypass the fd-level durability protocol. Reading with
# std::ifstream is allowed: recovery validates what it reads via CRCs.
RAW_FILE_WRITE = re.compile(r"\bstd::(ofstream|fstream)\b")

# The sanctioned writers: fd-level I/O + fsync + atomic rename live here.
DURABILITY_WRITERS = {
    "src/durability/wal.cpp",
    "src/durability/checkpoint.cpp",
}

# Loop constructs that open a tracked lambda extent for the shadow-write /
# vector-in-phase rules; adaptive_for bodies are the same bodies
# parallel_for would run, so the rules must keep applying inside them.
TRACKED_LOOP = re.compile(r"\b(parallel_for(_blocked)?|adaptive_for)\s*\(")


def allowed(rule: str, lines: list[str], idx: int) -> bool:
    """True if line idx or the line above carries an allow marker for rule."""
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ALLOW_MARKER.search(lines[j])
            if m and rule in [r.strip() for r in m.group("rules").split(",")]:
                return True
    return False


def strip_strings(line: str) -> str:
    """Blanks out string/char literals so their contents never match rules."""
    return re.sub(r'"(\\.|[^"\\])*"|\'(\\.|[^\'\\])*\'', '""', line)


def lint_file(path: Path, findings: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except UnicodeDecodeError:
        return
    in_parallel_for = rel in INSTRUMENTED
    in_contraction = rel.startswith("src/contraction/")
    in_service = rel.startswith("src/service/")
    track_lambdas = in_parallel_for or in_contraction
    depth_stack: list[int] = []  # brace depth at each open parallel_for
    depth = 0
    in_block_comment = False
    prev_code = ""  # last non-blank code line, for continuation detection
    hot_depth: int | None = None  # brace depth of a hot phase fn signature
    hot_entered = False  # inside its body (depth went above hot_depth)
    query_depth: int | None = None  # brace depth of a query-path signature
    query_entered = False

    for idx, raw in enumerate(lines):
        line = strip_strings(raw)
        code = line.split("//")[0]
        if in_block_comment:
            if "*/" in code:
                code = code.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in code and "*/" not in code:
            code = code.split("/*", 1)[0]
            in_block_comment = True
        code = re.sub(r"/\*.*?\*/", "", code)

        loc = f"{rel}:{idx + 1}"

        # raw-thread: everywhere except src/parallel/ (the runtime owns
        # thread creation) and tools/tests that exercise the runtime.
        if RAW_THREAD.search(code) and not rel.startswith("src/parallel/"):
            if not allowed("raw-thread", lines, idx):
                findings.append(
                    f"{loc}: raw-thread: std::thread/pthread_create outside "
                    "src/parallel/ — use the fork-join runtime"
                )

        # raw-mutex: locking outside the capability wrapper layer.
        if (
            rel.startswith("src/")
            and rel != CAPABILITY_HEADER
            and RAW_MUTEX.search(code)
        ):
            if not allowed("raw-mutex", lines, idx):
                findings.append(
                    f"{loc}: raw-mutex: raw std locking primitive — use "
                    "parct::Mutex/CondVar/MutexLock "
                    "(parallel/capability.hpp) so the thread-safety "
                    "analysis sees the lock site"
                )

        # volatile-sync: volatile anywhere in src/ is suspect.
        if rel.startswith("src/") and VOLATILE.search(code):
            if not allowed("volatile-sync", lines, idx):
                findings.append(
                    f"{loc}: volatile-sync: volatile is not a synchronization "
                    "primitive — use std::atomic"
                )

        # mutable-global: only at namespace scope in src/ (depth counts
        # function/class braces; namespaces keep depth 0 via the heuristic
        # below).
        # A line whose predecessor ends mid-statement (",", "(", operators)
        # is a continuation of a declaration, not a fresh global.
        continuation = prev_code.rstrip().endswith((",", "(", "&&", "||", "+"))
        if (
            rel.startswith("src/")
            and depth == 0
            and not continuation
            and GLOBAL_DECL.match(code.strip())
            and not ALLOWED_GLOBAL_TYPES.search(code)
            and ";" in code
            and "(" not in code.split("=")[0]  # not a function decl
        ):
            if not allowed("mutable-global", lines, idx):
                findings.append(
                    f"{loc}: mutable-global: namespace-scope mutable state "
                    "must be std::atomic, a mutex, thread_local, or const"
                )

        # vector-in-phase: std::vector construction inside a parallel_for
        # lambda or a hot phase body in src/contraction/.
        if (
            in_contraction
            and VECTOR_CONSTRUCT.search(code)
            and (depth_stack or (hot_depth is not None and hot_entered))
        ):
            if not allowed("vector-in-phase", lines, idx):
                findings.append(
                    f"{loc}: vector-in-phase: std::vector constructed on the "
                    "hot path — lease scratch from the Workspace or use a "
                    "*_into primitive (docs/PERFORMANCE.md)"
                )

        # shadow-write: inside parallel_for bodies of instrumented files.
        if in_parallel_for and depth_stack and SHARED_ARRAYS.search(code):
            window = lines[max(0, idx - 4) : idx + 1]
            if not any(SHADOW_ANNOTATION.search(w) for w in window):
                if not allowed("shadow-write", lines, idx):
                    findings.append(
                        f"{loc}: shadow-write: write to instrumented shared "
                        "array inside parallel_for without a "
                        "PARCT_SHADOW_WRITE within 4 lines"
                    )

        # snapshot-bypass: live-structure reads inside the serving query
        # path (which runs concurrently with an overlapped apply()).
        if (
            in_service
            and query_depth is not None
            and query_entered
            and LIVE_STRUCTURE.search(code)
        ):
            if not allowed("snapshot-bypass", lines, idx):
                findings.append(
                    f"{loc}: snapshot-bypass: query path reads the live "
                    "structure — answer queries from the pinned Snapshot "
                    "only (it may be mutated by the overlapped update)"
                )

        # fault-macro: injection sites outside src/fault/ must use the
        # macros, never the registry or the build flag directly.
        if (
            rel.startswith("src/")
            and not rel.startswith("src/fault/")
            and (FAULT_DETAIL.search(code) or FAULT_IFDEF.search(code))
        ):
            if not allowed("fault-macro", lines, idx):
                findings.append(
                    f"{loc}: fault-macro: use PARCT_FAULT_POINT/"
                    "PARCT_FAULT_STALL — direct fault::detail calls or "
                    "PARCT_FAULT_INJECT conditionals do not compile away in "
                    "OFF builds"
                )

        # durability-io: file-stream writes in the serving/durability
        # layers outside the sanctioned WAL/checkpoint writers.
        if (
            (in_service or rel.startswith("src/durability/"))
            and rel not in DURABILITY_WRITERS
            and RAW_FILE_WRITE.search(code)
        ):
            if not allowed("durability-io", lines, idx):
                findings.append(
                    f"{loc}: durability-io: raw std::ofstream/fstream in the "
                    "serving/durability layer — durable writes must go "
                    "through the WAL/checkpoint writers (fd-level I/O, "
                    "fsync, atomic rename; docs/DURABILITY.md)"
                )

        # adaptive-for: frontier loops in src/contraction/ must use the
        # size-adaptive spelling.
        if in_contraction and RAW_PARALLEL_FOR.search(code):
            if not allowed("adaptive-for", lines, idx):
                findings.append(
                    f"{loc}: adaptive-for: raw parallel_for in "
                    "src/contraction/ — use par::adaptive_for so "
                    "sub-cutover frontiers take the serial fast path "
                    "(docs/PERFORMANCE.md)"
                )

        # Track hot-phase function extents (definitions only: call sites
        # end their statement with ';').
        if (
            in_contraction
            and hot_depth is None
            and HOT_PHASE_FN.search(code)
            and ";" not in code
        ):
            hot_depth = depth
            hot_entered = False

        # Track the serving query-path extents the same way.
        if (
            in_service
            and query_depth is None
            and QUERY_PATH_FN.search(code)
            and ";" not in code
        ):
            query_depth = depth
            query_entered = False

        # Track parallel_for / adaptive_for lambda extents by brace depth.
        if track_lambdas and TRACKED_LOOP.search(code):
            depth_stack.append(depth)
        opens = code.count("{")
        closes = code.count("}")
        # Namespace braces should not count toward "inside a function".
        if re.match(r"\s*namespace\b", code) and opens:
            opens -= 1
            # A one-line `namespace foo { ... }` (e.g. a forward
            # declaration) closes on the same line.
            if closes:
                closes -= 1
        elif re.match(r"\s*}\s*//\s*namespace", line) and closes:
            closes -= 1
        depth += opens - closes
        while depth_stack and depth < depth_stack[-1]:
            depth_stack.pop()
        if depth_stack and depth == depth_stack[-1] and ");" in code:
            depth_stack.pop()
        if hot_depth is not None:
            if depth > hot_depth:
                hot_entered = True
            elif hot_entered and depth <= hot_depth:
                hot_depth = None
                hot_entered = False
        if query_depth is not None:
            if depth > query_depth:
                query_entered = True
            elif query_entered and depth <= query_depth:
                query_depth = None
                query_entered = False
        if code.strip():
            prev_code = code


def self_test() -> int:
    """Checks the rules against small positive/negative fixtures."""
    import tempfile

    cases = [
        # (relpath, content, expected rule or None)
        (
            "src/foo/bar.cpp",
            "#include <thread>\nvoid f() { std::thread t([]{}); }\n",
            "raw-thread",
        ),
        (
            "src/parallel/scheduler.cpp",
            "#include <thread>\nvoid f() { std::thread t([]{}); }\n",
            None,
        ),
        (
            "src/foo/bar.cpp",
            "// parct-lint: allow(raw-thread) reason: test fixture\n"
            "void f() { std::thread t([]{}); }\n",
            None,
        ),
        (
            "src/foo/bar.cpp",
            "void f() {\n"
            "  std::lock_guard<std::mutex> lk(m);\n"
            "}\n",
            "raw-mutex",
        ),
        (
            "src/foo/bar.hpp",
            "class C {\n"
            "  std::condition_variable cv_;\n"
            "};\n",
            "raw-mutex",
        ),
        (
            # The wrapper layer itself is the one sanctioned location.
            "src/parallel/capability.hpp",
            "class Mutex {\n"
            "  std::mutex mu_;\n"
            "};\n",
            None,
        ),
        (
            "src/foo/bar.cpp",
            "void f() {\n"
            "  // parct-lint: allow(raw-mutex) reason: test fixture\n"
            "  std::unique_lock<std::mutex> lk(m);\n"
            "}\n",
            None,
        ),
        (
            # The annotated wrappers are the sanctioned spelling.
            "src/foo/bar.cpp",
            "void f() {\n"
            "  MutexLock lk(mu_);\n"
            "  cv_.notify_all();\n"
            "}\n",
            None,
        ),
        (
            # A global parct::Mutex is a synchronization primitive, not a
            # mutable-global finding (the scheduler's lifecycle lock).
            "src/foo/g.cpp",
            "Mutex g_lifecycle_mu;\n",
            None,
        ),
        ("src/foo/g.cpp", "int g_counter = 0;\n", "mutable-global"),
        ("src/foo/g.cpp", "std::atomic<int> g_counter{0};\n", None),
        ("src/foo/g.cpp", "constexpr int kMax = 4;\n", None),
        ("src/foo/g.cpp", "const int kMax = 4;\n", None),
        ("src/foo/v.cpp", "volatile int flag;\n", "volatile-sync"),
        (
            "src/primitives/scan.hpp",
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t b) {\n"
            "    sums[b] = 1;\n"
            "  });\n"
            "}\n",
            "shadow-write",
        ),
        (
            "src/primitives/scan.hpp",
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t b) {\n"
            "    PARCT_SHADOW_WRITE(k);\n"
            "    sums[b] = 1;\n"
            "  });\n"
            "}\n",
            None,
        ),
        (
            "src/contraction/foo.cpp",
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t k) {\n"
            "    std::vector<int> tmp(4);\n"
            "  });\n"
            "}\n",
            "vector-in-phase",
        ),
        (
            "src/contraction/foo.cpp",
            "void DynamicUpdater::propagate(std::uint32_t i) {\n"
            "  std::vector<VertexId> next;\n"
            "}\n",
            "vector-in-phase",
        ),
        (
            "src/contraction/foo.cpp",
            "void DynamicUpdater::propagate(std::uint32_t i) {\n"
            "  // parct-lint: allow(vector-in-phase) reason: test fixture\n"
            "  std::vector<VertexId> next;\n"
            "}\n",
            None,
        ),
        (
            # A reference binding does not allocate; a helper outside the
            # hot functions may build vectors freely.
            "src/contraction/foo.cpp",
            "void DynamicUpdater::propagate(std::uint32_t i) {\n"
            "  const std::vector<VertexId>& view = lset_;\n"
            "}\n"
            "void helper() {\n"
            "  std::vector<int> fine;\n"
            "}\n",
            None,
        ),
        (
            # Call sites of apply() do not open a hot extent.
            "src/contraction/foo.cpp",
            "void driver(DynamicUpdater& u, const forest::ChangeSet& m) {\n"
            "  u.apply(m);\n"
            "  std::vector<int> fine;\n"
            "}\n",
            None,
        ),
        (
            # Raw parallel_for in src/contraction/ must be adaptive_for.
            "src/contraction/foo.cpp",
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t k) { g(k); });\n"
            "}\n",
            "adaptive-for",
        ),
        (
            "src/contraction/foo.cpp",
            "void f() {\n"
            "  // parct-lint: allow(adaptive-for) reason: test fixture\n"
            "  par::parallel_for(0, n, [&](std::size_t k) { g(k); });\n"
            "}\n",
            None,
        ),
        (
            # The adaptive spelling is the sanctioned one; the #include of
            # parallel_for.hpp (no call parens) is not a finding either.
            "src/contraction/foo.cpp",
            '#include "parallel/parallel_for.hpp"\n'
            "void f() {\n"
            "  par::adaptive_for(0, n, [&](std::size_t k) { g(k); });\n"
            "}\n",
            None,
        ),
        (
            # Outside src/contraction/ raw parallel_for stays legal.
            "src/rc/foo.cpp",
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t k) { g(k); });\n"
            "}\n",
            None,
        ),
        (
            # adaptive_for bodies are tracked lambda extents: the
            # vector-in-phase rule keeps applying inside them.
            "src/contraction/foo.cpp",
            "void f() {\n"
            "  par::adaptive_for(0, n, [&](std::size_t k) {\n"
            "    std::vector<int> tmp(4);\n"
            "  });\n"
            "}\n",
            "vector-in-phase",
        ),
        (
            # ...and so does shadow-write in instrumented files.
            "src/primitives/scan.hpp",
            "void f() {\n"
            "  par::adaptive_for(0, n, [&](std::size_t b) {\n"
            "    sums[b] = 1;\n"
            "  });\n"
            "}\n",
            "shadow-write",
        ),
        (
            # Query path reading the live RCForest instead of the snapshot.
            "src/service/foo.cpp",
            "QueryResult BatchServer::answer(const QueryBatch& q,\n"
            "                                const Snapshot& snap) const {\n"
            "  out[i] = rcf_.root(q.roots[i]);\n"
            "}\n",
            "snapshot-bypass",
        ),
        (
            # Reading the pinned snapshot is the sanctioned path.
            "src/service/foo.cpp",
            "QueryResult BatchServer::answer(const QueryBatch& q,\n"
            "                                const Snapshot& snap) const {\n"
            "  out[i] = snap.root(q.roots[i]);\n"
            "}\n",
            None,
        ),
        (
            # Live-structure access outside the query path (the update/
            # publish side) is the point of those members — no finding.
            "src/service/foo.cpp",
            "bool BatchServer::process_epoch() {\n"
            "  rcf_.refresh(touched);\n"
            "  agg_.apply_update();\n"
            "}\n",
            None,
        ),
        (
            "src/service/foo.cpp",
            "QueryResult BatchServer::answer(const QueryBatch& q,\n"
            "                                const Snapshot& snap) const {\n"
            "  // parct-lint: allow(snapshot-bypass) reason: test fixture\n"
            "  out[i] = rcf_.root(q.roots[i]);\n"
            "}\n",
            None,
        ),
        (
            # Direct registry call bypasses the compile-away macros.
            "src/foo/hot.cpp",
            "void f() {\n"
            "  if (fault::detail::should_fire(fault::Site::kEpochApply)) {\n"
            "    abort_epoch();\n"
            "  }\n"
            "}\n",
            "fault-macro",
        ),
        (
            # Hand-rolled conditional on the build flag, same problem.
            "src/foo/hot.cpp",
            "#if PARCT_FAULT_INJECT\n"
            "void maybe_fail();\n"
            "#endif\n",
            "fault-macro",
        ),
        (
            # The macros are the sanctioned site spelling.
            "src/foo/hot.cpp",
            "void f() {\n"
            "  if (PARCT_FAULT_POINT(fault::Site::kEpochApply)) {\n"
            "    throw fault::InjectedFault(fault::Site::kEpochApply);\n"
            "  }\n"
            "  PARCT_FAULT_STALL(fault::Site::kSchedulerSteal);\n"
            "}\n",
            None,
        ),
        (
            # src/fault/ itself implements the registry — exempt.
            "src/fault/fault_injection.cpp",
            "#if PARCT_FAULT_INJECT\n"
            "bool detail::should_fire(Site s) noexcept { return false; }\n"
            "#endif\n",
            None,
        ),
        (
            "src/foo/hot.cpp",
            "// parct-lint: allow(fault-macro) reason: test fixture\n"
            "bool probe() { return fault::detail::should_fire(s); }\n",
            None,
        ),
        (
            # An ofstream in the serving layer bypasses the WAL/checkpoint
            # writers' fsync + atomic-rename protocol.
            "src/service/foo.cpp",
            "void f() {\n"
            '  std::ofstream out("state.bin", std::ios::binary);\n'
            "}\n",
            "durability-io",
        ),
        (
            # ...and so does one in the durability layer itself, outside
            # the sanctioned writer files.
            "src/durability/manager.cpp",
            "void f() {\n"
            '  std::fstream out("wal.log");\n'
            "}\n",
            "durability-io",
        ),
        (
            # The writer files are the sanctioned location.
            "src/durability/checkpoint.cpp",
            "void f() {\n"
            '  std::ofstream probe("x");\n'
            "}\n",
            None,
        ),
        (
            # Reading is fine — recovery CRC-checks what it reads.
            "src/durability/manager.cpp",
            "void f() {\n"
            '  std::ifstream in("checkpoint.ckpt", std::ios::binary);\n'
            "}\n",
            None,
        ),
        (
            # std::ostream& serialization APIs are not file writes.
            "src/service/foo.cpp",
            "void save_thing(std::ostream& out);\n",
            None,
        ),
        (
            # Outside the serving/durability layers the rule is silent
            # (tools and benchmarks write ordinary reports).
            "src/contraction/foo.cpp",
            "void f() {\n"
            '  std::ofstream out("report.txt");\n'
            "}\n",
            None,
        ),
        (
            "src/service/foo.cpp",
            "void f() {\n"
            "  // parct-lint: allow(durability-io) reason: test fixture\n"
            '  std::ofstream out("debug.dump");\n'
            "}\n",
            None,
        ),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        global REPO
        saved_repo = REPO
        REPO = Path(tmp)
        try:
            for i, (rel, content, expect) in enumerate(cases):
                p = Path(tmp) / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(content)
                findings: list[str] = []
                lint_file(p, findings)
                hit = findings[0].split(": ")[1].rstrip(":") if findings else None
                ok = (expect is None and not findings) or (
                    expect is not None and any(expect in f for f in findings)
                )
                if not ok:
                    failures += 1
                    print(
                        f"self-test case {i} FAILED: expected {expect}, "
                        f"got {hit} ({findings})"
                    )
                p.unlink()
        finally:
            REPO = saved_repo
    if failures:
        return 1
    print("lint_parallel.py self-test: all cases pass")
    return 0


def main(argv: list[str]) -> int:
    if "--self-test" in argv:
        return self_test()
    roots = [REPO / "src", REPO / "tools"]
    findings: list[str] = []
    for root in roots:
        for path in sorted(root.rglob("*")):
            if path.suffix in {".cpp", ".hpp", ".h", ".cc"}:
                lint_file(path, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_parallel.py: {len(findings)} finding(s)")
        return 1
    print("lint_parallel.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
