// Gate-liveness fixture for the Clang thread-safety job: proves the
// analysis is actually wired into the build, not silently disabled.
//
// Compiled two ways (by the `thread-safety` CI job, and by tools/check.sh
// when a clang++ is installed):
//
//   clang++ -fsyntax-only -Werror=thread-safety  thread_safety_probe.cpp
//       must PASS — the probe's default code is correctly annotated;
//   clang++ ... -DPARCT_PROBE_UNGUARDED  (or -DPARCT_PROBE_DOUBLE_ACQUIRE)
//       must FAIL — each define enables one deliberate discipline
//       violation, and a gate that accepts it is not checking anything.
//
// Checking both directions catches the two silent-failure modes: the
// flags falling off the build (violation compiles), and the macros
// expanding to nothing under Clang (also: violation compiles).
#include "parallel/capability.hpp"

namespace parct::probe {

class Guarded {
 public:
  void set(int v) PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    value_ = v;
  }

  int get() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return value_;
  }

#if defined(PARCT_PROBE_UNGUARDED)
  // Deliberate violation: reads a PARCT_GUARDED_BY(mu_) member without
  // holding mu_ — must be rejected by -Werror=thread-safety.
  int get_unguarded() const { return value_; }
#endif

#if defined(PARCT_PROBE_DOUBLE_ACQUIRE)
  // Deliberate violation: re-enters an EXCLUDES(mu_) method while already
  // holding mu_ — the self-deadlock the EXCLUDES convention exists to
  // catch at compile time.
  int get_twice() const PARCT_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return get();
  }
#endif

 private:
  mutable Mutex mu_;
  int value_ PARCT_GUARDED_BY(mu_) = 0;
};

}  // namespace parct::probe

int main() {
  parct::probe::Guarded g;
  g.set(1);
  return g.get() == 1 ? 0 : 1;
}
