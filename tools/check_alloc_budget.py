#!/usr/bin/env python3
"""Check bench PARCT_STATS_JSON output against bench/alloc_budget.json.

Usage: check_alloc_budget.py <stats.jsonl> [<budget.json>]

Reads the JSONL emitted by the benches (one StatsDump object per line) and
the checked-in budget file. For every bench named in the budget, every
emitted line of that bench must satisfy counter <= ceiling for each
budgeted counter, and at least one line must be present (so a bench that
silently stopped emitting fails rather than vacuously passing).

Besides plain numeric ceilings, a bench entry may carry:

  "floors"        {counter: minimum} — every matching row must satisfy
                  counter >= minimum (e.g. chose_serial >= 1 proves the
                  adaptive serial fast path stayed engaged).
  "floors_filter" {field: value} — restricts which rows the floors apply
                  to (e.g. {"batch_m": 1} gates only the single-edge
                  rows). At least one row must match, so a sweep that
                  drops the gated configuration fails loudly.

Timing fields are reported but never enforced — the budget gates only the
allocation counters, which are deterministic. Exit status: 0 = all budgets
met, 1 = violation or missing bench, 2 = usage/parse error.
"""

import json
import sys
from pathlib import Path


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    stats_path = Path(argv[1])
    budget_path = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent.parent / "bench" / "alloc_budget.json"
    )

    try:
        budgets = json.loads(budget_path.read_text())["budgets"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"error: cannot read budget file {budget_path}: {e}",
              file=sys.stderr)
        return 2

    lines = []
    try:
        with stats_path.open() as f:
            for ln, raw in enumerate(f, 1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    lines.append(json.loads(raw))
                except json.JSONDecodeError as e:
                    print(f"error: {stats_path}:{ln}: bad JSON: {e}",
                          file=sys.stderr)
                    return 2
    except OSError as e:
        print(f"error: cannot read stats file {stats_path}: {e}",
              file=sys.stderr)
        return 2

    failures = 0
    for bench, entry in budgets.items():
        ceilings = {k: v for k, v in entry.items()
                    if k not in ("floors", "floors_filter")}
        floors = entry.get("floors", {})
        floors_filter = entry.get("floors_filter", {})

        rows = [d for d in lines if d.get("bench") == bench]
        if not rows:
            print(f"FAIL {bench}: no stats lines emitted "
                  f"(expected at least one)")
            failures += 1
            continue
        worst = {key: max(r.get(key, 0) for r in rows) for key in ceilings}
        ok = all(worst[key] <= ceilings[key] for key in ceilings)
        detail = ", ".join(
            f"{key}={worst[key]} (budget {ceilings[key]})" for key in ceilings
        )

        if floors:
            gated = [r for r in rows
                     if all(r.get(f) == v for f, v in floors_filter.items())]
            if not gated:
                ok = False
                detail += (f"; no rows match floors_filter {floors_filter}"
                           if detail else
                           f"no rows match floors_filter {floors_filter}")
            else:
                least = {key: min(r.get(key, 0) for r in gated)
                         for key in floors}
                ok = ok and all(least[key] >= floors[key] for key in floors)
                detail += "; " + ", ".join(
                    f"{key}={least[key]} (floor {floors[key]}, "
                    f"{len(gated)} gated row(s))" for key in floors
                )

        status = "ok  " if ok else "FAIL"
        print(f"{status} {bench}: {len(rows)} line(s); {detail}")
        if not ok:
            failures += 1

    # Advisory timing summary (never enforced).
    for d in lines:
        for key in ("update_time_s", "construct_time_s"):
            if key in d:
                print(f"time {d.get('bench')}: {key}={d[key]} "
                      f"(advisory only)")

    if failures:
        print(f"\n{failures} budget violation(s) — a steady-state heap "
              f"allocation crept back into the hot path.")
        return 1
    print("\nall allocation budgets met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
