#!/usr/bin/env python3
"""Shadow-annotation coverage audit for the SP-bags race detector.

The detector (docs/STATIC_ANALYSIS.md) only sees accesses that carry a
PARCT_SHADOW_* annotation — an unannotated write inside a parallel region
is invisible to it, which silently weakens every race-detect CI run. This
tool walks the parallel regions (parallel_for / parallel_for_blocked /
fork2join bodies) of src/ and reports indexed writes to shared arrays
that have no PARCT_SHADOW_* annotation within the preceding window and no
entry in tools/shadow_coverage_allowlist.txt.

Analysis backends, in order of preference:

  * libclang (clang.cindex), when importable AND the compile database
    from the analysis build exists: files are lexed into real tokens, so
    comments/strings are stripped exactly, and every src/*.cpp is
    cross-checked against the compile database (a TU missing from the
    build escapes all compiled-in analyses — that is itself a finding).
  * token-level scanner (always available, pure python): regex lexing
    with comment/string stripping. CI runs never silently weaken: the
    fallback enforces the same rule, only with coarser lexing.

Allowlist (tools/shadow_coverage_allowlist.txt): one entry per line,
`<relpath> <identifier> <justification...>`. An entry suppresses findings
for writes through `identifier` in that file. Every entry must carry a
justification — the file is the reviewed record of deliberate
instrumentation gaps (idempotent writes, disjoint-by-construction slots).

Usage:
  check_shadow_coverage.py               gate mode: exit 1 on findings
  check_shadow_coverage.py --report      full report (annotated /
                                         allowlisted / unannotated), for
                                         the CI artifact; always exit 0
  check_shadow_coverage.py --self-test   run the built-in fixtures

Exit status: 0 clean (or --report/--self-test pass), 1 findings or
self-test failure, 2 usage/internal error.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST_PATH = REPO / "tools" / "shadow_coverage_allowlist.txt"

# A parallel region opens at a call to one of these; the body is every
# line until the brace depth returns to the call's depth.
PARALLEL_CALL = re.compile(r"\b(parallel_for(_blocked)?|fork2join)\s*\(")

# An indexed write through an identifier: `name[i] =`, `name[v][r] +=`, …
# (one or more subscripts, then an assignment that is not `==`).
INDEXED_WRITE = re.compile(
    r"\b(?P<name>[A-Za-z_]\w*)\s*(\[[^\]]*\])+\s*(=(?!=)|\+=|-=|\*=|/=|"
    r"\|=|&=|\^=|<<=|>>=)"
)

# Any detector annotation satisfies the rule for writes in its window
# (the record-level macros cover whole RoundRecords, not single cells).
SHADOW_ANNOTATION = re.compile(r"\bPARCT_SHADOW_\w+\s*\(")

# Lines within this many lines above a write may carry its annotation
# (mirrors the shadow-write lint in lint_parallel.py).
WINDOW = 4


def strip_comments_and_strings(text: str) -> list[str]:
    """Regex lexer fallback: blanks comments/strings, preserves lines."""
    out = []
    in_block = False
    for line in text.splitlines():
        line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
        line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
        if in_block:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block = False
            else:
                out.append("")
                continue
        line = re.sub(r"/\*.*?\*/", "", line)
        if "/*" in line:
            line = line.split("/*", 1)[0]
            in_block = True
        out.append(line.split("//")[0])
    return out


def libclang_lex(path: Path):
    """Lex with libclang when available; None on any failure (the caller
    falls back to the regex lexer — never silently skips the file)."""
    try:
        from clang import cindex  # type: ignore

        index = cindex.Index.create()
        tu = index.parse(
            str(path), args=["-std=c++20", f"-I{REPO / 'src'}"],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
        )
        n_lines = path.read_text(encoding="utf-8").count("\n") + 1
        lines = [""] * (n_lines + 1)
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.kind.name in ("COMMENT", "LITERAL") and '"' in tok.spelling:
                continue
            if tok.kind.name == "COMMENT":
                continue
            ln = tok.location.line
            if 1 <= ln <= n_lines:
                lines[ln] += tok.spelling + " "
        return lines[1:]
    except Exception:  # noqa: BLE001 — any libclang failure => fallback
        return None


def load_allowlist() -> dict[tuple[str, str], str]:
    entries: dict[tuple[str, str], str] = {}
    if not ALLOWLIST_PATH.exists():
        return entries
    for raw in ALLOWLIST_PATH.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            print(
                f"shadow_coverage_allowlist.txt: malformed entry (need "
                f"'<relpath> <identifier> <justification>'): {line!r}",
                file=sys.stderr,
            )
            sys.exit(2)
        entries[(parts[0], parts[1])] = parts[2]
    return entries


def scan_file(
    path: Path, rel: str, use_libclang: bool
) -> list[tuple[int, str, str]]:
    """Returns (line, identifier, code) for every indexed write inside a
    parallel region with no shadow annotation in its window."""
    text = path.read_text(encoding="utf-8")
    lines = None
    if use_libclang:
        lines = libclang_lex(path)
    if lines is None:
        lines = strip_comments_and_strings(text)
    raw_lines = text.splitlines()

    findings: list[tuple[int, str, str]] = []
    depth = 0
    region_stack: list[int] = []  # brace depth at each parallel call
    for idx, code in enumerate(lines):
        if PARALLEL_CALL.search(code):
            region_stack.append(depth)
        in_region = bool(region_stack) and (
            depth > region_stack[-1] or "{" in code
        )
        if in_region:
            m = INDEXED_WRITE.search(code)
            if m:
                window = lines[max(0, idx - WINDOW) : idx + 1]
                if not any(SHADOW_ANNOTATION.search(w) for w in window):
                    findings.append(
                        (idx + 1, m.group("name"), raw_lines[idx].strip())
                    )
        depth += code.count("{") - code.count("}")
        while region_stack and depth <= region_stack[-1] and ");" in code:
            region_stack.pop()
        while region_stack and depth < region_stack[-1]:
            region_stack.pop()
    return findings


def compile_db_tus() -> set[str] | None:
    """Relpaths of src/ TUs in the analysis compile database, if any."""
    for db_dir in (REPO / "build-analysis", REPO / "build"):
        db = db_dir / "compile_commands.json"
        if db.exists():
            try:
                tus = set()
                for entry in json.loads(db.read_text(encoding="utf-8")):
                    p = Path(entry["file"])
                    if not p.is_absolute():
                        p = Path(entry["directory"]) / p
                    try:
                        tus.add(p.resolve().relative_to(REPO).as_posix())
                    except ValueError:
                        continue
                return tus
            except (json.JSONDecodeError, KeyError, OSError):
                return None
    return None


def run(report: bool) -> int:
    allowlist = load_allowlist()
    try:
        import clang.cindex  # type: ignore  # noqa: F401

        use_libclang = True
        backend = "libclang"
    except ImportError:
        use_libclang = False
        backend = "token-scanner"

    files = sorted(
        p
        for p in (REPO / "src").rglob("*")
        if p.suffix in {".cpp", ".hpp"}
    )
    tus = compile_db_tus()

    unannotated: list[str] = []
    allowlisted: list[str] = []
    used_entries: set[tuple[str, str]] = set()
    for path in files:
        rel = path.relative_to(REPO).as_posix()
        for line, name, code in scan_file(path, rel, use_libclang):
            key = (rel, name)
            if key in allowlist:
                used_entries.add(key)
                allowlisted.append(
                    f"{rel}:{line}: {name} — allowlisted: {allowlist[key]}"
                )
            else:
                unannotated.append(
                    f"{rel}:{line}: unannotated write to '{name}' in a "
                    f"parallel region: {code}"
                )

    # A src/ TU absent from the compile database is compiled by nothing —
    # it would escape the thread-safety gate and the sanitizer builds too.
    if tus is not None:
        for path in files:
            rel = path.relative_to(REPO).as_posix()
            if path.suffix == ".cpp" and rel not in tus:
                unannotated.append(
                    f"{rel}: not in the compile database — this TU is not "
                    f"built, so no compiled-in analysis covers it"
                )

    if report:
        print(f"shadow-coverage report (backend: {backend})")
        print(f"  files scanned: {len(files)}")
        print(f"  unannotated:   {len(unannotated)}")
        for f in unannotated:
            print(f"    {f}")
        print(f"  allowlisted:   {len(allowlisted)}")
        for f in allowlisted:
            print(f"    {f}")
        unused = set(allowlist) - used_entries
        if unused:
            print(f"  allowlist entries with no matching write: {len(unused)}")
            for rel, name in sorted(unused):
                print(
                    f"    {rel} {name} (covered only by deeper analysis, "
                    f"or stale)"
                )
        return 0

    for f in unannotated:
        print(f)
    if unannotated:
        print(
            f"check_shadow_coverage.py ({backend}): "
            f"{len(unannotated)} unannotated write(s) — add a PARCT_SHADOW_* "
            f"annotation or an allowlist entry with justification"
        )
        return 1
    print(
        f"check_shadow_coverage.py ({backend}): clean "
        f"({len(allowlisted)} allowlisted site(s))"
    )
    return 0


def self_test() -> int:
    import tempfile

    cases = [
        (
            # Unannotated write in a parallel_for body.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t i) {\n"
            "    out[i] = g(i);\n"
            "  });\n"
            "}\n",
            [(3, "out")],
        ),
        (
            # Annotated within the window: clean.
            "void f() {\n"
            "  PARCT_SHADOW_BUFFER(buf);\n"
            "  par::parallel_for(0, n, [&](std::size_t i) {\n"
            "    PARCT_SHADOW_WRITE(analysis::buffer_cell(buf, i));\n"
            "    out[i] = g(i);\n"
            "  });\n"
            "}\n",
            [],
        ),
        (
            # Record-level annotation also satisfies the rule.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t v) {\n"
            "    PARCT_SHADOW_WRITE_REC(sid, v, r);\n"
            "    recs[v] = make(v);\n"
            "  });\n"
            "}\n",
            [],
        ),
        (
            # Nested subscripts are still writes.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t k) {\n"
            "    vals_[v][i] = combine(vals_[v][i - 1], x);\n"
            "  });\n"
            "}\n",
            [(3, "vals_")],
        ),
        (
            # Writes outside any parallel region are not findings.
            "void f() {\n"
            "  for (std::size_t i = 0; i < n; ++i) out[i] = g(i);\n"
            "}\n",
            [],
        ),
        (
            # fork2join bodies are parallel regions too.
            "void f() {\n"
            "  fork2join([&] { a[0] = 1; }, [&] { a[1] = 2; });\n"
            "}\n",
            [(2, "a")],
        ),
        (
            # Comparison is not a write.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t i) {\n"
            "    if (out[i] == x) count();\n"
            "  });\n"
            "}\n",
            [],
        ),
        (
            # A write in a comment is not a write.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t i) {\n"
            "    // out[i] = g(i);\n"
            "    h(i);\n"
            "  });\n"
            "}\n",
            [],
        ),
        (
            # After the region closes, writes are fine again.
            "void f() {\n"
            "  par::parallel_for(0, n, [&](std::size_t i) { g(i); });\n"
            "  out[0] = 1;\n"
            "}\n",
            [],
        ),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (content, expect) in enumerate(cases):
            p = Path(tmp) / f"case{i}.cpp"
            p.write_text(content)
            got = [
                (line, name)
                for line, name, _ in scan_file(p, p.name, use_libclang=False)
            ]
            if got != expect:
                failures += 1
                print(f"self-test case {i} FAILED: expected {expect}, got {got}")
    if failures:
        return 1
    print("check_shadow_coverage.py self-test: all cases pass")
    return 0


def main(argv: list[str]) -> int:
    if "--self-test" in argv:
        return self_test()
    return run(report="--report" in argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
