// Ablation: parallel_for grain size on the construction algorithm's inner
// loops — quantifies the granularity-control design choice (DESIGN.md §3).
// Small grains expose more parallelism but pay task overhead; the default
// auto grain (~8 leaves per worker) should sit near the knee.
#include <benchmark/benchmark.h>

#include "contraction/construct.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

namespace {

void BM_ParallelForGrain(benchmark::State& state) {
  par::scheduler::initialize(4);
  const std::size_t n = 1 << 18;
  std::vector<std::uint64_t> v(n, 1);
  const std::size_t grain = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    par::parallel_for(0, n, [&](std::size_t i) { v[i] = v[i] * 3 + 1; },
                      grain);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// grain 0 = library default.
BENCHMARK(BM_ParallelForGrain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(1 << 18);

void BM_ConstructAtWorkerCount(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(0)));
  forest::Forest f = forest::build_tree(100000, 4, 0.6, 3);
  for (auto _ : state) {
    contract::ContractionForest c(f.capacity(), 4, 9);
    benchmark::DoNotOptimize(contract::construct(c, f).rounds);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ConstructAtWorkerCount)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
