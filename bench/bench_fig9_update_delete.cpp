// Figure 9: dynamic-update run time on 1 processor for batches of edge
// DELETIONS, on various input forests (paper: n = 10^6; perfect binary and
// chain factors 0.3 / 0.6 / 1.0).
//
// Expected shapes: near-linear growth in m (Theorem 2), and deletions
// cheaper than the insertions of Figure 6 (deletions only remove from the
// contraction structure; insertions must extend it).
#include <chrono>
#include <cmath>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

namespace {

struct Input {
  const char* name;
  forest::Forest (*build)(std::size_t n);
};

forest::Forest binary_tree(std::size_t n) {
  std::size_t m = 1;
  while (2 * m + 1 <= n) m = 2 * m + 1;
  return forest::build_perfect_binary(m);
}
forest::Forest cf03(std::size_t n) {
  return forest::build_tree(n, 4, 0.3, 0xF19'5EEDull);
}
forest::Forest cf06(std::size_t n) {
  return forest::build_tree(n, 4, 0.6, 0xF19'5EEDull);
}
forest::Forest cf10(std::size_t n) {
  return forest::build_tree(n, 4, 1.0, 0xF19'5EEDull);
}

}  // namespace

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();
  const Input inputs[] = {{"perfect_binary", binary_tree},
                          {"chain_factor_0.3", cf03},
                          {"chain_factor_0.6", cf06},
                          {"chain_factor_1.0", cf10}};

  bench::TableWriter table(
      "Figure 9: batch-delete update time, 1 processor (n~" +
          std::to_string(n) + ")",
      {"forest", "batch_m", "update_time_s", "time_per_edge_us",
       "affected_total"});

  for (const Input& input : inputs) {
    forest::Forest full = input.build(n);
    for (std::size_t m = 1; m <= n / 10; m *= 10) {
      forest::ChangeSet batch = forest::make_delete_batch(full, m, m + 5);
      forest::ChangeSet inverse;
      inverse.add_edges = batch.remove_edges;

      contract::ContractionForest c(full.capacity(), 4, 7);
      contract::construct(c, full);
      contract::DynamicUpdater updater(c);
      contract::UpdateStats stats;

      updater.apply(batch);
      updater.apply(inverse);

      bench::StatsDump dump("fig9_update_delete");
      double total = 0.0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        stats = updater.apply(batch);
        const auto t1 = std::chrono::steady_clock::now();
        total += std::chrono::duration<double>(t1 - t0).count();
        updater.apply(inverse);
      }
      const double t = total / reps;
      table.row({input.name, std::to_string(m), bench::fmt_s(t),
                 bench::fmt(t / m * 1e6),
                 std::to_string(stats.total_affected)});

      dump.str("forest", input.name).num("n", n).num("batch_m", m).num(
          "update_time_s", t);
      bench::add_update_stats(dump, stats);
      dump.emit();
    }
  }
  return 0;
}
