// Ablation: coin-flip hash family strength vs contraction behaviour.
//
// The paper uses a 2-wise independent family per round (§2.4), which pins
// the *expected* per-round shrink (Lemma 5's beta) but not the variance of
// pair events like compress — on a pure chain, "v compresses" reads two
// adjacent coins, and with 2-wise coins the realized per-round decay
// fluctuates widely. This bench simulates chain contraction under both
// families and reports the decay distribution: 4-wise coins concentrate
// it near the 3/4 mean, 2-wise coins do not — while both preserve the
// expected totals (round counts and total work differ only mildly).
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "hashing/four_independent.hpp"
#include "hashing/splitmix64.hpp"
#include "hashing/two_independent.hpp"

using namespace parct;

namespace {

struct DecayStats {
  std::uint32_t rounds = 0;
  std::uint64_t total_work = 0;
  double min_ratio = 1.0;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
};

// Simulates randomized chain contraction (rake at the tail, compress in
// the interior) with per-round coins from `draw(round, vertex)`.
template <typename Coin>
DecayStats contract_chain(std::size_t n, const Coin& draw,
                          std::uint32_t min_live) {
  // Chain as a doubly linked list; head is the root.
  std::vector<std::uint32_t> next(n), prev(n);
  for (std::size_t v = 0; v < n; ++v) {
    next[v] = static_cast<std::uint32_t>(v + 1);
    prev[v] = v == 0 ? n : static_cast<std::uint32_t>(v - 1);
  }
  std::size_t live = n;
  DecayStats stats;
  std::vector<double> ratios;
  std::uint32_t round = 0;
  while (live > 1) {
    stats.total_work += live;
    std::size_t contracted = 0;
    // Sweep: decide contractions against the *current* round state.
    std::vector<std::uint32_t> to_remove;
    for (std::uint32_t v = next[0]; v < n; v = next[v]) {
      const bool is_tail = next[v] >= n;
      const bool child_is_tail = !is_tail && next[next[v]] >= n;
      if (is_tail) {
        to_remove.push_back(v);  // rake
      } else if (!child_is_tail && !draw(round, prev[v]) &&
                 draw(round, v)) {
        // Interior vertex with non-leaf child: compress on the coins.
        // Independence within the round is guaranteed by the coin rule.
        to_remove.push_back(v);
      }
    }
    for (std::uint32_t v : to_remove) {
      const std::uint32_t p = prev[v];
      const std::uint32_t nx = next[v];
      next[p] = nx;
      if (nx < n) prev[nx] = p;
    }
    contracted = to_remove.size();
    const std::size_t new_live = live - contracted;
    if (live >= min_live && new_live > 0) {
      ratios.push_back(static_cast<double>(new_live) / live);
    }
    live = new_live;
    ++round;
  }
  stats.total_work += live;  // final root finalizes
  stats.rounds = round + 1;
  if (!ratios.empty()) {
    double sum = 0;
    stats.min_ratio = 2.0;
    for (double r : ratios) {
      sum += r;
      stats.min_ratio = std::min(stats.min_ratio, r);
      stats.max_ratio = std::max(stats.max_ratio, r);
    }
    stats.mean_ratio = sum / static_cast<double>(ratios.size());
  }
  return stats;
}

}  // namespace

int main() {
  const std::size_t n = bench::env_size("PARCT_BENCH_N", 200000);
  const std::size_t min_live = std::max<std::size_t>(1000, n / 50);

  bench::TableWriter table(
      "Hash-family ablation: chain contraction decay (n=" +
          std::to_string(n) + ", ratios over rounds with live >= " +
          std::to_string(min_live) + ")",
      {"family", "seed", "rounds", "total_work", "min_ratio", "mean_ratio",
       "max_ratio"});

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    hashing::SplitMix64 gen2(seed);
    std::vector<hashing::TwoIndependentHash> h2;
    for (int i = 0; i < 256; ++i) {
      h2.push_back(hashing::TwoIndependentHash::random(gen2));
    }
    const DecayStats s2 = contract_chain(
        n,
        [&](std::uint32_t r, std::uint64_t v) { return h2[r % 256].coin(v); },
        static_cast<std::uint32_t>(min_live));
    table.row({"2-wise", std::to_string(seed), std::to_string(s2.rounds),
               std::to_string(s2.total_work), bench::fmt(s2.min_ratio),
               bench::fmt(s2.mean_ratio), bench::fmt(s2.max_ratio)});

    hashing::SplitMix64 gen4(seed);
    std::vector<hashing::FourIndependentHash> h4;
    for (int i = 0; i < 256; ++i) {
      h4.push_back(hashing::FourIndependentHash::random(gen4));
    }
    const DecayStats s4 = contract_chain(
        n,
        [&](std::uint32_t r, std::uint64_t v) { return h4[r % 256].coin(v); },
        static_cast<std::uint32_t>(min_live));
    table.row({"4-wise", std::to_string(seed), std::to_string(s4.rounds),
               std::to_string(s4.total_work), bench::fmt(s4.min_ratio),
               bench::fmt(s4.mean_ratio), bench::fmt(s4.max_ratio)});
  }
  return 0;
}
