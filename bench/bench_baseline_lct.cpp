// Batched updates: parallel dynamic tree contraction vs the classic
// sequential approach (paper §1) — iterating single-edge operations of a
// Link-Cut Tree [Sleator-Tarjan 35] over the batch. The LCT column is the
// "existing sequential dynamic tree algorithms ... iterated over the
// batch" strategy; the dynamic-update column is this library.
//
// Note the two structures maintain different things (LCT answers path
// queries lazily; the contraction structure maintains the full recorded
// contraction, from which RC-style queries are answered), so this is a
// workload-level comparison of the update path, not a microbenchmark of
// identical work.
#include <chrono>

#include "baseline/link_cut_tree.hpp"
#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);  // sequential apples-to-apples
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();

  bench::TableWriter table(
      "Baseline: batched edge re-insertion, LCT one-by-one vs dynamic "
      "contraction update (n=" + std::to_string(n) +
          ", chain factor 0.6, 1 processor)",
      {"batch_m", "lct_time_s", "dynamic_time_s", "lct_over_dynamic"});

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0xBA5'EEEDull);
  for (std::size_t m = 10; m <= n / 10; m *= 10) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 2);
    forest::ChangeSet inverse;
    inverse.remove_edges = batch.add_edges;

    // --- LCT: build once, then time m link()s (restoring with m cut()s).
    baseline::LinkCutTree lct(full.capacity());
    for (const Edge& e : initial.edges()) lct.link(e.child, e.parent);
    double lct_total = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const Edge& e : batch.add_edges) lct.link(e.child, e.parent);
      const auto t1 = std::chrono::steady_clock::now();
      lct_total += std::chrono::duration<double>(t1 - t0).count();
      for (const Edge& e : batch.add_edges) lct.cut(e.child);
    }
    const double t_lct = lct_total / reps;

    // --- dynamic contraction update: one batched apply.
    contract::ContractionForest c(full.capacity(), 4, 5);
    contract::construct(c, initial);
    contract::DynamicUpdater updater(c);
    updater.apply(batch);
    updater.apply(inverse);
    double dyn_total = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      updater.apply(batch);
      const auto t1 = std::chrono::steady_clock::now();
      dyn_total += std::chrono::duration<double>(t1 - t0).count();
      updater.apply(inverse);
    }
    const double t_dyn = dyn_total / reps;

    table.row({std::to_string(m), bench::fmt_s(t_lct), bench::fmt_s(t_dyn),
               bench::fmt(t_lct / t_dyn)});
  }
  return 0;
}
