// Figure 6: dynamic-update run time on 1 processor with respect to the
// size of a batch of edge INSERTIONS (paper: n = 10^6, random tree).
// The batch is cut out of a full tree and re-inserted by the timed update;
// the inverse deletion restores the structure between repetitions (update
// followed by its inverse is bit-for-bit identity — tested).
//
// Expected shape (Theorem 2): time grows as O(m log((n+m)/m)) — near-linear
// in m with a shrinking log factor, strongly sub-linear in n for small m.
#include <cmath>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();

  bench::TableWriter table(
      "Figure 6: batch-insert update time, 1 processor (n=" +
          std::to_string(n) + ", chain factor 0.6)",
      {"batch_m", "update_time_s", "time_per_edge_us", "affected_total",
       "m_log_n_plus_m_over_m"});

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0xF16'6EEDull);
  for (std::size_t m = 1; m <= n / 10; m *= 10) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 17);
    forest::ChangeSet inverse;
    inverse.remove_edges = batch.add_edges;

    contract::ContractionForest c(full.capacity(), 4, 99);
    contract::construct(c, initial);
    contract::DynamicUpdater updater(c);
    contract::UpdateStats stats;

    // Warm-up + correctness of the restore cycle.
    updater.apply(batch);
    updater.apply(inverse);

    // Time the forward insertion only; the inverse deletion (restoring the
    // structure for the next repetition) runs outside the clock.
    bench::StatsDump dump("fig6_update_insert");
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      stats = updater.apply(batch);
      const auto t1 = std::chrono::steady_clock::now();
      total += std::chrono::duration<double>(t1 - t0).count();
      updater.apply(inverse);
    }
    const double t = total / reps;

    const double bound =
        static_cast<double>(m) *
        std::log2(static_cast<double>(n + m) / static_cast<double>(m));
    table.row({std::to_string(m), bench::fmt_s(t),
               bench::fmt(t / m * 1e6), std::to_string(stats.total_affected),
               bench::fmt(bound)});

    dump.num("n", n).num("batch_m", m).num("update_time_s", t);
    bench::add_update_stats(dump, stats);
    dump.emit();
  }
  return 0;
}
