// Shared helpers for the figure-reproduction benchmark binaries.
//
// Scales default to CI/laptop-friendly sizes; override with environment
// variables to reach the paper's scale:
//   PARCT_BENCH_N          base forest size (paper: 10^6, Fig 5: 4*10^6)
//   PARCT_BENCH_REPS       repetitions averaged per data point (paper: 3)
//   PARCT_BENCH_MAXTHREADS largest worker count in thread sweeps
//   PARCT_STATS_JSON       file path: benches append one JSON object per
//                          StatsDump::emit() as a line (JSONL), including
//                          the scheduler pool counters — the machine-
//                          readable companion of the stdout tables (see
//                          docs/OBSERVABILITY.md)
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "parallel/adaptive.hpp"
#include "parallel/stats.hpp"

namespace parct::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* s = std::getenv(name)) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::size_t default_n() { return env_size("PARCT_BENCH_N", 200000); }
inline int default_reps() {
  return static_cast<int>(env_size("PARCT_BENCH_REPS", 3));
}
inline unsigned max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<unsigned>(env_size(
      "PARCT_BENCH_MAXTHREADS", hw == 0 ? 4 : std::max(hw, 4u)));
}

inline std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> ps;
  for (unsigned p = 1; p <= max_threads(); p *= 2) ps.push_back(p);
  if (ps.back() != max_threads()) ps.push_back(max_threads());
  return ps;
}

/// Average seconds of `fn` over `reps` runs (each run timed separately).
/// One untimed warm-up run precedes the measurements (cache/allocator
/// warm-up; the paper averages 3 hot runs).
template <typename F>
double time_avg_s(F&& fn, int reps) {
  using clock = std::chrono::steady_clock;
  fn();
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    total += std::chrono::duration<double>(t1 - t0).count();
  }
  return total / reps;
}

struct TableWriter {
  explicit TableWriter(const std::string& title,
                       const std::vector<std::string>& columns) {
    std::printf("\n## %s\n", title.c_str());
    for (std::size_t i = 0; i < columns.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns[i].c_str());
    }
    std::printf("\n");
  }
  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%s", i ? "," : "", cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
};

inline std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
inline std::string fmt_s(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", seconds);
  return buf;
}

// --- JSON stats dump -----------------------------------------------------

/// Builds one flat JSON object and appends it as a line to the file named
/// by PARCT_STATS_JSON (no-op when the variable is unset). emit() merges
/// in the scheduler's pool counters (steals, parks, wakeups, tasks) as
/// deltas since the dump was constructed, so every bench can ship its
/// scheduler/update telemetry to CI artifacts:
///
///   bench::StatsDump dump("fig6");   // construct before the measured work
///   dump.num("n", n).num("batch_m", m).num("update_time_s", t);
///   dump.emit();
class StatsDump {
 public:
  explicit StatsDump(const std::string& bench)
      : base_(par::stats::snapshot()) {
    str("bench", bench);
  }

  StatsDump& str(const std::string& key, const std::string& value) {
    field(key);
    body_ += '"';
    append_escaped(value);
    body_ += '"';
    return *this;
  }

  template <typename V>
  StatsDump& num(const std::string& key, V value) {
    static_assert(std::is_arithmetic_v<V>);
    field(key);
    char buf[64];
    if constexpr (std::is_floating_point_v<V>) {
      std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(value));
    } else if constexpr (std::is_signed_v<V>) {
      std::snprintf(buf, sizeof buf, "%" PRId64,
                    static_cast<std::int64_t>(value));
    } else {
      std::snprintf(buf, sizeof buf, "%" PRIu64,
                    static_cast<std::uint64_t>(value));
    }
    body_ += buf;
    return *this;
  }

  /// Appends the object (plus pool counter deltas since construction) to
  /// $PARCT_STATS_JSON.
  void emit() {
    const char* path = std::getenv("PARCT_STATS_JSON");
    if (path == nullptr) return;
    const par::stats::PoolCounters pool = par::stats::snapshot();
    // The pool may have been re-initialized since construction (thread
    // sweeps); counters then restart from zero, so clamp the deltas.
    auto delta = [](std::uint64_t now, std::uint64_t then) {
      return now >= then ? now - then : now;
    };
    num("workers", pool.num_workers)
        .num("sched_steals", delta(pool.steals, base_.steals))
        .num("sched_tasks", delta(pool.tasks_executed, base_.tasks_executed))
        .num("sched_parks", delta(pool.parks, base_.parks))
        .num("sched_wakeups", delta(pool.wakeups, base_.wakeups));
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f, "{%s}\n", body_.c_str());
      std::fclose(f);
    }
  }

 private:
  void field(const std::string& key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    append_escaped(key);
    body_ += "\":";
  }
  void append_escaped(const std::string& s) {
    for (char ch : s) {
      if (ch == '"' || ch == '\\') body_ += '\\';
      body_ += ch;
    }
  }

  std::string body_;
  par::stats::PoolCounters base_;
};

/// Adds the counters (and, when built with PARCT_STATS, per-phase times)
/// of an UpdateStats to a dump.
inline void add_update_stats(StatsDump& d,
                             const contract::UpdateStats& s) {
  d.num("rounds", s.rounds)
      .num("initial_affected", s.initial_affected)
      .num("affected_total", s.total_affected)
      .num("affected_max", s.max_affected)
      .num("neighborhood_total", s.total_neighborhood)
      .num("chose_serial", s.chose_serial)
      .num("fused_passes", s.fused_passes)
      .num("serial_cutover", par::serial_cutover());
  if constexpr (contract::kStatsEnabled) {
    static constexpr const char* kPhaseKeys[contract::kNumUpdatePhases] = {
        "phase_initial_s", "phase_mark_s", "phase_neighborhood_s",
        "phase_erase_s",   "phase_promote_s", "phase_leaf_s",
        "phase_spread_s",  "phase_x_s",       "phase_serial_s"};
    for (unsigned p = 0; p < contract::kNumUpdatePhases; ++p) {
      d.num(kPhaseKeys[p], s.phase_seconds[p]);
    }
    d.num("update_total_s", s.total_seconds);
  }
  d.num("ws_acquires", s.ws_acquires)
      .num("ws_hits", s.ws_hits)
      .num("ws_misses", s.ws_misses)
      .num("ws_bytes_allocated", s.ws_bytes_allocated)
      .num("ws_container_growths", s.ws_container_growths)
      .num("ws_container_bytes", s.ws_container_bytes);
}

/// Adds the counters (and, when built with PARCT_STATS, per-phase times)
/// of a ConstructStats to a dump.
inline void add_construct_stats(StatsDump& d,
                                const contract::ConstructStats& s) {
  d.num("rounds", s.rounds)
      .num("total_live", s.total_live)
      .num("chose_serial", s.chose_serial)
      .num("serial_cutover", par::serial_cutover());
  if constexpr (contract::kStatsEnabled) {
    static constexpr const char* kPhaseKeys[contract::kNumConstructPhases] =
        {"phase_classify_s", "phase_allocate_s", "phase_promote_s",
         "phase_compact_s", "phase_serial_s"};
    for (unsigned p = 0; p < contract::kNumConstructPhases; ++p) {
      d.num(kPhaseKeys[p], s.phase_seconds[p]);
    }
    d.num("construct_total_s", s.total_seconds);
  }
  d.num("ws_acquires", s.ws_acquires)
      .num("ws_hits", s.ws_hits)
      .num("ws_misses", s.ws_misses)
      .num("ws_bytes_allocated", s.ws_bytes_allocated)
      .num("ws_container_growths", s.ws_container_growths)
      .num("ws_container_bytes", s.ws_container_bytes);
}

}  // namespace parct::bench
