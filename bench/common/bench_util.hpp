// Shared helpers for the figure-reproduction benchmark binaries.
//
// Scales default to CI/laptop-friendly sizes; override with environment
// variables to reach the paper's scale:
//   PARCT_BENCH_N          base forest size (paper: 10^6, Fig 5: 4*10^6)
//   PARCT_BENCH_REPS       repetitions averaged per data point (paper: 3)
//   PARCT_BENCH_MAXTHREADS largest worker count in thread sweeps
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace parct::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* s = std::getenv(name)) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::size_t default_n() { return env_size("PARCT_BENCH_N", 200000); }
inline int default_reps() {
  return static_cast<int>(env_size("PARCT_BENCH_REPS", 3));
}
inline unsigned max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<unsigned>(env_size(
      "PARCT_BENCH_MAXTHREADS", hw == 0 ? 4 : std::max(hw, 4u)));
}

inline std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> ps;
  for (unsigned p = 1; p <= max_threads(); p *= 2) ps.push_back(p);
  if (ps.back() != max_threads()) ps.push_back(max_threads());
  return ps;
}

/// Average seconds of `fn` over `reps` runs (each run timed separately).
/// One untimed warm-up run precedes the measurements (cache/allocator
/// warm-up; the paper averages 3 hot runs).
template <typename F>
double time_avg_s(F&& fn, int reps) {
  using clock = std::chrono::steady_clock;
  fn();
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    total += std::chrono::duration<double>(t1 - t0).count();
  }
  return total / reps;
}

struct TableWriter {
  explicit TableWriter(const std::string& title,
                       const std::vector<std::string>& columns) {
    std::printf("\n## %s\n", title.c_str());
    for (std::size_t i = 0; i < columns.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns[i].c_str());
    }
    std::printf("\n");
  }
  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%s", i ? "," : "", cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
};

inline std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
inline std::string fmt_s(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", seconds);
  return buf;
}

}  // namespace parct::bench
