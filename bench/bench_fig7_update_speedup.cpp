// Figure 7: self-speedup of the parallel update algorithm with respect to
// the number of insertions (paper: n = 10^6, chain factor 0.6; batch sizes
// from small to large; speedup = time(p=1) / time(p)).
//
// Expected shape: no speedup for small batches (too little work: for
// constant m total work is O(log n) while span is Omega(log n)); growing
// speedups as the batch size grows. On a single-core host the time-based
// speedup stays ~1 or below by construction; the `affected_per_round`
// column reports the machine-independent available parallelism (work per
// propagation round, Lemma 10), which is what grows with m.
#include <chrono>
#include <cmath>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

int main() {
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();

  bench::TableWriter table(
      "Figure 7: update self-speedup vs batch size (n=" + std::to_string(n) +
          ", chain factor 0.6)",
      {"batch_m", "p", "time_s", "self_speedup", "rounds",
       "affected_per_round"});

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0xF17'5EEDull);
  for (std::size_t m = 10; m <= n / 10; m *= 10) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 3);
    forest::ChangeSet inverse;
    inverse.remove_edges = batch.add_edges;

    double t1 = 0.0;
    for (unsigned p : bench::thread_sweep()) {
      par::scheduler::initialize(p);
      contract::ContractionForest c(full.capacity(), 4, 1234);
      contract::construct(c, initial);
      contract::DynamicUpdater updater(c);
      contract::UpdateStats stats;

      updater.apply(batch);
      updater.apply(inverse);

      bench::StatsDump dump("fig7_update_speedup");
      double total = 0.0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        stats = updater.apply(batch);
        const auto t_end = std::chrono::steady_clock::now();
        total += std::chrono::duration<double>(t_end - t0).count();
        updater.apply(inverse);
      }
      const double t = total / reps;
      if (p == 1) t1 = t;
      table.row({std::to_string(m), std::to_string(p), bench::fmt_s(t),
                 bench::fmt(t1 / t), std::to_string(stats.rounds),
                 bench::fmt(static_cast<double>(stats.total_affected) /
                            std::max<std::uint32_t>(1, stats.rounds))});

      dump.num("n", n).num("batch_m", m).num("p", p).num("update_time_s",
                                                         t);
      bench::add_update_stats(dump, stats);
      dump.emit();
    }
  }
  par::scheduler::initialize(1);
  return 0;
}
