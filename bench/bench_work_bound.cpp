// Theorem-2 shape check (ablation-style bench): the measured work of a
// dynamic update — total affected vertices summed over rounds — against
// the closed-form bound m * log2((n+m)/m). The ratio column should stay
// bounded by a constant across five decades of m; that is the
// machine-independent core of the paper's headline result.
#include <cmath>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = bench::default_n();

  bench::TableWriter table(
      "Work bound: measured affected vertices vs m*log2((n+m)/m) (n=" +
          std::to_string(n) + ", chain factor 0.6, insert batches)",
      {"batch_m", "initial_affected", "total_affected", "max_affected",
       "rounds", "bound", "measured_over_bound"});

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0xAB0'5EEDull);
  for (std::size_t m = 1; m <= n / 2; m *= 4) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 1);
    contract::ContractionForest c(full.capacity(), 4, 77);
    contract::construct(c, initial);
    contract::DynamicUpdater updater(c);
    const contract::UpdateStats stats = updater.apply(batch);

    const double bound =
        static_cast<double>(m) *
        std::max(1.0, std::log2(static_cast<double>(n + m) /
                                static_cast<double>(m)));
    table.row({std::to_string(m), std::to_string(stats.initial_affected),
               std::to_string(stats.total_affected),
               std::to_string(stats.max_affected),
               std::to_string(stats.rounds), bench::fmt(bound),
               bench::fmt(static_cast<double>(stats.total_affected) /
                          bound)});
  }
  return 0;
}
