// Figures 10-13 and the appendix table: run time of the static algorithm
// vs the (recording) construction algorithm across input sizes, for
// perfect binary trees and chain factors 0.3 / 0.6 / 1.0.
//
// Expected shapes (paper): both scale linearly in n; their ratio is a
// constant per tree type — paper reports 1.02 (perfect binary), 1.7 (cf
// 0.3), 1.9 (cf 0.6), 2.4 (cf 1.0), i.e. construction < 2.5x static on
// average (§4 "Construction Algorithm").
#include <cstdio>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "static_contraction/static_contract.hpp"

using namespace parct;

namespace {

struct Input {
  const char* name;
  forest::Forest (*build)(std::size_t n);
};

forest::Forest binary_tree(std::size_t n) {
  std::size_t m = 1;
  while (2 * m + 1 <= n) m = 2 * m + 1;
  return forest::build_perfect_binary(m);
}
forest::Forest cf03(std::size_t n) {
  return forest::build_tree(n, 4, 0.3, 0xF10'5EEDull);
}
forest::Forest cf06(std::size_t n) {
  return forest::build_tree(n, 4, 0.6, 0xF10'5EEDull);
}
forest::Forest cf10(std::size_t n) {
  return forest::build_tree(n, 4, 1.0, 0xF10'5EEDull);
}

}  // namespace

int main() {
  par::scheduler::initialize(1);  // paper's Figs 10-13 compare 1-proc runs
  const std::size_t max_n = bench::default_n() * 2;
  const int reps = bench::default_reps();
  const Input inputs[] = {{"perfect_binary", binary_tree},
                          {"chain_factor_0.3", cf03},
                          {"chain_factor_0.6", cf06},
                          {"chain_factor_1.0", cf10}};

  bench::TableWriter table(
      "Figures 10-13: static vs construction run time across sizes",
      {"forest", "n", "static_time_s", "construction_time_s", "ratio"});

  double ratio_sum[4] = {0, 0, 0, 0};
  int ratio_count[4] = {0, 0, 0, 0};
  int idx = 0;
  for (const Input& input : inputs) {
    for (std::size_t n = max_n / 8; n <= max_n; n *= 2) {
      forest::Forest f = input.build(n);
      const double t_static = bench::time_avg_s(
          [&] {
            hashing::CoinSchedule coins(11);
            static_contraction::static_contract_sequential(f, coins);
          },
          reps);
      const double t_constr = bench::time_avg_s(
          [&] {
            contract::ContractionForest c(f.capacity(), f.degree_bound(),
                                          11);
            contract::construct(c, f);
          },
          reps);
      const double ratio = t_constr / t_static;
      ratio_sum[idx] += ratio;
      ++ratio_count[idx];
      table.row({input.name, std::to_string(f.num_present()),
                 bench::fmt_s(t_static), bench::fmt_s(t_constr),
                 bench::fmt(ratio)});
    }
    ++idx;
  }

  bench::TableWriter summary(
      "Appendix table: construction/static constant multiplier per tree "
      "type (paper: 1.02 / 1.7 / 1.9 / 2.4)",
      {"forest", "avg_ratio"});
  for (int i = 0; i < 4; ++i) {
    summary.row({inputs[i].name, bench::fmt(ratio_sum[i] / ratio_count[i])});
  }
  return 0;
}
