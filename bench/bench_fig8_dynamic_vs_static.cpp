// Figure 8: ratio of the run time of the optimized STATIC SEQUENTIAL tree
// contraction to the run time of the parallel dynamic update, as a
// function of the number of processors, for several insertion batch sizes
// (paper: n = 10^6, chain factor 0.6; ratios up to ~1000x for small
// batches, ~5-10x for batches of 10^4).
//
// Expected shape: ratio >> 1 and decreasing in the batch size m (dynamism
// pays off less as m -> n), increasing in p (parallelism compounds).
#include <chrono>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "contraction/dynamic_update.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "static_contraction/static_contract.hpp"

using namespace parct;

int main() {
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0xF18'5EEDull);

  // Baseline: one static sequential contraction of the edited forest.
  par::scheduler::initialize(1);
  const double t_static = bench::time_avg_s(
      [&] {
        hashing::CoinSchedule coins(5);
        static_contraction::static_contract_sequential(full, coins);
      },
      reps);

  bench::TableWriter table(
      "Figure 8: static-sequential / dynamic-update time ratio (n=" +
          std::to_string(n) + ", chain factor 0.6; static_seq_time_s=" +
          bench::fmt_s(t_static) + ")",
      {"batch_m", "p", "dynamic_time_s", "ratio_static_over_dynamic"});

  for (std::size_t m = 10; m <= n / 10; m *= 10) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 29);
    forest::ChangeSet inverse;
    inverse.remove_edges = batch.add_edges;

    for (unsigned p : bench::thread_sweep()) {
      par::scheduler::initialize(p);
      contract::ContractionForest c(full.capacity(), 4, 5);
      contract::construct(c, initial);
      contract::DynamicUpdater updater(c);

      updater.apply(batch);
      updater.apply(inverse);

      double total = 0.0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        updater.apply(batch);
        const auto t1 = std::chrono::steady_clock::now();
        total += std::chrono::duration<double>(t1 - t0).count();
        updater.apply(inverse);
      }
      const double t_dyn = total / reps;
      table.row({std::to_string(m), std::to_string(p),
                 bench::fmt_s(t_dyn), bench::fmt(t_static / t_dyn)});
    }
  }
  par::scheduler::initialize(1);
  return 0;
}
