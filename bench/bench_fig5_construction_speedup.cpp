// Figure 5: speedup of the construction algorithm with respect to the
// number of processors, for chain factors {0.0, 0.3, 0.6, 1.0}.
// Paper setup: n = 4*10^6 on a 40-thread machine. Here n defaults to a
// CI-friendly size (PARCT_BENCH_N * 4 to keep the 4x relation to the other
// experiments); the thread sweep adapts to the host. On a single-core host
// the speedup column reports the honest (flat or below-1) values — see
// EXPERIMENTS.md for the substitution note; the `work` and `span proxy`
// columns carry the machine-independent evidence.
#include <cmath>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

int main() {
  const std::size_t n = bench::default_n() * 4;
  const int reps = bench::default_reps();
  const double chain_factors[] = {0.0, 0.3, 0.6, 1.0};

  bench::TableWriter table(
      "Figure 5: construction speedup vs processors (n=" +
          std::to_string(n) + ")",
      {"chain_factor", "p", "time_s", "speedup_vs_p1", "rounds",
       "total_work", "avg_parallelism_proxy"});

  for (double cf : chain_factors) {
    forest::Forest f = forest::build_tree(n, 4, cf, 0xF16'5EEDull);
    double t1 = 0.0;
    for (unsigned p : bench::thread_sweep()) {
      par::scheduler::initialize(p);
      bench::StatsDump dump("fig5_construction_speedup");
      contract::ConstructStats stats;
      const double t = bench::time_avg_s(
          [&] {
            contract::ContractionForest c(f.capacity(), 4, 42);
            stats = contract::construct(c, f);
          },
          reps);
      if (p == 1) t1 = t;
      // Work-time parallelism proxy: total work / (rounds * log2 n)
      // — an upper-bound-style estimate of W/T independent of the host.
      const double span_proxy =
          stats.rounds * std::max(1.0, std::log2(static_cast<double>(n)));
      table.row({bench::fmt(cf), std::to_string(p), bench::fmt_s(t),
                 bench::fmt(t1 / t), std::to_string(stats.rounds),
                 std::to_string(stats.total_live),
                 bench::fmt(static_cast<double>(stats.total_live) /
                            span_proxy)});

      dump.num("n", n).num("chain_factor", cf).num("p", p).num(
          "construct_time_s", t);
      bench::add_construct_stats(dump, stats);
      dump.emit();
    }
  }
  par::scheduler::initialize(1);
  return 0;
}
