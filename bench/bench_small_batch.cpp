// Small-batch update latency through the serving stack: one
// BatchServer::submit_update + epoch step per measurement, batch sizes
// m in {1, 10, 100, 1k, 10k}. This is the end-to-end cost a client pays
// for a tiny update — admission, apply() (which takes the adaptive serial
// fast path for sub-cutover frontiers; docs/PERFORMANCE.md "Small-batch
// fast path"), derived-layer repair, and snapshot publication.
//
// The m=1 row is the latency headline the fast path optimizes; the JSONL
// rows carry chose_serial / fused_passes / ws_misses so CI can gate the
// fast path staying engaged (tools/check_alloc_budget.py with
// bench/alloc_budget.json).
#include <chrono>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "forest/tree_builder.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = bench::default_n();
  const int reps = bench::default_reps();

  bench::TableWriter table(
      "Small-batch update latency through BatchServer (n=" +
          std::to_string(n) + ", chain factor 0.6, step mode)",
      {"batch_m", "latency_s", "latency_per_edge_us", "chose_serial",
       "rounds"});

  forest::Forest full = forest::build_tree(n, 4, 0.6, 0x53A17'BA7CULL);
  for (std::size_t m = 1; m <= 10000 && m <= n / 10; m *= 10) {
    auto [initial, batch] = forest::make_insert_batch(full, m, m + 41);
    forest::ChangeSet inverse;
    inverse.remove_edges = batch.add_edges;

    contract::ContractionForest c(full.capacity(), 4, 99);
    contract::construct(c, initial);

    service::ServiceConfig cfg;
    cfg.validate_updates = false;  // measure the engine, not the checker
    service::BatchServer server(
        c, cfg, std::vector<service::Weight>(full.capacity(), 1));

    auto apply_once = [&](const forest::ChangeSet& cs) {
      service::UpdateRequest u;
      u.batch = cs;
      std::future<service::UpdateResult> fut =
          server.submit_update(std::move(u));
      server.step();
      return fut.get();
    };

    // Warm-up cycle: first forward/inverse pair grows every scratch buffer
    // to steady-state capacity (later reps must show ws_misses == 0).
    apply_once(batch);
    apply_once(inverse);

    bench::StatsDump dump("small_batch");
    service::UpdateResult last;
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      last = apply_once(batch);
      const auto t1 = std::chrono::steady_clock::now();
      total += std::chrono::duration<double>(t1 - t0).count();
      apply_once(inverse);  // restore outside the clock
    }
    const double t = total / reps;

    table.row({std::to_string(m), bench::fmt_s(t),
               bench::fmt(t / static_cast<double>(m) * 1e6),
               std::to_string(last.stats.chose_serial),
               std::to_string(last.stats.rounds)});

    dump.num("n", n).num("batch_m", m).num("latency_s", t);
    bench::add_update_stats(dump, last.stats);
    dump.emit();
  }
  return 0;
}
