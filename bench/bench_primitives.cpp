// google-benchmark microbenchmarks for the parallel primitives substrate:
// prefix sums, compaction and tabulate throughput at several worker counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"
#include "primitives/sequence_ops.hpp"

using namespace parct;

namespace {

std::vector<std::uint32_t> inputs(std::size_t n) {
  hashing::SplitMix64 rng(1);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(100));
  return v;
}

void BM_ExclusiveScan(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> out(in.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::exclusive_scan(in.data(), out.data(), in.size()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExclusiveScan)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_Pack(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::pack(in, [&](std::size_t i) { return (in[i] & 1) == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pack)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_Tabulate(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::tabulate(n, [](std::size_t i) { return 3 * i + 1; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tabulate)->Args({1 << 20, 1})->Args({1 << 20, 4});

}  // namespace

BENCHMARK_MAIN();
