// google-benchmark microbenchmarks for the parallel primitives substrate:
// prefix sums, compaction and tabulate throughput at several worker counts,
// both the classic allocating signatures and the destination-passing
// (_into) variants that reuse a Workspace.
//
// After the benchmarks, main() runs a steady-state allocation probe: warm a
// Workspace, then count pool misses and destination growths over many hot
// pack_into/exclusive_scan_into iterations. The counts are emitted as a
// "bench_primitives_alloc" StatsDump line (PARCT_STATS_JSON) and checked by
// the CI perf-smoke job against bench/alloc_budget.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"
#include "primitives/scan.hpp"
#include "primitives/sequence_ops.hpp"
#include "primitives/workspace.hpp"

using namespace parct;

namespace {

std::vector<std::uint32_t> inputs(std::size_t n) {
  hashing::SplitMix64 rng(1);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(100));
  return v;
}

void BM_ExclusiveScan(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> out(in.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::exclusive_scan(in.data(), out.data(), in.size()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExclusiveScan)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_ExclusiveScanInto(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> out(in.size());
  Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::exclusive_scan_into(in.data(), out.data(), in.size(), ws));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExclusiveScanInto)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_Pack(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::pack(in, [&](std::size_t i) { return (in[i] & 1) == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pack)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_PackInto(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> out;
  Workspace ws;
  for (auto _ : state) {
    prim::pack_into(in, [&](std::size_t i) { return (in[i] & 1) == 0; },
                    out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackInto)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_FilterCount(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  auto in = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::filter_count(
        in.size(), [&](std::size_t i) { return (in[i] & 1) == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterCount)->Args({1 << 20, 1})->Args({1 << 20, 4});

void BM_Tabulate(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::tabulate(n, [](std::size_t i) { return 3 * i + 1; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tabulate)->Args({1 << 20, 1})->Args({1 << 20, 4});

// Steady-state allocation probe: after one warm-up epoch, hot iterations
// of the _into primitives must be served entirely from the pool and the
// reused destination. Emits the counter deltas for the CI budget check.
void run_alloc_probe() {
  par::scheduler::initialize(4);
  const std::size_t n = bench::env_size("PARCT_BENCH_N", 1 << 20);
  const int iters = 32;
  auto in = inputs(n);
  std::vector<std::uint32_t> packed;
  std::vector<std::uint32_t> scanned(n);
  Workspace ws;
  auto pred = [&](std::size_t i) { return (in[i] & 1) == 0; };
  auto one_iteration = [&] {
    ws.epoch_reset();
    prim::pack_into(in, pred, packed, ws);
    prim::exclusive_scan_into(in.data(), scanned.data(), n, ws);
  };
  one_iteration();  // warm-up: populates the pool and the capacities
  const WorkspaceStats warm = ws.stats();
  for (int r = 0; r < iters; ++r) one_iteration();
  const WorkspaceStats d = workspace_stats_delta(warm, ws.stats());

  std::printf(
      "\n## alloc probe (n=%zu, %d steady-state iterations)\n"
      "ws_acquires,ws_hits,ws_misses,ws_bytes_allocated,"
      "ws_container_growths\n%llu,%llu,%llu,%llu,%llu\n",
      n, iters, static_cast<unsigned long long>(d.acquires),
      static_cast<unsigned long long>(d.hits),
      static_cast<unsigned long long>(d.misses),
      static_cast<unsigned long long>(d.bytes_allocated),
      static_cast<unsigned long long>(d.container_growths));

  bench::StatsDump dump("bench_primitives_alloc");
  dump.num("n", n)
      .num("iters", iters)
      .num("ws_acquires", d.acquires)
      .num("ws_hits", d.hits)
      .num("ws_misses", d.misses)
      .num("ws_bytes_allocated", d.bytes_allocated)
      .num("ws_container_growths", d.container_growths)
      .num("ws_container_bytes", d.container_bytes);
  dump.emit();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  run_alloc_probe();
  return 0;
}
