// Serving-layer benchmark: epochs of batched queries pipelined against
// dynamic updates through service::BatchServer. Sweeps the query:update
// mix and the worker count, and reports per-epoch throughput/latency plus
// the serving counters (overlapped epochs, backpressure, snapshot-buffer
// recycling). One row per (mix, workers, overlap) configuration; JSONL
// via PARCT_STATS_JSON (docs/OBSERVABILITY.md).
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "forest/generators.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "service/batch_server.hpp"

namespace parct {
namespace {

struct Mix {
  const char* name;
  int query_batches_per_epoch;  // batches of kQueriesPerBatch each
  bool update_per_epoch;
};

constexpr std::size_t kQueriesPerBatch = 512;
constexpr std::size_t kEdgesPerUpdate = 64;

struct EpochStream {
  // Delete/re-insert the same edge set on alternating updates, so the
  // forest oscillates between two shapes and every epoch's update has the
  // same size — steady-state serving, not a shrinking forest.
  forest::ChangeSet del, ins;
};

double run_config(contract::ContractionForest& c, const forest::Forest& f,
                  const Mix& mix, unsigned workers, bool overlap,
                  int epochs, bench::TableWriter& table) {
  par::scheduler::initialize(workers);
  service::ServiceConfig cfg;
  cfg.overlap_updates = overlap;
  cfg.validate_updates = false;  // serving hygiene off: measure the engine
  service::BatchServer server(
      c, cfg, std::vector<service::Weight>(f.capacity(), 1));

  EpochStream stream;
  stream.del = forest::make_delete_batch(f, kEdgesPerUpdate, 77);
  for (const Edge& e : stream.del.remove_edges) {
    stream.ins.add_edges.push_back(e);
  }

  hashing::SplitMix64 rng(workers * 1000 + mix.query_batches_per_epoch);
  const std::size_t n = f.capacity();
  auto make_queries = [&] {
    service::QueryBatch q;
    for (std::size_t i = 0; i < kQueriesPerBatch; ++i) {
      q.roots.push_back(static_cast<VertexId>(rng.next_below(n)));
      q.connected.push_back({static_cast<VertexId>(rng.next_below(n)),
                             static_cast<VertexId>(rng.next_below(n))});
      q.tree_weights.push_back(static_cast<VertexId>(rng.next_below(n)));
    }
    return q;
  };

  server.start();
  std::vector<std::future<service::QueryResult>> qfuts;
  std::vector<std::future<service::UpdateResult>> ufuts;
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < epochs; ++e) {
    for (int b = 0; b < mix.query_batches_per_epoch; ++b) {
      qfuts.push_back(server.submit_queries(make_queries()));
    }
    if (mix.update_per_epoch) {
      service::UpdateRequest u;
      u.batch = (e % 2 == 0) ? stream.del : stream.ins;
      ufuts.push_back(server.submit_update(std::move(u)));
    }
  }
  server.stop();  // drains all admitted work
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  for (auto& fut : qfuts) fut.get();
  for (auto& fut : ufuts) fut.get();
  // Leave the structure as it started (even update counts cancel out);
  // with an odd count, re-apply the inserts so the next config reuses it.
  if (mix.update_per_epoch && epochs % 2 != 0) {
    contract::modify_contraction(c, stream.ins);
  }

  const service::ServiceStats s = server.stats();
  const double qps = s.epochs ? static_cast<double>(s.queries_served) / secs
                              : 0.0;
  const double ups =
      s.epochs ? static_cast<double>(s.updates_applied) / secs : 0.0;
  table.row({mix.name, std::to_string(workers), overlap ? "1" : "0",
             std::to_string(s.epochs), bench::fmt(qps), bench::fmt(ups),
             bench::fmt_s(s.epochs ? secs / static_cast<double>(s.epochs)
                                   : 0.0),
             std::to_string(s.overlapped_epochs),
             std::to_string(s.backpressure_waits),
             std::to_string(s.snapshot_buffers_reused),
             std::to_string(s.snapshot_buffers_allocated)});

  bench::StatsDump dump("service");
  dump.str("mix", mix.name)
      .num("n", n)
      .num("threads", workers)
      .num("overlap", overlap ? 1 : 0)
      .num("epochs", s.epochs)
      .num("overlapped_epochs", s.overlapped_epochs)
      .num("queries_served", s.queries_served)
      .num("updates_applied", s.updates_applied)
      .num("queries_per_s", qps)
      .num("updates_per_s", ups)
      .num("elapsed_s", secs)
      .num("epoch_s_total", s.epoch_seconds)
      .num("query_s_total", s.query_seconds)
      .num("update_s_total", s.update_seconds)
      .num("publish_s_total", s.publish_seconds)
      .num("backpressure_waits", s.backpressure_waits)
      .num("queries_shed", s.queries_shed)
      .num("epoch_retries", s.epoch_retries)
      .num("deadline_rejections", s.deadline_rejections)
      .num("degraded_epochs", s.degraded_epochs)
      .num("admission_drops", s.admission_drops)
      .num("max_query_queue_depth", s.max_query_queue_depth)
      .num("max_update_queue_depth", s.max_update_queue_depth)
      .num("snapshot_buffers_reused", s.snapshot_buffers_reused)
      .num("snapshot_buffers_allocated", s.snapshot_buffers_allocated)
      .num("wal_records", s.wal_records)
      .num("wal_bytes", s.wal_bytes)
      .num("checkpoints_written", s.checkpoints_written)
      .num("checkpoint_failures", s.checkpoint_failures)
      .num("recovery_replayed", s.recovery_replayed);
  dump.emit();
  return secs;
}

}  // namespace
}  // namespace parct

int main() {
  using namespace parct;
  const std::size_t n = bench::default_n();
  const int epochs = static_cast<int>(bench::env_size("PARCT_BENCH_EPOCHS",
                                                      40));
  forest::Forest f = forest::random_forest(n, 8, 4, 0.45, 12);
  contract::ContractionForest c(n, 4, 5);
  contract::construct(c, f);

  std::printf("# bench_service: n=%zu epochs=%d queries/batch=%zu "
              "edges/update=%zu\n",
              n, epochs, kQueriesPerBatch, kEdgesPerUpdate);
  bench::TableWriter table(
      "service epochs (query:update pipelining)",
      {"mix", "p", "overlap", "epochs", "queries_per_s", "updates_per_s",
       "epoch_s_mean", "overlapped", "backpressure", "buf_reused",
       "buf_alloc"});

  const Mix mixes[] = {
      {"query-only", 4, false},
      {"mixed", 4, true},
      {"update-heavy", 1, true},
  };
  for (const unsigned p : bench::thread_sweep()) {
    for (const Mix& mix : mixes) {
      run_config(c, f, mix, p, /*overlap=*/true, epochs, table);
      if (mix.update_per_epoch) {
        run_config(c, f, mix, p, /*overlap=*/false, epochs, table);
      }
    }
  }
  par::scheduler::initialize(1);
  return 0;
}
