// google-benchmark microbenchmarks for the fork-join scheduler substrate:
// fork2join overhead, parallel_for at different grains, reduce throughput.
#include <benchmark/benchmark.h>

#include <atomic>

#include "parallel/fork_join.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scheduler.hpp"

using namespace parct;

namespace {

void BM_Fork2JoinOverhead(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(0)));
  int a = 0, b = 0;
  for (auto _ : state) {
    par::fork2join([&] { benchmark::DoNotOptimize(++a); },
                   [&] { benchmark::DoNotOptimize(++b); });
  }
}
BENCHMARK(BM_Fork2JoinOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_ForkTreeDepth(benchmark::State& state) {
  par::scheduler::initialize(4);
  struct Rec {
    static void run(int depth) {
      if (depth == 0) return;
      par::fork2join([&] { run(depth - 1); }, [&] { run(depth - 1); });
    }
  };
  for (auto _ : state) Rec::run(static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * (1u << state.range(0)));
}
BENCHMARK(BM_ForkTreeDepth)->Arg(6)->Arg(10);

void BM_ParallelForSaxpyLike(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.25);
  for (auto _ : state) {
    par::parallel_for(0, n, [&](std::size_t i) { y[i] += 2.0 * x[i]; });
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForSaxpyLike)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4});

void BM_ParallelReduceSum(benchmark::State& state) {
  par::scheduler::initialize(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 1 << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::parallel_reduce(
        0, n, 0.0, [](std::size_t i) { return 0.5 * i; },
        [](double a, double b) { return a + b; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelReduceSum)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
