// Query throughput of the application layer on a maintained structure:
// root finding / connectivity (RCForest), component weights
// (TreeAggregate), and path-to-root aggregates (PathAggregate), compared
// against the sequential Link-Cut Tree and Euler-Tour Tree baselines on
// the same forest. All queries are O(log n) expected in all structures;
// this bench pins down the constant factors.
#include <chrono>

#include "baseline/euler_tour_tree.hpp"
#include "baseline/link_cut_tree.hpp"
#include "bench/common/bench_util.hpp"
#include "contraction/construct.hpp"
#include "forest/tree_builder.hpp"
#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "rc/path_aggregate.hpp"
#include "rc/rc_forest.hpp"
#include "rc/subtree_aggregate.hpp"
#include "rc/tree_aggregate.hpp"

using namespace parct;

int main() {
  par::scheduler::initialize(1);
  const std::size_t n = bench::default_n();
  const std::size_t kQueries = 200000;

  forest::Forest f = forest::build_tree(n, 4, 0.6, 0xC0FFEEull);

  contract::ContractionForest c(n, 4, 3);
  rc::PathAggregate<long, rc::PathPlus> path_sum(c, 0);
  rc::SubtreeAggregate<long, rc::PathPlus> subtree_sum(c, 0);
  contract::MultiHooks hooks{&path_sum, &subtree_sum};
  hashing::SplitMix64 wrng(4);
  for (VertexId v = 0; v < n; ++v) {
    subtree_sum.stage_vertex_weight(v,
                                    static_cast<long>(wrng.next_below(50)));
    if (!f.is_root(v)) {
      path_sum.stage_edge_weight(v,
                                 static_cast<long>(wrng.next_below(100)));
    }
  }
  contract::construct(c, f, &hooks);
  rc::RCForest rcf(c);
  rc::TreeAggregate<long> tree_w(rcf, std::vector<long>(n, 1));

  baseline::LinkCutTree lct(n);
  baseline::EulerTourTree ett(n, 5);
  for (const Edge& e : f.edges()) {
    lct.link(e.child, e.parent);
    ett.link(e.child, e.parent);
  }

  // Pre-draw query vertices.
  hashing::SplitMix64 rng(9);
  std::vector<VertexId> qs(kQueries);
  for (auto& q : qs) q = static_cast<VertexId>(rng.next_below(n));

  bench::TableWriter table(
      "Query throughput on n=" + std::to_string(n) +
          " (chain factor 0.6), " + std::to_string(kQueries) + " queries",
      {"structure", "query", "total_s", "ns_per_query"});

  auto run = [&](const char* structure, const char* query, auto&& body) {
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (VertexId q : qs) sink += body(q);
    const auto t1 = std::chrono::steady_clock::now();
    const double t = std::chrono::duration<double>(t1 - t0).count();
    table.row({structure, query, bench::fmt_s(t),
               bench::fmt(t / kQueries * 1e9)});
    if (sink == 0xDEADBEEF) std::printf("(impossible)\n");  // keep `sink`
  };

  run("rc_forest", "root", [&](VertexId q) { return rcf.root(q); });
  run("link_cut_tree", "root",
      [&](VertexId q) { return lct.find_root(q); });
  run("rc_forest", "connected",
      [&](VertexId q) { return rcf.connected(q, qs[q % kQueries]) ? 1 : 0; });
  run("euler_tour_tree", "connected", [&](VertexId q) {
    return ett.connected(q, qs[q % kQueries]) ? 1 : 0;
  });
  run("tree_aggregate", "component_weight",
      [&](VertexId q) { return static_cast<std::uint64_t>(
          tree_w.tree_weight(q)); });
  run("euler_tour_tree", "component_size",
      [&](VertexId q) { return ett.component_size(q); });
  run("path_aggregate", "path_to_root_sum", [&](VertexId q) {
    return static_cast<std::uint64_t>(path_sum.path_to_root(q));
  });
  run("link_cut_tree", "depth", [&](VertexId q) { return lct.depth(q); });
  run("subtree_aggregate", "subtree_sum", [&](VertexId q) {
    return static_cast<std::uint64_t>(subtree_sum.subtree_sum(q));
  });
  run("euler_tour_tree", "subtree_sum", [&](VertexId q) {
    return static_cast<std::uint64_t>(ett.subtree_sum(q));
  });
  return 0;
}
