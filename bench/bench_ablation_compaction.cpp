// Ablation: the compaction algorithm C(n) (paper §2.6 / §5 "Compaction").
// The paper chooses the simple O(log n)-span prefix-sums pack over
// asymptotically faster CRCW alternatives because of constant factors; this
// bench compares the serial pack, the parallel prefix-sums pack, and an
// std::copy_if baseline across sizes and keep-densities.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "hashing/splitmix64.hpp"
#include "parallel/scheduler.hpp"
#include "primitives/pack.hpp"

using namespace parct;

namespace {

std::vector<std::uint32_t> inputs(std::size_t n, std::uint32_t density_pct) {
  hashing::SplitMix64 rng(7);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = rng.next_below(100) < density_pct ? 1u : 0u;
  }
  return v;
}

void BM_PackSerial(benchmark::State& state) {
  par::scheduler::initialize(1);  // serial fast path inside pack
  auto flags = inputs(static_cast<std::size_t>(state.range(0)),
                      static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::pack(flags, [&](std::size_t i) { return flags[i] != 0; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackSerial)
    ->Args({1 << 20, 5})
    ->Args({1 << 20, 50})
    ->Args({1 << 20, 95});

void BM_PackParallelPrefixSums(benchmark::State& state) {
  par::scheduler::initialize(4);
  auto flags = inputs(static_cast<std::size_t>(state.range(0)),
                      static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::pack(flags, [&](std::size_t i) { return flags[i] != 0; }));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackParallelPrefixSums)
    ->Args({1 << 20, 5})
    ->Args({1 << 20, 50})
    ->Args({1 << 20, 95});

void BM_PackStdCopyIfBaseline(benchmark::State& state) {
  auto flags = inputs(static_cast<std::size_t>(state.range(0)),
                      static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    std::vector<std::uint32_t> out;
    out.reserve(flags.size());
    std::copy_if(flags.begin(), flags.end(), std::back_inserter(out),
                 [](std::uint32_t x) { return x != 0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackStdCopyIfBaseline)
    ->Args({1 << 20, 5})
    ->Args({1 << 20, 50})
    ->Args({1 << 20, 95});

}  // namespace

BENCHMARK_MAIN();
